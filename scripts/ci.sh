#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build + test suite.
#
#   ./scripts/ci.sh
#
# Runs entirely offline (the workspace vendors its dev-dependency stubs),
# so this is exactly what a fresh checkout must pass.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> bench smoke: report_pipeline --quick"
cargo build --release -p mobicache-bench
./target/release/report_pipeline --quick --out /tmp/bench_smoke.json
rm -f /tmp/bench_smoke.json

echo "CI OK"
