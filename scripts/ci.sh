#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build + test suite.
#
#   ./scripts/ci.sh
#
# Runs entirely offline (the workspace vendors its dev-dependency stubs),
# so this is exactly what a fresh checkout must pass.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

# The golden-digest suite must hold at any worker-thread count: the
# sharded fan-out is bit-identical by contract. Run it serial and
# sharded (the default `cargo test -q` above already covered threads=1
# implicitly; these runs make both settings explicit and loud).
echo "==> determinism suite, threads=1"
MOBICACHE_THREADS=1 cargo test -q --test determinism

echo "==> determinism suite, threads=4"
MOBICACHE_THREADS=4 cargo test -q --test determinism

echo "==> bench smoke: report_pipeline --quick --threads 2"
cargo build --release -p mobicache-bench
./target/release/report_pipeline --quick --threads 2 --out /tmp/bench_smoke.json
rm -f /tmp/bench_smoke.json

echo "CI OK"
