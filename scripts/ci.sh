#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build + test suite.
#
#   ./scripts/ci.sh
#
# Runs entirely offline (the workspace vendors its dev-dependency stubs),
# so this is exactly what a fresh checkout must pass.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

# The golden-digest suite must hold at any worker-thread count: the
# persistent pool's sharded phases are bit-identical by contract. Run it
# serial and sharded, in debug AND release — release reorders enough
# (inlining, vectorized loops) to have caught ordering bugs debug masks.
for profile in "" "--release"; do
  for t in 1 4; do
    echo "==> determinism suite, threads=$t ${profile:-debug}"
    MOBICACHE_THREADS=$t cargo test -q $profile --test determinism
  done
done

# Fault matrix: the high-fault digest must be thread-invariant too (the
# fault coins ride dedicated streams in the serial phases), and the
# any-fault-schedule proptests run the oracle under arbitrary fault
# plans. Timeout because their failure mode includes a retry loop that
# never terminates.
for t in 1 4; do
  echo "==> fault determinism leg, threads=$t (release)"
  MOBICACHE_THREADS=$t cargo test -q --release --test determinism fault
done
echo "==> fault-schedule proptest suite (under timeout)"
timeout 600 cargo test -q --release --test faults

# Multi-cell legs: the mobility digests must be thread-invariant (the
# mobility coins ride dedicated per-cell streams), and the cell
# equivalence battery pins cells=1 bit-identity plus the
# handoff-equals-disconnection contract. Timeouts because the proptests'
# failure mode includes shrink loops over whole-simulation runs.
for t in 1 4; do
  echo "==> multi-cell determinism leg, threads=$t (release)"
  MOBICACHE_THREADS=$t timeout 600 cargo test -q --release --test determinism \
    -- multi_cell mobility
done
echo "==> cell equivalence suite (under timeout)"
timeout 600 cargo test -q --release --test cells

# Pool lifecycle tests under a hard timeout: their failure mode is a
# wedged barrier or an unjoined worker, which must fail fast instead of
# hanging the suite.
echo "==> pool lifecycle suite (under timeout)"
timeout 300 cargo test -q --release --test pool

# Population-scale legs for the struct-of-arrays client core. The
# 100k-client determinism pin is #[ignore]d (debug would crawl), so run
# it explicitly in release; the popscale smoke re-runs the committed
# 100k bench row and fails on a >10% events/sec regression against
# BENCH_report_pipeline.json. Both under timeout: their failure mode
# includes a wedged shard barrier.
echo "==> 100k-client thread-invariance pin (release, under timeout)"
timeout 600 cargo test -q --release --test determinism \
  hundred_k_clients_digest_is_thread_invariant -- --ignored

echo "==> bench smoke: report_pipeline --quick --threads 2"
cargo build --release -p mobicache-bench
./target/release/report_pipeline --quick --threads 2 --out /tmp/bench_smoke.json
rm -f /tmp/bench_smoke.json

echo "==> popscale smoke: 100k clients vs committed BENCH_report_pipeline.json"
timeout 300 ./target/release/report_pipeline \
  --smoke-popscale 100000 --check-against BENCH_report_pipeline.json

# Scheduler legs for the timing wheel: the stress smoke re-runs the
# heavy AAW point against the committed stress row (a scheduler or
# report-pipeline throughput regression fails here, not just a
# population-scaling one), and the sched smoke re-runs the 10k-pending
# heap-vs-wheel micro-benchmark, failing if the wheel drops below the
# heap baseline.
echo "==> stress smoke: heavy AAW point vs committed BENCH_report_pipeline.json"
timeout 300 ./target/release/report_pipeline \
  --smoke-stress --check-against BENCH_report_pipeline.json

# The handoff smoke re-runs the heavy AAW multi-cell point (4 cells,
# migrating clients, per-cell fan-out and update replay) against the
# committed handoff row; a regression in the cell-aware broadcast path
# or the handoff machinery fails here before it reaches a figure sweep.
echo "==> handoff smoke: multi-cell AAW point vs committed BENCH_report_pipeline.json"
timeout 300 ./target/release/report_pipeline \
  --smoke-handoff --check-against BENCH_report_pipeline.json

echo "==> sched smoke: heap-vs-wheel micro-benchmark"
timeout 300 ./target/release/report_pipeline --smoke-sched

# Invalidation-plan legs: the invplan smoke re-runs the 100k-client
# plan-vs-per-item micro-benchmark and fails if the bitmap plan stops
# beating the per-item walk or drops below half the committed speedup
# (a ratio of two timed paths carries both runs' noise, hence the wider
# margin than the 10% throughput gates). The e2e smoke closes the old
# gap where the e2e section had no gate at all: it re-runs the full AAW
# fig05 sweep against the committed e2e row with an 80% floor (e2e wall
# times are tens of milliseconds, so proportional noise is larger).
echo "==> invplan smoke: plan-vs-per-item at 100k clients"
timeout 300 ./target/release/report_pipeline \
  --smoke-invplan --check-against BENCH_report_pipeline.json

echo "==> e2e smoke: AAW fig05 sweep vs committed BENCH_report_pipeline.json"
timeout 300 ./target/release/report_pipeline \
  --smoke-e2e --check-against BENCH_report_pipeline.json

echo "CI OK"
