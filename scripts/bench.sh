#!/usr/bin/env bash
# Report-pipeline benchmark: runs the `report_pipeline` bin and writes
# `BENCH_report_pipeline.json` at the repo root.
#
#   ./scripts/bench.sh            # full settings (best-of-3 e2e/stress,
#                                 # best-of-30 fan-out passes)
#   ./scripts/bench.sh --quick    # reduced iterations, used by ci.sh
#
# The JSON has these sections:
#   baseline_before — pre-refactor numbers frozen into the binary
#   popscale        — struct-of-arrays population sweep (10k/100k/1M AAW
#                     clients, ascending): events/sec and peak RSS (VmHWM)
#   sched           — heap-vs-timing-wheel scheduler micro-benchmark
#   e2e             — fig05 sweep per scheme: wall secs, events, events/sec
#   stress          — heavy single-run config per scheme (40k db, 200 clients)
#   fanout          — one report x 200 clients: linear vs shared-index, speedup
#   invplan         — bitmap invalidation plans at the stress shape (40k db,
#                     800-item caches): per-item stale_into walk vs the
#                     decode-once PlanCache intersection, ns/client at
#                     10k/100k/1M clients, plus a probed AAW run's
#                     plan-cache hit rate
#   scaling         — full AAW runs, clients x engine worker threads
#                     (host_cores recorded; on a 1-core host ~1.0x is the
#                     expected ceiling)
#
# Several rows double as CI regression floors: ci.sh re-runs the popscale
# 100k row (--smoke-popscale, >10% events/sec drop fails), the heavy AAW
# stress point (--smoke-stress), the invplan 100k row (--smoke-invplan,
# fails below half the committed plan speedup), and the AAW e2e sweep
# (--smoke-e2e, 80% floor), all via `--check-against
# BENCH_report_pipeline.json`.
#
# Criterion micro-benchmarks (including the `fanout` group) live
# separately under `cargo bench -p mobicache-bench --bench micro`.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="BENCH_report_pipeline.json"

echo "==> cargo build --release -p mobicache-bench"
cargo build --release -p mobicache-bench

echo "==> report_pipeline $* --out $OUT"
./target/release/report_pipeline "$@" --out "$OUT"

echo "wrote $OUT"
