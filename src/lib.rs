//! Top-level reproduction package: re-exports the public API so the
//! examples and cross-crate integration tests in this repository have a
//! single import root. Library users should depend on the `mobicache`
//! crate directly.

pub use mobicache::*;
pub use mobicache_experiments as experiments;
