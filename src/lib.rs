//! Top-level reproduction package: re-exports the public API so the
//! examples and cross-crate integration tests in this repository have a
//! single import root. Library users should depend on the `mobicache`
//! crate directly.
//!
//! Since the struct-of-arrays client refactor, per-client state is
//! exposed through the columnar [`ClientPop`] population and its
//! [`ClientRef`]/[`ClientMut`] accessor views (re-exported here); the
//! old snapshot-style `Vec<Client>` accessors no longer exist.

pub use mobicache::*;
pub use mobicache_experiments as experiments;
