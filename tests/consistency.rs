//! End-to-end consistency: every scheme, run with the ground-truth
//! oracle asserting after every client-visible message that no valid
//! cache entry is stale. This is the invariant the whole paper is about.

use mobicache::{run, RunOptions, Scheme, SimConfig, Workload};

fn base(scheme: Scheme) -> SimConfig {
    let mut cfg = SimConfig::paper_default().with_scheme(scheme);
    cfg.sim_time_secs = 10_000.0;
    cfg.db_size = 2_000;
    cfg.num_clients = 30;
    cfg
}

#[test]
fn all_schemes_uphold_consistency_under_uniform() {
    for scheme in Scheme::ALL {
        let cfg = base(scheme);
        let result = run(&cfg, RunOptions::new().check_consistency(true))
            .unwrap_or_else(|e| panic!("{scheme:?}: {e}"));
        assert!(result.metrics.queries_answered > 0, "{scheme:?}");
    }
}

#[test]
fn all_schemes_uphold_consistency_under_hotcold() {
    for scheme in Scheme::ALL {
        let cfg = base(scheme).with_workload(Workload::hotcold());
        run(&cfg, RunOptions::new().check_consistency(true))
            .unwrap_or_else(|e| panic!("{scheme:?}: {e}"));
    }
}

#[test]
fn consistency_holds_under_heavy_disconnection() {
    // The stress regime for reconnection logic: most gaps are long
    // disconnections, far beyond the broadcast window.
    for scheme in [Scheme::SimpleChecking, Scheme::Afw, Scheme::Aaw, Scheme::Bs] {
        let mut cfg = base(scheme).with_workload(Workload::hotcold());
        cfg.p_disconnect = 0.7;
        cfg.mean_disconnect_secs = 3_000.0;
        run(&cfg, RunOptions::new().check_consistency(true))
            .unwrap_or_else(|e| panic!("{scheme:?}: {e}"));
    }
}

#[test]
fn consistency_holds_with_lazy_checking() {
    let mut cfg = base(Scheme::SimpleChecking);
    cfg.checking_mode = mobicache::CheckingMode::QueriedItems;
    cfg.p_disconnect = 0.5;
    cfg.mean_disconnect_secs = 2_000.0;
    run(&cfg, RunOptions::new().check_consistency(true)).expect("valid config");
}

#[test]
fn consistency_holds_with_fast_updates() {
    // Updates every 10 s mean: reports carry many records, BS levels
    // churn, caches invalidate constantly.
    for scheme in [Scheme::Bs, Scheme::Aaw, Scheme::SimpleChecking] {
        let mut cfg = base(scheme);
        cfg.mean_update_interarrival_secs = 10.0;
        run(&cfg, RunOptions::new().check_consistency(true))
            .unwrap_or_else(|e| panic!("{scheme:?}: {e}"));
    }
}

#[test]
fn consistency_holds_with_multi_item_queries() {
    for scheme in [Scheme::Aaw, Scheme::SimpleChecking] {
        let mut cfg = base(scheme);
        cfg.items_per_query_mean = 5.0;
        run(&cfg, RunOptions::new().check_consistency(true))
            .unwrap_or_else(|e| panic!("{scheme:?}: {e}"));
    }
}

#[test]
fn consistency_holds_on_tiny_database() {
    // A 20-item database forces constant cache churn and exercises the
    // BS hierarchy's smallest geometries.
    for scheme in Scheme::ALL {
        let mut cfg = base(scheme);
        cfg.db_size = 20;
        cfg.cache_fraction = 0.2;
        // Hot region must fit the tiny DB.
        cfg.workload = Workload::uniform();
        run(&cfg, RunOptions::new().check_consistency(true))
            .unwrap_or_else(|e| panic!("{scheme:?}: {e}"));
    }
}

#[test]
fn consistency_holds_under_combined_extensions() {
    // Everything at once: report loss, snooping, a dedicated broadcast
    // channel, heavy disconnection — the oracle must stay silent.
    for scheme in [
        Scheme::Aaw,
        Scheme::Afw,
        Scheme::SimpleChecking,
        Scheme::Bs,
        Scheme::Gcore,
    ] {
        let mut cfg = base(scheme).with_workload(Workload::hotcold());
        cfg.p_disconnect = 0.5;
        cfg.mean_disconnect_secs = 1_500.0;
        cfg.p_report_loss = 0.15;
        cfg.snoop_broadcasts = true;
        cfg.downlink_topology = mobicache::DownlinkTopology::Dedicated {
            broadcast_share: 0.3,
        };
        run(&cfg, RunOptions::new().check_consistency(true))
            .unwrap_or_else(|e| panic!("{scheme:?}: {e}"));
    }
}

#[test]
fn consistency_holds_for_gcore_beyond_retention() {
    // Disconnections far beyond the GCORE retention window: every
    // reconnection ends in an uncovered verdict and a full drop, which
    // must still be consistent.
    let mut cfg = base(Scheme::Gcore);
    cfg.gcore_retention_intervals = 5; // only 100 s of history
    cfg.p_disconnect = 0.5;
    cfg.mean_disconnect_secs = 2_000.0;
    let result = run(&cfg, RunOptions::new().check_consistency(true)).expect("valid config");
    assert!(
        result.metrics.clients.full_drops > 0,
        "expected retention-exceeded drops"
    );
}

#[test]
fn consistency_holds_under_starved_uplink() {
    // 1 % uplink (Table 1's lower bound): requests and checks queue for
    // a long time, stressing in-flight/stale interleavings.
    for scheme in [Scheme::SimpleChecking, Scheme::Afw, Scheme::Aaw] {
        let mut cfg = base(scheme);
        cfg.uplink_bps = 100.0;
        run(&cfg, RunOptions::new().check_consistency(true))
            .unwrap_or_else(|e| panic!("{scheme:?}: {e}"));
    }
}
