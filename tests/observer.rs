//! The run-observer subsystem, end to end: event ordering, interval
//! snapshot conservation, and the bit-identical-run guarantee.

use mobicache::{
    run, AdaptiveDecision, IntervalSampler, IntervalSnapshot, Probe, ProbeEvent, RunOptions,
    Scheme, SimConfig, SimTime, Workload,
};

fn short_cfg(scheme: Scheme) -> SimConfig {
    SimConfig::paper_default()
        .with_scheme(scheme)
        .with_sim_time(4_000.0)
        .with_db_size(1_000)
        .with_num_clients(20)
}

/// Records every event, asserting the stream is in simulation-time
/// order, and tallies the kinds seen.
#[derive(Default)]
struct OrderProbe {
    last_secs: f64,
    reports: u64,
    decisions: u64,
    disconnects: u64,
    reconnects: u64,
    salvages: u64,
    cache_events: u64,
    queries: u64,
}

impl Probe for OrderProbe {
    fn on_event(&mut self, now: SimTime, event: &ProbeEvent) {
        let t = now.as_secs();
        assert!(
            t >= self.last_secs,
            "event stream went backwards: {t} after {}",
            self.last_secs
        );
        self.last_secs = t;
        match event {
            ProbeEvent::ReportBroadcast { bits, .. } => {
                assert!(*bits > 0.0, "report with no bits on the wire");
                self.reports += 1;
            }
            ProbeEvent::AdaptiveDecision(d) => {
                match d {
                    AdaptiveDecision::AfwBsTrigger { eligible, .. } => assert!(*eligible > 0),
                    AdaptiveDecision::AawEnlarge {
                        enlarged_bits,
                        bs_bits,
                        ..
                    } => {
                        assert!(enlarged_bits <= bs_bits, "enlarge chosen but bigger");
                    }
                    AdaptiveDecision::AawBsFallback {
                        enlarged_bits,
                        bs_bits,
                        ..
                    } => {
                        assert!(
                            enlarged_bits > bs_bits,
                            "fallback chosen but enlarge smaller"
                        );
                    }
                }
                self.decisions += 1;
            }
            ProbeEvent::Disconnect { for_secs, .. } => {
                assert!(*for_secs > 0.0);
                self.disconnects += 1;
            }
            ProbeEvent::Reconnect { offline_secs, .. } => {
                assert!(*offline_secs > 0.0);
                self.reconnects += 1;
            }
            ProbeEvent::LimboSalvage {
                salvaged, dropped, ..
            } => {
                assert!(salvaged + dropped > 0);
                self.salvages += 1;
            }
            ProbeEvent::CacheEvent { .. } => self.cache_events += 1,
            ProbeEvent::QueryResolved {
                latency_secs,
                hits,
                misses,
                ..
            } => {
                assert!(*latency_secs >= 0.0);
                assert!(hits + misses > 0);
                self.queries += 1;
            }
            // No fault plan and one cell in these runs: fault and
            // mobility events must never fire.
            ProbeEvent::ReportLost { .. }
            | ProbeEvent::UplinkLost { .. }
            | ProbeEvent::ServerCrash { .. }
            | ProbeEvent::ServerRecovered { .. }
            | ProbeEvent::Handoff { .. } => {
                panic!("fault/mobility event without a plan: {event:?}")
            }
        }
    }
}

#[test]
fn events_arrive_in_time_order_and_cover_the_decision_points() {
    for scheme in [Scheme::Afw, Scheme::Aaw] {
        let mut probe = OrderProbe::default();
        let m = run(&short_cfg(scheme), RunOptions::new().probe(&mut probe))
            .expect("valid config")
            .metrics;
        assert!(probe.reports > 0, "{scheme:?}: no report broadcasts seen");
        assert!(
            probe.decisions > 0,
            "{scheme:?}: no adaptive decisions seen"
        );
        assert!(probe.queries > 0, "{scheme:?}: no resolved queries seen");
        assert!(probe.disconnects > 0, "{scheme:?}: no disconnections seen");
        // Every observed completion is one the metrics counted too.
        assert_eq!(probe.queries, m.queries_answered, "{scheme:?}");
        assert_eq!(probe.disconnects, m.disconnections, "{scheme:?}");
        // A reconnection follows every disconnection except any still
        // dozing at the horizon.
        assert!(probe.reconnects <= probe.disconnects, "{scheme:?}");
        assert!(probe.disconnects - probe.reconnects <= 20, "{scheme:?}");
    }
}

#[test]
fn limbo_salvage_events_match_client_counters() {
    let mut probe = OrderProbe::default();
    let mut cfg = short_cfg(Scheme::Aaw).with_workload(Workload::hotcold());
    cfg.p_disconnect = 0.4;
    let m = run(&cfg, RunOptions::new().probe(&mut probe))
        .expect("valid config")
        .metrics;
    assert!(m.clients.limbo_episodes > 0, "config must exercise limbo");
    assert!(
        probe.salvages > 0,
        "limbo resolutions must surface as events"
    );
}

#[test]
fn interval_snapshot_deltas_sum_to_final_metrics() {
    for scheme in [Scheme::Afw, Scheme::SimpleChecking] {
        let mut sampler = IntervalSampler::every(5);
        let m = run(&short_cfg(scheme), RunOptions::new().probe(&mut sampler))
            .expect("valid config")
            .metrics;
        let snaps = sampler.snapshots();
        assert!(snaps.len() > 2, "{scheme:?}: expected a time series");
        // Boundaries are contiguous and ordered.
        let mut prev_end = 0.0;
        for (i, s) in snaps.iter().enumerate() {
            assert_eq!(s.index as usize, i);
            assert_eq!(s.start_secs, prev_end, "{scheme:?}: gap between intervals");
            assert!(s.end_secs >= s.start_secs);
            prev_end = s.end_secs;
        }
        assert_eq!(
            prev_end, m.sim_time_secs,
            "{scheme:?}: last interval ends at horizon"
        );
        // Integer counters telescope exactly to the run totals.
        let sum = sampler.summed_totals();
        assert_eq!(sum.queries_issued, m.queries_issued, "{scheme:?}");
        assert_eq!(sum.queries_answered, m.queries_answered, "{scheme:?}");
        assert_eq!(sum.item_hits, m.item_hits, "{scheme:?}");
        assert_eq!(sum.item_misses, m.item_misses, "{scheme:?}");
        assert_eq!(sum.cache_evictions, m.cache_evictions, "{scheme:?}");
        assert_eq!(sum.disconnections, m.disconnections, "{scheme:?}");
        assert_eq!(sum.reports_lost, m.reports_lost, "{scheme:?}");
        assert_eq!(sum.events_delivered, m.events_processed, "{scheme:?}");
        let server_reports = m.server.window_reports
            + m.server.enlarged_reports
            + m.server.bs_reports
            + m.server.at_reports
            + m.server.sig_reports;
        assert_eq!(sum.reports_broadcast, server_reports, "{scheme:?}");
        assert_eq!(sum.tlbs_received, m.server.tlbs_received, "{scheme:?}");
        assert_eq!(
            sum.checks_processed, m.server.checks_processed,
            "{scheme:?}"
        );
        // Float accumulators telescope up to rounding.
        assert!((sum.client_tx_bits - m.client_tx_bits).abs() < 1e-6 * (1.0 + m.client_tx_bits));
        assert!((sum.client_rx_bits - m.client_rx_bits).abs() < 1e-6 * (1.0 + m.client_rx_bits));
    }
}

#[test]
fn snapshot_jsonl_round_trips_the_series() {
    let mut sampler = IntervalSampler::every(10);
    run(
        &short_cfg(Scheme::Aaw),
        RunOptions::new().probe(&mut sampler),
    )
    .expect("valid config");
    let jsonl = sampler.to_jsonl();
    let lines: Vec<&str> = jsonl.trim_end().split('\n').collect();
    assert_eq!(lines.len(), sampler.snapshots().len());
    for (line, snap) in lines.iter().zip(sampler.snapshots()) {
        assert_eq!(*line, snap.to_json());
        assert!(line.contains(&format!("\"interval\":{}", snap.index)));
    }
}

#[test]
fn attaching_a_probe_leaves_same_seed_metrics_bit_identical() {
    for scheme in [Scheme::Afw, Scheme::Aaw, Scheme::SimpleChecking, Scheme::Bs] {
        let cfg = short_cfg(scheme).with_workload(Workload::hotcold());
        let plain = run(&cfg, RunOptions::default())
            .expect("valid config")
            .metrics;
        let mut order = OrderProbe::default();
        let mut sampler = IntervalSampler::every(3);
        let mut pair = (&mut order, &mut sampler);
        let probed = run(&cfg, RunOptions::new().probe(&mut pair))
            .expect("valid config")
            .metrics;
        assert_eq!(plain.queries_issued, probed.queries_issued, "{scheme:?}");
        assert_eq!(
            plain.queries_answered, probed.queries_answered,
            "{scheme:?}"
        );
        assert_eq!(plain.item_hits, probed.item_hits, "{scheme:?}");
        assert_eq!(plain.item_misses, probed.item_misses, "{scheme:?}");
        assert_eq!(
            plain.events_processed, probed.events_processed,
            "{scheme:?}"
        );
        assert_eq!(plain.disconnections, probed.disconnections, "{scheme:?}");
        // f64 accumulators must match to the bit, not approximately.
        assert_eq!(
            plain.client_tx_bits.to_bits(),
            probed.client_tx_bits.to_bits(),
            "{scheme:?}"
        );
        assert_eq!(
            plain.client_rx_bits.to_bits(),
            probed.client_rx_bits.to_bits(),
            "{scheme:?}"
        );
        assert_eq!(
            plain.uplink_validity_bits.to_bits(),
            probed.uplink_validity_bits.to_bits(),
            "{scheme:?}"
        );
        assert_eq!(
            plain.mean_query_latency_secs.to_bits(),
            probed.mean_query_latency_secs.to_bits(),
            "{scheme:?}"
        );
    }
}

#[test]
fn sampler_final_interval_is_partial_when_horizon_misses_the_stride() {
    // 4000 s at L = 20 s is 200 broadcasts; stride 7 leaves a remainder,
    // so the horizon closes a short final interval.
    let mut sampler = IntervalSampler::every(7);
    run(
        &short_cfg(Scheme::Bs),
        RunOptions::new().probe(&mut sampler),
    )
    .expect("valid config");
    let snaps: &[IntervalSnapshot] = sampler.snapshots();
    let last = snaps.last().expect("non-empty series");
    let body_span = snaps[1].end_secs - snaps[1].start_secs;
    assert!(last.end_secs - last.start_secs < body_span);
}
