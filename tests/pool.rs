//! Lifecycle tests for the persistent worker pool behind the engine's
//! sharded tick phases.
//!
//! Three contracts, each of which would otherwise only fail as a hang
//! or a heisenbug:
//!
//! * a panicking chunk surfaces as an ordinary test-visible panic on
//!   the calling thread — never a wedged barrier (CI runs this file
//!   under `timeout` so a deadlock fails fast);
//! * dropping a `Simulation` joins every worker it spawned;
//! * the pool carries **no hidden per-tick state**: an engine driven
//!   `2×N` ticks and a pair of engines driven `N` ticks each — all
//!   through one shared pool — produce identical metrics.

use mobicache::{run, RunOptions, Simulation, WorkerPool};
use mobicache_model::{Scheme, SimConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn cfg(scheme: Scheme, sim_time_secs: f64) -> SimConfig {
    let mut cfg = SimConfig::paper_default().with_scheme(scheme);
    cfg.sim_time_secs = sim_time_secs;
    cfg.db_size = 1_000;
    cfg.num_clients = 20;
    cfg.threads = 4;
    cfg
}

#[test]
fn panicking_worker_task_propagates_without_hang() {
    let pool = WorkerPool::new(4);
    let survivors = AtomicU64::new(0);
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.run(16, &|i| {
            if i % 5 == 2 {
                panic!("poisoned chunk {i}");
            }
            survivors.fetch_add(1, Ordering::Relaxed);
        });
    }));
    let payload = result.expect_err("chunk panic must reach the caller");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("poisoned chunk"), "unexpected payload: {msg}");
    // The barrier completed before unwinding: all 13 healthy chunks ran.
    assert_eq!(survivors.load(Ordering::Relaxed), 13);
    // The pool survives a panicked epoch and keeps serving.
    let total = AtomicU64::new(0);
    pool.run(8, &|i| {
        total.fetch_add(i as u64, Ordering::Relaxed);
    });
    assert_eq!(total.into_inner(), 28);
}

#[test]
fn engine_drop_joins_all_workers() {
    // Each Simulation spawns threads-1 = 3 workers; leaking them across
    // 40 create/drop cycles would blow well past any sane thread count
    // and hang process exit. Completion of this loop (plus a run to
    // prove the pool works right up to the drop) is the assertion.
    for round in 0..40u64 {
        let c = cfg(Scheme::Aaw, 100.0).with_seed(round);
        let sim = Simulation::new(&c, RunOptions::new()).expect("valid config");
        if round % 4 == 0 {
            let result = sim.run_to_completion();
            assert!(result.metrics.events_processed > 0);
        }
        // Non-multiple rounds drop the wired simulation untouched: the
        // pool must join cleanly from the never-ran state too.
    }
}

#[test]
fn shared_pool_carries_no_state_across_engines() {
    // One pool, many engines — recreated engines must see a pool
    // indistinguishable from a fresh one. Drive scheme A, then scheme
    // B, then A again through the same pool and compare every run
    // against a pool-per-engine control run.
    let pool = Arc::new(WorkerPool::new(4));
    for scheme in [Scheme::Aaw, Scheme::Bs, Scheme::Aaw, Scheme::Gcore] {
        let c = cfg(scheme, 2_000.0);
        let control = run(&c, RunOptions::new().check_consistency(true)).unwrap();
        let shared = run(
            &c,
            RunOptions::new()
                .check_consistency(true)
                .worker_pool(Arc::clone(&pool)),
        )
        .unwrap();
        assert_eq!(
            format!("{:?}", control.metrics),
            format!("{:?}", shared.metrics),
            "{scheme:?} diverged on the shared pool"
        );
    }
}

#[test]
fn cross_tick_reuse_matches_recreated_engines() {
    // The ISSUE's pinning test, strengthened: one engine driven 2×N
    // ticks (4 000 s = 200 ticks at L = 20 s) must match itself whether
    // its pool is private or shared, and engines re-created every N
    // ticks on one shared pool must each match their fresh-pool control
    // — so no per-tick information (chunk counters, panic slots, epoch
    // bookkeeping) can leak from run to run.
    let pool = Arc::new(WorkerPool::new(4));
    let long = cfg(Scheme::Aaw, 4_000.0);
    let long_control = run(&long, RunOptions::new()).unwrap();
    let long_shared = run(&long, RunOptions::new().worker_pool(Arc::clone(&pool))).unwrap();
    assert_eq!(
        format!("{:?}", long_control.metrics),
        format!("{:?}", long_shared.metrics),
        "2N-tick run diverged on the shared pool"
    );
    // Now re-create an engine every N ticks (half the horizon) on the
    // already-used pool; each segment must match a fresh-pool control.
    for seed in [1u64, 2] {
        let half = cfg(Scheme::Aaw, 2_000.0).with_seed(seed);
        let control = run(&half, RunOptions::new()).unwrap();
        let shared = run(&half, RunOptions::new().worker_pool(Arc::clone(&pool))).unwrap();
        assert_eq!(
            format!("{:?}", control.metrics),
            format!("{:?}", shared.metrics),
            "N-tick segment (seed {seed}) diverged on the reused pool"
        );
    }
}
