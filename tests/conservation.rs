//! Conservation and accounting invariants across the full stack.

use mobicache::{run, Metrics, RunOptions, Scheme, SimConfig, Workload};

fn metrics(scheme: Scheme, f: impl FnOnce(&mut SimConfig)) -> Metrics {
    let mut cfg = SimConfig::paper_default().with_scheme(scheme);
    cfg.sim_time_secs = 8_000.0;
    cfg.db_size = 2_000;
    cfg.num_clients = 40;
    f(&mut cfg);
    run(&cfg, RunOptions::default())
        .expect("valid config")
        .metrics
}

#[test]
fn queries_answered_never_exceed_issued() {
    for scheme in Scheme::ALL {
        let m = metrics(scheme, |_| {});
        assert!(m.queries_answered <= m.queries_issued, "{scheme:?}");
        // In-flight queries at the horizon: at most one per client.
        assert!(m.queries_issued - m.queries_answered <= 40, "{scheme:?}");
    }
}

#[test]
fn item_accounting_matches_queries() {
    // With one item per query, items resolved == queries answered.
    for scheme in [Scheme::Aaw, Scheme::Bs, Scheme::SimpleChecking] {
        let m = metrics(scheme, |_| {});
        assert_eq!(
            m.item_hits + m.item_misses,
            m.queries_answered,
            "{scheme:?}"
        );
    }
}

#[test]
fn downlink_data_bits_match_misses() {
    // Every miss is exactly one data item + header on the downlink; the
    // horizon may cut the last transmissions, so transmitted data is at
    // most misses-worth and within one item of it.
    let m = metrics(Scheme::Aaw, |_| {});
    let per_item = 8192.0 * 8.0 + 64.0;
    assert!(m.downlink_data_bits <= m.item_misses as f64 * per_item);
    assert!(
        m.downlink_data_bits >= (m.item_misses as f64 - 40.0) * per_item,
        "more than one in-flight item per client unaccounted"
    );
}

#[test]
fn utilizations_are_fractions() {
    for scheme in Scheme::ALL {
        let m = metrics(scheme, |_| {});
        assert!((0.0..=1.0).contains(&m.downlink_utilization), "{scheme:?}");
        assert!((0.0..=1.0).contains(&m.uplink_utilization), "{scheme:?}");
    }
}

#[test]
fn saturated_downlink_is_actually_busy() {
    // The paper's premise: the downlink is the bottleneck and essentially
    // fully utilised under the default load.
    let m = metrics(Scheme::SimpleChecking, |cfg| {
        cfg.sim_time_secs = 20_000.0;
        cfg.num_clients = 100; // the paper's population; 40 would underload
    });
    assert!(
        m.downlink_utilization > 0.9,
        "expected a saturated downlink, got {}",
        m.downlink_utilization
    );
}

#[test]
fn validity_bits_are_a_subset_of_total_uplink() {
    for scheme in [Scheme::SimpleChecking, Scheme::Afw, Scheme::Aaw] {
        let m = metrics(scheme, |cfg| cfg.p_disconnect = 0.3);
        assert!(m.uplink_validity_bits <= m.uplink_total_bits, "{scheme:?}");
        assert!(
            m.uplink_validity_bits > 0.0,
            "{scheme:?} sent no validity traffic"
        );
    }
}

#[test]
fn report_counts_match_broadcast_periods() {
    let m = metrics(Scheme::Aaw, |_| {});
    let reports = m.server.window_reports + m.server.enlarged_reports + m.server.bs_reports;
    // One report per period; the first fires at t = L.
    let periods = (8_000.0 / 20.0) as u64;
    assert_eq!(reports, periods);
}

#[test]
fn disconnections_reported_consistently() {
    let m = metrics(Scheme::Bs, |cfg| cfg.p_disconnect = 0.5);
    assert!(m.disconnections > 0);
    // Every disconnection follows a completed query.
    assert!(m.disconnections <= m.queries_answered);
}

#[test]
fn hit_ratio_is_consistent_with_counts() {
    let m = metrics(Scheme::SimpleChecking, |cfg| {
        cfg.workload = Workload::hotcold();
    });
    let expect = m.item_hits as f64 / (m.item_hits + m.item_misses) as f64;
    assert!((m.hit_ratio - expect).abs() < 1e-12);
}

#[test]
fn bs_report_bits_match_formula() {
    let m = metrics(Scheme::Bs, |_| {});
    // Every report is 2N + bT*ceil(log2 N) + header bits.
    let n: f64 = 2_000.0;
    let per_report = 2.0 * n + 48.0 * 11.0 + 64.0;
    let reports = m.server.bs_reports as f64;
    // The final report's transmission may still be in flight at the
    // horizon, so allow exactly one report of slack.
    assert!(
        (m.downlink_report_bits - reports * per_report).abs() <= per_report + 1.0,
        "report bits {} vs expected {}",
        m.downlink_report_bits,
        reports * per_report
    );
}

#[test]
fn zero_disconnection_means_no_validity_traffic() {
    for scheme in [Scheme::SimpleChecking, Scheme::Afw, Scheme::Aaw] {
        let m = metrics(scheme, |cfg| cfg.p_disconnect = 0.0);
        assert_eq!(m.uplink_validity_bits, 0.0, "{scheme:?}");
        assert_eq!(m.disconnections, 0, "{scheme:?}");
        assert_eq!(m.clients.limbo_episodes, 0, "{scheme:?}");
    }
}
