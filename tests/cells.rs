//! The cross-cell equivalence battery: the multi-cell topology must be
//! a strict *extension* of the single-cell simulator, pinned three ways.
//!
//! 1. **Inertness** — `CellTopology { cells: 1, .. }` is the legacy
//!    engine, bit for bit, whatever the (inert) mobility knobs say.
//! 2. **Handoff ≡ disconnection** — with zero cross-cell update skew, a
//!    roamer that arrives in a new cell is observationally a client
//!    that dozed in place for the same blackout: the paired runs
//!    `p_roam = 1` vs `p_roam = 0` must agree on every metric (both
//!    arms of the roam coin consume the same draws by construction).
//! 3. **Thread invariance** — the per-cell fan-out and the per-cell
//!    `BsIndex::build_sharded` must not care that cell membership moves
//!    between ticks: sharded runs reproduce serial runs exactly.

use mobicache::{run, CellTopology, RunOptions, Scheme, SimConfig};
use proptest::prelude::*;

fn short_cfg(scheme: Scheme) -> SimConfig {
    SimConfig::paper_default()
        .with_scheme(scheme)
        .with_sim_time(4_000.0)
        .with_db_size(1_000)
        .with_num_clients(20)
}

fn metrics_debug(cfg: &SimConfig) -> String {
    let result = run(cfg, RunOptions::default()).expect("valid config");
    format!("{:?}", result.metrics)
}

/// A single-cell topology is the legacy simulator, bit for bit — the
/// mobility knobs are inert at one cell (no RNG streams are created, no
/// handoff is ever scheduled), so even nonsensical values must not move
/// a single byte of the `Metrics` rendering.
#[test]
fn one_cell_is_bit_identical_to_legacy_for_every_scheme() {
    let inert = CellTopology {
        cells: 1,
        mean_residency_secs: -3.0, // never validated, never sampled
        handoff_secs: 0.0,
        p_roam: 42.0,
    };
    for scheme in Scheme::ALL {
        let legacy = short_cfg(scheme);
        let one_cell = short_cfg(scheme).with_cells(inert);
        assert_eq!(
            metrics_debug(&legacy),
            metrics_debug(&one_cell),
            "{scheme:?}: cells=1 diverged from the legacy path"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The inertness pin, randomized: any knob values at `cells: 1`,
    /// any thread count — still the legacy run, bit for bit.
    #[test]
    fn one_cell_inertness_over_random_knobs_and_threads(
        mean_residency_secs in -10.0f64..10_000.0,
        handoff_secs in -1.0f64..500.0,
        p_roam in -1.0f64..2.0,
        threads in 0u32..6,
    ) {
        let cfg = short_cfg(Scheme::Aaw).with_threads(threads);
        let one_cell = cfg.clone().with_cells(CellTopology {
            cells: 1,
            mean_residency_secs,
            handoff_secs,
            p_roam,
        });
        prop_assert_eq!(metrics_debug(&cfg), metrics_debug(&one_cell));
    }
}

/// The handoff ≡ disconnection pin. One client, two cells, zero
/// cross-cell update skew (the only update model there is: a single
/// transaction stream applied to every server at the same instant).
/// Two runs differ in exactly one knob: `p_roam = 1` (every handoff
/// roams to the other cell) vs `p_roam = 0` (every handoff re-associates
/// in place — a pure disconnection of the same blackout). Both arms of
/// the roam coin consume one draw and the two-cell destination needs no
/// extra draw, so the RNG schedules are identical; everything the client
/// and the (summed) servers can observe must then agree — per scheme,
/// including the AFW/AAW long-disconnection recovery the roamer's
/// meaningless `Tlb` exercises.
#[test]
fn handoff_equals_same_length_disconnection_under_zero_skew() {
    for scheme in Scheme::ALL {
        let mut base = SimConfig::paper_default()
            .with_scheme(scheme)
            .with_sim_time(4_000.0)
            .with_db_size(1_000)
            .with_num_clients(1);
        base.p_disconnect = 0.0; // mobility is the only offline source
        let topo = |p_roam: f64| CellTopology {
            cells: 2,
            mean_residency_secs: 400.0,
            handoff_secs: 30.0,
            p_roam,
        };
        let mut roam = run(&base.clone().with_cells(topo(1.0)), RunOptions::default())
            .expect("valid config")
            .metrics;
        let mut stay = run(&base.clone().with_cells(topo(0.0)), RunOptions::default())
            .expect("valid config")
            .metrics;
        assert!(
            roam.mobility.handoffs > 0,
            "{scheme:?}: config must exercise handoffs"
        );
        // The one place where the channel *partition* (not the traffic)
        // leaks into a metric: busy time accumulates per channel, and
        // the roamer splits the same transmissions across two downlink
        // groups where the stayer concentrates them on one. The sums
        // agree to an ulp — everything else must agree to the bit.
        let ulps = 1e-12 * (1.0 + stay.downlink_utilization);
        assert!(
            (roam.downlink_utilization - stay.downlink_utilization).abs() <= ulps,
            "{scheme:?}: utilization beyond rounding: {} vs {}",
            roam.downlink_utilization,
            stay.downlink_utilization
        );
        roam.downlink_utilization = 0.0;
        stay.downlink_utilization = 0.0;
        assert_eq!(
            format!("{roam:?}"),
            format!("{stay:?}"),
            "{scheme:?}: a roam diverged from a stay-in-place blackout"
        );
    }
}

/// The roamer's recovery runs through the real machinery: AFW/AAW
/// clients re-announce themselves with a `Tlb` uplink on every arrival,
/// and a blackout longer than the report window forces the full
/// long-disconnection path (BS trigger / enlarged report fallback).
#[test]
fn roamers_reannounce_and_recover_via_the_adaptive_paths() {
    for scheme in [Scheme::Afw, Scheme::Aaw] {
        let mut cfg = SimConfig::paper_default()
            .with_scheme(scheme)
            .with_sim_time(4_000.0)
            .with_db_size(1_000)
            .with_num_clients(10);
        cfg.p_disconnect = 0.0;
        // Longer than the w·L window: every arrival is a long
        // disconnection from the destination cell's point of view.
        let long_blackout = cfg.window_secs() + 3.0 * cfg.broadcast_period_secs;
        cfg = cfg.with_cells(CellTopology {
            cells: 3,
            mean_residency_secs: 300.0,
            handoff_secs: long_blackout,
            p_roam: 1.0,
        });
        let m = run(&cfg, RunOptions::new().check_consistency(true))
            .expect("valid config")
            .metrics;
        assert!(m.mobility.handoffs > 0, "{scheme:?}: no handoffs");
        assert!(
            m.server.tlbs_received > 0,
            "{scheme:?}: roamers must re-announce with a Tlb"
        );
        assert!(
            m.queries_answered > 0,
            "{scheme:?}: roamers starved after handoff"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Sharded ≡ serial under migration: cell membership moving between
    /// ticks must not break the disjoint-range shard claims of the
    /// per-cell fan-out — nor the per-cell `BsIndex::build_sharded`
    /// (`Scheme::Bs` is always in the sample). The ground-truth oracle
    /// rides along on the serial run: migration must never produce a
    /// stale read either.
    #[test]
    fn sharded_equals_serial_under_migration(
        cells in 2u32..6,
        mean_residency_secs in 60.0f64..1_500.0,
        handoff_secs in 1.0f64..120.0,
        p_roam in 0.1f64..1.0,
        p_disconnect in 0.0f64..0.4,
        threads in 2u32..8,
        scheme_pick in 0usize..Scheme::ALL.len(),
    ) {
        let topo = CellTopology { cells, mean_residency_secs, handoff_secs, p_roam };
        for scheme in [Scheme::Bs, Scheme::ALL[scheme_pick]] {
            let mut cfg = short_cfg(scheme).with_cells(topo);
            cfg.p_disconnect = p_disconnect;
            let serial = run(&cfg, RunOptions::new().check_consistency(true))
                .unwrap_or_else(|e| panic!("{scheme:?}: {e}"));
            let sharded = run(&cfg.clone().with_threads(threads), RunOptions::default())
                .unwrap_or_else(|e| panic!("{scheme:?}: {e}"));
            prop_assert_eq!(
                format!("{:?}", serial.metrics),
                format!("{:?}", sharded.metrics),
                "{:?} diverged at threads={} cells={}", scheme, threads, cells
            );
        }
    }
}

/// Handoff bookkeeping coheres: every counted handoff put one blackout
/// on the books, deferrals happen exactly when traffic is in flight,
/// and a multi-cell run still answers queries under the oracle.
#[test]
fn handoff_counters_cohere_under_load() {
    let mut cfg = short_cfg(Scheme::Aaw).with_cells(CellTopology {
        cells: 4,
        mean_residency_secs: 250.0,
        handoff_secs: 15.0,
        p_roam: 0.7,
    });
    cfg.p_disconnect = 0.3;
    let m = run(&cfg, RunOptions::new().check_consistency(true))
        .expect("valid config")
        .metrics;
    assert!(m.mobility.handoffs > 0, "no handoffs at 250 s residency");
    assert!(
        m.mobility.handoffs_deferred > 0,
        "a 0.3 doze probability must collide with some residency expiry"
    );
    assert!(m.queries_answered > 0);
}
