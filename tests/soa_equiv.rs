//! Struct-of-arrays equivalence: the columnar `ClientPop` engine must be
//! observationally identical to the per-client-struct engine it
//! replaced. The fixed-config half of that claim is pinned by
//! `tests/determinism.rs` — its GOLDEN digests were captured on the old
//! `Vec<Client>` engine and still hold. This suite pins the rest of the
//! space: over *randomized* configurations (population size, database
//! size, seed, horizon) and every scheme, the metrics must not depend on
//! how the columns are cut into shards — serial, any worker count, any
//! work-thinning knob — and must reproduce run-to-run.

use mobicache::{run, RunOptions, Scheme, SimConfig};
use proptest::prelude::*;

fn metrics_repr(cfg: &SimConfig) -> String {
    let result = run(cfg, RunOptions::default()).expect("valid config");
    format!("{:?}", result.metrics)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every scheme, random config: threads=1 ≡ threads=k ≡ auto, and a
    /// repeat run reproduces the serial metrics byte for byte.
    #[test]
    fn columnar_metrics_are_shard_invariant_for_every_scheme(
        num_clients in 1u32..40,
        db_size in 50u32..400,
        seed in any::<u64>(),
        threads in 2u32..6,
        min_shard in prop_oneof![Just(1u32), Just(4), Just(1_000)],
    ) {
        for scheme in Scheme::ALL {
            let mut cfg = SimConfig::paper_default().with_scheme(scheme);
            cfg.sim_time_secs = 800.0;
            cfg.db_size = db_size;
            cfg.num_clients = num_clients;
            cfg.seed = seed;
            let serial = metrics_repr(&cfg.clone().with_threads(1));
            prop_assert_eq!(
                &serial,
                &metrics_repr(&cfg.clone().with_threads(1)),
                "{:?}: run-to-run nondeterminism", scheme
            );
            let sharded = cfg
                .clone()
                .with_threads(threads)
                .with_pool_min_shard_clients(min_shard);
            prop_assert_eq!(
                &serial,
                &metrics_repr(&sharded),
                "{:?}: serial vs threads={} min_shard={}", scheme, threads, min_shard
            );
            prop_assert_eq!(
                &serial,
                &metrics_repr(&cfg.clone().with_threads(0)),
                "{:?}: serial vs auto threads", scheme
            );
        }
    }
}
