//! Qualitative reproduction checks: the orderings and crossovers of the
//! paper's figures must hold on reduced-horizon runs. These are the
//! smoke-level versions of the full campaign in EXPERIMENTS.md.

use mobicache::{run, Metrics, RunOptions, Scheme, SimConfig, Workload};

fn sim(cfg: &SimConfig) -> Metrics {
    run(cfg, RunOptions::default())
        .expect("valid config")
        .metrics
}

fn fig5_base() -> SimConfig {
    let mut cfg = SimConfig::paper_default().with_workload(Workload::uniform());
    cfg.p_disconnect = 0.1;
    cfg.mean_disconnect_secs = 4_000.0;
    cfg.cache_fraction = 0.02;
    cfg.sim_time_secs = 20_000.0;
    cfg
}

/// Figure 5: at a large database, BS throughput collapses below every
/// other scheme while SC/AAW/AFW stay close to their small-database
/// levels.
#[test]
fn fig5_bs_collapses_with_database_size() {
    let mut small = fig5_base();
    small.db_size = 1_000;
    let mut large = fig5_base();
    large.db_size = 80_000;

    let bs_small = sim(&small.clone().with_scheme(Scheme::Bs)).queries_answered;
    let bs_large = sim(&large.clone().with_scheme(Scheme::Bs)).queries_answered;
    assert!(
        (bs_large as f64) < 0.5 * bs_small as f64,
        "BS must collapse: {bs_small} -> {bs_large}"
    );

    for scheme in [Scheme::Aaw, Scheme::SimpleChecking] {
        let q_small = sim(&small.clone().with_scheme(scheme)).queries_answered;
        let q_large = sim(&large.clone().with_scheme(scheme)).queries_answered;
        assert!(
            (q_large as f64) > 0.9 * q_small as f64,
            "{scheme:?} should stay flat: {q_small} -> {q_large}"
        );
        assert!(q_large > 2 * bs_large, "{scheme:?} must beat BS at N=80000");
    }
}

/// Figure 6: validity-uplink ordering at every database size —
/// checking >> adaptive > BS = 0 — and checking grows with N.
#[test]
fn fig6_validity_uplink_ordering() {
    for db in [1_000u32, 40_000] {
        let mut base = fig5_base();
        base.db_size = db;
        let sc = sim(&base.clone().with_scheme(Scheme::SimpleChecking));
        let aaw = sim(&base.clone().with_scheme(Scheme::Aaw));
        let afw = sim(&base.clone().with_scheme(Scheme::Afw));
        let bs = sim(&base.clone().with_scheme(Scheme::Bs));
        assert_eq!(bs.uplink_validity_bits_per_query, 0.0);
        assert!(
            sc.uplink_validity_bits_per_query > 3.0 * aaw.uplink_validity_bits_per_query,
            "N={db}: sc {} vs aaw {}",
            sc.uplink_validity_bits_per_query,
            aaw.uplink_validity_bits_per_query
        );
        assert!(aaw.uplink_validity_bits_per_query > 0.0);
        assert!(afw.uplink_validity_bits_per_query > 0.0);
    }
    // Growth with N for the checking scheme.
    let mut small = fig5_base();
    small.db_size = 1_000;
    let mut large = fig5_base();
    large.db_size = 40_000;
    let sc_small = sim(&small.with_scheme(Scheme::SimpleChecking));
    let sc_large = sim(&large.with_scheme(Scheme::SimpleChecking));
    assert!(
        sc_large.uplink_validity_bits_per_query > sc_small.uplink_validity_bits_per_query,
        "checking cost must grow with N: {} -> {}",
        sc_small.uplink_validity_bits_per_query,
        sc_large.uplink_validity_bits_per_query
    );
}

/// Figures 7/8: raising the disconnection probability raises validity
/// uplink for the uplinking schemes and never helps throughput.
#[test]
fn fig7_8_disconnection_probability_effects() {
    let mut base = SimConfig::paper_default().with_workload(Workload::uniform());
    base.db_size = 10_000;
    base.mean_disconnect_secs = 400.0;
    base.sim_time_secs = 20_000.0;
    for scheme in [Scheme::SimpleChecking, Scheme::Aaw, Scheme::Afw] {
        let mut lo = base.clone().with_scheme(scheme);
        lo.p_disconnect = 0.1;
        let mut hi = base.clone().with_scheme(scheme);
        hi.p_disconnect = 0.8;
        let m_lo = sim(&lo);
        let m_hi = sim(&hi);
        assert!(
            m_hi.uplink_validity_bits_per_query > m_lo.uplink_validity_bits_per_query,
            "{scheme:?}: validity cost must rise with p"
        );
    }
    // BS is insensitive: identical zero uplink at both ends.
    let mut bs_hi = base.clone().with_scheme(Scheme::Bs);
    bs_hi.p_disconnect = 0.8;
    assert_eq!(sim(&bs_hi).uplink_validity_bits_per_query, 0.0);
}

/// Figure 11: under HOTCOLD at a mid-size database the ordering is
/// simple checking >= AAW >= AFW > BS.
#[test]
fn fig11_hotcold_ordering() {
    let mut base = SimConfig::paper_default().with_workload(Workload::hotcold());
    base.db_size = 20_000;
    base.mean_disconnect_secs = 400.0;
    base.p_disconnect = 0.1;
    base.sim_time_secs = 40_000.0; // long enough for cache warm-up
    let sc = sim(&base.clone().with_scheme(Scheme::SimpleChecking)).queries_answered;
    let aaw = sim(&base.clone().with_scheme(Scheme::Aaw)).queries_answered;
    let afw = sim(&base.clone().with_scheme(Scheme::Afw)).queries_answered;
    let bs = sim(&base.clone().with_scheme(Scheme::Bs)).queries_answered;
    assert!(sc >= aaw, "sc {sc} vs aaw {aaw}");
    assert!(aaw >= afw, "aaw {aaw} vs afw {afw}");
    assert!(afw > bs, "afw {afw} vs bs {bs}");
}

/// Figures 15/16: at a starved uplink the adaptive schemes at least
/// match simple checking; at full uplink simple checking wins.
#[test]
fn fig15_16_asymmetric_crossover() {
    let mut base = SimConfig::paper_default().with_workload(Workload::hotcold());
    base.db_size = 5_000;
    base.mean_disconnect_secs = 4_000.0;
    base.sim_time_secs = 30_000.0;

    let mut starved = base.clone();
    starved.uplink_bps = 100.0;
    let aaw_lo = sim(&starved.clone().with_scheme(Scheme::Aaw)).queries_answered;
    let sc_lo = sim(&starved.with_scheme(Scheme::SimpleChecking)).queries_answered;
    assert!(
        aaw_lo >= sc_lo,
        "at 100 bps uplink AAW must not trail checking: {aaw_lo} vs {sc_lo}"
    );

    let mut full = base;
    full.uplink_bps = 10_000.0;
    let aaw_hi = sim(&full.clone().with_scheme(Scheme::Aaw)).queries_answered;
    let sc_hi = sim(&full.with_scheme(Scheme::SimpleChecking)).queries_answered;
    assert!(
        sc_hi >= aaw_hi,
        "at full uplink checking leads: {sc_hi} vs {aaw_hi}"
    );
}

/// §3.2's motivation: AAW prefers enlarged windows over full BS
/// broadcasts when disconnections are only moderately long, saving
/// downlink bandwidth relative to AFW.
#[test]
fn aaw_broadcasts_less_report_traffic_than_afw() {
    let mut base = SimConfig::paper_default().with_workload(Workload::uniform());
    base.db_size = 10_000;
    base.p_disconnect = 0.3;
    base.mean_disconnect_secs = 2_000.0;
    base.sim_time_secs = 20_000.0;
    let aaw = sim(&base.clone().with_scheme(Scheme::Aaw));
    let afw = sim(&base.clone().with_scheme(Scheme::Afw));
    assert!(
        aaw.server.enlarged_reports > 0,
        "AAW must use enlarged windows"
    );
    assert!(
        aaw.server.bs_reports < afw.server.bs_reports,
        "AAW should need fewer BS broadcasts: {} vs {}",
        aaw.server.bs_reports,
        afw.server.bs_reports
    );
    assert!(
        aaw.downlink_report_bits < afw.downlink_report_bits,
        "AAW report traffic {} must undercut AFW {}",
        aaw.downlink_report_bits,
        afw.downlink_report_bits
    );
}

/// The window ablation's headline: plain TS is highly window-sensitive,
/// the adaptive scheme is not.
#[test]
fn window_sensitivity_ts_vs_adaptive() {
    let mut base = SimConfig::paper_default().with_workload(Workload::hotcold());
    base.db_size = 5_000;
    base.p_disconnect = 0.3;
    base.mean_disconnect_secs = 1_000.0;
    base.sim_time_secs = 30_000.0;

    let drops = |scheme: Scheme, w: u32| {
        let mut cfg = base.clone().with_scheme(scheme);
        cfg.window_intervals = w;
        sim(&cfg).clients.full_drops
    };
    // Plain TS: a bigger window rescues many caches.
    let ts_small = drops(Scheme::TsNoCheck, 2);
    let ts_large = drops(Scheme::TsNoCheck, 100);
    assert!(
        ts_large * 2 < ts_small,
        "TS full drops should fall sharply with w: {ts_small} -> {ts_large}"
    );
    // AAW never full-drops on window size alone.
    assert_eq!(drops(Scheme::Aaw, 2), 0);
}
