//! The any-fault-schedule safety net: randomized fault plans — bursty
//! downlink loss, uplink loss, server crash schedules, arbitrary retry
//! policies — run against every scheme with the ground-truth oracle
//! asserting after every client-visible message that no valid cache
//! entry is stale. Whatever the faults do to liveness, they must never
//! touch safety.

use mobicache::{run, ChannelFaults, FaultPlan, RetryPolicy, RunOptions, Scheme, SimConfig};
use proptest::prelude::*;

fn faulty_cfg(scheme: Scheme, plan: &FaultPlan) -> SimConfig {
    let mut cfg = SimConfig::paper_default().with_scheme(scheme);
    cfg.sim_time_secs = 4_000.0;
    cfg.db_size = 1_000;
    cfg.num_clients = 20;
    cfg.faults = plan.clone();
    cfg
}

/// An aggressive but fixed plan for the deterministic sweeps.
fn hostile_plan() -> FaultPlan {
    FaultPlan {
        downlink: ChannelFaults {
            p_enter_burst: 0.15,
            mean_burst_intervals: 4.0,
            p_loss_good: 0.05,
            p_loss_bad: 0.9,
        },
        p_uplink_loss: 0.3,
        retry: RetryPolicy::default(),
        crashes: vec![800.0, 2_200.0],
        recovery_secs: 90.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary fault schedules, every scheme: the run completes, the
    /// oracle stays silent, and the fault tallies cohere with the
    /// run-level counters.
    #[test]
    fn no_stale_reads_under_arbitrary_fault_schedules(
        (p_enter, mean_burst, p_loss_good, p_loss_bad)
            in (0.0f64..0.3, 1.0f64..12.0, 0.0f64..0.25, 0.4f64..1.0),
        p_uplink_loss in prop_oneof![2 => 0.0f64..0.4, 1 => Just(0.0)],
        crash_secs in prop::collection::vec(100u32..3_800, 0..3),
        recovery_secs in 5.0f64..250.0,
        (timeout, max_retries, cap) in (1u32..4, 0u32..5, 1u32..16),
    ) {
        let plan = FaultPlan {
            downlink: ChannelFaults {
                p_enter_burst: p_enter,
                mean_burst_intervals: mean_burst,
                p_loss_good,
                p_loss_bad,
            },
            p_uplink_loss,
            retry: RetryPolicy {
                timeout_intervals: timeout,
                max_retries,
                backoff_cap_intervals: cap.max(timeout),
            },
            crashes: crash_secs.iter().map(|&s| f64::from(s)).collect(),
            recovery_secs,
        };
        for scheme in Scheme::ALL {
            let cfg = faulty_cfg(scheme, &plan);
            // The oracle panics on any stale read; reaching the horizon
            // at all is also the retry-termination proof.
            let result = run(&cfg, RunOptions::new().check_consistency(true))
                .unwrap_or_else(|e| panic!("{scheme:?}: {e}"));
            let m = &result.metrics;
            let f = m.faults;
            prop_assert!(m.queries_issued > 0, "{:?}: workload starved", scheme);
            // Loss classification covers every lost report exactly.
            prop_assert_eq!(
                f.downlink_losses_good + f.downlink_losses_burst,
                m.reports_lost,
                "{:?}", scheme
            );
            // Every scheduled crash lands inside the horizon.
            prop_assert_eq!(f.server_crashes as usize, crash_secs.len(), "{:?}", scheme);
            // Outages merge (nesting) and the last may outlive the run,
            // so recoveries can only undercount crashes.
            prop_assert!(f.recoveries <= f.server_crashes, "{:?}", scheme);
            if f.recoveries > 0 {
                prop_assert!(f.mean_recovery_latency_secs > 0.0, "{:?}", scheme);
            } else {
                prop_assert_eq!(f.mean_recovery_latency_secs, 0.0, "{:?}", scheme);
            }
            if !plan.is_active() {
                prop_assert_eq!(f, mobicache::FaultMetrics::default(), "{:?}", scheme);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Fault coins are drawn in the serial phases on dedicated streams,
    /// so any random plan must produce bit-identical metrics at any
    /// thread count.
    #[test]
    fn random_fault_plans_are_thread_invariant(
        (p_enter, p_loss_bad, p_uplink_loss) in (0.0f64..0.3, 0.4f64..1.0, 0.0f64..0.4),
        crash_secs in prop::collection::vec(100u32..3_800, 0..3),
        threads in 2u32..8,
    ) {
        let plan = FaultPlan {
            downlink: ChannelFaults {
                p_enter_burst: p_enter,
                mean_burst_intervals: 5.0,
                p_loss_good: 0.03,
                p_loss_bad,
            },
            p_uplink_loss,
            crashes: crash_secs.iter().map(|&s| f64::from(s)).collect(),
            recovery_secs: 60.0,
            retry: RetryPolicy::default(),
        };
        let cfg = faulty_cfg(Scheme::Aaw, &plan);
        let serial = run(&cfg, RunOptions::default()).unwrap();
        let sharded = run(&cfg.clone().with_threads(threads), RunOptions::default()).unwrap();
        prop_assert_eq!(
            format!("{:?}", serial.metrics),
            format!("{:?}", sharded.metrics),
            "fault coins diverged at threads={}", threads
        );
    }
}

/// Every scheme survives the fixed hostile plan with the oracle armed —
/// the deterministic anchor behind the randomized sweep above.
#[test]
fn all_schemes_stay_consistent_under_hostile_plan() {
    let plan = hostile_plan();
    for scheme in Scheme::ALL {
        let result = run(
            &faulty_cfg(scheme, &plan),
            RunOptions::new().check_consistency(true),
        )
        .unwrap_or_else(|e| panic!("{scheme:?}: {e}"));
        let m = &result.metrics;
        assert!(m.queries_answered > 0, "{scheme:?} starved under faults");
        assert!(m.faults.downlink_losses_burst > 0, "{scheme:?}");
        assert_eq!(m.faults.server_crashes, 2, "{scheme:?}");
    }
}

/// Graceful degradation: when the backoff budget runs out the client
/// drops its whole cache (the paper's reconnection fallback) instead of
/// retrying forever — and that, too, is consistent.
#[test]
fn exhausted_backoff_degrades_to_full_drop() {
    let mut plan = hostile_plan();
    plan.p_uplink_loss = 0.6;
    plan.retry = RetryPolicy {
        timeout_intervals: 1,
        max_retries: 1,
        backoff_cap_intervals: 2,
    };
    let mut cfg = faulty_cfg(Scheme::Afw, &plan);
    cfg.p_disconnect = 0.4;
    let result = run(&cfg, RunOptions::new().check_consistency(true)).expect("valid config");
    let f = result.metrics.faults;
    assert!(f.retries_sent > 0, "lost Tlbs must be retried first");
    assert!(
        f.backoff_exhaustions > 0,
        "a 60% lossy uplink must exhaust a 1-retry budget somewhere"
    );
    assert!(result.metrics.clients.full_drops > 0);
}

/// The empty plan is the identity: explicitly attaching `FaultPlan::none()`
/// must reproduce the no-plan run bit for bit.
#[test]
fn empty_plan_is_bit_identical_to_no_plan() {
    let base = SimConfig::paper_default()
        .with_scheme(Scheme::Aaw)
        .with_sim_time(4_000.0)
        .with_db_size(1_000)
        .with_num_clients(20);
    let mut with_plan = base.clone();
    with_plan.faults = FaultPlan::none();
    let a = run(&base, RunOptions::default()).unwrap();
    let b = run(&with_plan, RunOptions::default()).unwrap();
    assert_eq!(format!("{:?}", a.metrics), format!("{:?}", b.metrics));
}
