//! Golden-digest determinism pin: every scheme's full `Metrics` must be
//! bit-identical run-to-run *and* across refactors of the report
//! pipeline.
//!
//! `Metrics` is a plain scalar struct with a derived `Debug`
//! implementation, so the `Debug` rendering is a faithful, stable
//! serialization of every counter and statistic a run produces. We hash
//! that rendering with FNV-1a and compare against digests captured at
//! the commit that introduced this test. Any change to simulation
//! behaviour — event ordering, RNG consumption, report contents, cache
//! decisions — shows up here as a digest mismatch.
//!
//! If a digest changes *intentionally* (a new metric field, a modelling
//! fix), rerun with `--nocapture`, copy the printed table, and justify
//! the change in the commit message. Perf-only refactors must NOT move
//! these digests: that is the point of the test.

use mobicache::{run, RunOptions};
use mobicache_model::{CellTopology, Scheme, SimConfig};
use proptest::prelude::*;

/// FNV-1a, 64-bit: tiny, dependency-free and stable across platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Worker threads for the pinned runs, from `MOBICACHE_THREADS`
/// (default 1). CI runs this suite twice — threads=1 and threads=4 —
/// and the GOLDEN table must hold for both: the sharded fan-out is
/// bit-identical by contract, so the digests do not depend on it.
fn configured_threads() -> u32 {
    std::env::var("MOBICACHE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn short_cfg(scheme: Scheme) -> SimConfig {
    let mut cfg = SimConfig::paper_default().with_scheme(scheme);
    cfg.sim_time_secs = 4_000.0;
    cfg.db_size = 1_000;
    cfg.num_clients = 20;
    cfg.threads = configured_threads();
    cfg
}

fn digest_for(scheme: Scheme) -> u64 {
    let result = run(&short_cfg(scheme), RunOptions::default()).expect("valid config");
    fnv1a(format!("{:?}", result.metrics).as_bytes())
}

fn digest_with_threads(scheme: Scheme, threads: u32) -> u64 {
    let cfg = short_cfg(scheme).with_threads(threads);
    let result = run(&cfg, RunOptions::default()).expect("valid config");
    fnv1a(format!("{:?}", result.metrics).as_bytes())
}

/// Digests of `{metrics:?}` per scheme at the pinned config
/// (seed = paper default, 4 000 s horizon, N = 1 000, 20 clients).
const GOLDEN: &[(Scheme, u64)] = &[
    (Scheme::TsNoCheck, 0xf018_ec90_613a_4b2c),
    (Scheme::SimpleChecking, 0x9069_7022_7c90_e968),
    (Scheme::Gcore, 0xa20f_2dd2_9208_1c34),
    (Scheme::At, 0xdf87_7c3f_e68d_664a),
    (Scheme::Bs, 0xeb8c_88d5_afb8_3795),
    (Scheme::Sig, 0xc2e5_3299_c959_f0cb),
    (Scheme::Afw, 0xaee1_0c7b_cbc7_9e9f),
    (Scheme::Aaw, 0x2043_4e6a_3754_e199),
];

#[test]
fn golden_digest_per_scheme() {
    let mut mismatches = Vec::new();
    for &(scheme, expected) in GOLDEN {
        let got = digest_for(scheme);
        println!("    (Scheme::{scheme:?}, {got:#018x}),");
        if got != expected {
            mismatches.push((scheme, expected, got));
        }
    }
    assert!(
        mismatches.is_empty(),
        "metrics digests moved (behaviour changed): {mismatches:#x?}"
    );
}

#[test]
fn golden_table_covers_every_scheme() {
    for scheme in Scheme::ALL {
        assert!(
            GOLDEN.iter().any(|&(s, _)| s == scheme),
            "{scheme:?} missing from GOLDEN"
        );
    }
    assert_eq!(GOLDEN.len(), Scheme::ALL.len());
}

/// The digest itself must be reproducible: two runs, one digest.
#[test]
fn digest_is_stable_across_runs() {
    assert_eq!(digest_for(Scheme::Aaw), digest_for(Scheme::Aaw));
}

/// The multi-threading contract, pinned per scheme: sharding the tick
/// fan-out across the maximum sensible worker count produces the exact
/// digest of the fully serial engine.
#[test]
fn sharded_digest_equals_serial_digest_per_scheme() {
    let max = std::thread::available_parallelism()
        .map_or(4, |n| n.get() as u32)
        .max(4);
    for scheme in Scheme::ALL {
        assert_eq!(
            digest_with_threads(scheme, 1),
            digest_with_threads(scheme, max),
            "{scheme:?} diverged between threads=1 and threads={max}"
        );
    }
}

/// The full thread-count matrix against the GOLDEN table: every scheme,
/// at every thread count worth worrying about — serial, even and odd
/// shard geometries, counts that do not divide the 20-client population
/// (3, 7), auto (0), and more threads than clients (33, a degenerate
/// single-client-per-shard split). The persistent pool must hit the
/// pinned digest at every point.
#[test]
fn golden_digest_across_thread_matrix() {
    let mut mismatches = Vec::new();
    for &(scheme, expected) in GOLDEN {
        for threads in [1u32, 2, 3, 7, 0, 33] {
            let got = digest_with_threads(scheme, threads);
            if got != expected {
                mismatches.push((scheme, threads, expected, got));
            }
        }
    }
    assert!(
        mismatches.is_empty(),
        "digests moved under sharding (scheme, threads, expected, got): {mismatches:#x?}"
    );
}

/// Fault injection draws every coin in the serial tick phases on
/// per-client streams, so a high-fault run must be bit-identical across
/// thread counts too — CI runs this leg at `MOBICACHE_THREADS` 1 and 4.
#[test]
fn fault_injection_digests_are_thread_invariant() {
    use mobicache_model::{ChannelFaults, FaultPlan};
    let plan = FaultPlan {
        downlink: ChannelFaults {
            p_enter_burst: 0.15,
            mean_burst_intervals: 4.0,
            p_loss_good: 0.05,
            p_loss_bad: 0.9,
        },
        p_uplink_loss: 0.3,
        crashes: vec![800.0, 2_200.0],
        recovery_secs: 90.0,
        ..FaultPlan::none()
    };
    for scheme in Scheme::ALL {
        let mut cfg = short_cfg(scheme);
        cfg.faults = plan.clone();
        cfg.p_disconnect = 0.3;
        let digest_at = |threads: u32| {
            let result = run(&cfg.clone().with_threads(threads), RunOptions::default())
                .expect("valid config");
            fnv1a(format!("{:?}", result.metrics).as_bytes())
        };
        let serial = digest_at(1);
        for threads in [2, 4, 0] {
            assert_eq!(
                serial,
                digest_at(threads),
                "{scheme:?} fault digests diverged between threads=1 and threads={threads}"
            );
        }
    }
}

/// The determinism contract at population scale: a 100 000-client run on
/// the struct-of-arrays client core must produce bit-identical metrics
/// whether the column scans run serial or sharded across the pool.
///
/// `#[ignore]`d because it needs a release build to finish promptly;
/// `scripts/ci.sh` runs it explicitly (release, under `timeout`) as the
/// population-scale smoke leg.
#[test]
#[ignore = "population-scale leg: run in release via scripts/ci.sh"]
fn hundred_k_clients_digest_is_thread_invariant() {
    let mut cfg = SimConfig::paper_default().with_scheme(Scheme::Aaw);
    cfg.sim_time_secs = 400.0;
    cfg.db_size = 1_000;
    cfg.num_clients = 100_000;
    let digest_at = |threads: u32| {
        let result =
            run(&cfg.clone().with_threads(threads), RunOptions::default()).expect("valid config");
        fnv1a(format!("{:?}", result.metrics).as_bytes())
    };
    let serial = digest_at(1);
    assert_eq!(
        serial,
        digest_at(4),
        "100k-client AAW digest diverged between threads=1 and threads=4"
    );
}

/// The pinned multi-cell mobility topology behind the digests below:
/// handoffs every ~300 s against a 20 s broadcast period, a 12 s
/// blackout, and a roam coin that stays in place one time in five.
fn mobile_cfg(scheme: Scheme, cells: u32, faults: bool) -> SimConfig {
    let mut cfg = short_cfg(scheme).with_cells(CellTopology {
        cells,
        mean_residency_secs: 300.0,
        handoff_secs: 12.0,
        p_roam: 0.8,
    });
    cfg.p_disconnect = 0.2;
    if faults {
        use mobicache_model::{ChannelFaults, FaultPlan};
        cfg.faults = FaultPlan {
            downlink: ChannelFaults {
                p_enter_burst: 0.15,
                mean_burst_intervals: 4.0,
                p_loss_good: 0.05,
                p_loss_bad: 0.9,
            },
            p_uplink_loss: 0.3,
            crashes: vec![800.0, 2_200.0],
            recovery_secs: 90.0,
            ..FaultPlan::none()
        };
    }
    cfg
}

/// Digests of `{metrics:?}` for the multi-cell topology:
/// (scheme, cells, faults active, digest). Pinned the same way as
/// GOLDEN — any move is a behaviour change and needs justifying.
const MULTI_CELL_GOLDEN: &[(Scheme, u32, bool, u64)] = &[
    (Scheme::Aaw, 2, false, 0x05b3_14ff_eaff_63b0),
    (Scheme::Aaw, 2, true, 0x0871_6ec8_4d1a_df72),
    (Scheme::Aaw, 5, false, 0xe238_1de7_71fe_49fd),
    (Scheme::Aaw, 5, true, 0x8248_c594_5fb4_5c74),
    (Scheme::Bs, 2, false, 0xe72c_aa9f_f6ed_c537),
    (Scheme::Bs, 2, true, 0x1a28_7192_c3cb_4b27),
    (Scheme::Bs, 5, false, 0x9997_f3e4_93df_2bdd),
    (Scheme::Bs, 5, true, 0xae74_ebee_04e7_593b),
];

/// The determinism contract extended to the cell topology: the pinned
/// {2, 5}-cell runs — faults off and on — hit their golden digests at
/// every thread count (serial, 4 workers, auto). Mobility draws ride
/// dedicated per-client streams and handoffs are scheduled through the
/// wheel, so migration must not introduce any thread sensitivity.
#[test]
fn multi_cell_golden_digest_across_thread_matrix() {
    let mut mismatches = Vec::new();
    for &(scheme, cells, faults, expected) in MULTI_CELL_GOLDEN {
        let cfg = mobile_cfg(scheme, cells, faults);
        for threads in [1u32, 4, 0] {
            let result = run(&cfg.clone().with_threads(threads), RunOptions::default())
                .expect("valid config");
            let got = fnv1a(format!("{:?}", result.metrics).as_bytes());
            if got != expected {
                println!("    (Scheme::{scheme:?}, {cells}, {faults}, {got:#018x}),");
                mismatches.push((scheme, cells, faults, threads, expected, got));
            }
        }
    }
    assert!(
        mismatches.is_empty(),
        "multi-cell digests moved (scheme, cells, faults, threads, expected, got): \
         {mismatches:#x?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Random mobility plans are thread-invariant, mirroring the random
    /// fault-plan pin in `tests/faults.rs`: whatever the topology and
    /// residency process do to the event schedule, sharding the fan-out
    /// only trades wall time.
    #[test]
    fn random_mobility_plans_are_thread_invariant(
        cells in 2u32..7,
        mean_residency_secs in 80.0f64..2_000.0,
        handoff_secs in 1.0f64..90.0,
        p_roam in 0.0f64..1.0,
        p_disconnect in 0.0f64..0.4,
        threads in 2u32..8,
    ) {
        let mut cfg = short_cfg(Scheme::Aaw).with_threads(1).with_cells(CellTopology {
            cells,
            mean_residency_secs,
            handoff_secs,
            p_roam,
        });
        cfg.p_disconnect = p_disconnect;
        let serial = run(&cfg, RunOptions::default()).unwrap();
        let sharded = run(&cfg.clone().with_threads(threads), RunOptions::default()).unwrap();
        prop_assert_eq!(
            format!("{:?}", serial.metrics),
            format!("{:?}", sharded.metrics),
            "mobility coins diverged at threads={} cells={}", threads, cells
        );
    }
}

/// The pool's work-thinning knobs only decide which phases fan out —
/// never what they compute. A knob large enough to force every phase
/// serial must reproduce the pinned digest at any thread count.
#[test]
fn pool_knobs_do_not_move_digests() {
    for &(scheme, expected) in GOLDEN {
        let cfg = short_cfg(scheme)
            .with_threads(4)
            .with_pool_min_shard_clients(1_000)
            .with_pool_min_shard_items(1 << 20);
        let result = run(&cfg, RunOptions::default()).expect("valid config");
        let got = fnv1a(format!("{:?}", result.metrics).as_bytes());
        assert_eq!(got, expected, "{scheme:?} digest moved under knob change");
    }
}
