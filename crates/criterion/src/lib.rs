//! Offline drop-in subset of the [criterion](https://bheisler.github.io/criterion.rs/)
//! benchmarking API.
//!
//! The build environment is hermetic (no crates.io access), so the real
//! criterion cannot be resolved. This crate keeps `cargo bench` and
//! `cargo build --benches` working with the same bench source text. It
//! measures wall-clock time with `std::time::Instant` and prints
//! mean/min per benchmark — no outlier analysis, no HTML reports.
//!
//! Respects the same calibration knobs the benches already set
//! (`sample_size`, `warm_up_time`, `measurement_time`).

use std::time::{Duration, Instant};

/// Top-level benchmark driver; handed to each `criterion_group!` target.
pub struct Criterion {
    /// Substring filter from the command line (first free argument).
    filter: Option<String>,
    /// `--bench` / `--test` are passed by `cargo bench`; in test mode
    /// each benchmark runs exactly once for correctness only.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => {}
                "--test" => test_mode = true,
                _ if arg.starts_with("--") => {}
                _ => filter = Some(arg),
            }
        }
        Criterion { filter, test_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Convenience for a one-off benchmark outside a group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.benchmark_group(id.clone()).run(&id, f);
        self
    }
}

/// Identifies one parameterised benchmark: `BenchmarkId::new("build", 500)`.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id labelled `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// A group of benchmarks sharing calibration settings.
pub struct BenchmarkGroup<'c> {
    parent: &'c mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent running the closure before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Target total measurement time, split across samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl ToString, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        self.run(&id, f);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.to_string();
        self.run(&id, |b| f(b, input));
        self
    }

    /// Ends the group. (Reports are printed as benchmarks run.)
    pub fn finish(&mut self) {}

    fn run<F>(&mut self, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.parent.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        if self.parent.test_mode {
            f(&mut b);
            println!("test {full} ... ok");
            return;
        }

        // Warm-up, also calibrating iterations per sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            b.iters = 1;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.iters = iters;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "{full:<40} mean {:>12} min {:>12} ({} samples x {} iters)",
            fmt_time(mean),
            fmt_time(min),
            samples.len(),
            iters
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Passed to each benchmark closure; times the hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it the calibrated number of iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

/// Re-export for bench code that imports it from criterion rather than
/// `std::hint`.
pub use std::hint::black_box;

/// Defines a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Defines the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
