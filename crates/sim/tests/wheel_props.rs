//! Property tests for the timing-wheel scheduler: whatever the op
//! interleaving, delay distribution or slot resolution, the wheel must
//! be observationally identical to the retired `BinaryHeap` scheduler —
//! same pop sequence (including same-instant FIFO ties), same peeks,
//! same clock, same counters. The golden-digest suite pins this
//! end-to-end through the engine; these tests pin it at the scheduler's
//! own API against an in-test heap reference model.

use mobicache_sim::{Scheduler, SimTime};
use proptest::prelude::*;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The pre-wheel scheduler, reduced to its observable core: a binary
/// heap ordered by `(at, seq)` with a monotone insertion counter.
struct HeapModel {
    heap: BinaryHeap<Rev>,
    now: SimTime,
    seq: u64,
    popped: u64,
    high_water: usize,
}

struct Rev {
    at: SimTime,
    seq: u64,
    tag: u32,
}

impl PartialEq for Rev {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Rev {}
impl PartialOrd for Rev {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Rev {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl HeapModel {
    fn new() -> Self {
        HeapModel {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            popped: 0,
            high_water: 0,
        }
    }
    fn schedule(&mut self, at: SimTime, tag: u32) {
        assert!(at >= self.now);
        self.heap.push(Rev {
            at,
            seq: self.seq,
            tag,
        });
        self.seq += 1;
        self.high_water = self.high_water.max(self.heap.len());
    }
    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }
    fn pop(&mut self) -> Option<(SimTime, u32)> {
        let e = self.heap.pop()?;
        self.now = e.at;
        self.popped += 1;
        Some((e.at, e.tag))
    }
}

/// Decodes a `(raw, range selector)` pair into a delay. The ranges are
/// chosen to exercise every placement path at the default 0.25 s
/// resolution: exact ties, sub-slot offsets, the leaf window, level-1/2
/// cascade crossings, and the overflow heap beyond the top window.
fn delay(raw: u32, sel: u8) -> f64 {
    match sel {
        0 => 0.0,
        1 => f64::from(raw) * 0.001,
        2 => f64::from(raw) * 0.1,
        3 => f64::from(raw) * 1_000.0,
        _ => 1.0e9 + f64::from(raw) * 1.0e8,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random interleavings of `schedule`/`schedule_in`/`schedule_batch`
    /// and `pop` across every delay range, at several resolutions: pops,
    /// peeks, clock and all counters must match the heap reference at
    /// every step, and the final drain must agree event for event.
    #[test]
    fn wheel_matches_heap_reference(
        ops in prop::collection::vec((0u8..8, 0u32..1_000, 0u8..5), 1..300),
        res_sel in 0u8..3,
    ) {
        let resolution = [0.25, 1.0, 16.0][res_sel as usize];
        let mut wheel: Scheduler<u32> = Scheduler::with_resolution(resolution);
        let mut model = HeapModel::new();
        let mut tag = 0u32;
        for &(op, raw, sel) in &ops {
            match op {
                0..=3 => {
                    let at = model.now + delay(raw, sel);
                    wheel.schedule(at, tag);
                    model.schedule(at, tag);
                    tag += 1;
                }
                4 => {
                    let d = delay(raw, sel);
                    wheel.schedule_in(d, tag);
                    model.schedule(model.now + d, tag);
                    tag += 1;
                }
                5 => {
                    // A burst with intra-batch ties and spread.
                    let n = (raw % 7) as usize;
                    let evs: Vec<(SimTime, u32)> = (0..n)
                        .map(|k| {
                            (
                                model.now + delay(raw, sel) + (k / 2) as f64 * 0.01,
                                tag + k as u32,
                            )
                        })
                        .collect();
                    wheel.schedule_batch(evs.iter().copied());
                    for &(at, v) in &evs {
                        model.schedule(at, v);
                    }
                    tag += n as u32;
                }
                _ => {
                    prop_assert_eq!(wheel.peek_time(), model.peek_time());
                    prop_assert_eq!(wheel.pop(), model.pop());
                    prop_assert_eq!(wheel.now(), model.now);
                }
            }
            prop_assert_eq!(wheel.len(), model.heap.len());
            prop_assert_eq!(wheel.events_scheduled(), model.seq);
            prop_assert_eq!(wheel.queue_high_water(), model.high_water);
        }
        loop {
            prop_assert_eq!(wheel.peek_time(), model.peek_time());
            let (a, b) = (wheel.pop(), model.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        prop_assert_eq!(wheel.events_delivered(), model.popped);
        prop_assert_eq!(wheel.now(), model.now);
    }

    /// Same-instant FIFO under pressure: every event lands on one of a
    /// handful of instants, so nearly everything is a tie and the only
    /// thing separating pops is insertion order.
    #[test]
    fn same_instant_ties_pop_in_insertion_order(
        ops in prop::collection::vec((0u8..4, 0u8..3), 1..200),
    ) {
        let mut wheel: Scheduler<u32> = Scheduler::new();
        let mut model = HeapModel::new();
        let mut tag = 0u32;
        for &(op, slot) in &ops {
            if op == 0 {
                prop_assert_eq!(wheel.pop(), model.pop());
            } else {
                // Three fixed instants per current window; `slot` picks one.
                let at = model.now + f64::from(slot) * 0.25;
                wheel.schedule(at, tag);
                model.schedule(at, tag);
                tag += 1;
            }
        }
        loop {
            let (a, b) = (wheel.pop(), model.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// Far-horizon placement: schedules drawn mostly from the coarse
    /// ranges force level-1/2/3 residence and overflow-heap spills, and
    /// draining pops everything through repeated cascades in exact
    /// `(at, seq)` order.
    #[test]
    fn far_horizon_drain_crosses_cascades_in_order(
        events in prop::collection::vec((0u32..1_000, 2u8..5), 1..150),
    ) {
        let mut wheel: Scheduler<u32> = Scheduler::new();
        let mut model = HeapModel::new();
        for (i, &(raw, sel)) in events.iter().enumerate() {
            let at = SimTime::from_secs(delay(raw, sel));
            wheel.schedule(at, i as u32);
            model.schedule(at, i as u32);
        }
        loop {
            let (a, b) = (wheel.pop(), model.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        // Far horizons must actually exercise the cascade machinery for
        // spreads beyond the leaf window.
        if events.iter().any(|&(raw, sel)| delay(raw, sel) >= 16_384.0) {
            prop_assert!(wheel.cascades() > 0);
        }
    }

    /// Burst-slot capacity release under interleaved multi-producer
    /// bursts: two event kinds — think broadcast ticks and client
    /// wake-ups — land in the *same* leaf slots, scheduled in
    /// interleaved chunks (singles for one kind, `schedule_batch` for
    /// the other, alternating). The shared slot must report the
    /// co-resident peak through `slot_high_water()`, and draining the
    /// wheel must release the burst capacity: what the wheel retains
    /// afterwards is bounded by its keep-capacity policy (32 entries a
    /// slot across 4 levels × 256 slots), not by the burst size.
    #[test]
    fn interleaved_producer_bursts_share_slots_and_release_capacity(
        burst_a in 200usize..1_500,
        burst_b in 200usize..1_500,
        slots in 1usize..8,
        chunk in 1usize..64,
        drain_mid in 0usize..200,
    ) {
        // Mirrors the wheel's private geometry; breaks loudly if the
        // keep policy or geometry is ever loosened.
        const KEEP_BOUND: usize = 32 * 256 * 4;
        let mut wheel: Scheduler<u32> = Scheduler::new();
        let slot_time = |k: usize| SimTime::from_secs((k % slots) as f64 * 0.25);
        // Interleave the producers chunk by chunk so both kinds are
        // in flight while slots fill.
        let (mut a, mut b, mut tag) = (0usize, 0usize, 0u32);
        while a < burst_a || b < burst_b {
            let take_a = chunk.min(burst_a - a);
            for k in 0..take_a {
                wheel.schedule(slot_time(a + k), tag);
                tag += 1;
            }
            a += take_a;
            let take_b = chunk.min(burst_b - b);
            let batch: Vec<(SimTime, u32)> = (0..take_b)
                .map(|k| (slot_time(b + k), tag + k as u32))
                .collect();
            wheel.schedule_batch(batch.iter().copied());
            tag += take_b as u32;
            b += take_b;
        }
        // Both kinds landed in the same leaf slots: the fullest slot
        // holds at least an even share of the *combined* burst.
        let total = burst_a + burst_b;
        prop_assert!(
            wheel.slot_high_water() >= total / slots,
            "co-resident peak {} below combined fill {}/{}",
            wheel.slot_high_water(), total, slots
        );
        let peak_capacity = wheel.slot_capacity();
        prop_assert!(peak_capacity >= total, "burst must be resident");
        // Partial drain, then more same-slot traffic, then full drain:
        // release must hold however pops interleave with production.
        for _ in 0..drain_mid.min(total) {
            wheel.pop();
        }
        let refill: Vec<(SimTime, u32)> = (0..chunk)
            .map(|k| (wheel.now() + (k % slots) as f64 * 0.25, tag + k as u32))
            .collect();
        wheel.schedule_batch(refill.iter().copied());
        while wheel.pop().is_some() {}
        let retained = wheel.slot_capacity();
        prop_assert!(
            retained <= KEEP_BOUND,
            "drained wheel retains {} entry capacity (bound {})",
            retained, KEEP_BOUND
        );
        // And the release is real: a burst bigger than the whole keep
        // bound cannot still be resident.
        if peak_capacity > KEEP_BOUND {
            prop_assert!(retained < peak_capacity);
        }
    }

    /// The sharded wake-up burst contract at the scheduler level: a
    /// burst split into contiguous chunks and replayed with one
    /// `schedule_batch` per chunk (in order) hands out exactly the
    /// sequence numbers — hence exactly the pop order — of one serial
    /// batch, for any chunk size.
    #[test]
    fn chained_shard_batches_equal_one_serial_batch(
        burst in prop::collection::vec((0u32..1_000, 0u8..4), 1..200),
        chunk in 1usize..64,
    ) {
        let events: Vec<(SimTime, u32)> = burst
            .iter()
            .enumerate()
            .map(|(i, &(raw, sel))| (SimTime::from_secs(delay(raw, sel)), i as u32))
            .collect();
        let mut serial: Scheduler<u32> = Scheduler::new();
        serial.schedule_batch(events.iter().copied());
        let mut sharded: Scheduler<u32> = Scheduler::new();
        sharded.reserve(events.len());
        for shard in events.chunks(chunk) {
            sharded.schedule_batch(shard.iter().copied());
        }
        prop_assert_eq!(serial.events_scheduled(), sharded.events_scheduled());
        loop {
            let (a, b) = (serial.pop(), sharded.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
