//! Property tests for the preemptive-priority facility: under any workload,
//! work is conserved, the busy time matches the bits served, and priority
//! scheduling never inverts across classes at dispatch instants.

use mobicache_sim::{Facility, FacilityConfig, Job, SimTime};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A tiny driver: replays arrivals against the facility with a private
/// event list of pending completions, returning the finish order.
fn drive(rate: f64, preemptive: usize, arrivals: &[(f64, f64, usize)]) -> (Facility, Vec<u64>) {
    let mut f = Facility::new(FacilityConfig {
        rate_bps: rate,
        classes: 3,
        preemptive_classes: preemptive,
    });
    // (time, token) of the single outstanding completion candidate set.
    let mut pending: BTreeMap<u64, SimTime> = BTreeMap::new();
    let mut finished = Vec::new();
    let mut arrivals = arrivals.to_vec();
    arrivals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());

    let mut i = 0;
    let mut now = SimTime::ZERO;
    loop {
        let next_arrival = arrivals.get(i).map(|&(t, _, _)| SimTime::from_secs(t));
        let next_completion = pending.iter().map(|(&tok, &at)| (at, tok)).min();
        match (next_arrival, next_completion) {
            (None, None) => break,
            (Some(ta), Some((tc, tok))) if tc <= ta => {
                now = tc;
                if let Some((job, next)) = f.on_complete(now, tok) {
                    finished.push(job.tag);
                    if let Some(c) = next {
                        pending.insert(c.token, c.at);
                    }
                }
                pending.remove(&tok);
            }
            (Some(ta), _) => {
                now = ta;
                let (_, bits, class) = arrivals[i];
                let tag = i as u64;
                i += 1;
                if let Some(c) = f.submit(now, Job { bits, class, tag }) {
                    pending.insert(c.token, c.at);
                }
            }
            (None, Some((tc, tok))) => {
                now = tc;
                if let Some((job, next)) = f.on_complete(now, tok) {
                    finished.push(job.tag);
                    if let Some(c) = next {
                        pending.insert(c.token, c.at);
                    }
                }
                pending.remove(&tok);
            }
        }
    }
    let _ = now;
    (f, finished)
}

fn arrival_strategy() -> impl Strategy<Value = Vec<(f64, f64, usize)>> {
    prop::collection::vec((0.0f64..1000.0, 1.0f64..10_000.0, 0usize..3), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Every submitted job eventually completes exactly once, and the bits
    /// served per class equal the bits submitted per class.
    #[test]
    fn work_is_conserved(arrivals in arrival_strategy(), preemptive in 0usize..2) {
        let (f, finished) = drive(1000.0, preemptive, &arrivals);
        prop_assert_eq!(finished.len(), arrivals.len());
        let mut sorted = finished.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), arrivals.len(), "duplicate completion");
        for class in 0..3 {
            let submitted: f64 = arrivals
                .iter()
                .filter(|&&(_, _, c)| c == class)
                .map(|&(_, b, _)| b)
                .sum();
            prop_assert!((f.bits_served(class) - submitted).abs() < 1e-6,
                "class {} bits: served {} vs submitted {}", class, f.bits_served(class), submitted);
        }
        prop_assert_eq!(f.backlog(), 0);
        prop_assert!(!f.is_busy());
    }

    /// Busy time equals total work divided by the rate.
    #[test]
    fn busy_time_matches_bits(arrivals in arrival_strategy()) {
        let rate = 1000.0;
        let (f, _) = drive(rate, 1, &arrivals);
        let total_bits: f64 = arrivals.iter().map(|&(_, b, _)| b).sum();
        prop_assert!((f.busy_time() - total_bits / rate).abs() < 1e-6,
            "busy {} vs {}", f.busy_time(), total_bits / rate);
    }

    /// With preemption enabled, a class-0 job submitted while lower-priority
    /// work is in service always finishes exactly bits/rate later.
    #[test]
    fn class0_latency_is_transmission_time_only(
        data_bits in 100.0f64..50_000.0,
        ir_bits in 1.0f64..5_000.0,
        gap in 0.001f64..0.05,
    ) {
        let rate = 1000.0;
        let mut f = Facility::new(FacilityConfig { rate_bps: rate, classes: 3, preemptive_classes: 1 });
        let _ = f.submit(SimTime::ZERO, Job { bits: data_bits, class: 2, tag: 0 }).unwrap();
        let at = SimTime::from_secs(gap);
        let c = f.submit(at, Job { bits: ir_bits, class: 0, tag: 1 })
            .expect("class 0 must start immediately via preemption");
        prop_assert!((c.at - at - ir_bits / rate).abs() < 1e-9);
    }
}
