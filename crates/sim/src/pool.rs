//! Persistent deterministic worker pool.
//!
//! The engine's parallel tick phases used to pay a `thread::scope`
//! spawn per broadcast tick, which dominates wall time below ~1k
//! clients (ROADMAP: 0.59× at 100 clients × 2 threads). This pool is
//! spawned **once** per engine and reused for every tick: each
//! [`WorkerPool::run`] call publishes one *job* — `chunks` contiguous
//! work descriptors, executed by invoking `task(chunk_index)` — and
//! returns only when every chunk has completed (the tick barrier).
//!
//! Determinism contract: the pool decides **who** executes a chunk,
//! never **what** a chunk is. Chunk geometry is a pure function of the
//! caller's inputs (population size, configured shard count), each
//! chunk writes only to its own slot, and the caller merges slots in
//! chunk-index order after `run` returns — so results are bit-identical
//! whether a chunk ran on a worker, on the caller, or everything ran
//! inline on a pool with zero workers.
//!
//! Scheduling is work-claiming rather than work-assigning: chunks are
//! claimed from a shared atomic counter by the caller *and* the
//! workers. On a single-core host the caller typically claims every
//! chunk itself before a worker is scheduled, so the per-tick overhead
//! is one wake notification instead of a spawn + join — which is what
//! amortises the small-population case. On multi-core hosts the
//! workers claim chunks concurrently and the same code path scales.
//!
//! Failure contract: a panicking chunk never hangs the barrier. The
//! panic payload is captured, every remaining chunk still completes,
//! and [`WorkerPool::run`] re-raises the first payload on the calling
//! thread. Dropping the pool signals shutdown and joins every worker.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// A raw pointer wrapper asserting `Send`/`Sync`, for chunk tasks that
/// address disjoint per-chunk slots of a caller-owned buffer.
///
/// # Safety contract (on the user)
/// Tasks must only dereference the pointer at offsets owned by their
/// own chunk, and the pointee must outlive the [`WorkerPool::run`]
/// call — which it does when it lives on the caller's stack, because
/// `run` does not return (even by unwinding) until every chunk has
/// completed and every worker has released the job.
pub struct SendPtr<T>(pub *mut T);

impl<T> SendPtr<T> {
    /// The wrapped pointer. Inside a chunk closure, always go through
    /// this method rather than field access: under RFC 2229 disjoint
    /// capture, `ptr.0` would capture only the raw (non-`Send`) field
    /// and the closure would stop being `Sync`, while a method call
    /// captures the whole wrapper.
    #[inline]
    pub fn get(self) -> *mut T {
        self.0
    }
}

// Manual impls: the wrapper is a pointer copy regardless of `T`
// (derives would demand `T: Copy`).
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
impl<T> std::fmt::Debug for SendPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("SendPtr").field(&self.0).finish()
    }
}

unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Number of contiguous chunks a population of `len` items should be
/// split into: at most `max_shards`, at most one per item, and — when
/// `min_per_shard > 1` — only as many as keep every chunk at least that
/// big. Returns ≥ 1; `1` means "run serially on the caller".
///
/// Chunk geometry is part of the determinism argument, so every sharded
/// phase (engine fan-out, oracle scan, `BsIndex` build) derives its
/// chunk count through this one function.
pub fn shard_count(max_shards: usize, len: usize, min_per_shard: usize) -> usize {
    let by_work = if min_per_shard > 1 {
        (len / min_per_shard).max(1)
    } else {
        len
    };
    max_shards.min(len).min(by_work).max(1)
}

/// One published job: `chunks` work descriptors claimed from `next`,
/// completion tracked in `done`. Lives on the stack of the `run` call
/// that published it; see the module docs for why the raw pointer in
/// `task` stays valid for exactly as long as workers can reach it.
struct Job {
    task: *const (dyn Fn(usize) + Sync),
    next: AtomicUsize,
    done: AtomicUsize,
    chunks: usize,
}

struct State {
    /// Monotonic epoch counter; bumped when a job is published. Workers
    /// remember the last epoch they saw so a single job is never run
    /// twice by the same worker.
    epoch: u64,
    /// The active job, or `None` between epochs. Cleared by the caller
    /// *before* `run` returns, under the same mutex workers register
    /// through, so no worker can reach a retired job.
    job: Option<*const Job>,
    /// Workers currently holding a reference to the active job.
    active: usize,
    /// First panic payload captured from any chunk this epoch.
    panic: Option<Box<dyn std::any::Any + Send>>,
    shutdown: bool,
}

// SAFETY: the raw job pointer makes `State` !Send by default; the
// epoch/active protocol above guarantees it is only dereferenced while
// the pointee is alive, and all access is mutex-guarded.
unsafe impl Send for State {}

struct Shared {
    state: Mutex<State>,
    /// Workers park here between epochs.
    work: Condvar,
    /// The caller parks here waiting for the completion barrier.
    barrier: Condvar,
}

fn lock(shared: &Shared) -> MutexGuard<'_, State> {
    // A poisoned mutex only means a chunk panicked while we held the
    // guard elsewhere; the state itself is always consistent, and
    // refusing to lock would turn a reported panic into a hang.
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A persistent pool of `threads - 1` workers plus the calling thread.
///
/// ```
/// use mobicache_sim::WorkerPool;
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let pool = WorkerPool::new(4);
/// let total = AtomicU64::new(0);
/// // 8 chunks over 800 items; the caller and the 3 workers claim them.
/// pool.run(8, &|chunk| {
///     let sum: u64 = (chunk as u64 * 100..(chunk as u64 + 1) * 100).sum();
///     total.fetch_add(sum, Ordering::Relaxed);
/// });
/// assert_eq!(total.into_inner(), (0..800).sum());
/// ```
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads())
            .finish()
    }
}

impl WorkerPool {
    /// A pool presenting `threads` total execution lanes: the calling
    /// thread plus `threads - 1` spawned workers. `threads <= 1` spawns
    /// nothing and [`WorkerPool::run`] degenerates to an inline loop.
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                active: 0,
                panic: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            barrier: Condvar::new(),
        });
        let handles = (1..threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mobicache-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Total execution lanes (spawned workers + the caller).
    pub fn threads(&self) -> usize {
        self.handles.len() + 1
    }

    /// Spawned worker threads (0 for a serial pool).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Executes `task(i)` for every `i in 0..chunks`, each exactly
    /// once, and returns when all have completed. The caller claims
    /// chunks alongside the workers, so a busy pool never blocks
    /// progress. Not reentrant: `task` must not call `run` on the same
    /// pool.
    ///
    /// # Panics
    /// Re-raises the first panic any chunk produced — after the
    /// barrier, so no worker still references caller-owned data.
    pub fn run(&self, chunks: usize, task: &(dyn Fn(usize) + Sync)) {
        if chunks == 0 {
            return;
        }
        if self.handles.is_empty() || chunks == 1 {
            for i in 0..chunks {
                task(i);
            }
            return;
        }
        // SAFETY: lifetime erasure only — the barrier below keeps the
        // closure borrowed for strictly longer than any worker can
        // reach it through the job pointer.
        let task: &'static (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(task)
        };
        let job = Job {
            task,
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            chunks,
        };
        {
            let mut st = lock(&self.shared);
            debug_assert!(st.job.is_none(), "WorkerPool::run is not reentrant");
            st.epoch += 1;
            st.job = Some(&job as *const Job);
            st.panic = None;
        }
        self.shared.work.notify_all();
        run_chunks(&self.shared, &job);
        // The barrier: all chunks complete AND every registered worker
        // has released the job. Only then is `job` (and the borrowed
        // task data behind it) safe to drop.
        let mut st = lock(&self.shared);
        while job.done.load(Ordering::Acquire) < chunks || st.active > 0 {
            st = self
                .shared
                .barrier
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        st.job = None;
        let panic = st.panic.take();
        drop(st);
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        lock(&self.shared).shutdown = true;
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Claims and executes chunks of `job` until none remain. Panics are
/// captured into the shared state so the barrier always completes.
fn run_chunks(shared: &Shared, job: &Job) {
    loop {
        let i = job.next.fetch_add(1, Ordering::AcqRel);
        if i >= job.chunks {
            return;
        }
        // SAFETY: the job (and the closure it points to) outlives every
        // chunk execution — `run` blocks on the barrier until `done`
        // reaches `chunks` and no worker is registered.
        let task = unsafe { &*job.task };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(i))) {
            let mut st = lock(shared);
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
        }
        if job.done.fetch_add(1, Ordering::AcqRel) + 1 == job.chunks {
            // Pair the notification with the mutex so the caller cannot
            // check the predicate and park between our increment and
            // this wake-up.
            drop(lock(shared));
            shared.barrier.notify_one();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen = 0u64;
    loop {
        let job_ptr = {
            let mut st = lock(shared);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    seen = st.epoch;
                    if let Some(ptr) = st.job {
                        st.active += 1;
                        break ptr;
                    }
                    // Epoch already retired before we woke; keep waiting.
                }
                st = shared.work.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        // SAFETY: registration (`active += 1`) and retirement (`job =
        // None`) share the state mutex, so this pointer is live until
        // we deregister below.
        run_chunks(shared, unsafe { &*job_ptr });
        lock(shared).active -= 1;
        shared.barrier.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn shard_count_geometry() {
        assert_eq!(shard_count(4, 100, 1), 4);
        assert_eq!(shard_count(4, 3, 1), 3);
        assert_eq!(shard_count(4, 0, 1), 1);
        assert_eq!(shard_count(1, 100, 1), 1);
        // Work threshold: 100 items at ≥ 64 per shard -> 1 shard;
        // 1000 items -> capped by max_shards again.
        assert_eq!(shard_count(4, 100, 64), 1);
        assert_eq!(shard_count(4, 129, 64), 2);
        assert_eq!(shard_count(4, 1_000, 64), 4);
    }

    #[test]
    fn every_chunk_runs_exactly_once() {
        let pool = WorkerPool::new(4);
        for chunks in [1usize, 2, 3, 7, 16, 64] {
            let counts: Vec<AtomicU64> = (0..chunks).map(|_| AtomicU64::new(0)).collect();
            pool.run(chunks, &|i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, c) in counts.iter().enumerate() {
                assert_eq!(c.load(Ordering::Relaxed), 1, "chunk {i} of {chunks}");
            }
        }
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.workers(), 0);
        assert_eq!(pool.threads(), 1);
        let total = AtomicU64::new(0);
        pool.run(5, &|i| {
            total.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(total.into_inner(), 10);
    }

    #[test]
    fn more_chunks_than_threads_all_complete() {
        let pool = WorkerPool::new(2);
        let total = AtomicU64::new(0);
        pool.run(100, &|i| {
            total.fetch_add(i as u64 + 1, Ordering::Relaxed);
        });
        assert_eq!(total.into_inner(), 5050);
    }

    #[test]
    fn disjoint_slot_writes_via_send_ptr() {
        let pool = WorkerPool::new(3);
        let mut slots = vec![0u64; 9];
        let ptr = SendPtr(slots.as_mut_ptr());
        pool.run(9, &|i| {
            // Bind the wrapper, not its field: edition-2021 closures
            // would otherwise capture the bare `*mut` (which is !Sync).

            // SAFETY: each chunk owns exactly slot `i`.
            unsafe { *ptr.get().add(i) = (i as u64 + 1) * 3 };
        });
        assert_eq!(slots, (1..=9).map(|k| k * 3).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_chunk_propagates_and_pool_survives() {
        let pool = WorkerPool::new(4);
        let ran = AtomicU64::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|i| {
                if i == 3 {
                    panic!("chunk 3 exploded");
                }
                ran.fetch_add(1, Ordering::Relaxed);
            });
        }));
        let payload = result.expect_err("panic must propagate through run");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("non-str payload");
        assert!(msg.contains("chunk 3 exploded"), "got: {msg}");
        // The barrier completed: every non-panicking chunk still ran.
        assert_eq!(ran.load(Ordering::Relaxed), 7);
        // And the pool is reusable afterwards.
        let total = AtomicU64::new(0);
        pool.run(4, &|i| {
            total.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(total.into_inner(), 6);
    }

    #[test]
    fn sequential_epochs_reuse_the_same_workers() {
        let pool = WorkerPool::new(3);
        for round in 0..50u64 {
            let total = AtomicU64::new(0);
            pool.run(6, &|i| {
                total.fetch_add(round * 10 + i as u64, Ordering::Relaxed);
            });
            assert_eq!(total.into_inner(), round * 60 + 15, "round {round}");
        }
    }

    #[test]
    fn drop_without_running_joins_cleanly() {
        let pool = WorkerPool::new(8);
        drop(pool);
    }
}
