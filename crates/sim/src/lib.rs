//! # mobicache-sim — discrete-event simulation substrate
//!
//! The original paper ran its evaluation on the proprietary CSIM 17 process
//! simulation package. This crate is the from-scratch replacement: a small,
//! deterministic discrete-event kernel with the pieces the mobile-caching
//! simulator needs.
//!
//! * [`time`] — the simulation clock type ([`SimTime`]) and durations.
//! * [`event`] — a stable-ordered future event list ([`Scheduler`]).
//! * [`rng`] — a deterministic, splittable pseudo-random generator
//!   (xoshiro256++ seeded via SplitMix64), so every run is reproducible from
//!   a single `u64` seed and every stochastic process gets an independent
//!   stream.
//! * [`dist`] — the distributions the model uses (exponential think/update
//!   times, Poisson transaction sizes, bounded uniforms, Bernoulli coins,
//!   and a Zipf extension).
//! * [`stats`] — online statistics accumulators (Welford mean/variance,
//!   time-weighted averages, counters, histograms).
//! * [`facility`] — a single-server queueing facility with priority classes
//!   and preemptive-resume service, modelling a wireless channel whose
//!   invalidation reports must go out exactly on the broadcast period.
//! * [`pool`] — a persistent, determinism-preserving worker pool
//!   ([`WorkerPool`]) for the engine's sharded tick phases: spawned once,
//!   tick-barrier `run` over contiguous chunk descriptors, clean join on
//!   drop.
//!
//! The kernel is deliberately *event-callback* shaped rather than
//! process-oriented: the driving loop lives in the `mobicache` core crate
//! and dispatches on an application event enum. All components here are
//! passive data structures, which keeps them unit-testable in isolation.

pub mod dist;
pub mod event;
pub mod facility;
pub mod pool;
pub mod rng;
pub mod stats;
pub mod time;

pub use dist::{Bernoulli, Exp, Poisson, UniformRange, Zipf};
pub use event::Scheduler;
pub use facility::{Completion, Facility, FacilityConfig, Job};
pub use pool::WorkerPool;
pub use rng::{SimRng, StreamId};
pub use stats::{Counter, Histogram, OnlineStats, TimeWeighted};
pub use time::SimTime;
