//! Single-server queueing facility with priority classes and
//! preemptive-resume service.
//!
//! This models one wireless channel (the paper's downlink or uplink). §4 of
//! the paper: *"The network is modeled with invalidation reports having the
//! highest priority, checking requests and validity reports coming next and
//! followed by all the other messages which are of equal priority and served
//! on a first-come first-served basis. This strategy ensures that
//! invalidation reports will always be broadcast at the exact broadcast
//! period."*
//!
//! To guarantee the "exact broadcast period" property, the top priority
//! classes are **preemptive-resume**: when an invalidation report is
//! submitted while a (long, 6.5 s) data item transmission is in progress,
//! the data transmission is suspended, the report is sent immediately, and
//! the data transmission resumes where it left off.
//!
//! The facility is a passive component: it never schedules events itself.
//! Instead [`Facility::submit`] and [`Facility::on_complete`] return a
//! [`Completion`] `(time, token)` that the caller must turn into an event;
//! stale completions (whose service was preempted and later rescheduled)
//! are recognised by token mismatch and must be discarded — `on_complete`
//! returns `None` for them.

use crate::time::SimTime;
use std::collections::VecDeque;

/// Static configuration of a facility.
#[derive(Clone, Copy, Debug)]
pub struct FacilityConfig {
    /// Service rate in bits per second.
    pub rate_bps: f64,
    /// Number of priority classes; class 0 is the highest priority.
    pub classes: usize,
    /// Classes `< preemptive_classes` preempt in-service lower-priority
    /// jobs (preemptive-resume). `0` makes the facility fully
    /// non-preemptive.
    pub preemptive_classes: usize,
}

impl FacilityConfig {
    /// Validates and returns the config.
    ///
    /// # Panics
    /// Panics on a non-positive rate or zero classes.
    pub fn validated(self) -> Self {
        assert!(
            self.rate_bps.is_finite() && self.rate_bps > 0.0,
            "rate must be positive, got {}",
            self.rate_bps
        );
        assert!(self.classes > 0, "need at least one priority class");
        assert!(
            self.preemptive_classes <= self.classes,
            "preemptive_classes exceeds classes"
        );
        self
    }
}

/// A unit of work: a message of `bits` bits in priority class `class`.
///
/// `tag` is an opaque caller-side key identifying the message payload (the
/// caller keeps the payload in its own map, so the facility stays generic
/// and copy-cheap).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Job {
    /// Message size in bits (must be positive).
    pub bits: f64,
    /// Priority class; 0 is served first.
    pub class: usize,
    /// Opaque caller-side payload key.
    pub tag: u64,
}

/// A scheduled service completion the caller must turn into an event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Completion {
    /// Absolute time at which the in-service job finishes.
    pub at: SimTime,
    /// Token to pass back to [`Facility::on_complete`]; stale tokens are
    /// rejected there.
    pub token: u64,
}

struct Active {
    job: Job,
    remaining_bits: f64,
    resumed_at: SimTime,
    token: u64,
}

struct Suspended {
    job: Job,
    remaining_bits: f64,
}

/// The facility itself. See the module docs for the protocol.
///
/// ```
/// use mobicache_sim::{Facility, FacilityConfig, Job, SimTime};
///
/// let t = SimTime::from_secs;
/// let mut ch = Facility::new(FacilityConfig {
///     rate_bps: 1_000.0,
///     classes: 3,
///     preemptive_classes: 1,
/// });
/// // A 10 s data transmission starts…
/// let data = ch.submit(t(0.0), Job { bits: 10_000.0, class: 2, tag: 1 }).unwrap();
/// // …and a broadcast report preempts it at t = 4.
/// let report = ch.submit(t(4.0), Job { bits: 1_000.0, class: 0, tag: 2 }).unwrap();
/// assert_eq!(report.at, t(5.0));
/// assert!(ch.on_complete(t(10.0), data.token).is_none(), "stale completion");
/// let (done, resumed) = ch.on_complete(t(5.0), report.token).unwrap();
/// assert_eq!(done.tag, 2);
/// assert_eq!(resumed.unwrap().at, t(11.0)); // 6 s of data remained
/// ```
pub struct Facility {
    cfg: FacilityConfig,
    queues: Vec<VecDeque<Suspended>>,
    current: Option<Active>,
    next_token: u64,
    // Statistics.
    busy_since: Option<SimTime>,
    busy_time: f64,
    bits_served: Vec<f64>,
    jobs_served: Vec<u64>,
    preemptions: u64,
}

impl Facility {
    /// A new, idle facility.
    pub fn new(cfg: FacilityConfig) -> Self {
        let cfg = cfg.validated();
        Facility {
            queues: (0..cfg.classes).map(|_| VecDeque::new()).collect(),
            current: None,
            next_token: 0,
            busy_since: None,
            busy_time: 0.0,
            bits_served: vec![0.0; cfg.classes],
            jobs_served: vec![0; cfg.classes],
            preemptions: 0,
            cfg,
        }
    }

    /// Service rate in bits per second.
    pub fn rate_bps(&self) -> f64 {
        self.cfg.rate_bps
    }

    /// `true` while a job is in service.
    pub fn is_busy(&self) -> bool {
        self.current.is_some()
    }

    /// Jobs waiting (not in service) in the given class.
    pub fn queue_len(&self, class: usize) -> usize {
        self.queues[class].len()
    }

    /// Total jobs waiting across all classes.
    pub fn backlog(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Total busy time accumulated so far (excluding any in-progress
    /// service interval; call [`Facility::utilization`] for that).
    pub fn busy_time(&self) -> f64 {
        self.busy_time
    }

    /// Fraction of `[0, now]` the server has been busy.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let mut busy = self.busy_time;
        if let Some(active) = &self.current {
            busy += now.saturating_since(active.resumed_at);
        }
        // Include the interval before the current resume within this busy
        // period, which was already folded into busy_time on preemptions.
        let span = now.as_secs();
        if span <= 0.0 {
            0.0
        } else {
            busy / span
        }
    }

    /// Bits fully served per class so far.
    pub fn bits_served(&self, class: usize) -> f64 {
        self.bits_served[class]
    }

    /// Jobs fully served per class so far.
    pub fn jobs_served(&self, class: usize) -> u64 {
        self.jobs_served[class]
    }

    /// Number of preemptions performed.
    pub fn preemptions(&self) -> u64 {
        self.preemptions
    }

    fn start(&mut self, now: SimTime, job: Job, remaining_bits: f64) -> Completion {
        let token = self.next_token;
        self.next_token += 1;
        let at = now + remaining_bits / self.cfg.rate_bps;
        self.current = Some(Active {
            job,
            remaining_bits,
            resumed_at: now,
            token,
        });
        if self.busy_since.is_none() {
            self.busy_since = Some(now);
        }
        Completion { at, token }
    }

    /// Submits a job at time `now`.
    ///
    /// Returns `Some(completion)` when the submission (re)started service —
    /// either the facility was idle, or the job preempted the in-service
    /// transmission. Returns `None` when the job was queued; its completion
    /// will be handed out later by [`Facility::on_complete`].
    ///
    /// # Panics
    /// Panics on non-positive `bits` or an out-of-range class.
    pub fn submit(&mut self, now: SimTime, job: Job) -> Option<Completion> {
        assert!(
            job.bits.is_finite() && job.bits > 0.0,
            "job must have positive size, got {} bits",
            job.bits
        );
        assert!(
            job.class < self.cfg.classes,
            "class {} out of range",
            job.class
        );

        match &self.current {
            None => Some(self.start(now, job, job.bits)),
            Some(active) => {
                let preempts =
                    job.class < self.cfg.preemptive_classes && job.class < active.job.class;
                if preempts {
                    // Suspend the in-service job: bank the work done so far
                    // and put it at the *front* of its class queue so it
                    // resumes before anything queued behind it.
                    let active = self.current.take().expect("checked above");
                    let served = now.saturating_since(active.resumed_at) * self.cfg.rate_bps;
                    let remaining = (active.remaining_bits - served).max(0.0);
                    self.busy_time += now.saturating_since(active.resumed_at);
                    self.preemptions += 1;
                    self.queues[active.job.class].push_front(Suspended {
                        job: active.job,
                        remaining_bits: remaining,
                    });
                    Some(self.start(now, job, job.bits))
                } else {
                    self.queues[job.class].push_back(Suspended {
                        job,
                        remaining_bits: job.bits,
                    });
                    None
                }
            }
        }
    }

    /// Handles a completion event.
    ///
    /// Returns `None` if `token` is stale (the corresponding service was
    /// preempted and rescheduled — the caller must simply drop the event).
    /// Otherwise returns the finished job plus, if another job was waiting,
    /// the completion of the newly started service.
    pub fn on_complete(&mut self, now: SimTime, token: u64) -> Option<(Job, Option<Completion>)> {
        let active = self.current.as_ref()?;
        if active.token != token {
            return None; // stale completion from before a preemption
        }
        let active = self.current.take().expect("checked above");
        self.busy_time += now.saturating_since(active.resumed_at);
        self.bits_served[active.job.class] += active.job.bits;
        self.jobs_served[active.job.class] += 1;

        // Start the next job: highest-priority non-empty queue, front first
        // (suspended jobs were pushed to the front of their queue).
        let next = self.queues.iter_mut().find_map(|q| q.pop_front());
        let completion = next.map(|s| {
            let resumed = s.remaining_bits.max(f64::MIN_POSITIVE);
            self.start(now, s.job, resumed)
        });
        if completion.is_none() {
            self.busy_since = None;
        }
        Some((active.job, completion))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fac(rate: f64) -> Facility {
        Facility::new(FacilityConfig {
            rate_bps: rate,
            classes: 3,
            preemptive_classes: 1,
        })
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn single_job_service_time() {
        let mut f = fac(1000.0);
        let c = f
            .submit(
                t(0.0),
                Job {
                    bits: 500.0,
                    class: 2,
                    tag: 1,
                },
            )
            .expect("idle facility starts immediately");
        assert_eq!(c.at, t(0.5));
        let (job, next) = f.on_complete(t(0.5), c.token).expect("valid token");
        assert_eq!(job.tag, 1);
        assert!(next.is_none());
        assert!(!f.is_busy());
        assert_eq!(f.bits_served(2), 500.0);
    }

    #[test]
    fn fifo_within_class() {
        let mut f = fac(1000.0);
        let c1 = f
            .submit(
                t(0.0),
                Job {
                    bits: 1000.0,
                    class: 2,
                    tag: 1,
                },
            )
            .unwrap();
        assert!(f
            .submit(
                t(0.1),
                Job {
                    bits: 1000.0,
                    class: 2,
                    tag: 2
                }
            )
            .is_none());
        assert!(f
            .submit(
                t(0.2),
                Job {
                    bits: 1000.0,
                    class: 2,
                    tag: 3
                }
            )
            .is_none());
        let (j1, c2) = f.on_complete(t(1.0), c1.token).unwrap();
        assert_eq!(j1.tag, 1);
        let c2 = c2.unwrap();
        assert_eq!(c2.at, t(2.0));
        let (j2, c3) = f.on_complete(t(2.0), c2.token).unwrap();
        assert_eq!(j2.tag, 2);
        let (j3, none) = f.on_complete(t(3.0), c3.unwrap().token).unwrap();
        assert_eq!(j3.tag, 3);
        assert!(none.is_none());
    }

    #[test]
    fn priority_order_across_classes() {
        let mut f = fac(1000.0);
        let c = f
            .submit(
                t(0.0),
                Job {
                    bits: 1000.0,
                    class: 2,
                    tag: 1,
                },
            )
            .unwrap();
        // Queue a low-priority and then a mid-priority job; mid goes first.
        f.submit(
            t(0.1),
            Job {
                bits: 100.0,
                class: 2,
                tag: 2,
            },
        );
        f.submit(
            t(0.2),
            Job {
                bits: 100.0,
                class: 1,
                tag: 3,
            },
        );
        let (_, next) = f.on_complete(t(1.0), c.token).unwrap();
        let next = next.unwrap();
        let (mid, next2) = f.on_complete(next.at, next.token).unwrap();
        assert_eq!(mid.tag, 3, "class 1 beats class 2");
        let (low, _) = f
            .on_complete(next2.unwrap().at, next2.unwrap().token)
            .unwrap();
        assert_eq!(low.tag, 2);
    }

    #[test]
    fn class0_preempts_and_resumes() {
        let mut f = fac(1000.0);
        // 10 s data transmission starts at t=0.
        let c_data = f
            .submit(
                t(0.0),
                Job {
                    bits: 10_000.0,
                    class: 2,
                    tag: 7,
                },
            )
            .unwrap();
        assert_eq!(c_data.at, t(10.0));
        // Report (class 0) arrives at t=4: preempts, serves 1 s.
        let c_ir = f
            .submit(
                t(4.0),
                Job {
                    bits: 1000.0,
                    class: 0,
                    tag: 8,
                },
            )
            .expect("preemption returns a fresh completion");
        assert_eq!(c_ir.at, t(5.0));
        assert_eq!(f.preemptions(), 1);
        // The stale data completion must be rejected.
        assert!(f.on_complete(t(10.0), c_data.token).is_none());
        // Report finishes; data resumes with 6 s of work left.
        let (ir, resumed) = f.on_complete(t(5.0), c_ir.token).unwrap();
        assert_eq!(ir.tag, 8);
        let resumed = resumed.unwrap();
        assert_eq!(resumed.at, t(11.0)); // 4 s done, 6 s remaining from t=5
        let (data, _) = f.on_complete(t(11.0), resumed.token).unwrap();
        assert_eq!(data.tag, 7);
        assert_eq!(f.bits_served(2), 10_000.0);
    }

    #[test]
    fn suspended_job_resumes_before_queued_peers() {
        let mut f = fac(1000.0);
        let _c = f
            .submit(
                t(0.0),
                Job {
                    bits: 10_000.0,
                    class: 2,
                    tag: 1,
                },
            )
            .unwrap();
        f.submit(
            t(1.0),
            Job {
                bits: 100.0,
                class: 2,
                tag: 2,
            },
        );
        let c_ir = f
            .submit(
                t(2.0),
                Job {
                    bits: 100.0,
                    class: 0,
                    tag: 3,
                },
            )
            .unwrap();
        let (_, next) = f.on_complete(c_ir.at, c_ir.token).unwrap();
        // The preempted tag-1 job resumes ahead of the queued tag-2 job.
        let next = next.unwrap();
        let (resumed, _) = f.on_complete(next.at, next.token).unwrap();
        assert_eq!(resumed.tag, 1);
    }

    #[test]
    fn class1_does_not_preempt_when_not_configured() {
        let mut f = fac(1000.0); // preemptive_classes = 1, so class 1 queues
        let c = f
            .submit(
                t(0.0),
                Job {
                    bits: 5000.0,
                    class: 2,
                    tag: 1,
                },
            )
            .unwrap();
        assert!(f
            .submit(
                t(1.0),
                Job {
                    bits: 100.0,
                    class: 1,
                    tag: 2
                }
            )
            .is_none());
        assert_eq!(f.preemptions(), 0);
        let (first, _) = f.on_complete(c.at, c.token).unwrap();
        assert_eq!(first.tag, 1);
    }

    #[test]
    fn class0_does_not_preempt_class0() {
        let mut f = fac(1000.0);
        let _c = f
            .submit(
                t(0.0),
                Job {
                    bits: 5000.0,
                    class: 0,
                    tag: 1,
                },
            )
            .unwrap();
        // Another report while one is in flight queues behind it.
        assert!(f
            .submit(
                t(1.0),
                Job {
                    bits: 100.0,
                    class: 0,
                    tag: 2
                }
            )
            .is_none());
        assert_eq!(f.preemptions(), 0);
    }

    #[test]
    fn utilization_accounting() {
        let mut f = fac(1000.0);
        let c = f
            .submit(
                t(0.0),
                Job {
                    bits: 2000.0,
                    class: 2,
                    tag: 1,
                },
            )
            .unwrap();
        f.on_complete(c.at, c.token).unwrap();
        // Busy 2 s out of 8 s.
        assert!((f.utilization(t(8.0)) - 0.25).abs() < 1e-12);
        assert!((f.busy_time() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_mid_service() {
        let mut f = fac(1000.0);
        f.submit(
            t(0.0),
            Job {
                bits: 4000.0,
                class: 2,
                tag: 1,
            },
        )
        .unwrap();
        assert!((f.utilization(t(2.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive size")]
    fn zero_bits_rejected() {
        fac(1.0).submit(
            t(0.0),
            Job {
                bits: 0.0,
                class: 0,
                tag: 0,
            },
        );
    }

    #[test]
    fn double_preemption_conserves_work() {
        let mut f = Facility::new(FacilityConfig {
            rate_bps: 100.0,
            classes: 3,
            preemptive_classes: 1,
        });
        // Long class-2 job, preempted twice by class-0 jobs.
        let _ = f
            .submit(
                t(0.0),
                Job {
                    bits: 1000.0,
                    class: 2,
                    tag: 1,
                },
            )
            .unwrap();
        let ir1 = f
            .submit(
                t(1.0),
                Job {
                    bits: 100.0,
                    class: 0,
                    tag: 2,
                },
            )
            .unwrap();
        let (_, r1) = f.on_complete(ir1.at, ir1.token).unwrap();
        let r1 = r1.unwrap();
        let ir2 = f
            .submit(
                t(3.0),
                Job {
                    bits: 100.0,
                    class: 0,
                    tag: 3,
                },
            )
            .unwrap();
        assert!(f.on_complete(r1.at, r1.token).is_none(), "stale resume");
        let (_, r2) = f.on_complete(ir2.at, ir2.token).unwrap();
        let r2 = r2.unwrap();
        // Work done on tag 1: 1 s (t=0..1) + 1 s (t=2..3) = 200 bits.
        // Remaining 800 bits -> finishes 8 s after the resume at t=4.
        assert_eq!(r2.at, t(12.0));
        let (done, _) = f.on_complete(r2.at, r2.token).unwrap();
        assert_eq!(done.tag, 1);
        let total: f64 = (0..3).map(|c| f.bits_served(c)).sum();
        assert!((total - 1200.0).abs() < 1e-9);
    }
}
