//! The future event list.
//!
//! A hierarchical timing wheel: the model's delays are bounded and
//! periodic (broadcasts every `L` seconds, think/disconnect times drawn
//! from bounded distributions), which is exactly the workload shape a
//! wheel serves with O(1) schedule/pop where a binary heap pays
//! O(log n) comparisons against cold cache lines.
//!
//! Layout: [`LEVELS`] levels of [`SLOTS`] slots each. The leaf level
//! has fixed resolution (0.25 s by default — a power of two, so
//! `at / resolution` is an exact float scaling); each coarser level's
//! slot spans [`SLOTS`] slots of the level below. With the defaults the
//! leaf window covers 64 s, level 1 covers ~4.6 h, level 2 ~48 days and
//! level 3 ~34 years of simulated time; anything beyond the top window
//! (including the [`SimTime::INFINITY`] sentinel) waits in a small
//! overflow heap. Advancing past a window boundary *cascades* the next
//! coarser slot down into finer slots — a deterministic, purely
//! structural move that never reorders deliveries.
//!
//! Ordering contract (unchanged from the heap implementation): events
//! pop in `(at, seq)` order, where `seq` is a monotonically increasing
//! tie-breaker, so same-instant events are delivered in FIFO
//! (insertion) order. Slots hold their entries unsorted until the clock
//! reaches them; a slot is sorted once on activation (descending, so
//! the earliest entry pops from the back in O(1)), and a late schedule
//! into the live slot does a sorted insert. Deterministic tie-breaking
//! matters: the mobile-caching model schedules a broadcast tick and
//! many client wake-ups at the same instant, and reproducibility from a
//! seed requires a stable service order.
//!
//! Memory: a slot's vector grows to its own burst and is released
//! (capacity above [`SLOT_KEEP_CAPACITY`]) as soon as it drains, so the
//! million-client wake-up burst no longer pins its peak footprint for
//! the rest of the run the way the old heap's retained capacity did.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// log2 of the slot count per level.
const LEVEL_BITS: u32 = 8;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Wheel levels (leaf + three coarser overflow levels).
const LEVELS: u32 = 4;
/// Mask extracting a slot index from a leaf-slot number.
const LEVEL_MASK: u64 = (SLOTS as u64) - 1;
/// Occupancy-bitmap words per level.
const WORDS: usize = SLOTS / 64;
/// Default leaf-slot width in seconds. A power of two, so scaling a
/// timestamp to a slot number is exact (no rounding near boundaries;
/// correctness only needs monotonicity, but exactness keeps slot
/// occupancy predictable).
const DEFAULT_RESOLUTION_SECS: f64 = 0.25;
/// A drained slot keeps at most this much capacity; anything larger is
/// released. Bounds the post-burst footprint: the 1M-client wake-up
/// burst parks ~thousands of entries per slot, which would otherwise be
/// retained as empty capacity for the whole run.
const SLOT_KEEP_CAPACITY: usize = 32;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    /// The delivery-order key: time, then insertion order.
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// Overflow-heap wrapper: reversed `Ord` so `BinaryHeap`'s max-heap
/// yields the earliest `(at, seq)` first.
struct OverflowEntry<E>(Entry<E>);

impl<E> PartialEq for OverflowEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl<E> Eq for OverflowEntry<E> {}
impl<E> PartialOrd for OverflowEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for OverflowEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.key().cmp(&self.0.key())
    }
}

/// One wheel level: slot buckets plus an occupancy bitmap for O(1)
/// next-slot scans.
struct Level<E> {
    buckets: Vec<Vec<Entry<E>>>,
    bits: [u64; WORDS],
}

impl<E> Level<E> {
    fn new() -> Self {
        Level {
            buckets: (0..SLOTS).map(|_| Vec::new()).collect(),
            bits: [0; WORDS],
        }
    }

    #[inline]
    fn set_bit(&mut self, slot: usize) {
        self.bits[slot / 64] |= 1 << (slot % 64);
    }

    #[inline]
    fn clear_bit(&mut self, slot: usize) {
        self.bits[slot / 64] &= !(1 << (slot % 64));
    }

    /// First occupied slot at index `from` or later, if any.
    fn next_set_from(&self, from: usize) -> Option<usize> {
        if from >= SLOTS {
            return None;
        }
        let mut w = from / 64;
        let mut word = self.bits[w] & (!0u64 << (from % 64));
        loop {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            w += 1;
            if w == WORDS {
                return None;
            }
            word = self.bits[w];
        }
    }
}

/// A future event list over an application-defined event type `E`.
///
/// The scheduler owns the simulation clock: [`Scheduler::pop`] advances
/// `now()` to the popped event's timestamp. Scheduling an event in the past
/// panics — that is always a model bug.
pub struct Scheduler<E> {
    /// Wheel levels, finest first.
    levels: Vec<Level<E>>,
    /// Events beyond the top-level window (and the `INFINITY` sentinel).
    overflow: BinaryHeap<OverflowEntry<E>>,
    /// `1 / leaf slot width` — timestamps scale to leaf-slot numbers.
    resolution_inv: f64,
    /// Leaf-slot number of the current position. Equal to the last
    /// popped event's slot after every pop, so `schedule`'s
    /// not-in-the-past assert also guarantees no event lands behind it.
    cur: u64,
    /// `true` when the slot at `cur` is sorted (descending) and live.
    active: bool,
    now: SimTime,
    seq: u64,
    popped: u64,
    pending: usize,
    high_water: usize,
    slot_high_water: usize,
    cascades: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// An empty scheduler with the clock at zero and the default leaf
    /// resolution (0.25 s).
    pub fn new() -> Self {
        Self::with_resolution(DEFAULT_RESOLUTION_SECS)
    }

    /// An empty scheduler with a custom leaf-slot width in seconds.
    /// Resolution is a performance knob only — delivery order is
    /// identical at any setting. Powers of two keep the slot math
    /// exact.
    ///
    /// # Panics
    /// Panics unless `resolution_secs` is finite and positive.
    pub fn with_resolution(resolution_secs: f64) -> Self {
        assert!(
            resolution_secs.is_finite() && resolution_secs > 0.0,
            "slot resolution must be finite and positive, got {resolution_secs}"
        );
        Scheduler {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            overflow: BinaryHeap::new(),
            resolution_inv: resolution_secs.recip(),
            cur: 0,
            active: false,
            now: SimTime::ZERO,
            seq: 0,
            popped: 0,
            pending: 0,
            high_water: 0,
            slot_high_water: 0,
            cascades: 0,
        }
    }

    /// The current simulated time (timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events currently pending.
    #[inline]
    pub fn len(&self) -> usize {
        self.pending
    }

    /// `true` when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Total number of events delivered so far (a cheap progress metric).
    #[inline]
    pub fn events_delivered(&self) -> u64 {
        self.popped
    }

    /// Total number of events ever scheduled (delivered or still pending).
    #[inline]
    pub fn events_scheduled(&self) -> u64 {
        self.seq
    }

    /// Largest number of simultaneously pending events seen so far — a
    /// cheap proxy for the model's fan-out that observers fold into
    /// interval snapshots.
    #[inline]
    pub fn queue_high_water(&self) -> usize {
        self.high_water
    }

    /// Largest number of entries any single wheel slot has held — how
    /// bursty the schedule is at slot granularity (the initial wake-up
    /// burst dominates in the mobile-caching model).
    #[inline]
    pub fn slot_high_water(&self) -> usize {
        self.slot_high_water
    }

    /// Overflow cascades performed: coarse slots redistributed into
    /// finer levels as the clock crossed their window boundaries. Purely
    /// structural work — cascades never reorder deliveries.
    #[inline]
    pub fn cascades(&self) -> u64 {
        self.cascades
    }

    /// Total entry capacity currently retained across all wheel slots —
    /// a diagnostic for the post-burst shrink policy (drained slots are
    /// bounded to a small keep-capacity).
    pub fn slot_capacity(&self) -> usize {
        self.levels
            .iter()
            .flat_map(|l| l.buckets.iter())
            .map(Vec::capacity)
            .sum()
    }

    /// The absolute leaf-slot number of `at`. Saturates for times beyond
    /// `u64` range (including the `INFINITY` sentinel), which routes
    /// them to the overflow heap. Monotone in `at`, which is all the
    /// ordering proof needs.
    #[inline]
    fn leaf_slot(&self, at: SimTime) -> u64 {
        (at.as_secs() * self.resolution_inv) as u64
    }

    /// Files an entry at the finest level whose current window covers
    /// it, or the overflow heap. The caller maintains `pending` and the
    /// instrumentation counters.
    fn place(&mut self, e: Entry<E>) {
        let li = self.leaf_slot(e.at);
        for k in 0..LEVELS {
            let window_shift = LEVEL_BITS * (k + 1);
            if li >> window_shift != self.cur >> window_shift {
                continue; // beyond this level's current window
            }
            let slot = ((li >> (LEVEL_BITS * k)) & LEVEL_MASK) as usize;
            let live = k == 0 && self.active && li == self.cur;
            self.levels[k as usize].set_bit(slot);
            let bucket = &mut self.levels[k as usize].buckets[slot];
            if live {
                // The slot is already sorted (descending) and being
                // drained: insert in order. The new entry holds the
                // largest `seq`, so ties resolve behind equal times.
                let key = e.key();
                let pos = bucket.partition_point(|x| x.key() > key);
                bucket.insert(pos, e);
            } else {
                bucket.push(e);
            }
            self.slot_high_water = self.slot_high_water.max(bucket.len());
            return;
        }
        self.overflow.push(OverflowEntry(e));
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduled event in the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.place(Entry { at, seq, event });
        self.pending += 1;
        self.high_water = self.high_water.max(self.pending);
    }

    /// Schedules `event` after a relative delay in seconds.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        assert!(delay >= 0.0, "negative delay {delay}");
        let at = self.now + delay;
        self.schedule(at, event);
    }

    /// Capacity hint, retained for API compatibility. The wheel spreads
    /// a burst across per-slot vectors that each grow to their own share
    /// (amortized O(1), no single doubling cascade), so there is no
    /// global buffer to pre-size; drained slots are bounded back to a
    /// small keep-capacity regardless.
    pub fn reserve(&mut self, additional: usize) {
        let _ = additional;
    }

    /// Schedules a burst of events in iteration order, preserving the
    /// FIFO tie-break contract (the `n`-th item gets the `n`-th sequence
    /// number, exactly as `n` individual [`Scheduler::schedule`] calls
    /// would). Slot vectors size themselves to the burst's exact
    /// per-slot share as it lands, whatever the iterator's size hint
    /// claims — the old heap's lower-bound reserve (zero for adapters
    /// that cannot guess) and its retained peak capacity are both gone.
    ///
    /// # Panics
    /// Panics if any timestamp is earlier than the current clock.
    pub fn schedule_batch<I>(&mut self, events: I)
    where
        I: IntoIterator<Item = (SimTime, E)>,
    {
        for (at, event) in events {
            self.schedule(at, event);
        }
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.pending == 0 {
            return None;
        }
        let cur_slot = (self.cur & LEVEL_MASK) as usize;
        if let Some(slot) = self.levels[0].next_set_from(cur_slot) {
            let bucket = &self.levels[0].buckets[slot];
            let at = if self.active && slot == cur_slot {
                bucket.last().expect("occupied slot has entries").at
            } else {
                // Unsorted slot: the earliest time is a linear scan.
                bucket
                    .iter()
                    .map(|e| e.at)
                    .min()
                    .expect("occupied slot has entries")
            };
            return Some(at);
        }
        for k in 1..LEVELS {
            let shift = LEVEL_BITS * k;
            let cb = ((self.cur >> shift) & LEVEL_MASK) as usize;
            if let Some(slot) = self.levels[k as usize].next_set_from(cb + 1) {
                return self.levels[k as usize].buckets[slot]
                    .iter()
                    .map(|e| e.at)
                    .min();
            }
        }
        self.overflow.peek().map(|e| e.0.at)
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the event list is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.pending == 0 {
            return None;
        }
        loop {
            let cur_slot = (self.cur & LEVEL_MASK) as usize;
            if self.active {
                let bucket = &mut self.levels[0].buckets[cur_slot];
                // Sorted descending: the back is the earliest (at, seq).
                let entry = bucket.pop().expect("live slot is never empty");
                if bucket.is_empty() {
                    if bucket.capacity() > SLOT_KEEP_CAPACITY {
                        // Release burst capacity as soon as it drains.
                        *bucket = Vec::new();
                    }
                    self.levels[0].clear_bit(cur_slot);
                    self.active = false;
                }
                self.pending -= 1;
                self.popped += 1;
                debug_assert!(entry.at >= self.now, "event list went backwards");
                self.now = entry.at;
                return Some((entry.at, entry.event));
            }
            // Hunt: the earliest occupied leaf slot at or after `cur`.
            if let Some(slot) = self.levels[0].next_set_from(cur_slot) {
                self.cur = (self.cur & !LEVEL_MASK) | slot as u64;
                self.levels[0].buckets[slot].sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
                self.active = true;
                continue;
            }
            // Leaf window exhausted: cascade the next occupied coarse
            // slot down. Slot numbers at level k share their high bits
            // with `cur`, so the slot at the current position's own
            // index is always empty (its contents live at finer levels)
            // and the scan starts one past it.
            let mut cascaded = false;
            for k in 1..LEVELS {
                let shift = LEVEL_BITS * k;
                let cb = ((self.cur >> shift) & LEVEL_MASK) as usize;
                let Some(slot) = self.levels[k as usize].next_set_from(cb + 1) else {
                    continue;
                };
                let high = self.cur >> (shift + LEVEL_BITS);
                self.cur = ((high << LEVEL_BITS) | slot as u64) << shift;
                let entries = std::mem::take(&mut self.levels[k as usize].buckets[slot]);
                self.levels[k as usize].clear_bit(slot);
                self.cascades += 1;
                for e in entries {
                    self.place(e);
                }
                cascaded = true;
                break;
            }
            if cascaded {
                continue;
            }
            // Every wheel level is empty: jump to the overflow's
            // earliest event and re-home everything that now falls
            // inside the top-level window.
            let earliest = self
                .overflow
                .peek()
                .expect("pending events exist beyond the wheels")
                .0
                .at;
            self.cur = self.leaf_slot(earliest);
            while let Some(top) = self.overflow.peek() {
                let li = self.leaf_slot(top.0.at);
                if li >> (LEVEL_BITS * LEVELS) != self.cur >> (LEVEL_BITS * LEVELS) {
                    break;
                }
                let OverflowEntry(e) = self.overflow.pop().expect("just peeked");
                self.place(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.schedule(SimTime::from_secs(5.0), "c");
        s.schedule(SimTime::from_secs(1.0), "a");
        s.schedule(SimTime::from_secs(3.0), "b");
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_broken_by_insertion_order() {
        let mut s: Scheduler<u32> = Scheduler::new();
        for i in 0..100 {
            s.schedule(SimTime::from_secs(7.0), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_to_popped_event() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.schedule(SimTime::from_secs(2.5), ());
        assert_eq!(s.now(), SimTime::ZERO);
        s.pop();
        assert_eq!(s.now(), SimTime::from_secs(2.5));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut s: Scheduler<u8> = Scheduler::new();
        s.schedule(SimTime::from_secs(4.0), 1);
        s.pop();
        s.schedule_in(6.0, 2);
        let (at, _) = s.pop().unwrap();
        assert_eq!(at, SimTime::from_secs(10.0));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn past_scheduling_panics() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.schedule(SimTime::from_secs(10.0), ());
        s.pop();
        s.schedule(SimTime::from_secs(1.0), ());
    }

    #[test]
    fn counters() {
        let mut s: Scheduler<u8> = Scheduler::new();
        assert!(s.is_empty());
        s.schedule_in(1.0, 0);
        s.schedule_in(2.0, 1);
        assert_eq!(s.len(), 2);
        s.pop();
        assert_eq!(s.events_delivered(), 1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn schedule_batch_preserves_fifo_tie_break() {
        // A batch interleaved with individual calls must deliver
        // same-instant events in overall insertion order — the contract
        // the simulation's reproducibility rests on.
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule(SimTime::from_secs(7.0), 0);
        s.schedule_batch((1..50).map(|i| (SimTime::from_secs(7.0), i)));
        s.schedule(SimTime::from_secs(7.0), 50);
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..=50).collect::<Vec<_>>());
        assert_eq!(s.events_scheduled(), 51);
    }

    #[test]
    fn chained_shard_batches_equal_one_serial_batch() {
        // The sharded wake-up burst's merge contract: splitting one
        // burst into contiguous shard-local buffers and replaying them
        // with one `schedule_batch` per shard (in shard order) must
        // hand out exactly the sequence numbers — hence exactly the
        // pop order — of a single serial batch, for any chunking,
        // including chunk sizes that do not divide the burst.
        let burst: Vec<(SimTime, u32)> = (0..40)
            .map(|i| (SimTime::from_secs(if i % 3 == 0 { 5.0 } else { 9.0 }), i))
            .collect();
        let mut serial: Scheduler<u32> = Scheduler::new();
        serial.schedule_batch(burst.iter().copied());
        let want: Vec<_> = std::iter::from_fn(|| serial.pop()).collect();
        for chunk in [1usize, 7, 13, 40, 64] {
            let mut sharded: Scheduler<u32> = Scheduler::new();
            sharded.reserve(burst.len());
            for shard in burst.chunks(chunk) {
                sharded.schedule_batch(shard.iter().copied());
            }
            let got: Vec<_> = std::iter::from_fn(|| sharded.pop()).collect();
            assert_eq!(got, want, "chunk size {chunk}");
        }
    }

    #[test]
    fn reserve_does_not_disturb_counters() {
        let mut s: Scheduler<u8> = Scheduler::new();
        s.reserve(128);
        assert_eq!(s.events_scheduled(), 0);
        assert!(s.is_empty());
        s.schedule_in(1.0, 1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn instrumentation_counters_track_scheduling() {
        let mut s: Scheduler<u8> = Scheduler::new();
        assert_eq!(s.events_scheduled(), 0);
        assert_eq!(s.queue_high_water(), 0);
        s.schedule_in(1.0, 0);
        s.schedule_in(2.0, 1);
        s.schedule_in(3.0, 2);
        assert_eq!(s.events_scheduled(), 3);
        assert_eq!(s.queue_high_water(), 3);
        s.pop();
        s.pop();
        // High water is a max, not the current depth.
        assert_eq!(s.queue_high_water(), 3);
        s.schedule_in(1.0, 3);
        assert_eq!(s.events_scheduled(), 4);
        assert_eq!(s.queue_high_water(), 3);
    }

    #[test]
    fn far_horizons_cross_cascade_boundaries_in_order() {
        // Times spanning the leaf window (64 s), level-1 (~16 384 s) and
        // level-2 (~4.2 M s) windows, interleaved, pop in (at, seq)
        // order with at least one cascade performed along the way.
        let times = [
            0.1, 63.9, 64.0, 100.0, 16_383.0, 16_384.5, 99_999.9, 4.3e6, 7.0e6, 1.0e8,
        ];
        let mut s: Scheduler<usize> = Scheduler::new();
        // Insertion order deliberately scrambled.
        for (i, &t) in times.iter().enumerate().rev() {
            s.schedule(SimTime::from_secs(t), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..times.len()).collect::<Vec<_>>());
        assert!(s.cascades() > 0, "far horizons must cascade");
    }

    #[test]
    fn overflow_events_beyond_top_window_still_order() {
        // 1e12 s is beyond the top-level window at the default
        // resolution; such events (and the INFINITY sentinel) wait in
        // the overflow heap and surface in order once the wheels drain.
        let mut s: Scheduler<&str> = Scheduler::new();
        s.schedule(SimTime::INFINITY, "inf");
        s.schedule(SimTime::from_secs(1.0e12), "far");
        s.schedule(SimTime::from_secs(5.0), "near");
        s.schedule(SimTime::from_secs(1.0e12), "far2");
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["near", "far", "far2", "inf"]);
    }

    #[test]
    fn schedule_into_live_slot_keeps_order() {
        // Pop into the middle of a slot, then schedule more events that
        // land in the same (already sorted and draining) slot: sorted
        // insert must keep the (at, seq) order, including FIFO ties.
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule(SimTime::from_secs(10.01), 0);
        s.schedule(SimTime::from_secs(10.05), 2);
        s.schedule(SimTime::from_secs(10.05), 3);
        assert_eq!(s.pop().unwrap().1, 0); // slot 10.0..10.25 is now live
        s.schedule(SimTime::from_secs(10.02), 1);
        s.schedule(SimTime::from_secs(10.05), 4); // FIFO behind 2 and 3
        s.schedule(SimTime::from_secs(10.20), 5);
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn drained_slots_release_burst_capacity() {
        // A wake-up-burst-shaped load: many events in few slots. After
        // the burst drains, retained slot capacity must be bounded, not
        // proportional to the burst.
        let mut s: Scheduler<u32> = Scheduler::new();
        for i in 0..100_000u32 {
            s.schedule(SimTime::from_secs(f64::from(i % 16) * 0.25), i);
        }
        let peak = s.slot_capacity();
        assert!(peak >= 100_000, "burst capacity expected, got {peak}");
        while s.pop().is_some() {}
        let after = s.slot_capacity();
        assert!(
            after <= SLOT_KEEP_CAPACITY * SLOTS * LEVELS as usize,
            "drained wheel retains {after} entry capacity"
        );
        assert!(s.slot_high_water() >= 100_000 / 16);
    }

    #[test]
    fn peek_matches_pop_everywhere() {
        let times = [
            0.0, 0.1, 0.1, 3.0, 63.99, 64.0, 1_000.0, 20_000.0, 5.0e6, 2.0e12,
        ];
        let mut s: Scheduler<usize> = Scheduler::new();
        for (i, &t) in times.iter().enumerate() {
            s.schedule(SimTime::from_secs(t), i);
        }
        loop {
            let peeked = s.peek_time();
            let popped = s.pop();
            assert_eq!(peeked, popped.map(|(at, _)| at));
            if popped.is_none() {
                break;
            }
        }
    }

    #[test]
    fn custom_resolution_is_order_invariant() {
        let times = [0.3, 0.1, 17.0, 17.0, 1_000.0, 2.5, 40_000.0];
        let mut want: Vec<(SimTime, usize)> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (SimTime::from_secs(t), i))
            .collect();
        want.sort_by_key(|&(at, i)| (at, i));
        for res in [0.015_625, 0.25, 4.0, 1_024.0] {
            let mut s: Scheduler<usize> = Scheduler::with_resolution(res);
            for (i, &t) in times.iter().enumerate() {
                s.schedule(SimTime::from_secs(t), i);
            }
            let got: Vec<_> = std::iter::from_fn(|| s.pop()).collect();
            assert_eq!(got, want, "resolution {res}");
        }
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_resolution_rejected() {
        let _: Scheduler<()> = Scheduler::with_resolution(0.0);
    }
}
