//! The future event list.
//!
//! A classic discrete-event scheduler: a binary heap of `(time, seq, event)`
//! entries where `seq` is a monotonically increasing tie-breaker so that
//! events scheduled for the same instant are delivered in FIFO (insertion)
//! order. Deterministic tie-breaking matters: the mobile-caching model
//! schedules a broadcast tick and many client wake-ups at the same instant,
//! and reproducibility from a seed requires a stable service order.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future event list over an application-defined event type `E`.
///
/// The scheduler owns the simulation clock: [`Scheduler::pop`] advances
/// `now()` to the popped event's timestamp. Scheduling an event in the past
/// panics — that is always a model bug.
pub struct Scheduler<E> {
    heap: BinaryHeap<Entry<E>>,
    now: SimTime,
    seq: u64,
    popped: u64,
    high_water: usize,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// An empty scheduler with the clock at zero.
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            popped: 0,
            high_water: 0,
        }
    }

    /// The current simulated time (timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events currently pending.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events delivered so far (a cheap progress metric).
    #[inline]
    pub fn events_delivered(&self) -> u64 {
        self.popped
    }

    /// Total number of events ever scheduled (delivered or still pending).
    #[inline]
    pub fn events_scheduled(&self) -> u64 {
        self.seq
    }

    /// Largest number of simultaneously pending events seen so far — a
    /// cheap proxy for the model's fan-out that observers fold into
    /// interval snapshots.
    #[inline]
    pub fn queue_high_water(&self) -> usize {
        self.high_water
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduled event in the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
        self.high_water = self.high_water.max(self.heap.len());
    }

    /// Schedules `event` after a relative delay in seconds.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        assert!(delay >= 0.0, "negative delay {delay}");
        let at = self.now + delay;
        self.schedule(at, event);
    }

    /// Reserves heap capacity for at least `additional` more events, so
    /// a known burst (e.g. one wake-up per client) costs at most one
    /// reallocation instead of a doubling cascade.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Schedules a burst of events in iteration order, preserving the
    /// FIFO tie-break contract (the `n`-th item gets the `n`-th sequence
    /// number, exactly as `n` individual [`Scheduler::schedule`] calls
    /// would). Reserves capacity up front when the iterator's size is
    /// known.
    ///
    /// # Panics
    /// Panics if any timestamp is earlier than the current clock.
    pub fn schedule_batch<I>(&mut self, events: I)
    where
        I: IntoIterator<Item = (SimTime, E)>,
    {
        let events = events.into_iter();
        self.heap.reserve(events.size_hint().0);
        for (at, event) in events {
            self.schedule(at, event);
        }
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the event list is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "event list went backwards");
        self.now = entry.at;
        self.popped += 1;
        Some((entry.at, entry.event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.schedule(SimTime::from_secs(5.0), "c");
        s.schedule(SimTime::from_secs(1.0), "a");
        s.schedule(SimTime::from_secs(3.0), "b");
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_broken_by_insertion_order() {
        let mut s: Scheduler<u32> = Scheduler::new();
        for i in 0..100 {
            s.schedule(SimTime::from_secs(7.0), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_to_popped_event() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.schedule(SimTime::from_secs(2.5), ());
        assert_eq!(s.now(), SimTime::ZERO);
        s.pop();
        assert_eq!(s.now(), SimTime::from_secs(2.5));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut s: Scheduler<u8> = Scheduler::new();
        s.schedule(SimTime::from_secs(4.0), 1);
        s.pop();
        s.schedule_in(6.0, 2);
        let (at, _) = s.pop().unwrap();
        assert_eq!(at, SimTime::from_secs(10.0));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn past_scheduling_panics() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.schedule(SimTime::from_secs(10.0), ());
        s.pop();
        s.schedule(SimTime::from_secs(1.0), ());
    }

    #[test]
    fn counters() {
        let mut s: Scheduler<u8> = Scheduler::new();
        assert!(s.is_empty());
        s.schedule_in(1.0, 0);
        s.schedule_in(2.0, 1);
        assert_eq!(s.len(), 2);
        s.pop();
        assert_eq!(s.events_delivered(), 1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn schedule_batch_preserves_fifo_tie_break() {
        // A batch interleaved with individual calls must deliver
        // same-instant events in overall insertion order — the contract
        // the simulation's reproducibility rests on.
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule(SimTime::from_secs(7.0), 0);
        s.schedule_batch((1..50).map(|i| (SimTime::from_secs(7.0), i)));
        s.schedule(SimTime::from_secs(7.0), 50);
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..=50).collect::<Vec<_>>());
        assert_eq!(s.events_scheduled(), 51);
    }

    #[test]
    fn chained_shard_batches_equal_one_serial_batch() {
        // The sharded wake-up burst's merge contract: splitting one
        // burst into contiguous shard-local buffers and replaying them
        // with one `schedule_batch` per shard (in shard order) must
        // hand out exactly the sequence numbers — hence exactly the
        // pop order — of a single serial batch, for any chunking,
        // including chunk sizes that do not divide the burst.
        let burst: Vec<(SimTime, u32)> = (0..40)
            .map(|i| (SimTime::from_secs(if i % 3 == 0 { 5.0 } else { 9.0 }), i))
            .collect();
        let mut serial: Scheduler<u32> = Scheduler::new();
        serial.schedule_batch(burst.iter().copied());
        let want: Vec<_> = std::iter::from_fn(|| serial.pop()).collect();
        for chunk in [1usize, 7, 13, 40, 64] {
            let mut sharded: Scheduler<u32> = Scheduler::new();
            sharded.reserve(burst.len());
            for shard in burst.chunks(chunk) {
                sharded.schedule_batch(shard.iter().copied());
            }
            let got: Vec<_> = std::iter::from_fn(|| sharded.pop()).collect();
            assert_eq!(got, want, "chunk size {chunk}");
        }
    }

    #[test]
    fn reserve_does_not_disturb_counters() {
        let mut s: Scheduler<u8> = Scheduler::new();
        s.reserve(128);
        assert_eq!(s.events_scheduled(), 0);
        assert!(s.is_empty());
        s.schedule_in(1.0, 1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn instrumentation_counters_track_scheduling() {
        let mut s: Scheduler<u8> = Scheduler::new();
        assert_eq!(s.events_scheduled(), 0);
        assert_eq!(s.queue_high_water(), 0);
        s.schedule_in(1.0, 0);
        s.schedule_in(2.0, 1);
        s.schedule_in(3.0, 2);
        assert_eq!(s.events_scheduled(), 3);
        assert_eq!(s.queue_high_water(), 3);
        s.pop();
        s.pop();
        // High water is a max, not the current depth.
        assert_eq!(s.queue_high_water(), 3);
        s.schedule_in(1.0, 3);
        assert_eq!(s.events_scheduled(), 4);
        assert_eq!(s.queue_high_water(), 3);
    }
}
