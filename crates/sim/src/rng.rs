//! Deterministic, splittable pseudo-random generation.
//!
//! Reproducibility is a first-class requirement: a figure in EXPERIMENTS.md
//! must be regenerable bit-for-bit from its seed. We therefore implement a
//! fixed algorithm (xoshiro256++, seeded through SplitMix64) rather than
//! relying on `rand`'s version-dependent `StdRng`/`SmallRng` stream
//! stability.
//!
//! Every stochastic process in the model (the server's update process, each
//! client's query/think/disconnection processes, …) gets an **independent
//! stream** derived from `(master seed, stream id)` so that changing one
//! parameter (say, the number of clients) does not perturb the random
//! choices of unrelated processes — the classic common-random-numbers
//! variance-reduction discipline.

/// The registry of RNG stream identifiers.
///
/// Every stochastic subsystem draws from its own stream derived from
/// `(master seed, stream id)`. Historically the ids were ad-hoc
/// constants scattered across the engine (`0`, `1 + c`,
/// `0xFA17… + c`); this enum is the single place a new subsystem
/// claims a collision-free range. The `value()` mapping reproduces the
/// historical constants bit-for-bit, so digests pinned before the
/// registry existed still hold.
///
/// Layout of the 64-bit id space:
///
/// | range                              | stream                  |
/// |------------------------------------|-------------------------|
/// | `0`                                | server update process   |
/// | `1 + c` for `c < 2^32`             | client `c` behaviour    |
/// | `0xFA17_0000_0000_0000 + c`        | client `c` fault coins  |
/// | `0xCE11_0000_0000_0000 + c`        | client `c` mobility     |
///
/// New subsystems must add a variant here (picking a fresh high-bits
/// prefix) rather than minting raw constants.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StreamId {
    /// The server's update inter-arrival / item-choice process.
    Update,
    /// Client `c`'s query, think and disconnection processes.
    Client(u32),
    /// Client `c`'s fault coins (downlink bursts, uplink loss).
    Fault(u32),
    /// Client `c`'s mobility process (cell residency, roam choice).
    Mobility(u32),
}

impl StreamId {
    /// The raw 64-bit stream id (bit-identical to the pre-registry
    /// ad-hoc constants).
    #[inline]
    pub fn value(self) -> u64 {
        match self {
            StreamId::Update => 0,
            StreamId::Client(c) => 1 + u64::from(c),
            StreamId::Fault(c) => 0xFA17_0000_0000_0000 + u64::from(c),
            StreamId::Mobility(c) => 0xCE11_0000_0000_0000 + u64::from(c),
        }
    }
}

/// SplitMix64 step; used for seeding and stream derivation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ generator with helper methods for the simulator.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a raw 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state; splitmix64 of any
        // seed cannot produce four zero words, but guard regardless.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SimRng { s }
    }

    /// Derives an independent stream from a master seed and a stream id.
    ///
    /// Streams with different ids are statistically independent for our
    /// purposes (the ids are mixed through SplitMix64 before seeding).
    pub fn stream(master_seed: u64, stream_id: u64) -> Self {
        let mut sm = master_seed ^ 0xA076_1D64_78BD_642F;
        let a = splitmix64(&mut sm);
        let mut sm2 = a ^ stream_id.wrapping_mul(0xE703_7ED1_A0B4_28DB);
        let derived = splitmix64(&mut sm2) ^ splitmix64(&mut sm2).rotate_left(32);
        SimRng::new(derived)
    }

    /// Derives the independent stream for a registered [`StreamId`].
    ///
    /// This is the typed front door over [`SimRng::stream`]: subsystems
    /// name their stream instead of minting raw constants.
    #[inline]
    pub fn for_stream(master_seed: u64, id: StreamId) -> Self {
        SimRng::stream(master_seed, id.value())
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `(0, 1]` — safe to pass to `ln()`.
    #[inline]
    pub fn next_f64_open0(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// A uniform integer in `[0, bound)` using Lemire's unbiased method.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn next_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        lo + self.next_below(hi - lo + 1)
    }

    /// A Bernoulli trial with success probability `p`.
    #[inline]
    pub fn coin(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let mut s0 = SimRng::stream(7, 0);
        let mut s0b = SimRng::stream(7, 0);
        let mut s1 = SimRng::stream(7, 1);
        assert_eq!(s0.next_u64(), s0b.next_u64());
        let mut collisions = 0;
        for _ in 0..256 {
            if s0.next_u64() == s1.next_u64() {
                collisions += 1;
            }
        }
        assert_eq!(collisions, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.next_f64_open0();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = SimRng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn next_below_is_in_range_and_roughly_uniform() {
        let mut r = SimRng::new(5);
        let bound = 10u64;
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            let v = r.next_below(bound);
            assert!(v < bound);
            counts[v as usize] += 1;
        }
        for &c in &counts {
            // Expected 10 000 each; allow ±5 %.
            assert!((9_500..10_500).contains(&c), "count {c}");
        }
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut r = SimRng::new(9);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = r.next_range_inclusive(3, 6);
            assert!((3..=6).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 6;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn coin_respects_probability() {
        let mut r = SimRng::new(13);
        let hits = (0..100_000).filter(|_| r.coin(0.3)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.3).abs() < 0.01, "p {p}");
        assert!((0..1000).all(|_| !r.coin(0.0)));
        assert!((0..1000).all(|_| r.coin(1.0)));
    }

    #[test]
    #[should_panic(expected = "next_below(0)")]
    fn zero_bound_panics() {
        SimRng::new(0).next_below(0);
    }

    /// The registry reproduces the historical ad-hoc constants exactly:
    /// digests pinned before `StreamId` existed depend on these values.
    #[test]
    fn stream_registry_values_are_pinned() {
        assert_eq!(StreamId::Update.value(), 0);
        assert_eq!(StreamId::Client(0).value(), 1);
        assert_eq!(StreamId::Client(7).value(), 8);
        assert_eq!(StreamId::Fault(0).value(), 0xFA17_0000_0000_0000);
        assert_eq!(StreamId::Fault(9).value(), 0xFA17_0000_0000_0009);
        assert_eq!(StreamId::Mobility(0).value(), 0xCE11_0000_0000_0000);
        assert_eq!(StreamId::Mobility(9).value(), 0xCE11_0000_0000_0009);
    }

    /// The typed derivation is byte-identical to the raw one.
    #[test]
    fn for_stream_matches_raw_stream() {
        for (id, raw) in [
            (StreamId::Update, 0u64),
            (StreamId::Client(3), 4),
            (StreamId::Fault(3), 0xFA17_0000_0000_0003),
            (StreamId::Mobility(3), 0xCE11_0000_0000_0003),
        ] {
            let mut typed = SimRng::for_stream(0x1997_AD07, id);
            let mut raw = SimRng::stream(0x1997_AD07, raw);
            for _ in 0..64 {
                assert_eq!(typed.next_u64(), raw.next_u64());
            }
        }
    }

    /// No two registry entries collide in the id space (spot-checked
    /// over the low client range; the prefixes keep the ranges apart).
    #[test]
    fn stream_registry_is_collision_free() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        assert!(seen.insert(StreamId::Update.value()));
        for c in 0..1_000u32 {
            assert!(seen.insert(StreamId::Client(c).value()));
            assert!(seen.insert(StreamId::Fault(c).value()));
            assert!(seen.insert(StreamId::Mobility(c).value()));
        }
    }
}
