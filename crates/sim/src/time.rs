//! Simulation clock type.
//!
//! Simulated time is a non-negative, finite `f64` measured in **seconds**
//! (the paper's natural unit: broadcast period 20 s, think time 100 s,
//! simulation horizon 100 000 s). [`SimTime`] wraps the raw float to give it
//! a total order (NaN is rejected at construction) so it can live in ordered
//! collections such as the future event list and the server's
//! recency-ordered update index.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in seconds since the start of the run.
///
/// Invariant: the inner value is finite (or `+inf` for [`SimTime::INFINITY`])
/// and never NaN, which makes the `Ord` implementation a genuine total order.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0.0);
    /// A time later than every event; useful as a sentinel.
    pub const INFINITY: SimTime = SimTime(f64::INFINITY);

    /// Wraps a raw number of seconds.
    ///
    /// # Panics
    /// Panics if `secs` is NaN (a NaN clock would silently corrupt the
    /// event-list ordering, so we fail fast instead).
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        assert!(!secs.is_nan(), "SimTime cannot be NaN");
        SimTime(secs)
    }

    /// The raw number of seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// `true` when this is the `INFINITY` sentinel.
    #[inline]
    pub fn is_infinite(self) -> bool {
        self.0.is_infinite()
    }

    /// Saturating difference `self - earlier`, clamped at zero.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> f64 {
        (self.0 - earlier.0).max(0.0)
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Safe: construction forbids NaN.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, secs: f64) -> SimTime {
        SimTime::from_secs(self.0 + secs)
    }
}

impl AddAssign<f64> for SimTime {
    #[inline]
    fn add_assign(&mut self, secs: f64) {
        *self = *self + secs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = f64;
    #[inline]
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_and_sane() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(a < SimTime::INFINITY);
        assert_eq!(SimTime::ZERO.as_secs(), 0.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10.0) + 5.0;
        assert_eq!(t.as_secs(), 15.0);
        assert_eq!(t - SimTime::from_secs(4.0), 11.0);
        let mut u = SimTime::ZERO;
        u += 3.5;
        assert_eq!(u.as_secs(), 3.5);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_secs(5.0);
        let late = SimTime::from_secs(9.0);
        assert_eq!(late.saturating_since(early), 4.0);
        assert_eq!(early.saturating_since(late), 0.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn infinity_sentinel() {
        assert!(SimTime::INFINITY.is_infinite());
        assert!(!SimTime::from_secs(1e12).is_infinite());
    }
}
