//! The distributions used by the simulation model (§4 of the paper).
//!
//! * [`Exp`] — exponential inter-arrival/think/disconnection times.
//! * [`Poisson`] — number of items touched by an update transaction or
//!   referenced by a query ("mean data items updated by a transaction = 5").
//! * [`UniformRange`] — uniform item selection inside a database region.
//! * [`Bernoulli`] — the hot/cold and disconnection coins.
//! * [`Zipf`] — an extension used by the skewed-access ablation.
//!
//! All samplers draw from [`SimRng`] and are plain value types, so a
//! workload generator can own one per process stream.

use crate::rng::SimRng;

/// Exponential distribution with a given mean (not rate).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exp {
    mean: f64,
}

impl Exp {
    /// An exponential with mean `mean` seconds.
    ///
    /// # Panics
    /// Panics unless `mean` is finite and positive.
    pub fn with_mean(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive and finite, got {mean}"
        );
        Exp { mean }
    }

    /// The configured mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Draws a sample via inverse-transform: `-mean * ln(U)`, `U ∈ (0, 1]`.
    #[inline]
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        -self.mean * rng.next_f64_open0().ln()
    }
}

/// Poisson distribution (Knuth's multiplication method).
///
/// Only small means appear in the model (5 items per update transaction,
/// 10 items per query), where Knuth's method is both exact and fast.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Poisson {
    mean: f64,
    exp_neg_mean: f64,
}

impl Poisson {
    /// A Poisson with the given mean.
    ///
    /// # Panics
    /// Panics unless `mean` is positive and small enough for Knuth's method
    /// (`exp(-mean)` must not underflow; we cap at 700).
    pub fn with_mean(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0 && mean < 700.0,
            "Poisson mean must be in (0, 700), got {mean}"
        );
        Poisson {
            mean,
            exp_neg_mean: (-mean).exp(),
        }
    }

    /// The configured mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Draws a sample.
    #[inline]
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let mut k = 0u64;
        let mut p = 1.0f64;
        loop {
            p *= rng.next_f64_open0();
            if p <= self.exp_neg_mean {
                return k;
            }
            k += 1;
        }
    }

    /// Draws a sample clamped below at 1 — a transaction that updates zero
    /// items or a query that reads zero items is meaningless in the model.
    #[inline]
    pub fn sample_at_least_one(&self, rng: &mut SimRng) -> u64 {
        self.sample(rng).max(1)
    }
}

/// Uniform integer distribution over the inclusive range `[lo, hi]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UniformRange {
    lo: u64,
    hi: u64,
}

impl UniformRange {
    /// A uniform over `[lo, hi]` (inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn new_inclusive(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "empty uniform range [{lo}, {hi}]");
        UniformRange { lo, hi }
    }

    /// Lower bound (inclusive).
    pub fn lo(&self) -> u64 {
        self.lo
    }

    /// Upper bound (inclusive).
    pub fn hi(&self) -> u64 {
        self.hi
    }

    /// Number of values in the range.
    pub fn len(&self) -> u64 {
        self.hi - self.lo + 1
    }

    /// `true` when the range holds a single value.
    pub fn is_empty(&self) -> bool {
        false // by construction the range is never empty
    }

    /// Draws a sample.
    #[inline]
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        rng.next_range_inclusive(self.lo, self.hi)
    }
}

/// Bernoulli coin with fixed success probability.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// A coin landing `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        Bernoulli { p }
    }

    /// The success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Flips the coin.
    #[inline]
    pub fn sample(&self, rng: &mut SimRng) -> bool {
        rng.coin(self.p)
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `theta`.
///
/// Not part of the paper's Table 2 (which uses hot/cold regions), but a
/// natural extension for skewed-access ablations. Sampling is by inverted
/// CDF over precomputed cumulative weights (O(log n) per sample).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A Zipf over `1..=n` with skew `theta > 0` (`theta → 0` approaches
    /// uniform; `theta = 1` is the classic harmonic profile).
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is not finite and positive.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "Zipf over empty support");
        assert!(
            theta.is_finite() && theta > 0.0,
            "Zipf exponent must be positive, got {theta}"
        );
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for w in &mut cdf {
            *w /= total;
        }
        // Guard against floating-point round-off at the top end.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Zipf { cdf }
    }

    /// Support size.
    pub fn n(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// Draws a rank in `1..=n` (rank 1 is the most popular).
    #[inline]
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = rng.next_f64();
        let idx = self
            .cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1);
        idx as u64 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(0x00DE_C0DE)
    }

    #[test]
    fn exp_mean_matches() {
        let d = Exp::with_mean(100.0);
        let mut r = rng();
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 1.5, "mean {mean}");
    }

    #[test]
    fn exp_samples_nonnegative() {
        let d = Exp::with_mean(0.001);
        let mut r = rng();
        assert!((0..10_000).all(|_| d.sample(&mut r) >= 0.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exp_rejects_nonpositive_mean() {
        Exp::with_mean(0.0);
    }

    #[test]
    fn poisson_mean_and_variance() {
        let d = Poisson::with_mean(5.0);
        let mut r = rng();
        let n = 100_000usize;
        let samples: Vec<u64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / n as f64;
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 5.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn poisson_at_least_one_floor() {
        let d = Poisson::with_mean(0.1);
        let mut r = rng();
        assert!((0..10_000).all(|_| d.sample_at_least_one(&mut r) >= 1));
    }

    #[test]
    fn uniform_range_bounds() {
        let d = UniformRange::new_inclusive(10, 19);
        assert_eq!(d.len(), 10);
        let mut r = rng();
        for _ in 0..10_000 {
            let v = d.sample(&mut r);
            assert!((10..=19).contains(&v));
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = rng();
        assert!(!Bernoulli::new(0.0).sample(&mut r));
        assert!(Bernoulli::new(1.0).sample(&mut r));
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let d = Zipf::new(1000, 1.0);
        let mut r = rng();
        let n = 100_000;
        let ones = (0..n).filter(|_| d.sample(&mut r) == 1).count() as f64 / n as f64;
        // For n=1000, theta=1: P(1) = 1/H_1000 ≈ 0.1336.
        assert!((ones - 0.1336).abs() < 0.01, "P(rank 1) {ones}");
    }

    #[test]
    fn zipf_stays_in_support() {
        let d = Zipf::new(7, 0.8);
        let mut r = rng();
        for _ in 0..10_000 {
            let v = d.sample(&mut r);
            assert!((1..=7).contains(&v));
        }
    }
}
