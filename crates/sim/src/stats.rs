//! Online statistics accumulators.
//!
//! The simulator reports throughput, per-query uplink cost, latency
//! percentiles and channel utilisation; these accumulators collect them in
//! one pass with O(1) memory (except the histogram, which is fixed-size).

use crate::time::SimTime;

/// Welford single-pass mean/variance accumulator.
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, or `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation, or `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Time-weighted average of a piecewise-constant signal (e.g. queue length,
/// channel busy state).
#[derive(Clone, Debug)]
pub struct TimeWeighted {
    last_t: SimTime,
    last_v: f64,
    weighted_sum: f64,
    origin: SimTime,
}

impl TimeWeighted {
    /// Starts tracking at `t0` with initial value `v0`.
    pub fn new(t0: SimTime, v0: f64) -> Self {
        TimeWeighted {
            last_t: t0,
            last_v: v0,
            weighted_sum: 0.0,
            origin: t0,
        }
    }

    /// Records that the signal changed to `v` at time `t`.
    ///
    /// # Panics
    /// Panics if `t` precedes the previous update.
    pub fn update(&mut self, t: SimTime, v: f64) {
        assert!(t >= self.last_t, "time went backwards");
        self.weighted_sum += self.last_v * (t - self.last_t);
        self.last_t = t;
        self.last_v = v;
    }

    /// The current value of the signal.
    pub fn current(&self) -> f64 {
        self.last_v
    }

    /// Time-weighted mean over `[origin, t]`.
    pub fn mean_until(&self, t: SimTime) -> f64 {
        let span = t - self.origin;
        if span <= 0.0 {
            return self.last_v;
        }
        let sum = self.weighted_sum + self.last_v * (t - self.last_t).max(0.0);
        sum / span
    }
}

/// A named monotone counter.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Counter {
    value: f64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter { value: 0.0 }
    }

    /// Adds `amount` (must be non-negative).
    pub fn add(&mut self, amount: f64) {
        debug_assert!(amount >= 0.0, "counter decrement: {amount}");
        self.value += amount;
    }

    /// Increments by one.
    pub fn inc(&mut self) {
        self.value += 1.0;
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.value
    }
}

/// Fixed-bucket histogram over `[lo, hi)` with overflow/underflow buckets.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    width: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// A histogram with `n` equal buckets over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `n == 0` or the interval is empty.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n > 0, "zero buckets");
        assert!(hi > lo, "empty histogram range");
        Histogram {
            lo,
            width: (hi - lo) / n as f64,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Records an observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((x - self.lo) / self.width) as usize;
        if idx >= self.buckets.len() {
            self.overflow += 1;
        } else {
            self.buckets[idx] += 1;
        }
    }

    /// Total observations (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the top of the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate quantile (`q ∈ [0, 1]`) by linear walk over buckets;
    /// returns the lower edge of the bucket containing the quantile.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return f64::NAN;
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut acc = self.underflow;
        if acc >= target {
            return self.lo;
        }
        for (i, &b) in self.buckets.iter().enumerate() {
            acc += b;
            if acc >= target {
                return self.lo + i as f64 * self.width;
            }
        }
        self.lo + self.buckets.len() as f64 * self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_closed_form() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        data.iter().for_each(|&x| whole.record(x));
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        data[..37].iter().for_each(|&x| a.record(x));
        data[37..].iter().for_each(|&x| b.record(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        let mut a = OnlineStats::new();
        a.merge(&s);
        assert_eq!(a.count(), 0);
    }

    #[test]
    fn time_weighted_square_wave() {
        let t = SimTime::from_secs;
        let mut w = TimeWeighted::new(t(0.0), 0.0);
        w.update(t(10.0), 1.0); // 0 for 10 s
        w.update(t(30.0), 0.0); // 1 for 20 s
        assert!((w.mean_until(t(40.0)) - 0.5).abs() < 1e-12); // 20/40
        assert_eq!(w.current(), 0.0);
    }

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.inc();
        c.add(2.5);
        assert_eq!(c.get(), 3.5);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..100 {
            h.record(i as f64 / 10.0); // 0.0 .. 9.9 uniformly
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        assert!(h.buckets().iter().all(|&b| b == 10));
        assert!((h.quantile(0.5) - 4.0).abs() <= 1.0);
        h.record(-1.0);
        h.record(99.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
    }
}
