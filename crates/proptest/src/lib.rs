//! Offline drop-in subset of the [proptest](https://proptest-rs.github.io/)
//! API, implementing exactly what this workspace's property tests use.
//!
//! The build environment is hermetic (no crates.io access), so the real
//! proptest cannot be resolved. This crate keeps the property tests
//! running with the same source text: the `proptest!` macro, `Strategy`
//! for ranges/tuples/`Just`/`prop_map`, `prop::collection`,
//! `prop_oneof!`, `any::<T>()`, and `prop_assert*!`.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case reports the sampled inputs via the
//!   assertion message only.
//! - **Deterministic.** The RNG seed derives from the test name, so a
//!   failure reproduces on every run — there is no persistence file.
//! - **No `prop_compose!`/`prop_filter`/recursive strategies** — unused
//!   here.

use std::collections::{HashMap, HashSet};
use std::hash::Hash;
use std::ops::Range;

/// Runner configuration; only the case count is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why one test case failed. Bodies may `return Err(TestCaseError::fail(..))`;
/// the runner turns that into a panic (there is no shrinking phase).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// SplitMix64: tiny, fast, and plenty for test-input sampling.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// A generator seeded from `name` (FNV-1a), so every test gets a
    /// distinct but reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in [0, n); n must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Modulo bias is irrelevant at test-sampling fidelity.
        self.next_u64() % n
    }
}

/// A source of random values of one type.
///
/// Object-safe so `prop_oneof!` can erase arm types behind
/// `Box<dyn Strategy>`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy producing `f(x)` for each `x` drawn from `self`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<T: ?Sized + Strategy> Strategy for Box<T> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<T: Strategy + ?Sized> Strategy for &T {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// Types with a canonical "any value" strategy (subset of proptest's
/// `Arbitrary`).
pub trait ArbitrarySample {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitrarySample for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl ArbitrarySample for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl ArbitrarySample for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: ArbitrarySample> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full value range of `T`: `any::<u64>()` etc.
pub fn any<T: ArbitrarySample>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Inclusive size bounds for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn choose(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// Collection strategies (`prop::collection::vec` and friends).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector of values from `element`, of length within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.choose(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>`.
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A set of values from `element`; duplicates are discarded, so the
    /// result may be smaller than the drawn target size.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.choose(rng);
            let mut out = HashSet::with_capacity(target);
            // Bounded retries: small domains may not hold `target`
            // distinct values.
            for _ in 0..target * 4 + 8 {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.sample(rng));
            }
            out
        }
    }

    /// Strategy for `HashMap<K::Value, V::Value>`.
    pub struct HashMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// A map with keys from `key` and values from `value`; duplicate
    /// keys collapse, so the result may be smaller than the target.
    pub fn hash_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> HashMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Hash + Eq,
        V: Strategy,
    {
        HashMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for HashMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Hash + Eq,
        V: Strategy,
    {
        type Value = HashMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut TestRng) -> HashMap<K::Value, V::Value> {
            let target = self.size.choose(rng);
            let mut out = HashMap::with_capacity(target);
            for _ in 0..target * 4 + 8 {
                if out.len() >= target {
                    break;
                }
                out.insert(self.key.sample(rng), self.value.sample(rng));
            }
            out
        }
    }
}

/// Weighted union of boxed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u32,
}

impl<T> Union<T> {
    /// A union over `(weight, strategy)` arms; weights must sum > 0.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total as u64) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

/// Boxes a strategy for use in a [`Union`]; used by `prop_oneof!`.
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Chooses among strategies, optionally weighted:
/// `prop_oneof![a, b]` or `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::boxed($strat)),)+
        ])
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{@fns $cfg; $($rest)*}
    };
    (@fns $cfg:expr; ) => {};
    (@fns $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for _case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                // Bodies may `return Err(TestCaseError::fail(..))`, so run
                // them as a fallible closure the way real proptest does.
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property failed: {e}");
                }
            }
        }
        $crate::proptest!{@fns $cfg; $($rest)*}
    };
    ($($rest:tt)*) => {
        $crate::proptest!{@fns $crate::ProptestConfig::default(); $($rest)*}
    };
}

/// One-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, Just, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::deterministic("ranges");
        for _ in 0..1_000 {
            let v = (3u32..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn oneof_honours_weights_roughly() {
        let s = prop_oneof![9 => Just(1u8), 1 => Just(2u8)];
        let mut rng = crate::TestRng::deterministic("weights");
        let ones = (0..1_000).filter(|_| s.sample(&mut rng) == 1).count();
        assert!(ones > 800, "expected ~900 ones, got {ones}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: tuples, collections, maps, prop_map.
        #[test]
        fn macro_roundtrip(
            (a, b) in (0u64..10, 0.0f64..1.0),
            v in prop::collection::vec((0u32..5).prop_map(|x| x * 2), 0..8),
            s in prop::collection::hash_set(0u32..100, 0..10),
            m in prop::collection::hash_map(0u32..100, any::<u64>(), 0..10),
        ) {
            prop_assert!(a < 10 && (0.0..1.0).contains(&b));
            prop_assert!(v.iter().all(|x| x % 2 == 0 && *x < 10));
            prop_assert!(s.len() < 10 && m.len() < 10);
        }
    }
}
