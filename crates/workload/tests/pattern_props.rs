//! Property tests for the workload generators.

use mobicache_model::Pattern;
use mobicache_sim::SimRng;
use mobicache_workload::{GapKind, GapProcess, ItemSampler, QueryGen, UpdateGen};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Samples always land inside the database, for every pattern shape.
    #[test]
    fn samples_stay_in_range(
        db in 1u32..5_000,
        seed in any::<u64>(),
        hot_frac in 0.01f64..1.0,
        hot_prob in 0.0f64..1.0,
    ) {
        let hot_hi = ((db as f64 * hot_frac) as u32).clamp(0, db - 1);
        let patterns = [
            Pattern::Uniform,
            Pattern::HotCold { hot_lo: 0, hot_hi, hot_prob },
            Pattern::Zipf { theta: 0.8 },
        ];
        let mut rng = SimRng::new(seed);
        for pattern in patterns {
            let sampler = ItemSampler::new(pattern, db);
            for _ in 0..200 {
                let item = sampler.sample(&mut rng);
                prop_assert!(item.0 < db, "{pattern:?} produced {item:?} for db {db}");
            }
        }
    }

    /// The hot/cold coin respects its probability within statistical
    /// tolerance, and cold samples never land in the hot region.
    #[test]
    fn hotcold_partition_is_respected(
        seed in any::<u64>(),
        hot_prob in 0.1f64..0.9,
    ) {
        let db = 10_000u32;
        let sampler = ItemSampler::new(
            Pattern::HotCold { hot_lo: 100, hot_hi: 199, hot_prob },
            db,
        );
        let mut rng = SimRng::new(seed);
        let n = 20_000;
        let mut hot = 0u32;
        for _ in 0..n {
            let item = sampler.sample(&mut rng);
            if (100..200).contains(&item.0) {
                hot += 1;
            }
        }
        let measured = hot as f64 / n as f64;
        // Cold samples hit the 100-item hot region with probability ~1 %,
        // so the measured hot fraction ≈ hot_prob + small correction.
        prop_assert!(
            (measured - hot_prob).abs() < 0.03,
            "hot fraction {measured} vs p {hot_prob}"
        );
    }

    /// Update transactions produce distinct in-range items and respect
    /// the minimum of one.
    #[test]
    fn update_txns_are_wellformed(
        db in 10u32..2_000,
        seed in any::<u64>(),
        mean_items in 1.0f64..8.0,
    ) {
        let g = UpdateGen::new(Pattern::Uniform, db, 100.0, mean_items);
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            let items = g.next_txn_items(&mut rng);
            prop_assert!(!items.is_empty());
            let mut d = items.clone();
            d.sort_unstable();
            d.dedup();
            prop_assert_eq!(d.len(), items.len(), "duplicate items in txn");
            prop_assert!(items.iter().all(|i| i.0 < db));
            prop_assert!(g.next_interarrival(&mut rng) >= 0.0);
        }
    }

    /// Query reference sets respect the single-item fast path and the
    /// distinctness guarantee.
    #[test]
    fn queries_are_wellformed(db in 10u32..2_000, seed in any::<u64>()) {
        let mut rng = SimRng::new(seed);
        let single = QueryGen::new(Pattern::Uniform, db, 1.0);
        for _ in 0..50 {
            prop_assert_eq!(single.next_query_items(&mut rng).len(), 1);
        }
        let multi = QueryGen::new(Pattern::Uniform, db, 4.0);
        for _ in 0..50 {
            let items = multi.next_query_items(&mut rng);
            prop_assert!(!items.is_empty());
            let mut d = items.clone();
            d.sort_unstable();
            d.dedup();
            prop_assert_eq!(d.len(), items.len());
        }
    }

    /// Gap durations are non-negative and the disconnect fraction tracks p.
    #[test]
    fn gaps_are_wellformed(seed in any::<u64>(), p in 0.0f64..1.0) {
        let g = GapProcess::new(p, 100.0, 400.0);
        let mut rng = SimRng::new(seed);
        let n = 5_000;
        let mut disc = 0u32;
        for _ in 0..n {
            let gap = g.sample(&mut rng);
            prop_assert!(gap.duration_secs >= 0.0);
            if gap.kind == GapKind::Disconnect {
                disc += 1;
            }
        }
        let measured = disc as f64 / n as f64;
        prop_assert!((measured - p).abs() < 0.05, "disc fraction {measured} vs p {p}");
    }
}
