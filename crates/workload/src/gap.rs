//! The client's between-queries process: think or disconnect.
//!
//! §4 of the paper: *"The arrival of a new query is separated from the
//! completion of the previous query by either an exponentially distributed
//! think time or an exponentially distributed disconnection time. Our
//! model assumes that each client may enter into a disconnection mode with
//! a probability p."* After each query completes, a coin with probability
//! `p` decides between a disconnection gap (the client powers down, missing
//! every broadcast) and a think gap (the client stays connected and keeps
//! listening to invalidation reports).

use mobicache_sim::{Exp, SimRng};

/// What the client does between queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GapKind {
    /// Connected, listening to reports.
    Think,
    /// Powered down; every report during the gap is missed.
    Disconnect,
}

/// One sampled gap.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Gap {
    /// Think or disconnect.
    pub kind: GapKind,
    /// Duration in seconds.
    pub duration_secs: f64,
}

/// The gap sampler for one client.
#[derive(Clone, Debug)]
pub struct GapProcess {
    p_disconnect: f64,
    think: Exp,
    disconnect: Exp,
}

impl GapProcess {
    /// A process with the given disconnection probability and means.
    ///
    /// # Panics
    /// Panics if `p_disconnect` is outside `[0, 1]` (means are validated
    /// by [`Exp::with_mean`]).
    pub fn new(p_disconnect: f64, mean_think_secs: f64, mean_disconnect_secs: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_disconnect),
            "p_disconnect out of range: {p_disconnect}"
        );
        GapProcess {
            p_disconnect,
            think: Exp::with_mean(mean_think_secs),
            disconnect: Exp::with_mean(mean_disconnect_secs),
        }
    }

    /// Samples the gap following a query completion.
    pub fn sample(&self, rng: &mut SimRng) -> Gap {
        if rng.coin(self.p_disconnect) {
            Gap {
                kind: GapKind::Disconnect,
                duration_secs: self.disconnect.sample(rng),
            }
        } else {
            Gap {
                kind: GapKind::Think,
                duration_secs: self.think.sample(rng),
            }
        }
    }

    /// Expected gap length: `(1−p)·think + p·disconnect` — used by
    /// capacity sanity checks in the experiments crate.
    pub fn mean_secs(&self) -> f64 {
        (1.0 - self.p_disconnect) * self.think.mean() + self.p_disconnect * self.disconnect.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_disconnect_probability() {
        let g = GapProcess::new(0.3, 100.0, 400.0);
        let mut r = SimRng::new(77);
        let n = 100_000;
        let disc = (0..n)
            .filter(|_| g.sample(&mut r).kind == GapKind::Disconnect)
            .count() as f64
            / n as f64;
        assert!((disc - 0.3).abs() < 0.01, "disc fraction {disc}");
    }

    #[test]
    fn durations_match_their_means() {
        let g = GapProcess::new(0.5, 100.0, 400.0);
        let mut r = SimRng::new(78);
        let mut think_sum = 0.0;
        let mut think_n = 0u32;
        let mut disc_sum = 0.0;
        let mut disc_n = 0u32;
        for _ in 0..100_000 {
            let gap = g.sample(&mut r);
            match gap.kind {
                GapKind::Think => {
                    think_sum += gap.duration_secs;
                    think_n += 1;
                }
                GapKind::Disconnect => {
                    disc_sum += gap.duration_secs;
                    disc_n += 1;
                }
            }
        }
        assert!((think_sum / think_n as f64 - 100.0).abs() < 3.0);
        assert!((disc_sum / disc_n as f64 - 400.0).abs() < 10.0);
    }

    #[test]
    fn mean_formula() {
        let g = GapProcess::new(0.1, 100.0, 4000.0);
        assert!((g.mean_secs() - 490.0).abs() < 1e-9);
    }

    #[test]
    fn p_zero_never_disconnects() {
        let g = GapProcess::new(0.0, 100.0, 400.0);
        let mut r = SimRng::new(79);
        assert!((0..1000).all(|_| g.sample(&mut r).kind == GapKind::Think));
    }

    #[test]
    fn p_one_always_disconnects() {
        let g = GapProcess::new(1.0, 100.0, 400.0);
        let mut r = SimRng::new(80);
        assert!((0..1000).all(|_| g.sample(&mut r).kind == GapKind::Disconnect));
    }
}
