//! Item selection according to an access pattern (Table 2).

use mobicache_model::{ItemId, Pattern};
use mobicache_sim::{SimRng, UniformRange, Zipf};

/// Samples item ids according to a [`Pattern`] over a database of fixed
/// size.
#[derive(Clone, Debug)]
pub enum ItemSampler {
    /// Uniform over the whole database.
    Uniform(UniformRange),
    /// Hot/cold regions: a coin picks the region, then uniform within it.
    HotCold {
        /// Probability the access is hot.
        hot_prob: f64,
        /// Uniform over the hot region `[hot_lo, hot_hi]`.
        hot: UniformRange,
        /// First hot item (for cold-region index mapping).
        hot_lo: u32,
        /// Hot region length.
        hot_len: u32,
        /// Number of cold items.
        cold_len: u32,
    },
    /// Zipf-by-rank, rank `r` mapping to item `r − 1`.
    Zipf(Zipf),
}

impl ItemSampler {
    /// Builds a sampler for `pattern` over `db_size` items.
    ///
    /// # Panics
    /// Panics if the pattern is inconsistent with the database size
    /// (callers validate via `SimConfig::validate`, so this is a
    /// programming-error guard).
    pub fn new(pattern: Pattern, db_size: u32) -> Self {
        assert!(db_size > 0, "empty database");
        match pattern {
            Pattern::Uniform => {
                ItemSampler::Uniform(UniformRange::new_inclusive(0, db_size as u64 - 1))
            }
            Pattern::HotCold {
                hot_lo,
                hot_hi,
                hot_prob,
            } => {
                assert!(
                    hot_lo <= hot_hi && hot_hi < db_size,
                    "hot region out of range"
                );
                let hot_len = hot_hi - hot_lo + 1;
                // A hot region spanning the whole database leaves no cold
                // items; every access is then hot regardless of `hot_prob`
                // (`sample` short-circuits on `cold_len == 0`).
                let cold_len = db_size - hot_len;
                ItemSampler::HotCold {
                    hot_prob,
                    hot: UniformRange::new_inclusive(hot_lo as u64, hot_hi as u64),
                    hot_lo,
                    hot_len,
                    cold_len,
                }
            }
            Pattern::Zipf { theta } => ItemSampler::Zipf(Zipf::new(db_size as u64, theta)),
        }
    }

    /// Draws one item.
    pub fn sample(&self, rng: &mut SimRng) -> ItemId {
        match self {
            ItemSampler::Uniform(u) => ItemId(u.sample(rng) as u32),
            ItemSampler::HotCold {
                hot_prob,
                hot,
                hot_lo,
                hot_len,
                cold_len,
            } => {
                if *cold_len == 0 || rng.coin(*hot_prob) {
                    ItemId(hot.sample(rng) as u32)
                } else {
                    // Uniform over the cold region: indices 0..cold_len
                    // mapped around the hot block.
                    let k = rng.next_below(*cold_len as u64) as u32;
                    if k < *hot_lo {
                        ItemId(k)
                    } else {
                        ItemId(k + hot_len)
                    }
                }
            }
            ItemSampler::Zipf(z) => ItemId((z.sample(rng) - 1) as u32),
        }
    }

    /// Draws `count` **distinct** items (by rejection; `count` is clamped
    /// to the database size).
    pub fn sample_distinct(&self, rng: &mut SimRng, count: usize, db_size: u32) -> Vec<ItemId> {
        let count = count.min(db_size as usize);
        let mut out = Vec::with_capacity(count);
        // Rejection is fine: the model draws ≤ 10 items from databases of
        // ≥ 1000, so collisions are rare.
        let mut guard = 0u32;
        while out.len() < count {
            let item = self.sample(rng);
            if !out.contains(&item) {
                out.push(item);
            }
            guard += 1;
            if guard > 64 * count as u32 + 1024 {
                // Extremely skewed pattern on a tiny database: fall back
                // to a deterministic sweep for the remainder.
                for raw in 0..db_size {
                    let item = ItemId(raw);
                    if out.len() == count {
                        break;
                    }
                    if !out.contains(&item) {
                        out.push(item);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(0xFEED)
    }

    #[test]
    fn uniform_covers_whole_database() {
        let s = ItemSampler::new(Pattern::Uniform, 10);
        let mut r = rng();
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[s.sample(&mut r).index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn hotcold_respects_probability() {
        let s = ItemSampler::new(
            Pattern::HotCold {
                hot_lo: 0,
                hot_hi: 99,
                hot_prob: 0.8,
            },
            10_000,
        );
        let mut r = rng();
        let n = 100_000;
        let hot = (0..n).filter(|_| s.sample(&mut r).0 < 100).count() as f64 / n as f64;
        assert!((hot - 0.8).abs() < 0.01, "hot fraction {hot}");
    }

    #[test]
    fn hotcold_cold_region_skips_hot_block() {
        // Hot region in the middle: cold samples must never land in it.
        let s = ItemSampler::new(
            Pattern::HotCold {
                hot_lo: 4,
                hot_hi: 6,
                hot_prob: 0.0,
            },
            10,
        );
        let mut r = rng();
        let mut seen = [false; 10];
        for _ in 0..2000 {
            let item = s.sample(&mut r);
            assert!(!(4..=6).contains(&item.0), "cold sample hit hot region");
            seen[item.index()] = true;
        }
        for (i, &b) in seen.iter().enumerate() {
            if (4..=6).contains(&(i as u32)) {
                assert!(!b);
            } else {
                assert!(b, "cold item {i} never sampled");
            }
        }
    }

    #[test]
    fn hotcold_all_hot() {
        let s = ItemSampler::new(
            Pattern::HotCold {
                hot_lo: 0,
                hot_hi: 9,
                hot_prob: 1.0,
            },
            10,
        );
        let mut r = rng();
        for _ in 0..100 {
            assert!(s.sample(&mut r).0 < 10);
        }
    }

    #[test]
    fn zipf_maps_rank_to_item() {
        let s = ItemSampler::new(Pattern::Zipf { theta: 1.0 }, 100);
        let mut r = rng();
        let mut counts = [0u32; 100];
        for _ in 0..100_000 {
            counts[s.sample(&mut r).index()] += 1;
        }
        assert!(counts[0] > counts[50], "item 0 must dominate");
    }

    #[test]
    fn distinct_sampling_has_no_duplicates() {
        let s = ItemSampler::new(Pattern::Uniform, 1000);
        let mut r = rng();
        for _ in 0..100 {
            let items = s.sample_distinct(&mut r, 10, 1000);
            let mut dedup = items.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), items.len());
            assert_eq!(items.len(), 10);
        }
    }

    #[test]
    fn distinct_sampling_clamps_to_db() {
        let s = ItemSampler::new(Pattern::Uniform, 3);
        let mut r = rng();
        let items = s.sample_distinct(&mut r, 10, 3);
        assert_eq!(items.len(), 3);
    }

    #[test]
    fn distinct_sampling_on_tiny_hot_region() {
        // hot_prob 1.0 with a 2-item hot region: rejection alone could
        // spin; the fallback sweep must complete the request.
        let s = ItemSampler::new(
            Pattern::HotCold {
                hot_lo: 0,
                hot_hi: 1,
                hot_prob: 1.0,
            },
            100,
        );
        let mut r = rng();
        let items = s.sample_distinct(&mut r, 5, 100);
        assert_eq!(items.len(), 5);
    }
}
