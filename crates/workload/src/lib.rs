//! # mobicache-workload — query and update generation
//!
//! Implements §4–5 of the paper's simulation model:
//!
//! * [`pattern`] — item selection per access pattern (Table 2): UNIFORM,
//!   HOTCOLD (hot query region with probability 0.8), and a Zipf
//!   extension.
//! * [`txn`] — update transactions ("updates are separated by an
//!   exponentially distributed update interarrival time", mean 5 items per
//!   transaction) and query reference sets.
//! * [`gap`] — the client think/disconnect process: "the arrival of a new
//!   query is separated from the completion of the previous query by
//!   either an exponentially distributed think time or an exponentially
//!   distributed disconnection time."
//!
//! Each generator owns no RNG; callers pass a [`SimRng`](mobicache_sim::SimRng)
//! stream, so every client/server process draws from its own independent
//! stream (common-random-numbers discipline across parameter sweeps).

pub mod gap;
pub mod pattern;
pub mod txn;

pub use gap::{Gap, GapKind, GapProcess};
pub use pattern::ItemSampler;
pub use txn::{QueryGen, UpdateGen};
