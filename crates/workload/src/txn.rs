//! Update transactions and query reference sets.

use crate::pattern::ItemSampler;
use mobicache_model::{ItemId, Pattern};
use mobicache_sim::{Exp, Poisson, SimRng};

/// Generates the server's update process: exponentially distributed
/// transaction inter-arrival times, each transaction updating a
/// Poisson-distributed (≥ 1) number of distinct items drawn from the
/// update pattern.
#[derive(Clone, Debug)]
pub struct UpdateGen {
    interarrival: Exp,
    txn_size: Poisson,
    sampler: ItemSampler,
    db_size: u32,
}

impl UpdateGen {
    /// A generator with Table-1 semantics.
    pub fn new(
        pattern: Pattern,
        db_size: u32,
        mean_interarrival_secs: f64,
        mean_items_per_txn: f64,
    ) -> Self {
        UpdateGen {
            interarrival: Exp::with_mean(mean_interarrival_secs),
            txn_size: Poisson::with_mean(mean_items_per_txn),
            sampler: ItemSampler::new(pattern, db_size),
            db_size,
        }
    }

    /// Time until the next update transaction.
    pub fn next_interarrival(&self, rng: &mut SimRng) -> f64 {
        self.interarrival.sample(rng)
    }

    /// The distinct items touched by one transaction.
    pub fn next_txn_items(&self, rng: &mut SimRng) -> Vec<ItemId> {
        let count = self.txn_size.sample_at_least_one(rng) as usize;
        self.sampler.sample_distinct(rng, count, self.db_size)
    }
}

/// Generates a client's query reference sets: a Poisson-distributed (≥ 1)
/// number of distinct items drawn from the client's query pattern.
///
/// With `items_per_query_mean = 1.0` the common case degenerates to a
/// single item per query (see DESIGN.md §3 on the Table 1 / §5
/// reconciliation) — the count sampler is bypassed entirely so that the
/// "1 item" configuration is deterministic, not "Poisson averaging 1".
#[derive(Clone, Debug)]
pub struct QueryGen {
    count: Option<Poisson>,
    sampler: ItemSampler,
    db_size: u32,
}

impl QueryGen {
    /// A generator for a client with the given query pattern.
    pub fn new(pattern: Pattern, db_size: u32, items_per_query_mean: f64) -> Self {
        let count = if items_per_query_mean == 1.0 {
            None
        } else {
            Some(Poisson::with_mean(items_per_query_mean))
        };
        QueryGen {
            count,
            sampler: ItemSampler::new(pattern, db_size),
            db_size,
        }
    }

    /// The distinct items referenced by one query.
    pub fn next_query_items(&self, rng: &mut SimRng) -> Vec<ItemId> {
        match &self.count {
            None => vec![self.sampler.sample(rng)],
            Some(p) => {
                let count = p.sample_at_least_one(rng) as usize;
                self.sampler.sample_distinct(rng, count, self.db_size)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(0xBEEF)
    }

    #[test]
    fn update_interarrival_mean() {
        let g = UpdateGen::new(Pattern::Uniform, 1000, 100.0, 5.0);
        let mut r = rng();
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| g.next_interarrival(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn txn_sizes_average_five() {
        let g = UpdateGen::new(Pattern::Uniform, 1000, 100.0, 5.0);
        let mut r = rng();
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| g.next_txn_items(&mut r).len())
            .sum::<usize>() as f64
            / n as f64;
        // Poisson(5) clamped at 1 has mean slightly above 5.
        assert!((mean - 5.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn txn_items_are_distinct_and_in_range() {
        let g = UpdateGen::new(Pattern::Uniform, 50, 100.0, 5.0);
        let mut r = rng();
        for _ in 0..500 {
            let items = g.next_txn_items(&mut r);
            assert!(!items.is_empty());
            let mut d = items.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), items.len());
            assert!(items.iter().all(|i| i.0 < 50));
        }
    }

    #[test]
    fn single_item_queries_are_exact() {
        let g = QueryGen::new(Pattern::Uniform, 1000, 1.0);
        let mut r = rng();
        for _ in 0..200 {
            assert_eq!(g.next_query_items(&mut r).len(), 1);
        }
    }

    #[test]
    fn multi_item_queries_average_out() {
        let g = QueryGen::new(Pattern::Uniform, 10_000, 10.0);
        let mut r = rng();
        let n = 10_000;
        let mean: f64 = (0..n)
            .map(|_| g.next_query_items(&mut r).len())
            .sum::<usize>() as f64
            / n as f64;
        assert!((mean - 10.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn hotcold_queries_prefer_hot_region() {
        let g = QueryGen::new(Pattern::paper_hotcold(), 10_000, 1.0);
        let mut r = rng();
        let n = 20_000;
        let hot = (0..n)
            .filter(|_| g.next_query_items(&mut r)[0].0 < 100)
            .count() as f64
            / n as f64;
        assert!((hot - 0.8).abs() < 0.02, "hot fraction {hot}");
    }
}
