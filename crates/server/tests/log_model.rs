//! Model test for the dense [`UpdateLog`]: the sorted-vec + tombstone
//! representation must behave exactly like the obvious reference model —
//! a `BTreeMap<ItemId, SimTime>` of latest versions plus a
//! `BTreeSet<(SimTime, ItemId)>` recency index — under arbitrary
//! time-monotone update sequences and arbitrary query points.

use mobicache_model::ItemId;
use mobicache_server::UpdateLog;
use mobicache_sim::SimTime;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

const DB: u32 = 48;

fn t(s: f64) -> SimTime {
    SimTime::from_secs(s)
}

/// The reference model the dense log must agree with.
#[derive(Default)]
struct Model {
    latest: BTreeMap<ItemId, SimTime>,
    recency: BTreeSet<(SimTime, ItemId)>,
    total: u64,
}

impl Model {
    fn apply(&mut self, now: SimTime, item: ItemId) -> SimTime {
        let prev = self.latest.insert(item, now).unwrap_or(SimTime::ZERO);
        if prev != SimTime::ZERO || self.recency.contains(&(prev, item)) {
            self.recency.remove(&(prev, item));
        }
        self.recency.insert((now, item));
        self.total += 1;
        prev
    }

    fn updates_since(&self, since: SimTime) -> Vec<(ItemId, SimTime)> {
        self.recency
            .iter()
            .filter(|&&(ts, _)| ts > since)
            .map(|&(ts, item)| (item, ts))
            .collect()
    }

    fn recency_desc(&self) -> Vec<(ItemId, SimTime)> {
        self.recency
            .iter()
            .rev()
            .map(|&(ts, item)| (item, ts))
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dense log ≡ tree-map model over random monotone histories:
    /// versions, strict-after windows, recency order, counts, capped
    /// counts and the latest-update watermark all agree at every
    /// intermediate state.
    #[test]
    fn dense_log_matches_btree_model(
        // (time-delta in ticks, item): deltas of zero exercise equal-time
        // re-updates and timestamp ties across distinct items.
        steps in prop::collection::vec((0u16..40, 0u32..DB), 1..200),
        probes in prop::collection::vec(0u16..4_000, 1..12),
    ) {
        let mut log = UpdateLog::new(DB);
        let mut model = Model::default();
        let mut now = 0.0;
        for &(delta, item) in &steps {
            now += delta as f64;
            let ts = t(now);
            let got = log.apply_update(ts, ItemId(item));
            let want = model.apply(ts, ItemId(item));
            prop_assert_eq!(got, want, "prev version diverged");

            // Aggregate state agrees after every single update.
            prop_assert_eq!(log.total_updates(), model.total);
            prop_assert_eq!(log.distinct_updated(), model.latest.len());
            prop_assert_eq!(
                log.latest_update(),
                model.recency.iter().next_back().map(|&(ts, _)| ts)
            );
        }

        // Per-item versions.
        for i in 0..DB {
            let want = model.latest.get(&ItemId(i)).copied().unwrap_or(SimTime::ZERO);
            prop_assert_eq!(log.version(ItemId(i)), want);
            prop_assert!(log.is_valid(ItemId(i), want));
            if want != SimTime::ZERO {
                prop_assert!(!log.is_valid(ItemId(i), SimTime::ZERO));
            }
        }

        // Windowed queries at arbitrary probe points (before, inside and
        // after the history), plus the exact boundary timestamps where
        // the strict "after" contract bites.
        let mut cuts: Vec<SimTime> = probes.iter().map(|&p| t(p as f64)).collect();
        cuts.push(SimTime::ZERO);
        cuts.extend(model.recency.iter().map(|&(ts, _)| ts));
        for since in cuts {
            let want = model.updates_since(since);
            let got: Vec<_> = log.updates_since_iter(since).collect();
            prop_assert_eq!(&got, &want, "updates_since({:?})", since);
            prop_assert_eq!(log.count_since(since), want.len());
            for cap in [0, 1, want.len() / 2, want.len(), want.len() + 3] {
                // Contract: min(count, cap + 1), walking at most cap + 1.
                prop_assert_eq!(log.count_since_capped(since, cap), want.len().min(cap + 1));
            }
        }

        // Full recency walk, newest first.
        let desc: Vec<_> = log.recency_desc().collect();
        prop_assert_eq!(desc, model.recency_desc());
    }
}
