//! Property tests for the server's adaptive report decision (§3,
//! Figures 3 and 4 of the paper).

use mobicache_model::msg::SizeParams;
use mobicache_model::{ItemId, Scheme};
use mobicache_reports::ReportPayload;
use mobicache_server::Server;
use mobicache_sim::SimTime;
use proptest::prelude::*;

const WINDOW_SECS: f64 = 200.0;
const DB: u32 = 256;

fn t(s: f64) -> SimTime {
    SimTime::from_secs(s)
}

fn params() -> SizeParams {
    SizeParams {
        db_size: DB as u64,
        group_count: 64,
        timestamp_bits: 48.0,
        header_bits: 64.0,
        control_bytes: 512,
        item_bytes: 8192,
    }
}

/// Replays a random update history and Tlb arrivals, then checks the
/// decision invariants at the report build.
fn build(
    scheme: Scheme,
    updates: &[(f64, u32)],
    tlbs: &[f64],
    now: f64,
) -> (Server, ReportPayload) {
    let mut server = Server::new(scheme, DB, WINDOW_SECS, params());
    let mut ordered = updates.to_vec();
    ordered.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    for &(ts, item) in &ordered {
        server.apply_txn(t(ts), &[ItemId(item % DB)]);
    }
    for &tlb in tlbs {
        server.receive_tlb(t(tlb));
    }
    let report = server.build_report(t(now));
    (server, report)
}

fn updates_strategy() -> impl Strategy<Value = Vec<(f64, u32)>> {
    prop::collection::vec((0.0..1000.0f64, 0u32..DB), 0..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Figure 3 invariant: AFW broadcasts BS **iff** some pending Tlb is
    /// outside the window yet within BS reach.
    #[test]
    fn afw_broadcasts_bs_iff_some_tlb_is_eligible(
        updates in updates_strategy(),
        tlbs in prop::collection::vec(0.0..1000.0f64, 0..5),
    ) {
        let now = 1000.0;
        let wstart = now - WINDOW_SECS;
        // Ground truth eligibility.
        let mut latest: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
        for &(ts, item) in &updates {
            let e = latest.entry(item % DB).or_insert(ts);
            if ts > *e { *e = ts; }
        }
        let eligible = tlbs.iter().any(|&tlb| {
            let changed_after = latest.values().filter(|&&ts| ts > tlb).count();
            tlb < wstart && changed_after <= (DB / 2) as usize
        });
        let (_, report) = build(Scheme::Afw, &updates, &tlbs, now);
        prop_assert_eq!(report.is_bitseq(), eligible);
    }

    /// Figure 4 invariant: when AAW reacts to an eligible Tlb it picks
    /// the smaller of the enlarged window and BS, and an enlarged window
    /// always covers the oldest eligible Tlb.
    #[test]
    fn aaw_picks_the_smaller_covering_report(
        updates in updates_strategy(),
        tlb in 0.0..700.0f64,
    ) {
        let now = 1000.0;
        let p = params();
        let (_, report) = build(Scheme::Aaw, &updates, &[tlb], now);
        // Ground truth: is this Tlb eligible?
        let mut latest: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
        for &(ts, item) in &updates {
            let e = latest.entry(item % DB).or_insert(ts);
            if ts > *e { *e = ts; }
        }
        let changed_after = latest.values().filter(|&&ts| ts > tlb).count();
        let eligible = tlb < now - WINDOW_SECS && changed_after <= (DB / 2) as usize;
        match &report {
            ReportPayload::Window(w) if w.dummy.is_some() => {
                prop_assert!(eligible);
                prop_assert!(w.covers(t(tlb)), "enlarged window must cover the Tlb");
                // The enlarged window was chosen, so it is no bigger than BS.
                let bs_bits = 2.0 * DB as f64 + 48.0 * 8.0;
                prop_assert!(w.size_bits(&p) <= bs_bits + 1.0,
                    "enlarged {} > bs {}", w.size_bits(&p), bs_bits);
            }
            ReportPayload::BitSeq(_) => {
                prop_assert!(eligible);
                // BS was chosen, so the enlarged window would be bigger.
                let enlarged_bits = 48.0 + (changed_after as f64 + 1.0) * p.record_bits();
                let bs_bits = 2.0 * DB as f64 + 48.0 * 8.0;
                prop_assert!(enlarged_bits > bs_bits,
                    "BS chosen although enlarged would be {} <= {}", enlarged_bits, bs_bits);
            }
            ReportPayload::Window(_) => prop_assert!(!eligible),
            other => return Err(TestCaseError::fail(format!("{other:?}"))),
        }
    }

    /// Window reports list exactly the items updated in the covered
    /// history, each with its latest timestamp.
    #[test]
    fn window_report_is_complete_and_deduplicated(updates in updates_strategy()) {
        let now = 1000.0;
        let (_, report) = build(Scheme::SimpleChecking, &updates, &[], now);
        let ReportPayload::Window(w) = report else {
            return Err(TestCaseError::fail("expected a window report"));
        };
        let wstart = now - WINDOW_SECS;
        let mut latest: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
        for &(ts, item) in &updates {
            let e = latest.entry(item % DB).or_insert(ts);
            if ts > *e { *e = ts; }
        }
        let expected: std::collections::HashMap<ItemId, f64> = latest
            .iter()
            .filter(|&(_, &ts)| ts > wstart)
            .map(|(&i, &ts)| (ItemId(i), ts))
            .collect();
        prop_assert_eq!(w.records.len(), expected.len(), "dedup or completeness broken");
        for (item, ts) in &w.records {
            prop_assert_eq!(expected.get(item).copied(), Some(ts.as_secs()));
        }
    }

    /// Validity verdicts agree with the ground-truth history.
    #[test]
    fn validity_verdicts_match_history(
        updates in updates_strategy(),
        checks in prop::collection::hash_map(0u32..DB, 0.0..1000.0f64, 0..20),
    ) {
        let mut server = Server::new(Scheme::SimpleChecking, DB, WINDOW_SECS, params());
        let mut ordered = updates.clone();
        ordered.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for &(ts, item) in &ordered {
            server.apply_txn(t(ts), &[ItemId(item % DB)]);
        }
        let entries: Vec<(ItemId, SimTime)> =
            checks.iter().map(|(&i, &v)| (ItemId(i), t(v))).collect();
        let verdict = server.process_check(t(2000.0), &entries);
        let mut latest: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
        for &(ts, item) in &updates {
            let e = latest.entry(item % DB).or_insert(ts);
            if ts > *e { *e = ts; }
        }
        for &(item, version) in &entries {
            let truth = latest.get(&item.0).copied().unwrap_or(0.0);
            let valid = truth <= version.as_secs();
            prop_assert_eq!(verdict.valid.contains(&item), valid,
                "item {:?} version {} truth {}", item, version.as_secs(), truth);
        }
    }
}
