//! The server's update history.
//!
//! Three access paths, all cheap:
//!
//! * **point lookup** — the current version (last update time) of an item,
//!   for data delivery and validity checking: `O(1)`;
//! * **window extraction** — every item updated after a timestamp, for
//!   `TS` window reports (plain, enlarged, and `AT`): `O(log U + k)` via a
//!   recency-ordered index (`U` = items ever updated, `k` = result size);
//! * **recency scan** — items ordered most-recently-updated first, for
//!   bit-sequence construction: iterator over the same index.

use mobicache_model::ItemId;
use mobicache_sim::SimTime;
use std::collections::BTreeSet;
use std::ops::Bound;

/// Per-item last-update times with a recency index.
pub struct UpdateLog {
    db_size: u32,
    /// Last update time per item; `None` until first updated. Initial
    /// versions are [`SimTime::ZERO`] — matching clients, which treat a
    /// never-updated item's version as zero.
    last_update: Vec<Option<SimTime>>,
    /// `(last_update, item)` ordered index over ever-updated items.
    recency: BTreeSet<(SimTime, ItemId)>,
    total_updates: u64,
}

impl UpdateLog {
    /// An empty log over `db_size` items.
    pub fn new(db_size: u32) -> Self {
        assert!(db_size > 0, "empty database");
        UpdateLog {
            db_size,
            last_update: vec![None; db_size as usize],
            recency: BTreeSet::new(),
            total_updates: 0,
        }
    }

    /// Database size `N`.
    pub fn db_size(&self) -> u32 {
        self.db_size
    }

    /// Total update events applied (not distinct items).
    pub fn total_updates(&self) -> u64 {
        self.total_updates
    }

    /// Number of items updated at least once.
    pub fn distinct_updated(&self) -> usize {
        self.recency.len()
    }

    /// Records an update of `item` at time `now`. Returns the item's
    /// previous version (`SimTime::ZERO` if never updated).
    ///
    /// # Panics
    /// Panics if `item` is out of range or time goes backwards for the
    /// item.
    pub fn apply_update(&mut self, now: SimTime, item: ItemId) -> SimTime {
        let slot = &mut self.last_update[item.index()];
        let prev = match *slot {
            Some(prev) => {
                assert!(prev <= now, "update time went backwards for {item:?}");
                self.recency.remove(&(prev, item));
                prev
            }
            None => SimTime::ZERO,
        };
        *slot = Some(now);
        self.recency.insert((now, item));
        self.total_updates += 1;
        prev
    }

    /// The item's current version: its last update time, or
    /// [`SimTime::ZERO`] if never updated.
    #[inline]
    pub fn version(&self, item: ItemId) -> SimTime {
        self.last_update[item.index()].unwrap_or(SimTime::ZERO)
    }

    /// `true` when the cached copy `version` of `item` is still current.
    #[inline]
    pub fn is_valid(&self, item: ItemId, version: SimTime) -> bool {
        self.version(item) <= version
    }

    /// Time of the most recent update anywhere, if any (`TS(B_0)`).
    pub fn latest_update(&self) -> Option<SimTime> {
        self.recency.iter().next_back().map(|&(ts, _)| ts)
    }

    /// Every item updated strictly after `since`, as `(item, ts)` pairs
    /// (ascending timestamp), without allocating: `O(log U + k)` for `k`
    /// results. The allocation-free spine under [`UpdateLog::updates_since`]
    /// and the scratch-buffer variant [`UpdateLog::updates_since_into`].
    pub fn updates_since_iter(
        &self,
        since: SimTime,
    ) -> impl Iterator<Item = (ItemId, SimTime)> + '_ {
        self.recency
            .range((Bound::Excluded((since, ItemId(u32::MAX))), Bound::Unbounded))
            .map(|&(ts, item)| (item, ts))
    }

    /// Every item updated strictly after `since`, as `(item, ts)` pairs
    /// (unordered): `O(log U + k)` plus one allocation for the result.
    pub fn updates_since(&self, since: SimTime) -> Vec<(ItemId, SimTime)> {
        self.updates_since_iter(since).collect()
    }

    /// Appends every item updated strictly after `since` to `out` (which
    /// is *not* cleared): the scratch-buffer form of
    /// [`UpdateLog::updates_since`] for callers that extract a window
    /// every period and want to reuse one allocation.
    pub fn updates_since_into(&self, since: SimTime, out: &mut Vec<(ItemId, SimTime)>) {
        out.extend(self.updates_since_iter(since));
    }

    /// Number of items updated strictly after `since`: `O(log U + k)` —
    /// the count walks the recency index, so callers that only compare the
    /// count against a threshold should use
    /// [`UpdateLog::count_since_capped`] to bound the walk.
    pub fn count_since(&self, since: SimTime) -> usize {
        self.updates_since_iter(since).count()
    }

    /// `min(count_since(since), cap + 1)`, stopping the index walk after
    /// `cap + 1` entries: `O(log U + min(k, cap + 1))`. The adaptive
    /// schemes test "at most `N/2` items updated after `Tlb`" per pending
    /// `Tlb` every period; the cap keeps that test from scanning the whole
    /// history when the `Tlb` is ancient.
    pub fn count_since_capped(&self, since: SimTime, cap: usize) -> usize {
        self.updates_since_iter(since).take(cap + 1).count()
    }

    /// Items ordered most recently updated first.
    pub fn recency_desc(&self) -> impl Iterator<Item = (ItemId, SimTime)> + '_ {
        self.recency.iter().rev().map(|&(ts, item)| (item, ts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn versions_start_at_zero() {
        let log = UpdateLog::new(10);
        assert_eq!(log.version(ItemId(3)), SimTime::ZERO);
        assert!(log.is_valid(ItemId(3), SimTime::ZERO));
        assert_eq!(log.latest_update(), None);
    }

    #[test]
    fn apply_and_lookup() {
        let mut log = UpdateLog::new(10);
        let prev = log.apply_update(t(5.0), ItemId(2));
        assert_eq!(prev, SimTime::ZERO);
        assert_eq!(log.version(ItemId(2)), t(5.0));
        assert!(!log.is_valid(ItemId(2), t(4.0)));
        assert!(log.is_valid(ItemId(2), t(5.0)));
        let prev = log.apply_update(t(9.0), ItemId(2));
        assert_eq!(prev, t(5.0));
        assert_eq!(log.total_updates(), 2);
        assert_eq!(log.distinct_updated(), 1);
    }

    #[test]
    fn updates_since_is_strict() {
        let mut log = UpdateLog::new(10);
        log.apply_update(t(1.0), ItemId(1));
        log.apply_update(t(2.0), ItemId(2));
        log.apply_update(t(3.0), ItemId(3));
        let mut got = log.updates_since(t(2.0));
        got.sort_unstable_by_key(|&(i, _)| i);
        assert_eq!(got, vec![(ItemId(3), t(3.0))]);
        assert_eq!(log.count_since(t(0.0)), 3);
        assert_eq!(log.count_since(t(3.0)), 0);
    }

    #[test]
    fn reupdate_moves_item_in_recency() {
        let mut log = UpdateLog::new(10);
        log.apply_update(t(1.0), ItemId(1));
        log.apply_update(t(2.0), ItemId(2));
        log.apply_update(t(3.0), ItemId(1));
        let order: Vec<ItemId> = log.recency_desc().map(|(i, _)| i).collect();
        assert_eq!(order, vec![ItemId(1), ItemId(2)]);
        // The stale (1.0, item1) entry must be gone.
        assert_eq!(log.count_since(t(0.0)), 2);
        assert_eq!(log.latest_update(), Some(t(3.0)));
    }

    #[test]
    fn recency_breaks_timestamp_ties_deterministically() {
        let mut log = UpdateLog::new(10);
        log.apply_update(t(1.0), ItemId(5));
        log.apply_update(t(1.0), ItemId(3));
        let order: Vec<ItemId> = log.recency_desc().map(|(i, _)| i).collect();
        assert_eq!(order, vec![ItemId(5), ItemId(3)]);
    }

    #[test]
    fn capped_count_matches_contract() {
        let mut log = UpdateLog::new(100);
        for i in 0..20u32 {
            log.apply_update(t(1.0 + f64::from(i)), ItemId(i));
        }
        // The contract: count_since_capped(s, cap) == min(count_since(s), cap + 1),
        // so `capped <= cap` decides `count <= cap` without a full walk.
        for &(since, cap) in &[(0.0, 5), (0.0, 19), (0.0, 50), (10.0, 3), (25.0, 0)] {
            let exact = log.count_since(t(since));
            let capped = log.count_since_capped(t(since), cap);
            assert_eq!(capped, exact.min(cap + 1), "since={since} cap={cap}");
            assert_eq!(capped <= cap, exact <= cap, "threshold test must agree");
        }
    }

    #[test]
    fn scratch_extraction_appends_without_clearing() {
        let mut log = UpdateLog::new(10);
        log.apply_update(t(1.0), ItemId(1));
        log.apply_update(t(2.0), ItemId(2));
        let mut out = vec![(ItemId(9), t(99.0))];
        log.updates_since_into(t(1.0), &mut out);
        assert_eq!(out, vec![(ItemId(9), t(99.0)), (ItemId(2), t(2.0))]);
        out.clear();
        log.updates_since_into(t(0.0), &mut out);
        let mut sorted = out.clone();
        sorted.sort_unstable_by_key(|&(i, _)| i);
        assert_eq!(sorted, log.updates_since(t(0.0)));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn time_travel_rejected() {
        let mut log = UpdateLog::new(10);
        log.apply_update(t(5.0), ItemId(1));
        log.apply_update(t(4.0), ItemId(1));
    }
}
