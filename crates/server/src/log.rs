//! The server's update history.
//!
//! Three access paths, all cheap:
//!
//! * **point lookup** — the current version (last update time) of an item,
//!   for data delivery and validity checking: `O(1)`;
//! * **window extraction** — every item updated after a timestamp, for
//!   `TS` window reports (plain, enlarged, and `AT`): `O(log U + k)` via a
//!   recency-ordered index (`U` = items ever updated, `k` = result size);
//! * **recency scan** — items ordered most-recently-updated first, for
//!   bit-sequence construction: iterator over the same index.
//!
//! The recency index is a dense sorted `Vec<(SimTime, ItemId)>` rather
//! than a tree: simulation time only moves forward, so every new entry
//! lands in (or just inside) the tail, and a re-updated item's old entry
//! becomes a *tombstone* — it keeps its slot and its sort key, but the
//! per-item position table no longer points at it. Scans skip dead
//! entries; when more than half the index is dead it is compacted in
//! place. Compared to the previous `BTreeSet`, a window extraction is a
//! binary search plus a contiguous forward walk — no pointer chasing —
//! and the whole history for a large database sits in two flat arrays.

use mobicache_model::ItemId;
use mobicache_sim::SimTime;

/// Sentinel for "item has no live recency entry".
const NIL: u32 = u32::MAX;

/// Per-item last-update times with a recency index.
pub struct UpdateLog {
    db_size: u32,
    /// Last update time per item; `None` until first updated. Initial
    /// versions are [`SimTime::ZERO`] — matching clients, which treat a
    /// never-updated item's version as zero.
    last_update: Vec<Option<SimTime>>,
    /// `(last_update, item)` ordered index over ever-updated items,
    /// ascending, including tombstones (entries `pos` no longer points
    /// at). Ties break item-ascending, exactly like the old tree.
    recency: Vec<(SimTime, ItemId)>,
    /// Per-item position of the live recency entry (`NIL` if none).
    pos: Vec<u32>,
    /// Tombstone count in `recency`.
    dead: usize,
    total_updates: u64,
}

impl UpdateLog {
    /// An empty log over `db_size` items.
    pub fn new(db_size: u32) -> Self {
        assert!(db_size > 0, "empty database");
        UpdateLog {
            db_size,
            last_update: vec![None; db_size as usize],
            recency: Vec::new(),
            pos: vec![NIL; db_size as usize],
            dead: 0,
            total_updates: 0,
        }
    }

    /// Database size `N`.
    pub fn db_size(&self) -> u32 {
        self.db_size
    }

    /// Total update events applied (not distinct items).
    pub fn total_updates(&self) -> u64 {
        self.total_updates
    }

    /// Number of items updated at least once.
    pub fn distinct_updated(&self) -> usize {
        self.recency.len() - self.dead
    }

    /// `true` when the entry at `j` is the live one for its item.
    #[inline]
    fn live(&self, j: usize) -> bool {
        self.pos[self.recency[j].1.index()] == j as u32
    }

    /// Drops every tombstone, keeping live entries in order.
    fn compact(&mut self) {
        let mut w = 0usize;
        for j in 0..self.recency.len() {
            if self.live(j) {
                let e = self.recency[j];
                self.recency[w] = e;
                self.pos[e.1.index()] = w as u32;
                w += 1;
            }
        }
        self.recency.truncate(w);
        self.dead = 0;
    }

    /// Records an update of `item` at time `now`. Returns the item's
    /// previous version (`SimTime::ZERO` if never updated).
    ///
    /// # Panics
    /// Panics if `item` is out of range or time goes backwards for the
    /// item.
    pub fn apply_update(&mut self, now: SimTime, item: ItemId) -> SimTime {
        let slot = &mut self.last_update[item.index()];
        let prev = match *slot {
            Some(prev) => {
                assert!(prev <= now, "update time went backwards for {item:?}");
                // The old entry becomes a tombstone: it keeps its slot
                // and key (so the vec stays sorted) but stops being the
                // item's position.
                self.dead += 1;
                prev
            }
            None => SimTime::ZERO,
        };
        *slot = Some(now);
        // Time is globally monotone, so the insertion point is in the
        // tail's equal-timestamp run; ties order item-ascending. Only
        // that run shifts, so only its items' positions need bumping.
        let key = (now, item);
        let at = self.recency.partition_point(|e| *e < key);
        for j in at..self.recency.len() {
            let it = self.recency[j].1.index();
            if self.pos[it] == j as u32 {
                self.pos[it] = (j + 1) as u32;
            }
        }
        self.recency.insert(at, key);
        self.pos[item.index()] = at as u32;
        self.total_updates += 1;
        if self.dead * 2 > self.recency.len() {
            self.compact();
        }
        prev
    }

    /// The item's current version: its last update time, or
    /// [`SimTime::ZERO`] if never updated.
    #[inline]
    pub fn version(&self, item: ItemId) -> SimTime {
        self.last_update[item.index()].unwrap_or(SimTime::ZERO)
    }

    /// `true` when the cached copy `version` of `item` is still current.
    #[inline]
    pub fn is_valid(&self, item: ItemId, version: SimTime) -> bool {
        self.version(item) <= version
    }

    /// Time of the most recent update anywhere, if any (`TS(B_0)`).
    pub fn latest_update(&self) -> Option<SimTime> {
        // The newest entry is always live (tombstones are strictly older
        // re-updates of the same item, and an equal-time re-update
        // inserts the live entry at or after the dead one), but walk
        // defensively anyway — the scan stops at the first live slot.
        (0..self.recency.len())
            .rev()
            .find(|&j| self.live(j))
            .map(|j| self.recency[j].0)
    }

    /// Every item updated strictly after `since`, as `(item, ts)` pairs
    /// (ascending timestamp, item-ascending within ties), without
    /// allocating: one binary search plus a contiguous forward walk —
    /// `O(log U + k)` for `k` results plus skipped tombstones.
    pub fn updates_since_iter(
        &self,
        since: SimTime,
    ) -> impl Iterator<Item = (ItemId, SimTime)> + '_ {
        let start = self.recency.partition_point(|&(ts, _)| ts <= since);
        self.recency[start..]
            .iter()
            .enumerate()
            .filter_map(move |(k, &(ts, item))| {
                (self.pos[item.index()] == (start + k) as u32).then_some((item, ts))
            })
    }

    /// Number of items updated strictly after `since`: `O(log U + k)` —
    /// the count walks the recency index, so callers that only compare the
    /// count against a threshold should use
    /// [`UpdateLog::count_since_capped`] to bound the walk.
    pub fn count_since(&self, since: SimTime) -> usize {
        self.updates_since_iter(since).count()
    }

    /// `min(count_since(since), cap + 1)`, stopping the index walk after
    /// `cap + 1` entries: `O(log U + min(k, cap + 1))`. The adaptive
    /// schemes test "at most `N/2` items updated after `Tlb`" per pending
    /// `Tlb` every period; the cap keeps that test from scanning the whole
    /// history when the `Tlb` is ancient.
    pub fn count_since_capped(&self, since: SimTime, cap: usize) -> usize {
        self.updates_since_iter(since).take(cap + 1).count()
    }

    /// Items ordered most recently updated first.
    pub fn recency_desc(&self) -> impl Iterator<Item = (ItemId, SimTime)> + '_ {
        self.recency
            .iter()
            .enumerate()
            .rev()
            .filter_map(|(j, &(ts, item))| {
                (self.pos[item.index()] == j as u32).then_some((item, ts))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn versions_start_at_zero() {
        let log = UpdateLog::new(10);
        assert_eq!(log.version(ItemId(3)), SimTime::ZERO);
        assert!(log.is_valid(ItemId(3), SimTime::ZERO));
        assert_eq!(log.latest_update(), None);
    }

    #[test]
    fn apply_and_lookup() {
        let mut log = UpdateLog::new(10);
        let prev = log.apply_update(t(5.0), ItemId(2));
        assert_eq!(prev, SimTime::ZERO);
        assert_eq!(log.version(ItemId(2)), t(5.0));
        assert!(!log.is_valid(ItemId(2), t(4.0)));
        assert!(log.is_valid(ItemId(2), t(5.0)));
        let prev = log.apply_update(t(9.0), ItemId(2));
        assert_eq!(prev, t(5.0));
        assert_eq!(log.total_updates(), 2);
        assert_eq!(log.distinct_updated(), 1);
    }

    #[test]
    fn updates_since_is_strict() {
        let mut log = UpdateLog::new(10);
        log.apply_update(t(1.0), ItemId(1));
        log.apply_update(t(2.0), ItemId(2));
        log.apply_update(t(3.0), ItemId(3));
        let got: Vec<_> = log.updates_since_iter(t(2.0)).collect();
        assert_eq!(got, vec![(ItemId(3), t(3.0))]);
        assert_eq!(log.count_since(t(0.0)), 3);
        assert_eq!(log.count_since(t(3.0)), 0);
    }

    #[test]
    fn reupdate_moves_item_in_recency() {
        let mut log = UpdateLog::new(10);
        log.apply_update(t(1.0), ItemId(1));
        log.apply_update(t(2.0), ItemId(2));
        log.apply_update(t(3.0), ItemId(1));
        let order: Vec<ItemId> = log.recency_desc().map(|(i, _)| i).collect();
        assert_eq!(order, vec![ItemId(1), ItemId(2)]);
        // The stale (1.0, item1) entry must be dead.
        assert_eq!(log.count_since(t(0.0)), 2);
        assert_eq!(log.latest_update(), Some(t(3.0)));
    }

    #[test]
    fn recency_breaks_timestamp_ties_deterministically() {
        let mut log = UpdateLog::new(10);
        log.apply_update(t(1.0), ItemId(5));
        log.apply_update(t(1.0), ItemId(3));
        let order: Vec<ItemId> = log.recency_desc().map(|(i, _)| i).collect();
        assert_eq!(order, vec![ItemId(5), ItemId(3)]);
    }

    #[test]
    fn capped_count_matches_contract() {
        let mut log = UpdateLog::new(100);
        for i in 0..20u32 {
            log.apply_update(t(1.0 + f64::from(i)), ItemId(i));
        }
        // The contract: count_since_capped(s, cap) == min(count_since(s), cap + 1),
        // so `capped <= cap` decides `count <= cap` without a full walk.
        for &(since, cap) in &[(0.0, 5), (0.0, 19), (0.0, 50), (10.0, 3), (25.0, 0)] {
            let exact = log.count_since(t(since));
            let capped = log.count_since_capped(t(since), cap);
            assert_eq!(capped, exact.min(cap + 1), "since={since} cap={cap}");
            assert_eq!(capped <= cap, exact <= cap, "threshold test must agree");
        }
    }

    #[test]
    fn tombstones_are_skipped_and_compacted() {
        let mut log = UpdateLog::new(4);
        // Hammer two items so re-updates pile up tombstones and force
        // compactions; the views must never show a dead entry.
        for k in 0..50u32 {
            log.apply_update(t(1.0 + f64::from(k)), ItemId(k % 2));
            assert_eq!(log.distinct_updated(), 1 + (k > 0) as usize);
            let desc: Vec<ItemId> = log.recency_desc().map(|(i, _)| i).collect();
            assert_eq!(desc.len(), log.distinct_updated());
            assert_eq!(desc[0], ItemId(k % 2), "newest first");
        }
        assert_eq!(log.total_updates(), 50);
        assert_eq!(log.count_since(SimTime::ZERO), 2);
        // Compaction kept the index smaller than the update count.
        assert!(log.recency.len() <= 4, "tombstones never compacted");
    }

    #[test]
    fn equal_time_reupdate_stays_live() {
        let mut log = UpdateLog::new(4);
        log.apply_update(t(1.0), ItemId(1));
        log.apply_update(t(1.0), ItemId(1)); // prev == now is allowed
        assert_eq!(log.distinct_updated(), 1);
        assert_eq!(log.latest_update(), Some(t(1.0)));
        assert_eq!(
            log.updates_since_iter(SimTime::ZERO).collect::<Vec<_>>(),
            vec![(ItemId(1), t(1.0))]
        );
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn time_travel_rejected() {
        let mut log = UpdateLog::new(10);
        log.apply_update(t(5.0), ItemId(1));
        log.apply_update(t(4.0), ItemId(1));
    }
}
