//! The broadcast server: report construction and the adaptive decision.

use crate::log::UpdateLog;
use mobicache_model::msg::SizeParams;
use mobicache_model::{ItemId, Scheme};
use mobicache_reports::{AtReport, BitSequences, ReportPayload, SigReport, Signer, WindowReport};
use mobicache_sim::SimTime;
use std::sync::Arc;

/// Counters describing the server's behaviour over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerCounters {
    /// Plain `IR(w)` window reports broadcast.
    pub window_reports: u64,
    /// AAW enlarged-window reports broadcast.
    pub enlarged_reports: u64,
    /// Bit-sequence reports broadcast.
    pub bs_reports: u64,
    /// Amnesic-terminals reports broadcast.
    pub at_reports: u64,
    /// Signature reports broadcast.
    pub sig_reports: u64,
    /// `Tlb` messages received from clients.
    pub tlbs_received: u64,
    /// Duplicate `Tlb` arrivals ignored idempotently (a retrying client
    /// whose original uplink did arrive re-sends the same `Tlb`).
    pub duplicate_tlbs: u64,
    /// Validity-check requests processed.
    pub checks_processed: u64,
    /// Update transactions applied.
    pub txns_applied: u64,
    /// Individual item updates applied.
    pub updates_applied: u64,
}

impl ServerCounters {
    /// Field-wise accumulation: multi-cell runs sum the per-cell
    /// servers' counters into one run-wide total (cell order, so the
    /// result is deterministic and, at one cell, the identity).
    pub fn absorb(&mut self, other: &ServerCounters) {
        self.window_reports += other.window_reports;
        self.enlarged_reports += other.enlarged_reports;
        self.bs_reports += other.bs_reports;
        self.at_reports += other.at_reports;
        self.sig_reports += other.sig_reports;
        self.tlbs_received += other.tlbs_received;
        self.duplicate_tlbs += other.duplicate_tlbs;
        self.checks_processed += other.checks_processed;
        self.txns_applied += other.txns_applied;
        self.updates_applied += other.updates_applied;
    }
}

/// The adaptive schemes' per-period report choice (§3, Figures 3 and 4),
/// surfaced so observers can trace *why* a period broadcast what it did.
///
/// `None` periods (no pending eligible `Tlb`, or a non-adaptive scheme)
/// produce no decision record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AdaptiveDecision {
    /// AFW (Figure 3): an eligible `Tlb` forced an `IR(BS)` broadcast
    /// this period instead of the usual `IR(w)`.
    AfwBsTrigger {
        /// Number of eligible `Tlb`s pending at the broadcast.
        eligible: usize,
        /// The oldest eligible `Tlb`, seconds.
        oldest_tlb_secs: f64,
        /// Size of the BS report body actually broadcast, bits.
        bs_bits: f64,
        /// Size the plain window report would have had, bits.
        window_bits: f64,
    },
    /// AAW (Figure 4): the window was enlarged back to the oldest
    /// eligible `Tlb` because that was cheaper than BS.
    AawEnlarge {
        /// The `Tlb` the enlarged window reaches back to, seconds.
        tlb_secs: f64,
        /// Size of the enlarged-window report (the chosen one), bits.
        enlarged_bits: f64,
        /// Size a BS report would have had, bits.
        bs_bits: f64,
    },
    /// AAW (Figure 4): BS was broadcast because the enlarged window
    /// would have been bigger.
    AawBsFallback {
        /// The oldest eligible `Tlb` that demanded the deep history.
        tlb_secs: f64,
        /// Size the enlarged-window report would have had, bits.
        enlarged_bits: f64,
        /// Size of the BS report actually broadcast, bits.
        bs_bits: f64,
    },
}

/// Answer to a validity-check request.
#[derive(Clone, Debug, PartialEq)]
pub struct ValidityVerdict {
    /// Server time the verdict is valid as of.
    pub asof: SimTime,
    /// The checked items that are still valid.
    pub valid: Vec<ItemId>,
    /// Number of items checked (sizes the downlink validity report).
    pub checked: u32,
}

/// Answer to a grouped-checking request (GCORE-like extension).
#[derive(Clone, Debug, PartialEq)]
pub struct GroupVerdict {
    /// Server time the verdict is valid as of.
    pub asof: SimTime,
    /// `false` when some group's `Tlb` predates the retention window —
    /// the client must drop its cache.
    pub covered: bool,
    /// Items of the checked groups updated since their `Tlb`s.
    pub stale: Vec<ItemId>,
}

/// A report built on a previous period, kept for reuse.
///
/// Between broadcasts with no intervening update the report's *content*
/// is unchanged — only its timestamps move — so the server rebases the
/// cached payload instead of re-extracting the window or rebuilding the
/// bit sequences. Validity is keyed on [`UpdateLog::total_updates`] plus,
/// for window reports, the history bound the records were extracted from.
struct CachedReport {
    payload: Arc<ReportPayload>,
    /// `UpdateLog::total_updates` when the payload was built.
    total_updates: u64,
    /// Window reports: `records == updates_since(history_since)`.
    history_since: SimTime,
    /// Window reports: oldest record timestamp (`None` when empty). A
    /// forward-moving window may only be reused while no cached record
    /// falls out of it.
    min_record: Option<SimTime>,
}

/// The stateless broadcast server.
pub struct Server {
    scheme: Scheme,
    params: SizeParams,
    window_secs: f64,
    log: UpdateLog,
    /// `Tlb`s uplinked since the last report build (cleared each period —
    /// the only per-period client feedback the adaptive schemes keep).
    pending_tlbs: Vec<SimTime>,
    prev_broadcast: SimTime,
    /// Signature state (maintained incrementally when running `SIG`).
    signer: Signer,
    combined: Option<Vec<u64>>,
    /// Grouped-checking parameters: `(group count, retention seconds)`.
    gcore: (u32, f64),
    counters: ServerCounters,
    /// Most recently built report, reused across quiet periods.
    cached_report: Option<CachedReport>,
    /// Periods served by rebasing the cached report (observability only —
    /// deliberately kept out of [`ServerCounters`] and the run metrics so
    /// the cache cannot perturb result digests).
    report_cache_hits: u64,
}

impl Server {
    /// A server for `scheme` over a database of `db_size` items, with the
    /// invalidation window `w · L` in seconds.
    pub fn new(scheme: Scheme, db_size: u32, window_secs: f64, params: SizeParams) -> Self {
        let signer = Signer::new(32, 32, 0x5161_5161);
        let combined =
            (scheme == Scheme::Sig).then(|| signer.combine(&vec![SimTime::ZERO; db_size as usize]));
        Server {
            scheme,
            params,
            window_secs,
            log: UpdateLog::new(db_size),
            pending_tlbs: Vec::new(),
            prev_broadcast: SimTime::ZERO,
            signer,
            combined,
            gcore: (64, 100.0 * window_secs),
            counters: ServerCounters::default(),
            cached_report: None,
            report_cache_hits: 0,
        }
    }

    /// Sets the grouped-checking parameters (group count and retention
    /// window in seconds). Only meaningful under [`Scheme::Gcore`].
    pub fn configure_gcore(&mut self, groups: u32, retention_secs: f64) {
        assert!(groups > 0, "need at least one group");
        assert!(retention_secs > 0.0, "retention must be positive");
        self.gcore = (groups, retention_secs);
    }

    /// The group an item belongs to (round-robin partition).
    #[inline]
    pub fn group_of(item: ItemId, groups: u32) -> u32 {
        item.0 % groups
    }

    /// Answers a grouped-checking request: for each `(group, Tlb)` pair,
    /// the items of that group updated since the `Tlb` — unless any
    /// `Tlb` predates the retention window, in which case the verdict is
    /// uncovered and the client drops its cache.
    pub fn process_group_check(&mut self, now: SimTime, groups: &[(u32, SimTime)]) -> GroupVerdict {
        self.counters.checks_processed += 1;
        let (group_count, retention_secs) = self.gcore;
        let horizon = SimTime::from_secs(now.as_secs() - retention_secs);
        if groups.iter().any(|&(_, tlb)| tlb < horizon) {
            return GroupVerdict {
                asof: now,
                covered: false,
                stale: Vec::new(),
            };
        }
        let mut stale = Vec::new();
        for &(group, tlb) in groups {
            for (item, _) in self.log.updates_since_iter(tlb) {
                if Self::group_of(item, group_count) == group {
                    stale.push(item);
                }
            }
        }
        stale.sort_unstable();
        stale.dedup();
        GroupVerdict {
            asof: now,
            covered: true,
            stale,
        }
    }

    /// The scheme this server runs.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The signature parameters (used by `SIG` clients).
    pub fn signer(&self) -> Signer {
        self.signer
    }

    /// Read access to the update history (the simulation oracle uses
    /// this as ground truth).
    pub fn log(&self) -> &UpdateLog {
        &self.log
    }

    /// Behaviour counters.
    pub fn counters(&self) -> ServerCounters {
        self.counters
    }

    /// Broadcast periods served by rebasing the cached report instead of
    /// rebuilding it. Observability only — not part of
    /// [`ServerCounters`] or any run metric.
    pub fn report_cache_hits(&self) -> u64 {
        self.report_cache_hits
    }

    /// Applies one update transaction touching `items` at time `now`.
    pub fn apply_txn(&mut self, now: SimTime, items: &[ItemId]) {
        self.counters.txns_applied += 1;
        for &item in items {
            let prev = self.log.apply_update(now, item);
            self.counters.updates_applied += 1;
            if let Some(combined) = &mut self.combined {
                // Incremental signature maintenance: swap the item's old
                // signature for the new one in every subset containing it.
                let delta =
                    self.signer.item_signature(item, prev) ^ self.signer.item_signature(item, now);
                for (j, sig) in combined.iter_mut().enumerate() {
                    if self.signer.is_member(j as u32, item) {
                        *sig ^= delta;
                    }
                }
            }
        }
    }

    /// The current version of an item (for data delivery).
    #[inline]
    pub fn version(&self, item: ItemId) -> SimTime {
        self.log.version(item)
    }

    /// Records a `Tlb` uplinked by a reconnecting adaptive-scheme client.
    ///
    /// Idempotent under duplicates: a retrying client may re-send a `Tlb`
    /// whose original did arrive (the *report* was what it missed), and
    /// uplink reordering can deliver both copies in one period.
    /// Registering the timestamp once is enough — the adaptive decision
    /// depends only on the set of pending `Tlb`s, so dropping the
    /// duplicate changes nothing while keeping the pending list from
    /// growing with the retry rate.
    pub fn receive_tlb(&mut self, tlb: SimTime) {
        self.counters.tlbs_received += 1;
        if self.pending_tlbs.contains(&tlb) {
            self.counters.duplicate_tlbs += 1;
        } else {
            self.pending_tlbs.push(tlb);
        }
    }

    /// Simulates a server crash: every piece of **volatile** state is
    /// wiped — the pending-`Tlb` list, the cached report payload, the
    /// incremental signature index, and the previous-broadcast watermark.
    /// The update log survives (it is the durable store the paper's
    /// stateless-server argument rests on). Returns the number of pending
    /// `Tlb` registrations lost.
    pub fn crash(&mut self) -> u64 {
        let dropped = self.pending_tlbs.len() as u64;
        self.pending_tlbs.clear();
        self.cached_report = None;
        self.combined = None;
        // Forgetting the last broadcast makes the next AT report cover
        // the whole history — conservative (clients invalidate more than
        // strictly needed) but never unsafe.
        self.prev_broadcast = SimTime::ZERO;
        dropped
    }

    /// Rebuilds the volatile state wiped by [`Server::crash`] from the
    /// durable update log. Report caches repopulate lazily on the next
    /// broadcast; only the `SIG` combined-signature index needs an eager
    /// rebuild (it is maintained incrementally in steady state).
    pub fn recover(&mut self) {
        if self.scheme == Scheme::Sig {
            let mut versions = vec![SimTime::ZERO; self.log.db_size() as usize];
            for (item, version) in self.log.recency_desc() {
                versions[item.0 as usize] = version;
            }
            self.combined = Some(self.signer.combine(&versions));
        }
    }

    /// Answers a simple-checking validity request: which of the client's
    /// `(item, version)` pairs are still current.
    pub fn process_check(
        &mut self,
        now: SimTime,
        entries: &[(ItemId, SimTime)],
    ) -> ValidityVerdict {
        self.counters.checks_processed += 1;
        ValidityVerdict {
            asof: now,
            valid: entries
                .iter()
                .filter(|&&(item, version)| self.log.is_valid(item, version))
                .map(|&(item, _)| item)
                .collect(),
            checked: entries.len() as u32,
        }
    }

    /// Start of the default window for a report broadcast at `now`
    /// (`T − w·L`; may be negative early in the run, which simply means
    /// the report covers the whole history so far).
    fn window_start(&self, now: SimTime) -> SimTime {
        SimTime::from_secs(now.as_secs() - self.window_secs)
    }

    /// A window report for the broadcast at `now`, served from the cache
    /// when possible.
    ///
    /// The cached window is reusable iff no update has been applied since
    /// it was built, its records were extracted from an equal-or-deeper
    /// history bound, and none of them falls out of the requested bound —
    /// then `records == updates_since(history_since)` still holds and only
    /// the timestamps (and AAW dummy) need rebasing.
    fn cached_window(
        &mut self,
        now: SimTime,
        history_since: SimTime,
        dummy: Option<SimTime>,
    ) -> Arc<ReportPayload> {
        let total = self.log.total_updates();
        let window_start = self.window_start(now);
        let reusable = match &self.cached_report {
            Some(c) if c.total_updates == total && c.history_since <= history_since => {
                matches!(&*c.payload, ReportPayload::Window(_))
                    && c.min_record.is_none_or(|ts| ts > history_since)
            }
            _ => false,
        };
        if reusable {
            self.report_cache_hits += 1;
            let cache = self.cached_report.as_mut().expect("reusable cache");
            let mut payload = Arc::clone(&cache.payload);
            let ReportPayload::Window(w) = Arc::make_mut(&mut payload) else {
                unreachable!("reusable cache holds a window report");
            };
            w.broadcast_at = now;
            w.window_start = window_start;
            w.dummy = dummy;
            cache.payload = Arc::clone(&payload);
            cache.history_since = history_since;
            return payload;
        }
        let records: Vec<(ItemId, SimTime)> = self.log.updates_since_iter(history_since).collect();
        let min_record = records.iter().map(|&(_, ts)| ts).min();
        let payload = Arc::new(ReportPayload::Window(WindowReport {
            broadcast_at: now,
            window_start,
            records,
            dummy,
        }));
        self.cached_report = Some(CachedReport {
            payload: Arc::clone(&payload),
            total_updates: total,
            history_since,
            min_record,
        });
        payload
    }

    /// A bit-sequences report for the broadcast at `now`, served from the
    /// cache when possible. The structure depends only on the recency
    /// index, so with no intervening update only `broadcast_at` moves.
    fn cached_bs(&mut self, now: SimTime) -> Arc<ReportPayload> {
        let total = self.log.total_updates();
        let reusable = matches!(&self.cached_report,
            Some(c) if c.total_updates == total && c.payload.is_bitseq());
        if reusable {
            self.report_cache_hits += 1;
            let cache = self.cached_report.as_mut().expect("reusable cache");
            let mut payload = Arc::clone(&cache.payload);
            let ReportPayload::BitSeq(bs) = Arc::make_mut(&mut payload) else {
                unreachable!("reusable cache holds a BS report");
            };
            bs.broadcast_at = now;
            cache.payload = Arc::clone(&payload);
            return payload;
        }
        let bs = BitSequences::from_recency(now, self.log.db_size(), self.log.recency_desc());
        let payload = Arc::new(ReportPayload::BitSeq(bs));
        self.cached_report = Some(CachedReport {
            payload: Arc::clone(&payload),
            total_updates: total,
            history_since: SimTime::ZERO,
            min_record: None,
        });
        payload
    }

    /// A signatures report for the broadcast at `now`, served from the
    /// cache when possible (the combined signatures change only with
    /// updates).
    fn cached_sig(&mut self, now: SimTime) -> Arc<ReportPayload> {
        let total = self.log.total_updates();
        let reusable = matches!(&self.cached_report,
            Some(c) if c.total_updates == total && matches!(&*c.payload, ReportPayload::Sig(..)));
        if reusable {
            self.report_cache_hits += 1;
            let cache = self.cached_report.as_mut().expect("reusable cache");
            let mut payload = Arc::clone(&cache.payload);
            let ReportPayload::Sig(sig, _) = Arc::make_mut(&mut payload) else {
                unreachable!("reusable cache holds a SIG report");
            };
            sig.broadcast_at = now;
            cache.payload = Arc::clone(&payload);
            return payload;
        }
        let payload = Arc::new(ReportPayload::Sig(
            SigReport {
                broadcast_at: now,
                combined: self.combined.clone().expect("SIG state maintained"),
            },
            self.signer,
        ));
        self.cached_report = Some(CachedReport {
            payload: Arc::clone(&payload),
            total_updates: total,
            history_since: SimTime::ZERO,
            min_record: None,
        });
        payload
    }

    /// A pending `Tlb` is *eligible* for bit-sequence salvage when it
    /// falls outside the default window but within BS reach
    /// (`TS(B_n) ≤ Tlb ≤ T − w·L`, Figure 3). `TS(B_n) ≤ Tlb` is
    /// equivalent to "at most `N/2` items updated after `Tlb`". Returns
    /// `(eligible count, oldest eligible Tlb)` without allocating; each
    /// membership test walks the recency index at most `N/2 + 1` steps.
    fn eligible_tlb_stats(&self, now: SimTime) -> (usize, Option<SimTime>) {
        let wstart = self.window_start(now);
        let half = (self.log.db_size() / 2) as usize;
        let mut count = 0;
        let mut oldest = None;
        for &tlb in &self.pending_tlbs {
            if tlb < wstart && self.log.count_since_capped(tlb, half) <= half {
                count += 1;
                if oldest.is_none_or(|o| tlb < o) {
                    oldest = Some(tlb);
                }
            }
        }
        (count, oldest)
    }

    /// Builds the invalidation report for the broadcast at `now`,
    /// consuming the period's pending `Tlb`s.
    ///
    /// Compatibility form of [`Server::build_report_shared`]; it clones
    /// the payload out of the shared handle.
    pub fn build_report(&mut self, now: SimTime) -> ReportPayload {
        self.build_report_observed(now).0
    }

    /// Like [`Server::build_report`], but also reports the adaptive
    /// decision taken this period (AFW BS-trigger, AAW enlargement or
    /// fallback), if any, for observers.
    pub fn build_report_observed(
        &mut self,
        now: SimTime,
    ) -> (ReportPayload, Option<AdaptiveDecision>) {
        let (report, decision) = self.build_report_shared(now);
        ((*report).clone(), decision)
    }

    /// Builds the invalidation report for the broadcast at `now` behind a
    /// shared handle, consuming the period's pending `Tlb`s.
    ///
    /// This is the simulator's path: the returned [`Arc`] is delivered to
    /// the whole broadcast fan-out without copying, and across quiet
    /// periods (no update applied, same report kind and window reach) the
    /// server rebases the previously built report instead of rebuilding
    /// it — see [`Server::report_cache_hits`].
    pub fn build_report_shared(
        &mut self,
        now: SimTime,
    ) -> (Arc<ReportPayload>, Option<AdaptiveDecision>) {
        let mut decision = None;
        let report = match self.scheme {
            Scheme::TsNoCheck | Scheme::SimpleChecking | Scheme::Gcore => {
                self.counters.window_reports += 1;
                self.cached_window(now, self.window_start(now), None)
            }
            Scheme::At => {
                // Never cached: the covered interval (prev_broadcast, now]
                // changes every period by construction.
                self.counters.at_reports += 1;
                let items = self
                    .log
                    .updates_since_iter(self.prev_broadcast)
                    .map(|(item, _)| item)
                    .collect();
                Arc::new(ReportPayload::At(AtReport {
                    broadcast_at: now,
                    prev_broadcast: self.prev_broadcast,
                    items,
                }))
            }
            Scheme::Bs => {
                self.counters.bs_reports += 1;
                self.cached_bs(now)
            }
            Scheme::Sig => {
                self.counters.sig_reports += 1;
                self.cached_sig(now)
            }
            Scheme::Afw => {
                // Figure 3: broadcast BS iff some pending Tlb needs (and
                // can use) more history than the window provides.
                let (eligible, oldest) = self.eligible_tlb_stats(now);
                match oldest {
                    Some(oldest) => {
                        self.counters.bs_reports += 1;
                        let payload = self.cached_bs(now);
                        let ReportPayload::BitSeq(bs) = &*payload else {
                            unreachable!("cached_bs returns a BS report");
                        };
                        // The window report is priced without being built:
                        // its size is a pure function of its record count.
                        let window_records = self.log.count_since(self.window_start(now)) as f64;
                        decision = Some(AdaptiveDecision::AfwBsTrigger {
                            eligible,
                            oldest_tlb_secs: oldest.as_secs(),
                            bs_bits: bs.size_bits(&self.params),
                            window_bits: self.params.timestamp_bits
                                + window_records * self.params.record_bits(),
                        });
                        payload
                    }
                    None => {
                        self.counters.window_reports += 1;
                        self.cached_window(now, self.window_start(now), None)
                    }
                }
            }
            Scheme::Aaw => {
                // Figure 4: between BS and the enlarged window, pick the
                // smaller report.
                match self.eligible_tlb_stats(now).1 {
                    None => {
                        self.counters.window_reports += 1;
                        self.cached_window(now, self.window_start(now), None)
                    }
                    Some(min_tlb) => {
                        let n_enlarged = self.log.count_since(min_tlb) as f64 + 1.0;
                        let enlarged_bits =
                            self.params.timestamp_bits + n_enlarged * self.params.record_bits();
                        let bs_bits = 2.0 * self.log.db_size() as f64
                            + self.params.timestamp_bits
                                * mobicache_model::units::bits_per_id(self.log.db_size() as u64);
                        if enlarged_bits <= bs_bits {
                            self.counters.enlarged_reports += 1;
                            decision = Some(AdaptiveDecision::AawEnlarge {
                                tlb_secs: min_tlb.as_secs(),
                                enlarged_bits,
                                bs_bits,
                            });
                            self.cached_window(now, min_tlb, Some(min_tlb))
                        } else {
                            self.counters.bs_reports += 1;
                            decision = Some(AdaptiveDecision::AawBsFallback {
                                tlb_secs: min_tlb.as_secs(),
                                enlarged_bits,
                                bs_bits,
                            });
                            self.cached_bs(now)
                        }
                    }
                }
            }
        };
        self.pending_tlbs.clear();
        self.prev_broadcast = now;
        (report, decision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobicache_reports::BsDecision;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn params(db: u64) -> SizeParams {
        SizeParams {
            db_size: db,
            group_count: 64,
            timestamp_bits: 48.0,
            header_bits: 64.0,
            control_bytes: 512,
            item_bytes: 8192,
        }
    }

    fn server(scheme: Scheme, db: u32) -> Server {
        Server::new(scheme, db, 200.0, params(db as u64))
    }

    #[test]
    fn window_report_covers_default_window() {
        let mut s = server(Scheme::SimpleChecking, 100);
        s.apply_txn(t(100.0), &[ItemId(1)]);
        s.apply_txn(t(900.0), &[ItemId(2)]);
        let r = s.build_report(t(1000.0));
        match r {
            ReportPayload::Window(w) => {
                assert_eq!(w.window_start, t(800.0));
                assert_eq!(w.records, vec![(ItemId(2), t(900.0))]);
                assert_eq!(w.dummy, None);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(s.counters().window_reports, 1);
    }

    #[test]
    fn afw_broadcasts_window_without_pending_tlbs() {
        let mut s = server(Scheme::Afw, 100);
        assert!(matches!(
            s.build_report(t(1000.0)),
            ReportPayload::Window(_)
        ));
    }

    #[test]
    fn afw_switches_to_bs_for_eligible_tlb() {
        let mut s = server(Scheme::Afw, 100);
        s.apply_txn(t(500.0), &[ItemId(1)]);
        // Tlb = 300 < window start (800) and only 1 item updated since.
        s.receive_tlb(t(300.0));
        let r = s.build_report(t(1000.0));
        assert!(r.is_bitseq(), "eligible Tlb must trigger BS, got {r:?}");
        // The pending Tlb is consumed: next period reverts to the window.
        assert!(matches!(
            s.build_report(t(1020.0)),
            ReportPayload::Window(_)
        ));
        assert_eq!(s.counters().bs_reports, 1);
        assert_eq!(s.counters().window_reports, 1);
    }

    #[test]
    fn afw_ignores_tlb_within_window() {
        let mut s = server(Scheme::Afw, 100);
        s.receive_tlb(t(900.0)); // inside [800, 1000]
        assert!(matches!(
            s.build_report(t(1000.0)),
            ReportPayload::Window(_)
        ));
    }

    #[test]
    fn afw_ignores_tlb_below_bs_reach() {
        // More than half the database updated after the Tlb: BS cannot
        // salvage that client, so don't waste a BS broadcast (Figure 3).
        let mut s = server(Scheme::Afw, 10);
        for i in 0..6u32 {
            s.apply_txn(t(500.0 + i as f64), &[ItemId(i)]);
        }
        s.receive_tlb(t(100.0));
        assert!(matches!(
            s.build_report(t(1000.0)),
            ReportPayload::Window(_)
        ));
    }

    #[test]
    fn aaw_prefers_small_enlarged_window() {
        let mut s = server(Scheme::Aaw, 10_000);
        s.apply_txn(t(500.0), &[ItemId(1), ItemId(2)]);
        s.receive_tlb(t(300.0));
        let r = s.build_report(t(1000.0));
        match r {
            ReportPayload::Window(w) => {
                assert_eq!(w.dummy, Some(t(300.0)));
                // Enlarged history reaches back to the Tlb.
                assert_eq!(w.records.len(), 2);
                assert!(w.covers(t(300.0)));
            }
            other => panic!("expected enlarged window, got {other:?}"),
        }
        assert_eq!(s.counters().enlarged_reports, 1);
    }

    #[test]
    fn aaw_falls_back_to_bs_when_enlarged_window_is_bigger() {
        // Tiny database, lots of distinct updates since the Tlb: the
        // enlarged window would list them all and exceed 2N + bT·log N.
        let mut s = server(Scheme::Aaw, 16);
        for i in 0..8u32 {
            s.apply_txn(t(500.0 + i as f64), &[ItemId(i)]);
        }
        s.receive_tlb(t(100.0));
        let r = s.build_report(t(1000.0));
        assert!(r.is_bitseq(), "expected BS, got {r:?}");
    }

    #[test]
    fn aaw_enlarged_report_salvages_the_requesting_client() {
        let mut s = server(Scheme::Aaw, 10_000);
        s.apply_txn(t(500.0), &[ItemId(7)]);
        s.receive_tlb(t(300.0));
        let r = s.build_report(t(1000.0));
        let ReportPayload::Window(w) = r else {
            panic!("expected window")
        };
        // A client at Tlb=300 caching item 7 (version 0) and item 9.
        match w.decide(
            t(300.0),
            vec![(ItemId(7), SimTime::ZERO), (ItemId(9), SimTime::ZERO)],
        ) {
            mobicache_reports::WindowDecision::Invalidate(stale) => {
                assert_eq!(stale, vec![ItemId(7)]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn observed_report_surfaces_adaptive_decisions() {
        // Plain window period under AFW: no decision to report.
        let mut s = server(Scheme::Afw, 100);
        let (r, d) = s.build_report_observed(t(1000.0));
        assert!(matches!(r, ReportPayload::Window(_)));
        assert_eq!(d, None);

        // Eligible Tlb under AFW: the BS trigger records the candidate
        // sizes it weighed.
        s.apply_txn(t(1100.0), &[ItemId(1)]);
        s.receive_tlb(t(1050.0));
        let (r, d) = s.build_report_observed(t(2000.0));
        assert!(r.is_bitseq());
        match d {
            Some(AdaptiveDecision::AfwBsTrigger {
                eligible,
                oldest_tlb_secs,
                bs_bits,
                window_bits,
            }) => {
                assert_eq!(eligible, 1);
                assert_eq!(oldest_tlb_secs, 1050.0);
                assert_eq!(bs_bits, r.size_bits(&s.params));
                assert!(window_bits > 0.0);
            }
            other => panic!("{other:?}"),
        }

        // AAW enlargement: the chosen window really was the smaller option.
        let mut s = server(Scheme::Aaw, 10_000);
        s.apply_txn(t(500.0), &[ItemId(1)]);
        s.receive_tlb(t(300.0));
        let (r, d) = s.build_report_observed(t(1000.0));
        match d {
            Some(AdaptiveDecision::AawEnlarge {
                tlb_secs,
                enlarged_bits,
                bs_bits,
            }) => {
                assert_eq!(tlb_secs, 300.0);
                assert!(enlarged_bits <= bs_bits);
                assert!(matches!(r, ReportPayload::Window(_)));
            }
            other => panic!("{other:?}"),
        }

        // AAW fallback: enlarged window priced out, BS chosen instead.
        let mut s = server(Scheme::Aaw, 16);
        for i in 0..8u32 {
            s.apply_txn(t(500.0 + f64::from(i)), &[ItemId(i)]);
        }
        s.receive_tlb(t(100.0));
        let (r, d) = s.build_report_observed(t(1000.0));
        assert!(r.is_bitseq());
        match d {
            Some(AdaptiveDecision::AawBsFallback {
                enlarged_bits,
                bs_bits,
                ..
            }) => assert!(enlarged_bits > bs_bits),
            other => panic!("{other:?}"),
        }

        // Non-adaptive schemes never report a decision.
        let mut s = server(Scheme::Bs, 64);
        s.receive_tlb(t(5.0));
        let (_, d) = s.build_report_observed(t(20.0));
        assert_eq!(d, None);
    }

    #[test]
    fn bs_scheme_always_broadcasts_bs() {
        let mut s = server(Scheme::Bs, 64);
        s.apply_txn(t(10.0), &[ItemId(3)]);
        let r = s.build_report(t(20.0));
        let ReportPayload::BitSeq(bs) = r else {
            panic!("expected BS")
        };
        assert_eq!(bs.decide(t(10.0), vec![ItemId(3)]), BsDecision::Clean);
        match bs.decide(t(5.0), vec![ItemId(3)]) {
            BsDecision::Invalidate(stale) => assert_eq!(stale, vec![ItemId(3)]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn at_report_lists_only_last_interval() {
        let mut s = server(Scheme::At, 100);
        s.apply_txn(t(5.0), &[ItemId(1)]);
        s.build_report(t(20.0));
        s.apply_txn(t(25.0), &[ItemId(2)]);
        let r = s.build_report(t(40.0));
        let ReportPayload::At(at) = r else {
            panic!("expected AT")
        };
        assert_eq!(at.items, vec![ItemId(2)]);
        assert_eq!(at.prev_broadcast, t(20.0));
    }

    #[test]
    fn validity_check_verdicts() {
        let mut s = server(Scheme::SimpleChecking, 100);
        s.apply_txn(t(50.0), &[ItemId(1)]);
        let verdict = s.process_check(
            t(60.0),
            &[
                (ItemId(1), SimTime::ZERO), // stale
                (ItemId(1), t(50.0)),       // current
                (ItemId(2), SimTime::ZERO), // never updated
            ],
        );
        assert_eq!(verdict.asof, t(60.0));
        assert_eq!(verdict.checked, 3);
        assert_eq!(verdict.valid, vec![ItemId(1), ItemId(2)]);
        assert_eq!(s.counters().checks_processed, 1);
    }

    #[test]
    fn group_check_lists_stale_items_per_group() {
        let mut s = server(Scheme::Gcore, 100);
        s.configure_gcore(10, 10_000.0);
        // Items 3 and 13 share group 3; item 4 is group 4.
        s.apply_txn(t(500.0), &[ItemId(3), ItemId(13), ItemId(4)]);
        let verdict = s.process_group_check(t(1000.0), &[(3, t(100.0))]);
        assert!(verdict.covered);
        assert_eq!(verdict.stale, vec![ItemId(3), ItemId(13)]);
        assert_eq!(verdict.asof, t(1000.0));
        // A fresher Tlb sees no stale items.
        let verdict = s.process_group_check(t(1000.0), &[(3, t(600.0))]);
        assert!(verdict.stale.is_empty());
    }

    #[test]
    fn group_check_refuses_beyond_retention() {
        let mut s = server(Scheme::Gcore, 100);
        s.configure_gcore(10, 300.0);
        let verdict = s.process_group_check(t(1000.0), &[(0, t(500.0)), (1, t(650.0))]);
        assert!(!verdict.covered, "Tlb 500 < horizon 700 must refuse");
        let verdict = s.process_group_check(t(1000.0), &[(1, t(800.0))]);
        assert!(verdict.covered);
    }

    #[test]
    fn group_check_dedupes_across_groups() {
        let mut s = server(Scheme::Gcore, 100);
        s.configure_gcore(10, 10_000.0);
        s.apply_txn(t(500.0), &[ItemId(7)]);
        s.apply_txn(t(600.0), &[ItemId(7)]);
        let verdict = s.process_group_check(t(1000.0), &[(7, t(100.0))]);
        assert_eq!(
            verdict.stale,
            vec![ItemId(7)],
            "one entry despite two updates"
        );
    }

    #[test]
    fn gcore_scheme_broadcasts_plain_windows() {
        let mut s = server(Scheme::Gcore, 100);
        assert!(matches!(
            s.build_report(t(1000.0)),
            ReportPayload::Window(_)
        ));
    }

    #[test]
    fn sig_state_matches_batch_recomputation() {
        let mut s = server(Scheme::Sig, 50);
        s.apply_txn(t(5.0), &[ItemId(1), ItemId(30)]);
        s.apply_txn(t(9.0), &[ItemId(1)]);
        let r = s.build_report(t(20.0));
        let ReportPayload::Sig(sig, signer) = r else {
            panic!("expected SIG")
        };
        let mut versions = vec![SimTime::ZERO; 50];
        versions[1] = t(9.0);
        versions[30] = t(5.0);
        assert_eq!(sig.combined, signer.combine(&versions));
    }

    #[test]
    fn quiet_period_reuses_cached_window() {
        let mut s = server(Scheme::SimpleChecking, 100);
        s.apply_txn(t(900.0), &[ItemId(2)]);
        let (first, _) = s.build_report_shared(t(1000.0));
        assert_eq!(s.report_cache_hits(), 0);
        // No update before the next broadcast and the record stays inside
        // the window: the report is rebased, not rebuilt.
        let (second, _) = s.build_report_shared(t(1020.0));
        assert_eq!(s.report_cache_hits(), 1);
        let (ReportPayload::Window(a), ReportPayload::Window(b)) = (&*first, &*second) else {
            panic!("expected windows");
        };
        assert_eq!(a.records, b.records, "content must be byte-identical");
        assert_eq!(b.broadcast_at, t(1020.0));
        assert_eq!(b.window_start, t(820.0));
        assert_eq!(
            s.counters().window_reports,
            2,
            "hits still count as broadcasts"
        );
    }

    #[test]
    fn update_between_periods_invalidates_cached_window() {
        let mut s = server(Scheme::SimpleChecking, 100);
        s.apply_txn(t(900.0), &[ItemId(2)]);
        s.build_report_shared(t(1000.0));
        s.apply_txn(t(1010.0), &[ItemId(5)]);
        let (r, _) = s.build_report_shared(t(1020.0));
        assert_eq!(s.report_cache_hits(), 0);
        let ReportPayload::Window(w) = &*r else {
            panic!("expected window")
        };
        let mut records = w.records.clone();
        records.sort_unstable();
        assert_eq!(
            records,
            vec![(ItemId(2), t(900.0)), (ItemId(5), t(1010.0))],
            "fresh update must appear — a cached report may never go stale"
        );
    }

    #[test]
    fn record_falling_out_of_window_rebuilds() {
        let mut s = server(Scheme::SimpleChecking, 100);
        s.apply_txn(t(900.0), &[ItemId(2)]);
        s.build_report_shared(t(1000.0)); // window [800, 1000] holds the record
        let (r, _) = s.build_report_shared(t(1150.0)); // window [950, 1150] does not
        assert_eq!(s.report_cache_hits(), 0);
        let ReportPayload::Window(w) = &*r else {
            panic!("expected window")
        };
        assert!(w.records.is_empty(), "expired record must drop out");
        // The rebuilt (empty) report is itself cacheable again.
        let (r, _) = s.build_report_shared(t(1170.0));
        assert_eq!(s.report_cache_hits(), 1);
        let ReportPayload::Window(w) = &*r else {
            panic!("expected window")
        };
        assert!(w.records.is_empty());
        assert_eq!(w.broadcast_at, t(1170.0));
    }

    #[test]
    fn quiet_period_reuses_cached_bs() {
        let mut s = server(Scheme::Bs, 64);
        s.apply_txn(t(10.0), &[ItemId(3)]);
        let (first, _) = s.build_report_shared(t(20.0));
        let (second, _) = s.build_report_shared(t(40.0));
        assert_eq!(s.report_cache_hits(), 1);
        let (ReportPayload::BitSeq(a), ReportPayload::BitSeq(b)) = (&*first, &*second) else {
            panic!("expected BS");
        };
        assert_eq!(a.levels, b.levels);
        assert_eq!(a.recency, b.recency);
        assert_eq!(b.broadcast_at, t(40.0));
        // The rebased report still invalidates the stale client.
        match b.decide(t(5.0), vec![ItemId(3)]) {
            BsDecision::Invalidate(stale) => assert_eq!(stale, vec![ItemId(3)]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn adaptive_kind_change_invalidates_cache() {
        let mut s = server(Scheme::Afw, 100);
        s.apply_txn(t(500.0), &[ItemId(1)]);
        s.build_report_shared(t(1000.0)); // plain window, cached
        s.receive_tlb(t(300.0)); // eligible: next period switches to BS
        let (r, _) = s.build_report_shared(t(1020.0));
        assert!(r.is_bitseq());
        assert_eq!(
            s.report_cache_hits(),
            0,
            "window cache must not serve a BS period"
        );
        // And back: the BS cache must not serve the window period either.
        let (r, _) = s.build_report_shared(t(1040.0));
        assert!(matches!(&*r, ReportPayload::Window(_)));
        assert_eq!(s.report_cache_hits(), 0);
    }

    #[test]
    fn aaw_enlargement_needs_deeper_history_than_cache() {
        let mut s = server(Scheme::Aaw, 10_000);
        s.apply_txn(t(900.0), &[ItemId(1), ItemId(2)]);
        s.build_report_shared(t(1000.0)); // plain window [800, 1000]
        s.receive_tlb(t(300.0));
        let (r, _) = s.build_report_shared(t(1020.0));
        assert_eq!(
            s.report_cache_hits(),
            0,
            "enlarged window reaches past the cache"
        );
        let ReportPayload::Window(w) = &*r else {
            panic!("expected enlarged window")
        };
        assert_eq!(w.dummy, Some(t(300.0)));
        assert_eq!(w.records.len(), 2, "history back to the Tlb");
        // The following quiet plain-window period: records at t=900 stay
        // inside the new window [840, 1040], so the enlarged report is
        // reused — with the AAW dummy stripped.
        let (r, _) = s.build_report_shared(t(1040.0));
        assert_eq!(s.report_cache_hits(), 1);
        let ReportPayload::Window(w) = &*r else {
            panic!("expected plain window")
        };
        assert_eq!(w.dummy, None, "plain period must not inherit the AAW dummy");
        assert_eq!(w.records.len(), 2);
    }

    #[test]
    fn quiet_period_reuses_cached_sig() {
        let mut s = server(Scheme::Sig, 50);
        s.apply_txn(t(5.0), &[ItemId(1)]);
        let (first, _) = s.build_report_shared(t(20.0));
        let (second, _) = s.build_report_shared(t(40.0));
        assert_eq!(s.report_cache_hits(), 1);
        let (ReportPayload::Sig(a, _), ReportPayload::Sig(b, _)) = (&*first, &*second) else {
            panic!("expected SIG");
        };
        assert_eq!(a.combined, b.combined);
        assert_eq!(b.broadcast_at, t(40.0));
        // An update invalidates: the combined signatures must move.
        s.apply_txn(t(45.0), &[ItemId(1)]);
        let (third, _) = s.build_report_shared(t(60.0));
        assert_eq!(s.report_cache_hits(), 1);
        let ReportPayload::Sig(c, _) = &*third else {
            panic!("expected SIG")
        };
        assert_ne!(b.combined, c.combined);
    }

    #[test]
    fn tlb_buffer_cleared_every_period() {
        let mut s = server(Scheme::Afw, 100);
        s.apply_txn(t(500.0), &[ItemId(1)]);
        s.receive_tlb(t(300.0));
        assert!(s.build_report(t(1000.0)).is_bitseq());
        // Same Tlb not re-broadcast: buffer is per-period.
        assert!(!s.build_report(t(1020.0)).is_bitseq());
        assert_eq!(s.counters().tlbs_received, 1);
    }

    #[test]
    fn duplicate_tlb_in_one_interval_is_idempotent() {
        // A retrying client re-sends the same Tlb; both copies land in
        // one period. The server must register it once: same adaptive
        // choice, same report, one pending entry.
        for scheme in [Scheme::Afw, Scheme::Aaw] {
            let mut s = server(scheme, 100);
            s.apply_txn(t(500.0), &[ItemId(1)]);
            s.receive_tlb(t(300.0));
            s.receive_tlb(t(300.0));
            assert_eq!(s.counters().tlbs_received, 2, "{scheme:?}");
            assert_eq!(s.counters().duplicate_tlbs, 1, "{scheme:?}");
            assert_eq!(s.pending_tlbs, vec![t(300.0)], "{scheme:?}");
            let (r, d) = s.build_report_observed(t(1000.0));
            match scheme {
                Scheme::Afw => {
                    assert!(r.is_bitseq(), "{scheme:?}: one BS trigger, not two");
                    let Some(AdaptiveDecision::AfwBsTrigger { eligible, .. }) = d else {
                        panic!("{scheme:?}: expected BS trigger, got {d:?}");
                    };
                    assert_eq!(eligible, 1, "duplicate must not inflate eligibility");
                }
                _ => {
                    let ReportPayload::Window(w) = &r else {
                        panic!("{scheme:?}: expected enlarged window, got {r:?}");
                    };
                    assert_eq!(w.dummy, Some(t(300.0)));
                }
            }
            // Consumed as usual: next period reverts to the plain window.
            assert!(matches!(
                s.build_report(t(1020.0)),
                ReportPayload::Window(_)
            ));
        }
    }

    #[test]
    fn distinct_tlbs_are_not_deduplicated() {
        let mut s = server(Scheme::Afw, 100);
        s.receive_tlb(t(300.0));
        s.receive_tlb(t(310.0));
        assert_eq!(s.counters().duplicate_tlbs, 0);
        assert_eq!(s.pending_tlbs.len(), 2);
    }

    #[test]
    fn crash_wipes_volatile_state_only() {
        let mut s = server(Scheme::Afw, 100);
        s.apply_txn(t(500.0), &[ItemId(1)]);
        s.receive_tlb(t(300.0));
        s.build_report_shared(t(1000.0)); // BS, cached
        s.receive_tlb(t(310.0));
        assert_eq!(s.crash(), 1, "one pending Tlb lost");
        // Volatile: pending Tlbs and the report cache are gone — the next
        // broadcast is a freshly built plain window.
        let (r, _) = s.build_report_shared(t(1020.0));
        assert!(matches!(&*r, ReportPayload::Window(_)));
        assert_eq!(s.report_cache_hits(), 0);
        // Durable: the update log survives the crash.
        assert_eq!(s.version(ItemId(1)), t(500.0));
        assert_eq!(s.log().total_updates(), 1);
    }

    #[test]
    fn counters_absorb_is_field_wise_and_identity_on_default() {
        let mut s = server(Scheme::Afw, 100);
        s.apply_txn(t(500.0), &[ItemId(1), ItemId(2)]);
        s.receive_tlb(t(300.0));
        s.build_report(t(1000.0));
        let base = s.counters();
        let mut sum = base;
        sum.absorb(&ServerCounters::default());
        assert_eq!(sum, base, "absorbing a default is the identity");
        sum.absorb(&base);
        assert_eq!(sum.txns_applied, 2 * base.txns_applied);
        assert_eq!(sum.updates_applied, 2 * base.updates_applied);
        assert_eq!(sum.tlbs_received, 2 * base.tlbs_received);
        assert_eq!(sum.bs_reports, 2 * base.bs_reports);
    }

    #[test]
    fn sig_recovery_rebuilds_combined_from_the_log() {
        let mut s = server(Scheme::Sig, 50);
        s.apply_txn(t(5.0), &[ItemId(1), ItemId(30)]);
        s.apply_txn(t(9.0), &[ItemId(1)]);
        s.crash();
        s.recover();
        let r = s.build_report(t(20.0));
        let ReportPayload::Sig(sig, signer) = r else {
            panic!("expected SIG")
        };
        // The rebuilt index matches a batch recomputation over the
        // durable versions — the incremental state was fully recovered.
        let mut versions = vec![SimTime::ZERO; 50];
        versions[1] = t(9.0);
        versions[30] = t(5.0);
        assert_eq!(sig.combined, signer.combine(&versions));
    }
}
