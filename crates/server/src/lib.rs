//! # mobicache-server — the stateless broadcast server
//!
//! §2 of the paper: *"The server is stateless, since it is not aware of
//! the state of the client's cache and the client itself… The server
//! simply periodically broadcasts an invalidation report containing the
//! data items that have been updated recently."*
//!
//! * [`log`] — the update history: per-item last-update timestamps plus a
//!   recency index, supporting window extraction (`IR(w)`), bit-sequence
//!   construction, and validity checking.
//! * [`server`] — the server itself: applies update transactions, builds
//!   the per-scheme invalidation report each broadcast period (including
//!   the AFW/AAW adaptive choice driven by client-uplinked `Tlb`s),
//!   answers data requests, and processes validity checks.
//!
//! The server is "stateless" in the paper's protocol sense — it tracks no
//! per-client cache contents — but the adaptive schemes do buffer the
//! `Tlb` timestamps uplinked since the last report; that buffer is cleared
//! every period (§3.1).

pub mod log;
pub mod server;

pub use log::UpdateLog;
pub use server::{AdaptiveDecision, GroupVerdict, Server, ServerCounters, ValidityVerdict};
