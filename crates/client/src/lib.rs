//! # mobicache-client — the mobile host state machine
//!
//! One [`Client`] per mobile host. The client is written as a pure state
//! machine: the simulation core feeds it events (a broadcast report
//! arrived, a data item arrived, a validity report arrived, a query was
//! issued, connect/disconnect transitions) and it returns
//! [`ClientAction`]s (uplink messages to send, completed queries to
//! account). This keeps every scheme's client protocol — the trickiest
//! logic in the paper — unit-testable without channels or an event loop.
//!
//! ## The reconnection problem
//!
//! §2–3 of the paper revolve around one scenario: a client wakes up after
//! missing reports and must decide what its cache is worth. The schemes
//! differ exactly here:
//!
//! | scheme | on an uncovering report after reconnection |
//! |--------|--------------------------------------------|
//! | `TS` (no-check) | drop the whole cache |
//! | `AT` | drop the whole cache (any missed report) |
//! | simple checking | mark entries *limbo*, uplink a validity check, salvage on the reply |
//! | `BS` | never happens — every BS report gives a verdict |
//! | `AFW`/`AAW` | mark entries *limbo*, uplink only `Tlb`, salvage from next period's BS / enlarged-window report |
//!
//! While entries are limbo they never answer queries; queries on limbo or
//! absent items go uplink (checking lazily first under
//! [`CheckingMode::QueriedItems`](mobicache_model::CheckingMode)).
//!
//! ## Scaling: the struct-of-arrays population
//!
//! The per-client layer is columnar: a [`ClientPop`] stores the whole
//! cell's client state as parallel columns plus one shared
//! [`PendingArena`] of pending-query nodes, and the scheme handlers run
//! against [`ClientMut`] accessor views (or read-only [`ClientRef`]s).
//! The engine's sharded phases walk contiguous column ranges through a
//! [`PopPtr`]. [`Client`] remains as a single-client facade over a
//! population of one.
//!
//! Migration note: the owning `QueryState` type was removed with this
//! redesign — per-item progress lives in the arena and the per-query
//! scalars in the Copy [`QueryHeader`]. Snapshot-style accessors that
//! cloned per-client vectors are gone with it; iterate the columns
//! (`caches_col`, `counters_col`) or use the view types instead.

mod machine;
mod pop;
mod query;

pub use machine::{Client, ClientAction, ClientConfig, ClientCounters};
pub use pop::{ClientMut, ClientPop, ClientRef, PendingArena, PopPtr};
pub use query::{PendingItem, PendingState, QueryHeader, QueryOutcome};
