//! The struct-of-arrays client population.
//!
//! A cell serves thousands to millions of mobile hosts, and the
//! engine's sharded tick phases walk *every* client once per broadcast.
//! Scattering per-client state across individually boxed `Client`
//! structs makes that walk a pointer chase; [`ClientPop`] instead keeps
//! one column per field — disconnect epoch, last-report time, cache,
//! gap/retry state, counters — plus a shared [`PendingArena`] holding
//! every client's pending-query nodes in one contiguous slab. The
//! sharded phases then scan contiguous column ranges.
//!
//! The state-machine handlers themselves are written once, against the
//! [`ClientMut`] accessor view (per-field `&mut` borrows into the
//! columns), so the scheme logic never sees column indices. A
//! single-client population backs the classic [`Client`] wrapper, which
//! keeps the old per-client API (and its tests) intact.
//!
//! Per-scheme column groups are materialized only for the active
//! scheme: the `SIG` baseline column exists only when the population
//! runs [`Scheme::Sig`], so the other seven schemes pay nothing for it.
//!
//! [`Client`]: crate::Client

use crate::machine::{ClientAction, ClientConfig, ClientCounters};
use crate::query::{PendingItem, PendingState, QueryHeader};
use mobicache_cache::{EntryState, LruCache};
use mobicache_model::{CheckingMode, ItemId, Scheme, UplinkKind};
use mobicache_reports::{
    BsSelect, PlanCache, PlanStats, PreparedReport, ReportPayload, SigDecision,
};
use mobicache_sim::SimTime;
use std::collections::HashSet;

/// A reconnection gap: the period of history the client missed and has
/// not yet been vouched for.
#[derive(Clone, Copy, Debug)]
pub(crate) struct GapState {
    /// `Tlb` at the moment the gap was detected — coverage target for
    /// salvage.
    since: SimTime,
    /// When the `Tlb`/check message was sent, if it was.
    sent_at: Option<SimTime>,
    /// Re-sends of the gap's `Tlb`/check so far (capped backoff).
    retries: u32,
}

/// One client's region of the pending arena.
#[derive(Clone, Copy, Debug, Default)]
struct Block {
    /// First node of the block in [`PendingArena::nodes`].
    start: u32,
    /// Capacity in nodes. The active query uses the first
    /// `QueryHeader::len` of them.
    cap: u32,
}

/// The shared slab of pending-query nodes, keyed by client index.
///
/// Each client owns one contiguous grow-only block; blocks are resized
/// only from the serial [`ClientPop::start_query`] path (a block that
/// outgrows its capacity is re-allocated at the tail and the old region
/// retired), so the parallel tick phases may freely mutate their own
/// clients' nodes through raw column pointers without ever moving the
/// slab.
#[derive(Debug, Default)]
pub struct PendingArena {
    nodes: Vec<PendingItem>,
    blocks: Vec<Block>,
}

impl PendingArena {
    fn with_clients(n: usize) -> Self {
        PendingArena {
            nodes: Vec::new(),
            blocks: vec![Block::default(); n],
        }
    }

    /// Ensures client `i`'s block holds at least `need` nodes and
    /// returns its start index. Serial-phase only: may move the slab.
    fn ensure(&mut self, i: usize, need: u32) -> usize {
        let b = self.blocks[i];
        if b.cap < need {
            // Grow-only: the new block lands at the tail; the old region
            // is retired in place (bounded by the sum of growth steps).
            let cap = need.next_power_of_two().max(4);
            let start = self.nodes.len() as u32;
            self.nodes.extend(std::iter::repeat_n(
                PendingItem::fresh(ItemId(0)),
                cap as usize,
            ));
            self.blocks[i] = Block { start, cap };
            start as usize
        } else {
            b.start as usize
        }
    }

    /// Total nodes allocated (diagnostics).
    pub fn nodes_allocated(&self) -> usize {
        self.nodes.len()
    }
}

/// A struct-of-arrays population of mobile clients.
///
/// All clients share one [`ClientConfig`]; per-client state lives in
/// parallel columns indexed by `ClientId::index()`. Mutating access
/// goes through [`ClientPop::client_mut`] (serial) or a [`PopPtr`]
/// (sharded phases over disjoint index ranges).
pub struct ClientPop {
    cfg: ClientConfig,
    caches: Vec<LruCache>,
    tlb: Vec<SimTime>,
    connected: Vec<bool>,
    /// Dense mirror of `connected`: bit `i` set iff client `i` listens.
    /// The fan-out copies this as its delivery-mask seed, so shards skip
    /// 64 disconnected clients per zero word instead of branching each.
    /// Maintained only by the pop-level [`ClientPop::disconnect`] /
    /// [`ClientPop::reconnect`] wrappers (serial phases).
    connected_bits: Vec<u64>,
    reconnect_pending: Vec<bool>,
    disconnected_at: Vec<Option<SimTime>>,
    gap: Vec<Option<GapState>>,
    header: Vec<Option<QueryHeader>>,
    counters: Vec<ClientCounters>,
    stale_scratch: Vec<Vec<ItemId>>,
    /// Which cell each client is currently associated with (all zero in
    /// the single-cell topology).
    cell: Vec<u32>,
    /// One membership bitmap per cell: bit `i` of `cell_bits[c]` is set
    /// iff client `i` is associated with cell `c`. The per-cell fan-out
    /// intersects this with `connected_bits` for its delivery mask.
    /// Maintained only by the serial [`ClientPop::handoff`] wrapper.
    cell_bits: Vec<Vec<u64>>,
    /// Per-scheme column group: stored combined signatures, materialized
    /// only under [`Scheme::Sig`].
    sig_baselines: Option<Vec<Option<Vec<u64>>>>,
    arena: PendingArena,
}

impl ClientPop {
    /// A population of `n` fresh, connected clients with empty caches
    /// in a single cell (the legacy topology).
    pub fn new(cfg: ClientConfig, n: usize) -> Self {
        ClientPop::with_cells(cfg, n, 1)
    }

    /// A population of `n` fresh, connected clients spread round-robin
    /// over `cells` cells (client `i` starts in cell `i % cells`).
    ///
    /// # Panics
    /// Panics if `cells` is zero.
    pub fn with_cells(cfg: ClientConfig, n: usize, cells: u32) -> Self {
        assert!(cells > 0, "at least one cell");
        let words = n.div_ceil(64);
        let mut cell = Vec::with_capacity(n);
        let mut cell_bits = vec![vec![0u64; words]; cells as usize];
        for i in 0..n {
            let c = (i as u32) % cells;
            cell.push(c);
            cell_bits[c as usize][i / 64] |= 1u64 << (i % 64);
        }
        ClientPop {
            caches: (0..n).map(|_| LruCache::new(cfg.cache_capacity)).collect(),
            tlb: vec![SimTime::ZERO; n],
            connected: vec![true; n],
            connected_bits: {
                let mut words = vec![u64::MAX; words];
                if !n.is_multiple_of(64) {
                    if let Some(last) = words.last_mut() {
                        *last = (1u64 << (n % 64)) - 1;
                    }
                }
                words
            },
            reconnect_pending: vec![false; n],
            disconnected_at: vec![None; n],
            gap: vec![None; n],
            header: vec![None; n],
            counters: vec![ClientCounters::default(); n],
            stale_scratch: (0..n).map(|_| Vec::new()).collect(),
            cell,
            cell_bits,
            sig_baselines: (cfg.scheme == Scheme::Sig).then(|| vec![None; n]),
            arena: PendingArena::with_clients(n),
            cfg,
        }
    }

    /// Number of clients in the population.
    pub fn len(&self) -> usize {
        self.caches.len()
    }

    /// `true` for the empty population.
    pub fn is_empty(&self) -> bool {
        self.caches.is_empty()
    }

    /// The shared static configuration.
    pub fn config(&self) -> &ClientConfig {
        &self.cfg
    }

    /// Read access to client `i`'s cache.
    pub fn cache(&self, i: usize) -> &LruCache {
        &self.caches[i]
    }

    /// The whole cache column (sharded oracle scans walk this).
    pub fn caches_col(&self) -> &[LruCache] {
        &self.caches
    }

    /// The whole connected column.
    pub fn connected_col(&self) -> &[bool] {
        &self.connected
    }

    /// The connected set as bitmap words (bit `i` = client `i` listens).
    /// The last word's tail bits beyond `len()` are zero.
    pub fn connected_words(&self) -> &[u64] {
        &self.connected_bits
    }

    /// Number of cells the population is spread over.
    pub fn cells(&self) -> u32 {
        self.cell_bits.len() as u32
    }

    /// The cell client `i` is currently associated with.
    pub fn cell_of(&self, i: usize) -> u32 {
        self.cell[i]
    }

    /// Cell `c`'s membership as bitmap words (bit `i` = client `i` is
    /// associated with cell `c`). Tail bits beyond `len()` are zero.
    pub fn cell_words(&self, c: u32) -> &[u64] {
        &self.cell_bits[c as usize]
    }

    /// Moves client `i` to cell `dest`, keeping the membership bitmaps
    /// in sync. Serial-phase only (bitmap words span 64 clients).
    /// Re-associating with the current cell is a no-op.
    pub fn handoff(&mut self, i: usize, dest: u32) {
        let from = self.cell[i] as usize;
        let dest_idx = dest as usize;
        assert!(dest_idx < self.cell_bits.len(), "cell {dest} out of range");
        self.cell_bits[from][i / 64] &= !(1u64 << (i % 64));
        self.cell_bits[dest_idx][i / 64] |= 1u64 << (i % 64);
        self.cell[i] = dest;
    }

    /// `true` while client `i` has an unresolved reconnection gap (its
    /// limbo entries await a covering report or verdict). The mobility
    /// process defers handoffs while a gap is open so no in-flight
    /// salvage traffic crosses a cell boundary.
    pub fn has_open_gap(&self, i: usize) -> bool {
        self.gap[i].is_some()
    }

    /// Disconnects client `i`, keeping the connected bitmap in sync.
    /// Serial-phase only (a bitmap word spans 64 clients, so per-client
    /// sharded views must never touch it).
    ///
    /// # Panics
    /// Panics if already disconnected or a query is in flight.
    pub fn disconnect(&mut self, i: usize, now: SimTime) {
        self.connected_bits[i / 64] &= !(1u64 << (i % 64));
        self.client_mut(i).disconnect(now);
    }

    /// Reconnects client `i`, keeping the connected bitmap in sync and
    /// returning the doze period in seconds. Serial-phase only.
    ///
    /// # Panics
    /// Panics if already connected.
    pub fn reconnect(&mut self, i: usize, now: SimTime) -> f64 {
        self.connected_bits[i / 64] |= 1u64 << (i % 64);
        self.client_mut(i).reconnect(now)
    }

    /// The whole counters column — snapshot samplers sum straight over
    /// this contiguous slice, no per-client cloning.
    pub fn counters_col(&self) -> &[ClientCounters] {
        &self.counters
    }

    /// Client `i`'s behaviour counters.
    pub fn counters(&self, i: usize) -> ClientCounters {
        self.counters[i]
    }

    /// `true` while client `i` listens to broadcasts.
    pub fn is_connected(&self, i: usize) -> bool {
        self.connected[i]
    }

    /// Timestamp of the last report client `i` received.
    pub fn tlb(&self, i: usize) -> SimTime {
        self.tlb[i]
    }

    /// `true` while client `i` resolves a query.
    pub fn has_pending_query(&self, i: usize) -> bool {
        self.header[i].is_some()
    }

    /// The pending arena (diagnostics).
    pub fn arena(&self) -> &PendingArena {
        &self.arena
    }

    /// A read-only view of client `i`.
    pub fn client_ref(&self, i: usize) -> ClientRef<'_> {
        ClientRef {
            cache: &self.caches[i],
            tlb: self.tlb[i],
            connected: self.connected[i],
            counters: &self.counters[i],
            has_pending_query: self.header[i].is_some(),
        }
    }

    /// A mutable accessor view of client `i` (serial paths).
    pub fn client_mut(&mut self, i: usize) -> ClientMut<'_> {
        let b = self.arena.blocks[i];
        let (start, end) = (b.start as usize, (b.start + b.cap) as usize);
        ClientMut {
            cfg: &self.cfg,
            cache: &mut self.caches[i],
            tlb: &mut self.tlb[i],
            connected: &mut self.connected[i],
            reconnect_pending: &mut self.reconnect_pending[i],
            disconnected_at: &mut self.disconnected_at[i],
            gap: &mut self.gap[i],
            header: &mut self.header[i],
            items: &mut self.arena.nodes[start..end],
            sig_baseline: self.sig_baselines.as_mut().map(|col| &mut col[i]),
            stale_scratch: &mut self.stale_scratch[i],
            counters: &mut self.counters[i],
        }
    }

    /// Raw column pointers for the sharded tick phases.
    ///
    /// # Safety contract (checked by the callers)
    /// Shards derived from one `PopPtr` must touch **disjoint** client
    /// index ranges, and no serial-phase method that can move a column
    /// (`start_query`'s arena growth) may run while the pointer is
    /// live.
    pub fn as_ptr(&mut self) -> PopPtr {
        PopPtr {
            cfg: &self.cfg,
            caches: self.caches.as_mut_ptr(),
            tlb: self.tlb.as_mut_ptr(),
            connected: self.connected.as_mut_ptr(),
            reconnect_pending: self.reconnect_pending.as_mut_ptr(),
            disconnected_at: self.disconnected_at.as_mut_ptr(),
            gap: self.gap.as_mut_ptr(),
            header: self.header.as_mut_ptr(),
            counters: self.counters.as_mut_ptr(),
            stale_scratch: self.stale_scratch.as_mut_ptr(),
            sig: self
                .sig_baselines
                .as_mut()
                .map_or(std::ptr::null_mut(), |col| col.as_mut_ptr()),
            nodes: self.arena.nodes.as_mut_ptr(),
            blocks: self.arena.blocks.as_ptr(),
        }
    }

    /// Issues a query for client `i` referencing `items`. Serial-phase
    /// only: the arena block may grow (and the slab move).
    ///
    /// # Panics
    /// Panics if a query is already in flight, the client is
    /// disconnected, or `items` is empty.
    pub fn start_query(&mut self, i: usize, now: SimTime, items: &[ItemId]) {
        assert!(self.connected[i], "query while disconnected");
        assert!(self.header[i].is_none(), "overlapping queries");
        self.counters[i].queries_issued += 1;
        let n = items.len() as u32;
        self.header[i] = Some(QueryHeader::new(now, n));
        let start = self.arena.ensure(i, n);
        for (slot, &item) in self.arena.nodes[start..start + items.len()]
            .iter_mut()
            .zip(items)
        {
            *slot = PendingItem::fresh(item);
        }
    }
}

/// A read-only per-client view over the population columns.
#[derive(Clone, Copy)]
pub struct ClientRef<'a> {
    /// The client's cache.
    pub cache: &'a LruCache,
    /// Timestamp of the last report received.
    pub tlb: SimTime,
    /// `true` while listening to broadcasts.
    pub connected: bool,
    /// Behaviour counters.
    pub counters: &'a ClientCounters,
    /// `true` while a query is being resolved.
    pub has_pending_query: bool,
}

/// A mutable per-client accessor view: one `&mut` per column cell, so
/// the scheme handlers read exactly like the old self-contained
/// `Client` while the state actually lives in the population columns.
pub struct ClientMut<'a> {
    cfg: &'a ClientConfig,
    cache: &'a mut LruCache,
    tlb: &'a mut SimTime,
    connected: &'a mut bool,
    reconnect_pending: &'a mut bool,
    disconnected_at: &'a mut Option<SimTime>,
    gap: &'a mut Option<GapState>,
    header: &'a mut Option<QueryHeader>,
    /// The client's full arena block; the active query occupies the
    /// first `QueryHeader::len` nodes.
    items: &'a mut [PendingItem],
    /// `None` unless the population materialized the SIG column.
    sig_baseline: Option<&'a mut Option<Vec<u64>>>,
    stale_scratch: &'a mut Vec<ItemId>,
    counters: &'a mut ClientCounters,
}

/// Raw pointers into every [`ClientPop`] column, `Copy + Send`, for the
/// engine's sharded phases. Each worker derives [`ClientMut`] views for
/// the client indices of its own chunk only.
#[derive(Clone, Copy)]
pub struct PopPtr {
    cfg: *const ClientConfig,
    caches: *mut LruCache,
    tlb: *mut SimTime,
    connected: *mut bool,
    reconnect_pending: *mut bool,
    disconnected_at: *mut Option<SimTime>,
    gap: *mut Option<GapState>,
    header: *mut Option<QueryHeader>,
    counters: *mut ClientCounters,
    stale_scratch: *mut Vec<ItemId>,
    /// Null when the SIG column is not materialized.
    sig: *mut Option<Vec<u64>>,
    nodes: *mut PendingItem,
    blocks: *const Block,
}

// SAFETY: a PopPtr is only ever dereferenced through `client_mut` on
// disjoint index ranges (one shard per range), which is exactly the
// discipline `&mut [Client]` chunking used to enforce statically.
unsafe impl Send for PopPtr {}
unsafe impl Sync for PopPtr {}

impl PopPtr {
    /// A mutable view of client `i`.
    ///
    /// # Safety
    /// The population must outlive `'a`, no two live views may share an
    /// index, and the arena slab must not move while views are live.
    pub unsafe fn client_mut<'a>(self, i: usize) -> ClientMut<'a> {
        let b = *self.blocks.add(i);
        ClientMut {
            cfg: &*self.cfg,
            cache: &mut *self.caches.add(i),
            tlb: &mut *self.tlb.add(i),
            connected: &mut *self.connected.add(i),
            reconnect_pending: &mut *self.reconnect_pending.add(i),
            disconnected_at: &mut *self.disconnected_at.add(i),
            gap: &mut *self.gap.add(i),
            header: &mut *self.header.add(i),
            items: std::slice::from_raw_parts_mut(self.nodes.add(b.start as usize), b.cap as usize),
            sig_baseline: if self.sig.is_null() {
                None
            } else {
                Some(&mut *self.sig.add(i))
            },
            stale_scratch: &mut *self.stale_scratch.add(i),
            counters: &mut *self.counters.add(i),
        }
    }
}

impl ClientMut<'_> {
    /// The shared static configuration.
    pub fn config(&self) -> &ClientConfig {
        self.cfg
    }

    /// Read access to the cache.
    pub fn cache(&self) -> &LruCache {
        self.cache
    }

    /// Behaviour counters.
    pub fn counters(&self) -> ClientCounters {
        *self.counters
    }

    /// `true` while listening to broadcasts.
    pub fn is_connected(&self) -> bool {
        *self.connected
    }

    /// Timestamp of the last report received.
    pub fn tlb(&self) -> SimTime {
        *self.tlb
    }

    /// `true` while a query is being resolved.
    pub fn has_pending_query(&self) -> bool {
        self.header.is_some()
    }

    /// The coverage target: with an open gap, reports must reach back to
    /// the gap start; otherwise to the last report heard.
    fn effective_tlb(&self) -> SimTime {
        self.gap.map_or(*self.tlb, |g| g.since)
    }

    /// Enters doze mode. The caller must not route broadcasts here while
    /// disconnected.
    ///
    /// # Panics
    /// Panics if a query is still in flight (the model only disconnects
    /// between queries).
    pub fn disconnect(&mut self, now: SimTime) {
        assert!(self.header.is_none(), "disconnect with a query in flight");
        assert!(*self.connected, "already disconnected");
        *self.connected = false;
        *self.disconnected_at = Some(now);
    }

    /// Wakes up from doze mode, returning the length of the doze period
    /// in seconds. Cache reconciliation happens at the next broadcast
    /// report.
    pub fn reconnect(&mut self, now: SimTime) -> f64 {
        assert!(!*self.connected, "already connected");
        *self.connected = true;
        *self.reconnect_pending = true;
        self.disconnected_at.take().map_or(0.0, |at| now - at)
    }

    /// Processes a broadcast invalidation report through a shared
    /// [`PreparedReport`], appending the resulting actions to `actions`
    /// (which is *not* cleared).
    ///
    /// The fan-out hot path: one report is applied by every connected
    /// client, so with the index built once this pass is
    /// `O(|cache| · log |report|)` and allocation-free (stale lists land
    /// in a buffer owned by the client, actions in the caller's).
    pub fn on_report_into(
        &mut self,
        now: SimTime,
        prepared: &PreparedReport<'_>,
        actions: &mut Vec<ClientAction>,
    ) {
        let mut stats = PlanStats::default();
        self.on_report_planned(now, prepared, None, actions, &mut stats);
    }

    /// [`ClientMut::on_report_into`] with an optional pre-decoded
    /// invalidation plan: when `plan` holds this report's bitmap for the
    /// client's `Tlb` bucket, the stale set comes from a word-wise
    /// `plan & member` intersection instead of the per-item index walk —
    /// same stale set, same actions, same counters (the plan is an
    /// evaluation strategy, pinned by the `plan ≡ decide` proptests and
    /// the engine's golden digests). Hit/fallback tallies land in
    /// `stats` (not cleared).
    pub fn on_report_planned(
        &mut self,
        now: SimTime,
        prepared: &PreparedReport<'_>,
        plan: Option<&PlanCache>,
        actions: &mut Vec<ClientAction>,
        stats: &mut PlanStats,
    ) {
        assert!(*self.connected, "report delivered to a disconnected client");
        self.apply_report(now, prepared, plan, actions, stats);
        *self.tlb = prepared.payload().broadcast_at();
        self.resolve_query(now, actions);
        self.retry_pending_requests(now, actions);
    }

    /// Whether applying `plan` beats the per-item walk for this cache:
    /// the word loop touches `min(|member|, |plan|)` words, the per-item
    /// walk does `|cache|` binary searches. A pure function of
    /// client-local state, so the choice is identical at every thread
    /// count.
    fn plan_profitable(plan: &PlanCache, cache: &LruCache) -> bool {
        plan.words().len().min(cache.member_words().len()) <= 8 * cache.len() + 4
    }

    /// Processes a downloaded data item, appending the resulting actions
    /// to `actions` (which is *not* cleared).
    pub fn on_data_into(
        &mut self,
        now: SimTime,
        item: ItemId,
        version: SimTime,
        actions: &mut Vec<ClientAction>,
    ) {
        self.cache.insert(item, version, now);
        if let Some(q) = self.header.as_mut() {
            let n = q.len as usize;
            q.resolve(&mut self.items[..n], item, PendingState::WaitData, false);
        }
        self.try_finish(now, actions);
    }

    /// Opportunistically caches a data item overheard on the broadcast
    /// downlink (snooping extension). Unlike an addressed delivery this
    /// never touches the pending query — the item was addressed to
    /// someone else. Items already cached and valid are refreshed; items
    /// the client is itself waiting for are left to the addressed
    /// delivery.
    pub fn on_snooped_data(&mut self, now: SimTime, item: ItemId, version: SimTime) {
        // Don't interfere with an in-flight fetch of the same item.
        let awaiting = match self.header.as_ref() {
            Some(q) => self.items[..q.len as usize]
                .iter()
                .any(|p| p.item == item && p.state != PendingState::Done),
            None => false,
        };
        if !awaiting {
            self.cache.insert(item, version, now);
        }
    }

    /// Processes a validity report (answer to a check request): `valid`
    /// lists the checked items that are still current as of `asof`.
    /// Appends the resulting actions to `actions` (not cleared).
    pub fn on_validity_into(
        &mut self,
        now: SimTime,
        asof: SimTime,
        valid: &[ItemId],
        actions: &mut Vec<ClientAction>,
    ) {
        let valid_set: HashSet<ItemId> = valid.iter().copied().collect();
        match self.cfg.checking_mode {
            CheckingMode::FullCache => {
                // The check covered the whole cache: every limbo entry
                // gets a verdict.
                let (salvaged, dropped) = self
                    .cache
                    .salvage_limbo(asof, |item| valid_set.contains(&item));
                self.counters.salvaged += salvaged as u64;
                self.counters.limbo_dropped += dropped as u64;
                *self.gap = None;
            }
            CheckingMode::QueriedItems => {
                // Only the pending query's items were checked.
                let checked: Vec<ItemId> = self
                    .header
                    .as_ref()
                    .map(|q| {
                        self.items[..q.len as usize]
                            .iter()
                            .filter(|p| p.state == PendingState::WaitValidity)
                            .map(|p| p.item)
                            .collect()
                    })
                    .unwrap_or_default();
                for item in checked {
                    let ok = valid_set.contains(&item);
                    if self.cache.salvage_item(item, ok, asof) {
                        if ok {
                            self.counters.salvaged += 1;
                        } else {
                            self.counters.limbo_dropped += 1;
                        }
                    }
                }
                if !self.cache.has_limbo() {
                    *self.gap = None;
                }
            }
        }
        self.resolve_validity_waiters(now, actions);
        self.try_finish(now, actions);
    }

    /// Processes a grouped-checking verdict (answer to a
    /// [`UplinkKind::GroupCheckRequest`]): `stale` lists the checked
    /// groups' items updated since the request's `Tlb`; `covered = false`
    /// means the retention window was exceeded and nothing can be
    /// salvaged. Appends the resulting actions to `actions` (not
    /// cleared).
    pub fn on_group_validity_into(
        &mut self,
        now: SimTime,
        asof: SimTime,
        covered: bool,
        stale: &[ItemId],
        actions: &mut Vec<ClientAction>,
    ) {
        if !covered {
            if !self.cache.is_empty() {
                self.counters.full_drops += 1;
            }
            self.cache.clear();
            *self.gap = None;
        } else {
            // Stale items go regardless of state; surviving limbo
            // entries are vouched for as of the verdict.
            self.cache.invalidate_many(stale.iter().copied());
            let (salvaged, dropped) = self.cache.salvage_limbo(asof, |_| true);
            self.counters.salvaged += salvaged as u64;
            self.counters.limbo_dropped += dropped as u64;
            *self.gap = None;
        }
        self.resolve_validity_waiters(now, actions);
        self.try_finish(now, actions);
    }

    /// Resolve query items that were waiting on a validity/group verdict.
    fn resolve_validity_waiters(&mut self, now: SimTime, actions: &mut Vec<ClientAction>) {
        if let Some(q) = self.header.as_mut() {
            let n = q.len as usize;
            let waiting: Vec<ItemId> = self.items[..n]
                .iter()
                .filter(|p| p.state == PendingState::WaitValidity)
                .map(|p| p.item)
                .collect();
            for item in waiting {
                if self.cache.get_valid(item).is_some() {
                    q.resolve(&mut self.items[..n], item, PendingState::WaitValidity, true);
                } else {
                    q.transition_at(
                        &mut self.items[..n],
                        item,
                        PendingState::WaitValidity,
                        PendingState::WaitData,
                        now,
                    );
                    actions.push(ClientAction::Uplink(UplinkKind::QueryRequest { item }));
                }
            }
        }
    }

    fn enter_gap(&mut self, _now: SimTime) {
        if self.gap.is_none() {
            *self.gap = Some(GapState {
                since: *self.tlb,
                sent_at: None,
                retries: 0,
            });
            if !self.cache.is_empty() {
                self.cache.mark_all_limbo();
                self.counters.limbo_episodes += 1;
            }
        }
    }

    fn resolve_gap(&mut self) {
        if self.gap.take().is_some() {
            // Whatever is still cached survived the covering report.
            let kept = self.cache.limbo_iter().count();
            self.counters.salvaged += kept as u64;
        }
    }

    fn apply_report(
        &mut self,
        now: SimTime,
        prepared: &PreparedReport<'_>,
        plan: Option<&PlanCache>,
        actions: &mut Vec<ClientAction>,
        stats: &mut PlanStats,
    ) {
        let payload = prepared.payload();
        let etlb = self.effective_tlb();
        debug_assert!(self.stale_scratch.is_empty(), "scratch not drained");
        // A report vouches for the database state at its *broadcast* time,
        // not its delivery time — updates can land while the report is on
        // the air, so revalidating "as of delivery" would silently cover
        // them (caught by the consistency oracle).
        let report_asof = payload.broadcast_at();
        // Second disconnection while an earlier gap is still unresolved:
        // entries fetched (and thus vouched) *during* that gap are only
        // vouched up to the last report heard. If this first report after
        // the reconnection does not cover `tlb`, those entries have an
        // unvouched period of their own — fold them into the gap (back to
        // limbo) and re-arm the salvage request. Without this, a valid
        // entry could sail past updates broadcast while the client dozed
        // (caught by the consistency oracle).
        if std::mem::take(self.reconnect_pending) {
            if let Some(gap) = self.gap.as_mut() {
                let covers_tlb = match payload {
                    // BS / AT / SIG reports give a verdict for the whole
                    // missed period by construction.
                    ReportPayload::Window(w) => w.covers(*self.tlb),
                    _ => true,
                };
                if !covers_tlb {
                    self.cache.mark_all_limbo();
                    gap.sent_at = None;
                    // A fresh unvouched period restarts the retry budget.
                    gap.retries = 0;
                }
            }
        }
        match payload {
            ReportPayload::Window(w) => {
                // Provably stale entries always go, covered or not. The
                // window plan is Tlb-independent (listed bitmap + dense
                // timestamps), so every client can take it; the per-item
                // `is_stale` test (`version < t_listed`) becomes the
                // `keep` filter over the few intersection survivors.
                let idx = prepared.window_index().expect("window report was prepared");
                match plan {
                    Some(p) if p.window_active() && Self::plan_profitable(p, self.cache) => {
                        let cache = &*self.cache;
                        p.intersect_into(cache.member_words(), self.stale_scratch, |item| {
                            cache
                                .peek(item)
                                .is_some_and(|e| e.version < p.listed_ts(item))
                        });
                        stats.hits += 1;
                    }
                    Some(_) => {
                        idx.stale_into(self.cache.items_iter(), self.stale_scratch);
                        stats.misses += 1;
                    }
                    None => idx.stale_into(self.cache.items_iter(), self.stale_scratch),
                }
                self.cache.invalidate_many(self.stale_scratch.drain(..));
                if w.covers(etlb) {
                    self.resolve_gap();
                    self.cache.revalidate_all(report_asof);
                } else {
                    self.on_uncovered_window(now, payload.broadcast_at(), actions);
                }
            }
            ReportPayload::BitSeq(bs) => {
                // BS staleness is pure prefix membership, so the memo key
                // is the selected prefix length: a client whose `select`
                // lands on the plan's pre-decoded bucket (the dominant
                // Tlb — everyone who heard the previous report) takes the
                // bitmap; other buckets fall back to `is_marked` per
                // item. Clean/DropAll verdicts are O(1) either way.
                let idx = prepared.bs_index().expect("BS report was prepared");
                let sel = match plan {
                    Some(p) => {
                        let sel = bs.select(etlb);
                        if let BsSelect::Prefix(prefix) = sel {
                            if p.bs_prefix() == Some(prefix) && Self::plan_profitable(p, self.cache)
                            {
                                p.intersect_into(
                                    self.cache.member_words(),
                                    self.stale_scratch,
                                    |_| true,
                                );
                                stats.hits += 1;
                            } else {
                                for (item, _) in self.cache.items_iter() {
                                    if idx.is_marked(item, prefix) {
                                        self.stale_scratch.push(item);
                                    }
                                }
                                stats.misses += 1;
                            }
                        }
                        sel
                    }
                    None => {
                        let cached = self.cache.items_iter().map(|(i, _)| i);
                        bs.decide_with(idx, etlb, cached, self.stale_scratch)
                    }
                };
                match sel {
                    BsSelect::Clean => {
                        self.resolve_gap();
                        self.cache.revalidate_all(report_asof);
                    }
                    BsSelect::DropAll => {
                        *self.gap = None;
                        if !self.cache.is_empty() {
                            self.counters.full_drops += 1;
                        }
                        self.cache.clear();
                    }
                    BsSelect::Prefix(_) => {
                        self.cache.invalidate_many(self.stale_scratch.drain(..));
                        self.resolve_gap();
                        self.cache.revalidate_all(report_asof);
                    }
                }
            }
            ReportPayload::At(at) => {
                // The AT listed-item bitmap is Tlb-independent; coverage
                // stays a scalar check (an uncovered client drops its
                // whole cache without touching the plan).
                let idx = prepared.at_index().expect("AT report was prepared");
                let covered = match plan {
                    Some(p) if at.covers(etlb) => {
                        if p.at_active() && Self::plan_profitable(p, self.cache) {
                            p.intersect_into(self.cache.member_words(), self.stale_scratch, |_| {
                                true
                            });
                            stats.hits += 1;
                        } else {
                            for (item, _) in self.cache.items_iter() {
                                if idx.contains(item) {
                                    self.stale_scratch.push(item);
                                }
                            }
                            stats.misses += 1;
                        }
                        true
                    }
                    Some(_) => false,
                    None => {
                        let cached = self.cache.items_iter().map(|(i, _)| i);
                        at.decide_with(idx, etlb, cached, self.stale_scratch)
                    }
                };
                if covered {
                    self.cache.invalidate_many(self.stale_scratch.drain(..));
                    self.resolve_gap();
                    self.cache.revalidate_all(report_asof);
                } else {
                    // Amnesic: nothing to salvage, ever.
                    *self.gap = None;
                    if !self.cache.is_empty() {
                        self.counters.full_drops += 1;
                    }
                    self.cache.clear();
                }
            }
            ReportPayload::Sig(sig, signer) => {
                let cached = self.cache.items_iter().map(|(i, _)| i);
                let baseline = self.sig_baseline.as_ref().and_then(|b| b.as_deref());
                match sig.decide(signer, baseline, cached) {
                    SigDecision::NoBaseline => {
                        *self.gap = None;
                        if !self.cache.is_empty() {
                            self.counters.full_drops += 1;
                            self.cache.clear();
                        }
                    }
                    SigDecision::Invalidate(flagged) => {
                        self.cache.invalidate_many(flagged);
                        self.resolve_gap();
                        self.cache.revalidate_all(report_asof);
                    }
                }
                let slot = self
                    .sig_baseline
                    .as_mut()
                    .expect("SIG column materialized for the SIG scheme");
                **slot = Some(sig.combined.clone());
            }
        }
    }

    /// How long after an uplinked `Tlb`/check the client keeps waiting
    /// for a covering report before concluding the request (or its
    /// reply) was lost. Legacy behaviour is a fixed two periods; a
    /// fault-injection `RetryPolicy` doubles the wait per retry up to
    /// its cap.
    fn gap_grace_secs(cfg: &ClientConfig, retries: u32) -> f64 {
        let intervals = match cfg.retry {
            None => 2.0,
            Some(p) => f64::from(p.timeout_intervals_for(retries)),
        };
        intervals * cfg.broadcast_period_secs
    }

    /// The retry budget ran out: paper-faithful graceful degradation —
    /// drop the whole cache and start cold, closing the gap.
    fn degrade_exhausted(&mut self) {
        self.counters.backoff_exhaustions += 1;
        if !self.cache.is_empty() {
            self.counters.full_drops += 1;
        }
        self.cache.clear();
        *self.gap = None;
    }

    /// A window report arrived that does not reach back to the gap —
    /// the scheme-defining moment (see the crate docs table).
    fn on_uncovered_window(
        &mut self,
        now: SimTime,
        report_built_at: SimTime,
        actions: &mut Vec<ClientAction>,
    ) {
        match self.cfg.scheme {
            Scheme::TsNoCheck => {
                // Figure 1: drop the entire cache.
                if !self.cache.is_empty() {
                    self.counters.full_drops += 1;
                }
                self.cache.clear();
                *self.gap = None;
            }
            Scheme::Gcore => {
                self.enter_gap(now);
                let gap = self.gap.as_mut().expect("just entered");
                let mut retried = false;
                // Same lost-reply re-arm as simple checking.
                if let Some(sent_at) = gap.sent_at {
                    let grace = Self::gap_grace_secs(self.cfg, gap.retries);
                    if report_built_at.as_secs() >= sent_at.as_secs() + grace {
                        match self.cfg.retry {
                            Some(p) if gap.retries >= p.max_retries => {
                                self.degrade_exhausted();
                                return;
                            }
                            policy => {
                                gap.sent_at = None;
                                if policy.is_some() {
                                    gap.retries += 1;
                                    retried = true;
                                }
                            }
                        }
                    }
                }
                let gap = self.gap.as_mut().expect("still open");
                if gap.sent_at.is_none() && !self.cache.is_empty() {
                    let since = gap.since;
                    // One (group, Tlb) record per cached group — the
                    // whole point of grouping: the uplink scales with the
                    // number of groups touched, not the cache size.
                    let mut groups: Vec<(u32, f64)> = self
                        .cache
                        .items_iter()
                        .map(|(item, _)| item.0 % self.cfg.gcore_groups)
                        .collect::<std::collections::BTreeSet<u32>>()
                        .into_iter()
                        .map(|g| (g, since.as_secs()))
                        .collect();
                    groups.sort_unstable_by_key(|&(g, _)| g);
                    actions.push(ClientAction::Uplink(UplinkKind::GroupCheckRequest {
                        groups,
                    }));
                    let gap = self.gap.as_mut().expect("still open");
                    gap.sent_at = Some(now);
                    self.counters.checks_sent += 1;
                    self.counters.retries_sent += u64::from(retried);
                }
                if self.cache.is_empty() {
                    *self.gap = None;
                }
            }
            Scheme::SimpleChecking => {
                self.enter_gap(now);
                let gap = self.gap.as_mut().expect("just entered");
                let mut retried = false;
                // Re-arm a check whose validity report was lost (e.g. the
                // client dozed off while the reply was in flight): after a
                // grace of two periods (or the fault policy's backoff
                // schedule) with limbo still unresolved, send the check
                // again.
                if let Some(sent_at) = gap.sent_at {
                    let grace = Self::gap_grace_secs(self.cfg, gap.retries);
                    if report_built_at.as_secs() >= sent_at.as_secs() + grace {
                        match self.cfg.retry {
                            Some(p) if gap.retries >= p.max_retries => {
                                self.degrade_exhausted();
                                return;
                            }
                            policy => {
                                gap.sent_at = None;
                                if policy.is_some() {
                                    gap.retries += 1;
                                    retried = true;
                                }
                            }
                        }
                    }
                }
                let gap = self.gap.as_mut().expect("still open");
                if self.cfg.checking_mode == CheckingMode::FullCache
                    && gap.sent_at.is_none()
                    && !self.cache.is_empty()
                {
                    let entries: Vec<(ItemId, f64)> = self
                        .cache
                        .items_iter()
                        .map(|(i, v)| (i, v.as_secs()))
                        .collect();
                    actions.push(ClientAction::Uplink(UplinkKind::CheckRequest { entries }));
                    let gap = self.gap.as_mut().expect("still open");
                    gap.sent_at = Some(now);
                    self.counters.checks_sent += 1;
                    self.counters.retries_sent += u64::from(retried);
                }
                if self.cache.is_empty() {
                    // Nothing to salvage; the gap is moot.
                    *self.gap = None;
                }
            }
            Scheme::Afw | Scheme::Aaw => {
                self.enter_gap(now);
                let gap = self.gap.as_mut().expect("just entered");
                match gap.sent_at {
                    None => {
                        if self.cache.is_empty() {
                            *self.gap = None;
                        } else {
                            actions.push(ClientAction::Uplink(UplinkKind::TlbReport {
                                tlb_secs: gap.since.as_secs(),
                            }));
                            gap.sent_at = Some(now);
                            self.counters.tlbs_sent += 1;
                        }
                    }
                    Some(sent_at) => {
                        // Legacy: give up once a report built comfortably
                        // after our Tlb reached the server still does not
                        // cover us — the server judged BS unable to help
                        // (our Tlb predates TS(B_n)), so the limbo entries
                        // are unsalvageable. Under fault injection the
                        // uncovering report may instead mean the Tlb was
                        // *lost* on the uplink, so the policy re-sends it
                        // (idempotent at the server) with capped
                        // exponential backoff before degrading.
                        let grace = Self::gap_grace_secs(self.cfg, gap.retries);
                        if report_built_at.as_secs() >= sent_at.as_secs() + grace {
                            match self.cfg.retry {
                                None => {
                                    let dropped = self.cache.drop_limbo();
                                    self.counters.limbo_dropped += dropped as u64;
                                    *self.gap = None;
                                }
                                Some(p) if gap.retries >= p.max_retries => {
                                    self.degrade_exhausted();
                                }
                                Some(_) => {
                                    actions.push(ClientAction::Uplink(UplinkKind::TlbReport {
                                        tlb_secs: gap.since.as_secs(),
                                    }));
                                    gap.sent_at = Some(now);
                                    gap.retries += 1;
                                    self.counters.tlbs_sent += 1;
                                    self.counters.retries_sent += 1;
                                }
                            }
                        }
                    }
                }
            }
            // BS / AT / SIG clients never receive window reports.
            other => panic!("window report under scheme {other:?}"),
        }
    }

    /// After the cache has been reconciled with a report, move the
    /// pending query forward.
    fn resolve_query(&mut self, now: SimTime, actions: &mut Vec<ClientAction>) {
        let Some(q) = self.header.as_mut() else {
            return;
        };
        let n = q.len as usize;
        let mut check_entries: Vec<(ItemId, f64)> = Vec::new();
        let waiting: Vec<ItemId> = self.items[..n]
            .iter()
            .filter(|p| p.state == PendingState::WaitReport)
            .map(|p| p.item)
            .collect();
        for item in waiting {
            if self.cache.get_valid(item).is_some() {
                q.resolve(&mut self.items[..n], item, PendingState::WaitReport, true);
                continue;
            }
            let limbo = self
                .cache
                .peek(item)
                .is_some_and(|e| e.state == EntryState::Limbo);
            if limbo && matches!(self.cfg.scheme, Scheme::SimpleChecking | Scheme::Gcore) {
                // A verdict is (or will be) on its way: under FullCache
                // the gap check already covers this item; under
                // QueriedItems we check it now, targeted.
                q.transition_at(
                    &mut self.items[..n],
                    item,
                    PendingState::WaitReport,
                    PendingState::WaitValidity,
                    now,
                );
                if self.cfg.checking_mode == CheckingMode::QueriedItems {
                    let version = self.cache.peek(item).expect("limbo entry").version;
                    check_entries.push((item, version.as_secs()));
                }
            } else {
                // Absent, or limbo under a scheme that fetches fresh.
                q.transition_at(
                    &mut self.items[..n],
                    item,
                    PendingState::WaitReport,
                    PendingState::WaitData,
                    now,
                );
                actions.push(ClientAction::Uplink(UplinkKind::QueryRequest { item }));
            }
        }
        if !check_entries.is_empty() {
            actions.push(ClientAction::Uplink(UplinkKind::CheckRequest {
                entries: check_entries,
            }));
            self.counters.checks_sent += 1;
        }
        self.try_finish(now, actions);
    }

    /// Fault-injection safety net for per-item requests: a data request
    /// (or validity check) whose uplink or reply was lost would park the
    /// query forever. With a `RetryPolicy` configured, re-send after
    /// the backoff schedule's wait; a stuck validity wait falls back to
    /// fetching fresh data, which is always safe. At most one re-send
    /// per item per report keeps the retry traffic bounded by the
    /// broadcast clock. Requests are re-sent even past `max_retries`
    /// (at the capped interval): dropping the cache cannot answer a
    /// query, so the repeat request is the only route forward and it
    /// terminates once the channel heals or the server recovers.
    fn retry_pending_requests(&mut self, now: SimTime, actions: &mut Vec<ClientAction>) {
        let Some(policy) = self.cfg.retry else { return };
        let Some(q) = self.header.as_ref() else {
            return;
        };
        let l = self.cfg.broadcast_period_secs;
        for p in &mut self.items[..q.len as usize] {
            let Some(at) = p.requested_at else { continue };
            let wait = f64::from(policy.timeout_intervals_for(p.retries)) * l;
            if now.as_secs() < at.as_secs() + wait {
                continue;
            }
            match p.state {
                PendingState::WaitData | PendingState::WaitValidity => {
                    p.state = PendingState::WaitData;
                    p.requested_at = Some(now);
                    p.retries = p.retries.saturating_add(1);
                    actions.push(ClientAction::Uplink(UplinkKind::QueryRequest {
                        item: p.item,
                    }));
                    self.counters.retries_sent += 1;
                }
                PendingState::WaitReport | PendingState::Done => {}
            }
        }
    }

    fn try_finish(&mut self, now: SimTime, actions: &mut Vec<ClientAction>) {
        let complete = self
            .header
            .as_ref()
            .is_some_and(|q| q.is_complete(&self.items[..q.len as usize]));
        if complete {
            let q = self.header.take().expect("checked above");
            let outcome = q.outcome(&self.items[..q.len as usize], now);
            self.counters.queries_answered += 1;
            self.counters.item_hits += outcome.hits as u64;
            self.counters.item_misses += outcome.misses as u64;
            actions.push(ClientAction::QueryDone(outcome));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Client;
    use mobicache_model::ClientId;
    use mobicache_reports::WindowReport;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn cfg(scheme: Scheme) -> ClientConfig {
        ClientConfig {
            scheme,
            checking_mode: CheckingMode::FullCache,
            cache_capacity: 8,
            broadcast_period_secs: 20.0,
            gcore_groups: 4,
            retry: None,
        }
    }

    fn window(at: f64, wstart: f64, records: Vec<(u32, f64)>) -> ReportPayload {
        ReportPayload::Window(WindowReport {
            broadcast_at: t(at),
            window_start: t(wstart),
            records: records
                .into_iter()
                .map(|(i, ts)| (ItemId(i), t(ts)))
                .collect(),
            dummy: None,
        })
    }

    /// One scripted step applied identically to a pop member and a
    /// standalone `Client`.
    #[derive(Clone)]
    enum Step {
        Query(Vec<u32>),
        Report(ReportPayload),
        Data(u32, f64),
        Snoop(u32, f64),
        Disconnect,
        Reconnect,
        Validity(Vec<u32>),
    }

    /// The SoA population must be observationally identical to N
    /// standalone clients running the same scripts: same actions, same
    /// counters, same cache contents. This pins the shared-arena block
    /// bookkeeping (growth, reuse, neighbours not clobbered).
    #[test]
    fn population_matches_independent_clients() {
        let schemes = [Scheme::SimpleChecking, Scheme::Afw, Scheme::Gcore];
        for scheme in schemes {
            let scripts: Vec<Vec<Step>> = vec![
                vec![
                    Step::Query(vec![3]),
                    Step::Report(window(20.0, -180.0, vec![])),
                    Step::Data(3, 0.0),
                    Step::Query(vec![3, 4, 5]),
                    Step::Report(window(40.0, -160.0, vec![])),
                    Step::Data(4, 0.0),
                    Step::Data(5, 0.0),
                ],
                vec![
                    Step::Query(vec![7]),
                    Step::Report(window(20.0, -180.0, vec![])),
                    Step::Data(7, 0.0),
                    Step::Disconnect,
                    Step::Reconnect,
                    Step::Report(window(800.0, 600.0, vec![])),
                    Step::Validity(vec![7]),
                ],
                vec![
                    Step::Snoop(9, 5.0),
                    Step::Query(vec![9, 11]),
                    Step::Report(window(20.0, -180.0, vec![(11, 10.0)])),
                    Step::Data(11, 10.0),
                ],
            ];
            let n = scripts.len();
            let mut pop = ClientPop::new(cfg(scheme), n);
            let mut solo: Vec<Client> = (0..n)
                .map(|i| Client::new(ClientId(i as u32), cfg(scheme)))
                .collect();
            let mut clock = 0.0;
            for step_idx in 0..scripts.iter().map(Vec::len).max().unwrap() {
                for (i, script) in scripts.iter().enumerate() {
                    let Some(step) = script.get(step_idx) else {
                        continue;
                    };
                    clock += 1.0;
                    let now = t(clock);
                    let mut pop_actions = Vec::new();
                    let solo_actions = match step {
                        Step::Query(items) => {
                            let ids: Vec<ItemId> = items.iter().map(|&x| ItemId(x)).collect();
                            pop.start_query(i, now, &ids);
                            solo[i].start_query(now, ids.clone());
                            Vec::new()
                        }
                        Step::Report(payload) => {
                            let prepared = payload.prepare();
                            pop.client_mut(i)
                                .on_report_into(now, &prepared, &mut pop_actions);
                            solo[i].on_report(now, payload)
                        }
                        Step::Data(item, v) => {
                            pop.client_mut(i).on_data_into(
                                now,
                                ItemId(*item),
                                t(*v),
                                &mut pop_actions,
                            );
                            solo[i].on_data(now, ItemId(*item), t(*v))
                        }
                        Step::Snoop(item, v) => {
                            pop.client_mut(i).on_snooped_data(now, ItemId(*item), t(*v));
                            solo[i].on_snooped_data(now, ItemId(*item), t(*v));
                            Vec::new()
                        }
                        Step::Disconnect => {
                            pop.client_mut(i).disconnect(now);
                            solo[i].disconnect(now);
                            Vec::new()
                        }
                        Step::Reconnect => {
                            pop.client_mut(i).reconnect(now);
                            solo[i].reconnect(now);
                            Vec::new()
                        }
                        Step::Validity(valid) => {
                            let ids: Vec<ItemId> = valid.iter().map(|&x| ItemId(x)).collect();
                            pop.client_mut(i).on_validity_into(
                                now,
                                t(clock - 0.5),
                                &ids,
                                &mut pop_actions,
                            );
                            solo[i].on_validity(now, t(clock - 0.5), &ids)
                        }
                    };
                    assert_eq!(pop_actions, solo_actions, "{scheme:?} client {i}");
                }
            }
            for (i, solo_client) in solo.iter().enumerate() {
                assert_eq!(
                    pop.counters(i),
                    solo_client.counters(),
                    "{scheme:?} client {i}"
                );
                let mut a: Vec<(ItemId, SimTime)> = pop.cache(i).items_iter().collect();
                let mut b: Vec<(ItemId, SimTime)> = solo_client.cache().items_iter().collect();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "{scheme:?} client {i} cache diverged");
            }
        }
    }

    /// Arena blocks grow without clobbering neighbours and reuse their
    /// capacity for later, smaller queries.
    #[test]
    fn arena_blocks_grow_and_reuse() {
        let mut pop = ClientPop::new(cfg(Scheme::Bs), 3);
        let items: Vec<ItemId> = (0..6).map(ItemId).collect();
        pop.start_query(0, t(1.0), &items[..2]);
        pop.start_query(1, t(1.0), &items[..5]);
        let after_first = pop.arena().nodes_allocated();
        assert!(after_first >= 7, "two blocks allocated");
        // Complete client 1's query, then issue a bigger one: the block
        // must grow, and client 0's pending items must be untouched.
        let prepared = ReportPayload::BitSeq(mobicache_reports::BitSequences::from_recency(
            t(20.0),
            64,
            vec![],
        ));
        let prep = prepared.prepare();
        let mut acts = Vec::new();
        pop.client_mut(1).on_report_into(t(20.0), &prep, &mut acts);
        for k in 0..5 {
            pop.client_mut(1)
                .on_data_into(t(21.0), ItemId(k), SimTime::ZERO, &mut acts);
        }
        assert!(!pop.has_pending_query(1));
        pop.client_mut(0).on_report_into(t(20.0), &prep, &mut acts);
        pop.start_query(1, t(25.0), &(0..9).map(ItemId).collect::<Vec<_>>());
        assert!(pop.arena().nodes_allocated() > after_first, "block grew");
        // A follow-up query that fits reuses the block: no new nodes.
        let sized = pop.arena().nodes_allocated();
        pop.client_mut(1).on_report_into(t(40.0), &prep, &mut acts);
        for k in 0..9 {
            pop.client_mut(1)
                .on_data_into(t(41.0), ItemId(k), SimTime::ZERO, &mut acts);
        }
        pop.start_query(1, t(45.0), &items[..3]);
        assert_eq!(pop.arena().nodes_allocated(), sized, "capacity reused");
        // Client 0 still tracks its own two items.
        assert!(pop.has_pending_query(0));
    }

    /// The connected bitmap mirrors the bool column through the
    /// pop-level disconnect/reconnect wrappers, with tail bits zero.
    #[test]
    fn connected_bitmap_mirrors_column() {
        let n = 70; // crosses a word boundary
        let mut pop = ClientPop::new(cfg(Scheme::Aaw), n);
        let check = |pop: &ClientPop| {
            for (i, &c) in pop.connected_col().iter().enumerate() {
                let bit = pop.connected_words()[i / 64] & (1 << (i % 64)) != 0;
                assert_eq!(bit, c, "client {i}");
            }
            let tail: u32 = pop.connected_words()[n / 64].count_ones();
            assert!(tail as usize <= n % 64, "tail bits beyond len set");
        };
        check(&pop);
        pop.disconnect(3, t(1.0));
        pop.disconnect(64, t(1.0));
        pop.disconnect(69, t(1.0));
        check(&pop);
        assert!(!pop.is_connected(64));
        pop.reconnect(64, t(5.0));
        check(&pop);
        assert!(pop.is_connected(64));
    }

    /// Cell membership bitmaps mirror the cell column through the
    /// serial `handoff` wrapper; exactly one cell owns each client.
    #[test]
    fn cell_bitmaps_mirror_column() {
        let n = 70; // crosses a word boundary
        let cells = 3;
        let mut pop = ClientPop::with_cells(cfg(Scheme::Aaw), n, cells);
        let check = |pop: &ClientPop| {
            for i in 0..n {
                let owner = pop.cell_of(i);
                for c in 0..cells {
                    let bit = pop.cell_words(c)[i / 64] & (1 << (i % 64)) != 0;
                    assert_eq!(bit, c == owner, "client {i} cell {c}");
                }
            }
            for c in 0..cells {
                let tail = pop.cell_words(c)[n / 64] >> (n % 64);
                assert_eq!(tail, 0, "tail bits beyond len set in cell {c}");
            }
        };
        check(&pop);
        assert_eq!(pop.cell_of(0), 0);
        assert_eq!(pop.cell_of(1), 1);
        assert_eq!(pop.cell_of(5), 2);
        pop.handoff(0, 2);
        pop.handoff(64, 0);
        pop.handoff(69, 1);
        check(&pop);
        assert_eq!(pop.cell_of(0), 2);
        // Re-associating with the current cell is a no-op.
        pop.handoff(0, 2);
        check(&pop);
        // The legacy constructor is the single-cell special case: the
        // one membership bitmap equals the initial connected bitmap.
        let single = ClientPop::new(cfg(Scheme::Aaw), n);
        assert_eq!(single.cells(), 1);
        assert_eq!(single.cell_words(0), single.connected_words());
    }

    /// `PopPtr` views over disjoint indices mirror `client_mut`.
    #[test]
    fn pop_ptr_views_match_serial_views() {
        let mut pop = ClientPop::new(cfg(Scheme::SimpleChecking), 4);
        for i in 0..4 {
            pop.start_query(i, t(1.0), &[ItemId(i as u32)]);
        }
        let payload = window(20.0, -180.0, vec![]);
        let prepared = payload.prepare();
        let ptr = pop.as_ptr();
        let mut actions: Vec<Vec<ClientAction>> = vec![Vec::new(); 4];
        for (i, acts) in actions.iter_mut().enumerate() {
            // SAFETY: indices are disjoint and the pop is not otherwise
            // touched while the views are live.
            let mut view = unsafe { ptr.client_mut(i) };
            view.on_report_into(t(20.0), &prepared, acts);
        }
        for (i, acts) in actions.iter().enumerate() {
            assert_eq!(
                acts,
                &vec![ClientAction::Uplink(UplinkKind::QueryRequest {
                    item: ItemId(i as u32)
                })]
            );
        }
    }
}
