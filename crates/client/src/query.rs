//! Pending query bookkeeping.
//!
//! Since the struct-of-arrays client core, per-item progress lives in a
//! shared [`PendingArena`](crate::PendingArena) (one contiguous block
//! per client) and the per-query scalars live in a small Copy
//! [`QueryHeader`]. The header's methods take the client's item slice
//! as a parameter instead of owning a `Vec<PendingItem>`, so a million
//! concurrent queries cost zero per-query allocations. (The previous
//! owning `QueryState` type was removed in this redesign.)

use mobicache_model::ItemId;
use mobicache_sim::SimTime;

/// How one referenced item is currently being resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PendingState {
    /// Waiting for the next invalidation report (every query starts
    /// here — §2: "to answer a query, the client … will listen to the
    /// next invalidation report").
    WaitReport,
    /// A validity check for this (cached but limbo) item is in flight.
    WaitValidity,
    /// A data request for this item is in flight.
    WaitData,
    /// Answered (from cache or by download).
    Done,
}

/// One item referenced by the pending query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PendingItem {
    /// The referenced item.
    pub item: ItemId,
    /// Resolution progress.
    pub state: PendingState,
    /// When the in-flight data/validity request went up (fault-injection
    /// retry timer; `None` while waiting passively on reports).
    pub requested_at: Option<SimTime>,
    /// Re-sends of the in-flight request so far (capped backoff).
    pub retries: u32,
}

impl PendingItem {
    /// A fresh wait-for-report entry for `item`.
    #[inline]
    pub fn fresh(item: ItemId) -> Self {
        PendingItem {
            item,
            state: PendingState::WaitReport,
            requested_at: None,
            retries: 0,
        }
    }
}

/// Summary of a completed query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryOutcome {
    /// When the query was issued.
    pub issued_at: SimTime,
    /// When the last referenced item was resolved.
    pub completed_at: SimTime,
    /// Items answered from the cache.
    pub hits: u32,
    /// Items downloaded from the server.
    pub misses: u32,
}

/// The per-query scalars of a query in progress.
///
/// The referenced items themselves live in the owning population's
/// pending arena; the header only knows how many there are. Every
/// method that inspects or advances per-item state takes the client's
/// item slice (exactly `len` entries) as a parameter.
#[derive(Clone, Copy, Debug)]
pub struct QueryHeader {
    /// When the query was issued.
    pub issued_at: SimTime,
    /// Number of referenced items (the length of the arena block's
    /// active prefix).
    pub len: u32,
    /// Cache hits so far.
    pub hits: u32,
    /// Downloads so far.
    pub misses: u32,
}

impl QueryHeader {
    /// A fresh header over `len` items.
    pub fn new(issued_at: SimTime, len: u32) -> Self {
        assert!(len > 0, "a query must reference at least one item");
        QueryHeader {
            issued_at,
            len,
            hits: 0,
            misses: 0,
        }
    }

    /// `true` when every referenced item is resolved.
    pub fn is_complete(&self, items: &[PendingItem]) -> bool {
        debug_assert_eq!(items.len(), self.len as usize);
        items.iter().all(|p| p.state == PendingState::Done)
    }

    /// Marks `item` done as a hit or miss. Returns `false` if the item is
    /// not pending in the expected state.
    pub fn resolve(
        &mut self,
        items: &mut [PendingItem],
        item: ItemId,
        from: PendingState,
        hit: bool,
    ) -> bool {
        for p in items {
            if p.item == item && p.state == from {
                p.state = PendingState::Done;
                if hit {
                    self.hits += 1;
                } else {
                    self.misses += 1;
                }
                return true;
            }
        }
        false
    }

    /// Moves `item` from one pending state to another. Returns `false` if
    /// it is not in the expected state.
    pub fn transition(
        &mut self,
        items: &mut [PendingItem],
        item: ItemId,
        from: PendingState,
        to: PendingState,
    ) -> bool {
        for p in items {
            if p.item == item && p.state == from {
                p.state = to;
                return true;
            }
        }
        false
    }

    /// Like [`QueryHeader::transition`], but also stamps the transitioned
    /// item's request timestamp (and resets its retry count) — used when
    /// the transition puts a request on the uplink, so the
    /// fault-injection retry timer knows when it went up.
    pub fn transition_at(
        &mut self,
        items: &mut [PendingItem],
        item: ItemId,
        from: PendingState,
        to: PendingState,
        now: SimTime,
    ) -> bool {
        for p in items {
            if p.item == item && p.state == from {
                p.state = to;
                p.requested_at = Some(now);
                p.retries = 0;
                return true;
            }
        }
        false
    }

    /// Finishes the query into an outcome summary.
    pub fn outcome(&self, items: &[PendingItem], completed_at: SimTime) -> QueryOutcome {
        debug_assert!(self.is_complete(items));
        QueryOutcome {
            issued_at: self.issued_at,
            completed_at,
            hits: self.hits,
            misses: self.misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn query(issued_at: SimTime, ids: &[u32]) -> (QueryHeader, Vec<PendingItem>) {
        let items: Vec<PendingItem> = ids.iter().map(|&i| PendingItem::fresh(ItemId(i))).collect();
        (QueryHeader::new(issued_at, items.len() as u32), items)
    }

    #[test]
    fn lifecycle_single_item_hit() {
        let (mut q, mut items) = query(t(1.0), &[4]);
        assert!(!q.is_complete(&items));
        assert!(q.resolve(&mut items, ItemId(4), PendingState::WaitReport, true));
        assert!(q.is_complete(&items));
        let o = q.outcome(&items, t(5.0));
        assert_eq!((o.hits, o.misses), (1, 0));
        assert_eq!(o.issued_at, t(1.0));
        assert_eq!(o.completed_at, t(5.0));
    }

    #[test]
    fn lifecycle_multi_item_mixed() {
        let (mut q, mut items) = query(t(0.0), &[1, 2, 3]);
        assert!(q.resolve(&mut items, ItemId(1), PendingState::WaitReport, true));
        assert!(q.transition(
            &mut items,
            ItemId(2),
            PendingState::WaitReport,
            PendingState::WaitData
        ));
        assert!(q.transition(
            &mut items,
            ItemId(3),
            PendingState::WaitReport,
            PendingState::WaitValidity
        ));
        assert!(!q.is_complete(&items));
        assert!(q.resolve(&mut items, ItemId(2), PendingState::WaitData, false));
        assert!(q.resolve(&mut items, ItemId(3), PendingState::WaitValidity, true));
        assert!(q.is_complete(&items));
        let o = q.outcome(&items, t(9.0));
        assert_eq!((o.hits, o.misses), (2, 1));
    }

    #[test]
    fn resolve_rejects_wrong_state() {
        let (mut q, mut items) = query(t(0.0), &[1]);
        assert!(!q.resolve(&mut items, ItemId(1), PendingState::WaitData, false));
        assert!(!q.resolve(&mut items, ItemId(9), PendingState::WaitReport, false));
    }

    #[test]
    fn transition_at_stamps_retry_timer() {
        let (mut q, mut items) = query(t(0.0), &[1]);
        assert!(q.transition_at(
            &mut items,
            ItemId(1),
            PendingState::WaitReport,
            PendingState::WaitData,
            t(3.0)
        ));
        assert_eq!(items[0].requested_at, Some(t(3.0)));
        assert_eq!(items[0].retries, 0);
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn empty_query_rejected() {
        QueryHeader::new(t(0.0), 0);
    }
}
