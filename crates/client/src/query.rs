//! Pending query bookkeeping.

use mobicache_model::ItemId;
use mobicache_sim::SimTime;

/// How one referenced item is currently being resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PendingState {
    /// Waiting for the next invalidation report (every query starts
    /// here — §2: "to answer a query, the client … will listen to the
    /// next invalidation report").
    WaitReport,
    /// A validity check for this (cached but limbo) item is in flight.
    WaitValidity,
    /// A data request for this item is in flight.
    WaitData,
    /// Answered (from cache or by download).
    Done,
}

/// One item referenced by the pending query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PendingItem {
    /// The referenced item.
    pub item: ItemId,
    /// Resolution progress.
    pub state: PendingState,
    /// When the in-flight data/validity request went up (fault-injection
    /// retry timer; `None` while waiting passively on reports).
    pub requested_at: Option<SimTime>,
    /// Re-sends of the in-flight request so far (capped backoff).
    pub retries: u32,
}

/// Summary of a completed query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryOutcome {
    /// When the query was issued.
    pub issued_at: SimTime,
    /// When the last referenced item was resolved.
    pub completed_at: SimTime,
    /// Items answered from the cache.
    pub hits: u32,
    /// Items downloaded from the server.
    pub misses: u32,
}

/// A query in progress.
#[derive(Clone, Debug)]
pub struct QueryState {
    /// When the query was issued.
    pub issued_at: SimTime,
    /// Per-item progress.
    pub items: Vec<PendingItem>,
    /// Cache hits so far.
    pub hits: u32,
    /// Downloads so far.
    pub misses: u32,
}

impl QueryState {
    /// A fresh query over `items`.
    pub fn new(issued_at: SimTime, items: Vec<ItemId>) -> Self {
        assert!(
            !items.is_empty(),
            "a query must reference at least one item"
        );
        QueryState {
            issued_at,
            items: items
                .into_iter()
                .map(|item| PendingItem {
                    item,
                    state: PendingState::WaitReport,
                    requested_at: None,
                    retries: 0,
                })
                .collect(),
            hits: 0,
            misses: 0,
        }
    }

    /// `true` when every referenced item is resolved.
    pub fn is_complete(&self) -> bool {
        self.items.iter().all(|p| p.state == PendingState::Done)
    }

    /// Marks `item` done as a hit or miss. Returns `false` if the item is
    /// not pending in the expected state.
    pub fn resolve(&mut self, item: ItemId, from: PendingState, hit: bool) -> bool {
        for p in &mut self.items {
            if p.item == item && p.state == from {
                p.state = PendingState::Done;
                if hit {
                    self.hits += 1;
                } else {
                    self.misses += 1;
                }
                return true;
            }
        }
        false
    }

    /// Moves `item` from one pending state to another. Returns `false` if
    /// it is not in the expected state.
    pub fn transition(&mut self, item: ItemId, from: PendingState, to: PendingState) -> bool {
        for p in &mut self.items {
            if p.item == item && p.state == from {
                p.state = to;
                return true;
            }
        }
        false
    }

    /// Like [`QueryState::transition`], but also stamps the transitioned
    /// item's request timestamp (and resets its retry count) — used when
    /// the transition puts a request on the uplink, so the
    /// fault-injection retry timer knows when it went up.
    pub fn transition_at(
        &mut self,
        item: ItemId,
        from: PendingState,
        to: PendingState,
        now: SimTime,
    ) -> bool {
        for p in &mut self.items {
            if p.item == item && p.state == from {
                p.state = to;
                p.requested_at = Some(now);
                p.retries = 0;
                return true;
            }
        }
        false
    }

    /// Finishes the query into an outcome summary.
    pub fn outcome(&self, completed_at: SimTime) -> QueryOutcome {
        debug_assert!(self.is_complete());
        QueryOutcome {
            issued_at: self.issued_at,
            completed_at,
            hits: self.hits,
            misses: self.misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn lifecycle_single_item_hit() {
        let mut q = QueryState::new(t(1.0), vec![ItemId(4)]);
        assert!(!q.is_complete());
        assert!(q.resolve(ItemId(4), PendingState::WaitReport, true));
        assert!(q.is_complete());
        let o = q.outcome(t(5.0));
        assert_eq!((o.hits, o.misses), (1, 0));
        assert_eq!(o.issued_at, t(1.0));
        assert_eq!(o.completed_at, t(5.0));
    }

    #[test]
    fn lifecycle_multi_item_mixed() {
        let mut q = QueryState::new(t(0.0), vec![ItemId(1), ItemId(2), ItemId(3)]);
        assert!(q.resolve(ItemId(1), PendingState::WaitReport, true));
        assert!(q.transition(ItemId(2), PendingState::WaitReport, PendingState::WaitData));
        assert!(q.transition(
            ItemId(3),
            PendingState::WaitReport,
            PendingState::WaitValidity
        ));
        assert!(!q.is_complete());
        assert!(q.resolve(ItemId(2), PendingState::WaitData, false));
        assert!(q.resolve(ItemId(3), PendingState::WaitValidity, true));
        assert!(q.is_complete());
        let o = q.outcome(t(9.0));
        assert_eq!((o.hits, o.misses), (2, 1));
    }

    #[test]
    fn resolve_rejects_wrong_state() {
        let mut q = QueryState::new(t(0.0), vec![ItemId(1)]);
        assert!(!q.resolve(ItemId(1), PendingState::WaitData, false));
        assert!(!q.resolve(ItemId(9), PendingState::WaitReport, false));
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn empty_query_rejected() {
        QueryState::new(t(0.0), vec![]);
    }
}
