//! The per-scheme client state machine.
//!
//! Since the struct-of-arrays redesign the scheme logic itself lives in
//! [`crate::pop`], written once against the [`ClientMut`] accessor
//! view. This module keeps the shared configuration/action/counter
//! types and the classic single-client [`Client`] facade — a
//! one-element [`ClientPop`] under the hood, so a standalone client and
//! a population member are the same code path by construction.
//!
//! [`ClientMut`]: crate::pop::ClientMut

use crate::pop::ClientPop;
use crate::query::QueryOutcome;
use mobicache_cache::LruCache;
use mobicache_model::{CheckingMode, ClientId, ItemId, RetryPolicy, Scheme, UplinkKind};
use mobicache_reports::{PreparedReport, ReportPayload};
use mobicache_sim::SimTime;

/// Static client configuration.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// Invalidation scheme.
    pub scheme: Scheme,
    /// Simple-checking uplink contents.
    pub checking_mode: CheckingMode,
    /// Cache capacity in items.
    pub cache_capacity: usize,
    /// Broadcast period `L` (drives the adaptive give-up grace window).
    pub broadcast_period_secs: f64,
    /// Number of item groups for grouped checking (round-robin
    /// partition; only used under [`Scheme::Gcore`]).
    pub gcore_groups: u32,
    /// Uplink retry/backoff policy under fault injection. `None` keeps
    /// the legacy paper behaviour: a fixed two-period lost-reply grace
    /// and no re-sends of lost requests.
    pub retry: Option<RetryPolicy>,
}

/// Something the client wants the outside world to do.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientAction {
    /// Send this message on the uplink channel.
    Uplink(UplinkKind),
    /// A query finished; account it.
    QueryDone(QueryOutcome),
}

/// Client behaviour counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientCounters {
    /// Queries issued.
    pub queries_issued: u64,
    /// Queries fully answered.
    pub queries_answered: u64,
    /// Referenced items answered from cache.
    pub item_hits: u64,
    /// Referenced items downloaded.
    pub item_misses: u64,
    /// `Tlb` messages sent (adaptive schemes).
    pub tlbs_sent: u64,
    /// Validity-check requests sent (simple checking).
    pub checks_sent: u64,
    /// Entire-cache drops.
    pub full_drops: u64,
    /// Limbo entries salvaged back to valid.
    pub salvaged: u64,
    /// Limbo entries dropped (given up or verdicted invalid).
    pub limbo_dropped: u64,
    /// Reconnection gaps entered (cache went limbo).
    pub limbo_episodes: u64,
    /// Requests re-sent by the fault-injection retry timer.
    pub retries_sent: u64,
    /// Times the retry budget ran out and the client degraded to a
    /// whole-cache drop.
    pub backoff_exhaustions: u64,
}

/// One mobile host: the single-client facade over [`ClientPop`].
///
/// Engine code scales by holding one [`ClientPop`] for the whole cell;
/// this wrapper keeps the ergonomic per-client API for tests, examples
/// and small harnesses, delegating every call to a population of one.
pub struct Client {
    id: ClientId,
    pop: ClientPop,
}

impl Client {
    /// A fresh, connected client with an empty cache.
    pub fn new(id: ClientId, cfg: ClientConfig) -> Self {
        Client {
            id,
            pop: ClientPop::new(cfg, 1),
        }
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Behaviour counters.
    pub fn counters(&self) -> ClientCounters {
        self.pop.counters(0)
    }

    /// Read access to the cache (tests and the consistency oracle).
    pub fn cache(&self) -> &LruCache {
        self.pop.cache(0)
    }

    /// `true` while listening to broadcasts.
    pub fn is_connected(&self) -> bool {
        self.pop.is_connected(0)
    }

    /// Timestamp of the last report received.
    pub fn tlb(&self) -> SimTime {
        self.pop.tlb(0)
    }

    /// `true` while a query is being resolved.
    pub fn has_pending_query(&self) -> bool {
        self.pop.has_pending_query(0)
    }

    /// Enters doze mode. The caller must not route broadcasts here while
    /// disconnected.
    ///
    /// # Panics
    /// Panics if a query is still in flight (the model only disconnects
    /// between queries).
    pub fn disconnect(&mut self, now: SimTime) {
        self.pop.disconnect(0, now);
    }

    /// Wakes up from doze mode, returning the length of the doze period
    /// in seconds. Cache reconciliation happens at the next broadcast
    /// report.
    pub fn reconnect(&mut self, now: SimTime) -> f64 {
        self.pop.reconnect(0, now)
    }

    /// Issues a query referencing `items`. The query waits for the next
    /// invalidation report (§2 of the paper) before touching the cache.
    ///
    /// # Panics
    /// Panics if a query is already in flight or the client is
    /// disconnected.
    pub fn start_query(&mut self, now: SimTime, items: Vec<ItemId>) {
        self.pop.start_query(0, now, &items);
    }

    /// Processes a broadcast invalidation report.
    ///
    /// Compatibility form of [`Client::on_report_into`]: indexes the
    /// report for this one client and allocates the action list. The
    /// simulator threads one [`PreparedReport`] and one action buffer
    /// through the whole broadcast fan-out instead.
    pub fn on_report(&mut self, now: SimTime, payload: &ReportPayload) -> Vec<ClientAction> {
        let mut actions = Vec::new();
        self.on_report_into(now, &payload.prepare(), &mut actions);
        actions
    }

    /// Processes a broadcast invalidation report through a shared
    /// [`PreparedReport`], appending the resulting actions to `actions`
    /// (which is *not* cleared).
    pub fn on_report_into(
        &mut self,
        now: SimTime,
        prepared: &PreparedReport<'_>,
        actions: &mut Vec<ClientAction>,
    ) {
        self.pop
            .client_mut(0)
            .on_report_into(now, prepared, actions);
    }

    /// Processes a downloaded data item (`version` = the update timestamp
    /// the delivered copy reflects).
    ///
    /// Compatibility form of [`Client::on_data_into`].
    pub fn on_data(&mut self, now: SimTime, item: ItemId, version: SimTime) -> Vec<ClientAction> {
        let mut actions = Vec::new();
        self.on_data_into(now, item, version, &mut actions);
        actions
    }

    /// Processes a downloaded data item, appending the resulting actions
    /// to `actions` (which is *not* cleared).
    pub fn on_data_into(
        &mut self,
        now: SimTime,
        item: ItemId,
        version: SimTime,
        actions: &mut Vec<ClientAction>,
    ) {
        self.pop
            .client_mut(0)
            .on_data_into(now, item, version, actions);
    }

    /// Opportunistically caches a data item overheard on the broadcast
    /// downlink (snooping extension). Unlike [`Client::on_data`] this
    /// never touches the pending query — the item was addressed to
    /// someone else.
    pub fn on_snooped_data(&mut self, now: SimTime, item: ItemId, version: SimTime) {
        self.pop.client_mut(0).on_snooped_data(now, item, version);
    }

    /// Processes a validity report (answer to a check request): `valid`
    /// lists the checked items that are still current as of `asof`.
    ///
    /// Compatibility form of [`Client::on_validity_into`].
    pub fn on_validity(
        &mut self,
        now: SimTime,
        asof: SimTime,
        valid: &[ItemId],
    ) -> Vec<ClientAction> {
        let mut actions = Vec::new();
        self.on_validity_into(now, asof, valid, &mut actions);
        actions
    }

    /// Processes a validity report, appending the resulting actions to
    /// `actions` (which is *not* cleared).
    pub fn on_validity_into(
        &mut self,
        now: SimTime,
        asof: SimTime,
        valid: &[ItemId],
        actions: &mut Vec<ClientAction>,
    ) {
        self.pop
            .client_mut(0)
            .on_validity_into(now, asof, valid, actions);
    }

    /// Processes a grouped-checking verdict (answer to a
    /// [`UplinkKind::GroupCheckRequest`]): `stale` lists the checked
    /// groups' items updated since the request's `Tlb`; `covered = false`
    /// means the retention window was exceeded and nothing can be
    /// salvaged.
    ///
    /// Compatibility form of [`Client::on_group_validity_into`].
    pub fn on_group_validity(
        &mut self,
        now: SimTime,
        asof: SimTime,
        covered: bool,
        stale: &[ItemId],
    ) -> Vec<ClientAction> {
        let mut actions = Vec::new();
        self.on_group_validity_into(now, asof, covered, stale, &mut actions);
        actions
    }

    /// Processes a grouped-checking verdict, appending the resulting
    /// actions to `actions` (which is *not* cleared).
    pub fn on_group_validity_into(
        &mut self,
        now: SimTime,
        asof: SimTime,
        covered: bool,
        stale: &[ItemId],
        actions: &mut Vec<ClientAction>,
    ) {
        self.pop
            .client_mut(0)
            .on_group_validity_into(now, asof, covered, stale, actions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobicache_reports::WindowReport;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn cfg(scheme: Scheme) -> ClientConfig {
        ClientConfig {
            scheme,
            checking_mode: CheckingMode::FullCache,
            cache_capacity: 8,
            broadcast_period_secs: 20.0,
            gcore_groups: 4,
            retry: None,
        }
    }

    fn window(at: f64, wstart: f64, records: Vec<(u32, f64)>) -> ReportPayload {
        ReportPayload::Window(WindowReport {
            broadcast_at: t(at),
            window_start: t(wstart),
            records: records
                .into_iter()
                .map(|(i, ts)| (ItemId(i), t(ts)))
                .collect(),
            dummy: None,
        })
    }

    /// Warm a client: fetch `item` so it is cached valid.
    fn warm(c: &mut Client, at: f64, item: u32) {
        c.start_query(t(at), vec![ItemId(item)]);
        let acts = c.on_report(t(at) + 1.0, &window(at + 1.0, at - 199.0, vec![]));
        assert!(matches!(
            &acts[0],
            ClientAction::Uplink(UplinkKind::QueryRequest { .. })
        ));
        let acts = c.on_data(t(at) + 2.0, ItemId(item), SimTime::ZERO);
        assert!(matches!(&acts[0], ClientAction::QueryDone(_)));
    }

    #[test]
    fn cold_query_goes_uplink_then_completes_on_data() {
        let mut c = Client::new(ClientId(0), cfg(Scheme::SimpleChecking));
        c.start_query(t(5.0), vec![ItemId(3)]);
        assert!(c.has_pending_query());
        let acts = c.on_report(t(20.0), &window(20.0, -180.0, vec![]));
        assert_eq!(
            acts,
            vec![ClientAction::Uplink(UplinkKind::QueryRequest {
                item: ItemId(3)
            })]
        );
        let acts = c.on_data(t(27.0), ItemId(3), SimTime::ZERO);
        match &acts[0] {
            ClientAction::QueryDone(o) => {
                assert_eq!((o.hits, o.misses), (0, 1));
                assert_eq!(o.issued_at, t(5.0));
                assert_eq!(o.completed_at, t(27.0));
            }
            other => panic!("{other:?}"),
        }
        assert!(!c.has_pending_query());
        assert_eq!(c.counters().item_misses, 1);
    }

    #[test]
    fn warm_query_hits_cache_at_next_report() {
        let mut c = Client::new(ClientId(0), cfg(Scheme::SimpleChecking));
        warm(&mut c, 20.0, 3);
        c.start_query(t(30.0), vec![ItemId(3)]);
        let acts = c.on_report(t(40.0), &window(40.0, -160.0, vec![]));
        match &acts[0] {
            ClientAction::QueryDone(o) => assert_eq!((o.hits, o.misses), (1, 0)),
            other => panic!("{other:?}"),
        }
        assert_eq!(c.counters().item_hits, 1);
    }

    #[test]
    fn report_invalidates_updated_item() {
        let mut c = Client::new(ClientId(0), cfg(Scheme::SimpleChecking));
        warm(&mut c, 20.0, 3); // version ZERO
                               // Item 3 updated at t=30; next report lists it.
        c.start_query(t(35.0), vec![ItemId(3)]);
        let acts = c.on_report(t(40.0), &window(40.0, -160.0, vec![(3, 30.0)]));
        assert_eq!(
            acts,
            vec![ClientAction::Uplink(UplinkKind::QueryRequest {
                item: ItemId(3)
            })],
            "stale copy must be refetched"
        );
    }

    #[test]
    fn ts_no_check_drops_cache_after_long_disconnection() {
        let mut c = Client::new(ClientId(0), cfg(Scheme::TsNoCheck));
        warm(&mut c, 20.0, 3);
        c.disconnect(t(30.0));
        c.reconnect(t(800.0));
        // Report at 800 with window starting at 600 — tlb = 22 is older.
        let acts = c.on_report(t(800.0), &window(800.0, 600.0, vec![]));
        assert!(acts.is_empty());
        assert!(c.cache().is_empty(), "no-checking client drops everything");
        assert_eq!(c.counters().full_drops, 1);
    }

    #[test]
    fn simple_checking_sends_full_cache_check_and_salvages() {
        let mut c = Client::new(ClientId(0), cfg(Scheme::SimpleChecking));
        warm(&mut c, 20.0, 3);
        warm(&mut c, 40.0, 4);
        c.disconnect(t(50.0));
        c.reconnect(t(800.0));
        let acts = c.on_report(t(800.0), &window(800.0, 600.0, vec![]));
        match &acts[0] {
            ClientAction::Uplink(UplinkKind::CheckRequest { entries }) => {
                assert_eq!(entries.len(), 2);
            }
            other => panic!("{other:?}"),
        }
        assert!(c.cache().has_limbo());
        // Server says item 3 valid, item 4 stale.
        let acts = c.on_validity(t(802.0), t(801.0), &[ItemId(3)]);
        assert!(acts.is_empty());
        assert!(!c.cache().has_limbo());
        assert!(c.cache().peek(ItemId(3)).is_some());
        assert!(c.cache().peek(ItemId(4)).is_none());
        assert_eq!(c.counters().salvaged, 1);
        assert_eq!(c.counters().limbo_dropped, 1);
        assert_eq!(c.counters().checks_sent, 1);
    }

    #[test]
    fn limbo_entry_does_not_answer_query_before_verdict() {
        let mut c = Client::new(ClientId(0), cfg(Scheme::SimpleChecking));
        warm(&mut c, 20.0, 3);
        c.disconnect(t(30.0));
        c.reconnect(t(800.0));
        c.start_query(t(800.0), vec![ItemId(3)]);
        let acts = c.on_report(t(800.0), &window(800.0, 600.0, vec![]));
        // Check goes up; the query waits for the verdict, not for data.
        assert_eq!(acts.len(), 1);
        assert!(matches!(
            &acts[0],
            ClientAction::Uplink(UplinkKind::CheckRequest { .. })
        ));
        assert!(c.has_pending_query());
        // Verdict: valid — the query completes as a hit.
        let acts = c.on_validity(t(802.0), t(801.0), &[ItemId(3)]);
        match &acts[0] {
            ClientAction::QueryDone(o) => assert_eq!((o.hits, o.misses), (1, 0)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn queried_items_mode_checks_lazily() {
        let mut c = Client::new(
            ClientId(0),
            ClientConfig {
                checking_mode: CheckingMode::QueriedItems,
                ..cfg(Scheme::SimpleChecking)
            },
        );
        warm(&mut c, 20.0, 3);
        warm(&mut c, 40.0, 4);
        c.disconnect(t(50.0));
        c.reconnect(t(800.0));
        // No proactive check on the uncovering report.
        let acts = c.on_report(t(800.0), &window(800.0, 600.0, vec![]));
        assert!(
            acts.is_empty(),
            "lazy mode sends nothing proactively: {acts:?}"
        );
        assert!(c.cache().has_limbo());
        // Query on item 3: targeted check for just that entry.
        c.start_query(t(810.0), vec![ItemId(3)]);
        let acts = c.on_report(t(820.0), &window(820.0, 620.0, vec![]));
        match &acts[0] {
            ClientAction::Uplink(UplinkKind::CheckRequest { entries }) => {
                assert_eq!(entries.len(), 1);
                assert_eq!(entries[0].0, ItemId(3));
            }
            other => panic!("{other:?}"),
        }
        // Invalid verdict: refetch.
        let acts = c.on_validity(t(822.0), t(821.0), &[]);
        assert!(matches!(
            &acts[0],
            ClientAction::Uplink(UplinkKind::QueryRequest { item }) if *item == ItemId(3)
        ));
        // Item 4 remains limbo (never queried).
        assert!(c.cache().has_limbo());
    }

    #[test]
    fn adaptive_client_sends_tlb_once_and_salvages_from_bs() {
        let mut c = Client::new(ClientId(0), cfg(Scheme::Afw));
        warm(&mut c, 20.0, 3);
        c.disconnect(t(30.0));
        c.reconnect(t(800.0));
        let acts = c.on_report(t(800.0), &window(800.0, 600.0, vec![]));
        match &acts[0] {
            ClientAction::Uplink(UplinkKind::TlbReport { tlb_secs }) => {
                assert_eq!(*tlb_secs, 21.0, "Tlb = last report before the gap");
            }
            other => panic!("{other:?}"),
        }
        assert!(c.cache().has_limbo());
        assert_eq!(c.counters().tlbs_sent, 1);
        // Next period: the server answers with BS; item 3 not updated.
        let bs = mobicache_reports::BitSequences::from_recency(
            t(820.0),
            64,
            vec![(ItemId(9), t(700.0))],
        );
        let acts = c.on_report(t(820.0), &ReportPayload::BitSeq(bs));
        assert!(acts.is_empty());
        assert!(!c.cache().has_limbo(), "BS salvaged the cache");
        assert!(c.cache().peek(ItemId(3)).is_some());
        assert_eq!(c.counters().salvaged, 1);
    }

    #[test]
    fn adaptive_client_gives_up_after_grace() {
        let mut c = Client::new(ClientId(0), cfg(Scheme::Afw));
        warm(&mut c, 20.0, 3);
        c.disconnect(t(30.0));
        c.reconnect(t(800.0));
        c.on_report(t(800.0), &window(800.0, 600.0, vec![]));
        // Two more uncovering windows; the second is past the grace.
        let acts = c.on_report(t(820.0), &window(820.0, 620.0, vec![]));
        assert!(acts.is_empty(), "still within grace");
        assert!(c.cache().has_limbo());
        let acts = c.on_report(t(840.0), &window(840.0, 640.0, vec![]));
        assert!(acts.is_empty());
        assert!(!c.cache().has_limbo(), "gave up after grace");
        assert!(c.cache().is_empty());
        assert_eq!(c.counters().limbo_dropped, 1);
        assert_eq!(c.counters().tlbs_sent, 1, "Tlb sent only once");
    }

    #[test]
    fn aaw_enlarged_window_salvages_without_bs() {
        let mut c = Client::new(ClientId(0), cfg(Scheme::Aaw));
        warm(&mut c, 20.0, 3);
        warm(&mut c, 40.0, 5);
        c.disconnect(t(50.0));
        c.reconnect(t(800.0));
        c.on_report(t(800.0), &window(800.0, 600.0, vec![]));
        assert!(c.cache().has_limbo());
        // Enlarged window with dummy ≤ our gap start, listing item 5 as
        // updated at t=300.
        let enlarged = ReportPayload::Window(WindowReport {
            broadcast_at: t(820.0),
            window_start: t(620.0),
            records: vec![(ItemId(5), t(300.0))],
            dummy: Some(t(10.0)),
        });
        let acts = c.on_report(t(820.0), &enlarged);
        assert!(acts.is_empty());
        assert!(!c.cache().has_limbo());
        assert!(
            c.cache().peek(ItemId(3)).is_some(),
            "unlisted entry salvaged"
        );
        assert!(
            c.cache().peek(ItemId(5)).is_none(),
            "listed stale entry dropped"
        );
    }

    #[test]
    fn bs_client_never_goes_limbo() {
        let mut c = Client::new(ClientId(0), cfg(Scheme::Bs));
        // Warm via BS reports.
        c.start_query(t(5.0), vec![ItemId(3)]);
        let empty_bs = |at: f64| {
            ReportPayload::BitSeq(mobicache_reports::BitSequences::from_recency(
                t(at),
                64,
                vec![],
            ))
        };
        let acts = c.on_report(t(20.0), &empty_bs(20.0));
        assert!(matches!(
            &acts[0],
            ClientAction::Uplink(UplinkKind::QueryRequest { .. })
        ));
        c.on_data(t(22.0), ItemId(3), SimTime::ZERO);
        c.disconnect(t(30.0));
        c.reconnect(t(2000.0));
        let acts = c.on_report(t(2000.0), &empty_bs(2000.0));
        assert!(acts.is_empty());
        assert!(!c.cache().has_limbo());
        assert!(
            c.cache().peek(ItemId(3)).is_some(),
            "salvaged across a 2000 s gap"
        );
    }

    #[test]
    fn bs_drop_all_clears_cache() {
        let mut c = Client::new(ClientId(0), cfg(Scheme::Bs));
        c.start_query(t(5.0), vec![ItemId(3)]);
        let bs0 = ReportPayload::BitSeq(mobicache_reports::BitSequences::from_recency(
            t(20.0),
            4,
            vec![],
        ));
        c.on_report(t(20.0), &bs0);
        c.on_data(t(22.0), ItemId(3), SimTime::ZERO);
        c.disconnect(t(30.0));
        c.reconnect(t(900.0));
        // More than half of the 4-item DB updated after tlb=20.
        let bs = ReportPayload::BitSeq(mobicache_reports::BitSequences::from_recency(
            t(900.0),
            4,
            vec![
                (ItemId(0), t(500.0)),
                (ItemId(1), t(400.0)),
                (ItemId(2), t(300.0)),
            ],
        ));
        c.on_report(t(900.0), &bs);
        assert!(c.cache().is_empty());
        assert_eq!(c.counters().full_drops, 1);
    }

    #[test]
    fn multi_item_query_mixes_hits_and_misses() {
        let mut c = Client::new(ClientId(0), cfg(Scheme::SimpleChecking));
        warm(&mut c, 20.0, 3);
        c.start_query(t(30.0), vec![ItemId(3), ItemId(7)]);
        let acts = c.on_report(t(40.0), &window(40.0, -160.0, vec![]));
        assert_eq!(
            acts,
            vec![ClientAction::Uplink(UplinkKind::QueryRequest {
                item: ItemId(7)
            })]
        );
        let acts = c.on_data(t(47.0), ItemId(7), SimTime::ZERO);
        match &acts[0] {
            ClientAction::QueryDone(o) => assert_eq!((o.hits, o.misses), (1, 1)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn gcore_client_checks_groups_not_items() {
        let mut c = Client::new(ClientId(0), cfg(Scheme::Gcore));
        // Items 1 and 5 share group 1 (mod 4); item 2 is group 2.
        warm(&mut c, 20.0, 1);
        warm(&mut c, 40.0, 5);
        warm(&mut c, 60.0, 2);
        c.disconnect(t(70.0));
        c.reconnect(t(790.0));
        let acts = c.on_report(t(800.0), &window(800.0, 600.0, vec![]));
        match &acts[0] {
            ClientAction::Uplink(UplinkKind::GroupCheckRequest { groups }) => {
                assert_eq!(groups.len(), 2, "two groups despite three items");
                assert_eq!(groups[0].0, 1);
                assert_eq!(groups[1].0, 2);
                assert_eq!(groups[0].1, 61.0, "Tlb = last report before the gap");
            }
            other => panic!("{other:?}"),
        }
        assert!(c.cache().has_limbo());
        // Verdict: item 5 was updated; everything else survives.
        let acts = c.on_group_validity(t(802.0), t(801.0), true, &[ItemId(5)]);
        assert!(acts.is_empty());
        assert!(c.cache().peek(ItemId(5)).is_none());
        assert!(c.cache().peek(ItemId(1)).is_some());
        assert!(c.cache().peek(ItemId(2)).is_some());
        assert!(!c.cache().has_limbo());
    }

    #[test]
    fn gcore_uncovered_verdict_drops_cache() {
        let mut c = Client::new(ClientId(0), cfg(Scheme::Gcore));
        warm(&mut c, 20.0, 1);
        c.disconnect(t(30.0));
        c.reconnect(t(790.0));
        c.on_report(t(800.0), &window(800.0, 600.0, vec![]));
        let acts = c.on_group_validity(t(802.0), t(801.0), false, &[]);
        assert!(acts.is_empty());
        assert!(c.cache().is_empty());
        assert_eq!(c.counters().full_drops, 1);
    }

    #[test]
    fn gcore_query_on_limbo_item_waits_for_group_verdict() {
        let mut c = Client::new(ClientId(0), cfg(Scheme::Gcore));
        warm(&mut c, 20.0, 1);
        c.disconnect(t(30.0));
        c.reconnect(t(790.0));
        c.start_query(t(795.0), vec![ItemId(1)]);
        let acts = c.on_report(t(800.0), &window(800.0, 600.0, vec![]));
        assert_eq!(acts.len(), 1, "only the group check goes up: {acts:?}");
        assert!(matches!(
            &acts[0],
            ClientAction::Uplink(UplinkKind::GroupCheckRequest { .. })
        ));
        // Clean verdict: the query completes as a hit.
        let acts = c.on_group_validity(t(802.0), t(801.0), true, &[]);
        match &acts[0] {
            ClientAction::QueryDone(o) => assert_eq!((o.hits, o.misses), (1, 0)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn second_disconnection_re_limboes_entries_fetched_during_gap() {
        // Regression: an entry fetched while a gap is open is vouched only
        // up to the last report heard; a second disconnection must put it
        // back into limbo, or it can sail past updates broadcast while the
        // client dozed.
        let mut c = Client::new(ClientId(0), cfg(Scheme::Afw));
        warm(&mut c, 20.0, 3);
        c.disconnect(t(30.0));
        c.reconnect(t(790.0));
        // First report after reconnect: uncovered -> gap opens, Tlb sent.
        let acts = c.on_report(t(800.0), &window(800.0, 600.0, vec![]));
        assert!(matches!(
            &acts[0],
            ClientAction::Uplink(UplinkKind::TlbReport { .. })
        ));
        // Fetch item 9 during the gap; it is valid.
        c.start_query(t(802.0), vec![ItemId(9)]);
        c.on_report(t(805.0), &window(805.0, 605.0, vec![]));
        c.on_data(t(807.0), ItemId(9), t(400.0));
        assert!(c.cache().peek(ItemId(9)).unwrap().state == mobicache_cache::EntryState::Valid);
        // Second disconnection; item 9 is updated at t=900 and the
        // listing reports (900..1100) are all missed.
        c.disconnect(t(810.0));
        c.reconnect(t(1_190.0));
        // First report after the second reconnect does not cover tlb=805:
        // everything must fall back into limbo and the Tlb be re-armed.
        let acts = c.on_report(t(1_200.0), &window(1_200.0, 1_000.0, vec![]));
        assert!(
            matches!(&acts[0], ClientAction::Uplink(UplinkKind::TlbReport { .. })),
            "salvage must be re-requested: {acts:?}"
        );
        let e9 = c.cache().peek(ItemId(9)).expect("still cached");
        assert_eq!(e9.state, mobicache_cache::EntryState::Limbo);
        // A BS report covering the whole gap drops the stale item 9 and
        // salvages item 3.
        let bs = mobicache_reports::BitSequences::from_recency(
            t(1_220.0),
            64,
            vec![(ItemId(9), t(900.0))],
        );
        c.on_report(t(1_220.0), &ReportPayload::BitSeq(bs));
        assert!(c.cache().peek(ItemId(9)).is_none(), "stale entry dropped");
        assert!(c.cache().peek(ItemId(3)).is_some(), "fresh entry salvaged");
        assert!(!c.cache().has_limbo());
    }

    #[test]
    fn short_second_disconnection_keeps_valid_entries() {
        // If the first report after the second reconnection covers tlb,
        // the valid entries stay valid (the report's stale list is
        // sufficient) and only the original limbo persists.
        let mut c = Client::new(ClientId(0), cfg(Scheme::Afw));
        warm(&mut c, 20.0, 3);
        c.disconnect(t(30.0));
        c.reconnect(t(790.0));
        c.on_report(t(800.0), &window(800.0, 600.0, vec![]));
        c.start_query(t(802.0), vec![ItemId(9)]);
        c.on_report(t(805.0), &window(805.0, 605.0, vec![]));
        c.on_data(t(807.0), ItemId(9), t(400.0));
        // Short nap within the give-up grace; the next window covers tlb.
        c.disconnect(t(810.0));
        c.reconnect(t(815.0));
        c.on_report(t(820.0), &window(820.0, 620.0, vec![]));
        assert_eq!(
            c.cache().peek(ItemId(9)).unwrap().state,
            mobicache_cache::EntryState::Valid,
            "covered entries must not be re-limboed"
        );
        assert_eq!(
            c.cache().peek(ItemId(3)).unwrap().state,
            mobicache_cache::EntryState::Limbo,
            "the original gap persists"
        );
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlapping_queries_rejected() {
        let mut c = Client::new(ClientId(0), cfg(Scheme::Bs));
        c.start_query(t(1.0), vec![ItemId(1)]);
        c.start_query(t(2.0), vec![ItemId(2)]);
    }

    #[test]
    fn at_client_invalidates_listed_and_drops_on_missed_report() {
        let mut c = Client::new(ClientId(0), cfg(Scheme::At));
        let at = |at: f64, prev: f64, items: Vec<u32>| {
            ReportPayload::At(mobicache_reports::AtReport {
                broadcast_at: t(at),
                prev_broadcast: t(prev),
                items: items.into_iter().map(ItemId).collect(),
            })
        };
        // Warm item 3 via AT reports.
        c.start_query(t(5.0), vec![ItemId(3)]);
        let acts = c.on_report(t(20.0), &at(20.0, 0.0, vec![]));
        assert!(matches!(
            &acts[0],
            ClientAction::Uplink(UplinkKind::QueryRequest { .. })
        ));
        c.on_data(t(22.0), ItemId(3), SimTime::ZERO);
        // Connected client: listed update drops exactly item 3.
        c.on_report(t(40.0), &at(40.0, 20.0, vec![3]));
        assert!(c.cache().is_empty());
        // Re-warm, then miss one report: amnesic drop.
        c.start_query(t(45.0), vec![ItemId(5)]);
        c.on_report(t(60.0), &at(60.0, 40.0, vec![]));
        c.on_data(t(62.0), ItemId(5), SimTime::ZERO);
        c.disconnect(t(65.0));
        c.reconnect(t(95.0)); // missed the report at 80
        c.on_report(t(100.0), &at(100.0, 80.0, vec![]));
        assert!(c.cache().is_empty(), "amnesic terminals drop after any gap");
        assert_eq!(c.counters().full_drops, 1);
    }

    #[test]
    fn ts_no_check_invalidates_normally_within_window() {
        let mut c = Client::new(ClientId(0), cfg(Scheme::TsNoCheck));
        warm(&mut c, 20.0, 3);
        warm(&mut c, 40.0, 4);
        // Short disconnection, still inside the window: normal TS logic,
        // no full drop.
        c.disconnect(t(50.0));
        c.reconnect(t(90.0));
        c.on_report(t(100.0), &window(100.0, -100.0, vec![(3, 70.0)]));
        assert!(c.cache().peek(ItemId(3)).is_none(), "stale entry dropped");
        assert!(c.cache().peek(ItemId(4)).is_some(), "fresh entry kept");
        assert_eq!(c.counters().full_drops, 0);
    }

    #[test]
    fn evicted_wait_validity_item_falls_back_to_fetch() {
        // A queried limbo entry can be evicted (by fetches for other
        // items) before its verdict arrives; the verdict must then route
        // the query to a fresh fetch rather than a phantom hit.
        let mut c = Client::new(
            ClientId(0),
            ClientConfig {
                cache_capacity: 1,
                ..cfg(Scheme::SimpleChecking)
            },
        );
        warm(&mut c, 20.0, 3);
        c.disconnect(t(30.0));
        c.reconnect(t(790.0));
        c.start_query(t(795.0), vec![ItemId(3)]);
        let acts = c.on_report(t(800.0), &window(800.0, 600.0, vec![]));
        assert!(matches!(
            &acts[0],
            ClientAction::Uplink(UplinkKind::CheckRequest { .. })
        ));
        // Eviction: a snooped item lands in the 1-slot cache.
        c.on_snooped_data(t(801.0), ItemId(9), t(500.0));
        assert!(c.cache().peek(ItemId(3)).is_none(), "limbo entry evicted");
        // Verdict says item 3 was valid — but the copy is gone; refetch.
        let acts = c.on_validity(t(802.0), t(801.5), &[ItemId(3)]);
        assert!(
            matches!(&acts[0], ClientAction::Uplink(UplinkKind::QueryRequest { item }) if *item == ItemId(3)),
            "{acts:?}"
        );
        let acts = c.on_data(t(803.0), ItemId(3), t(700.0));
        assert!(matches!(&acts[0], ClientAction::QueryDone(_)));
    }

    #[test]
    fn snooped_data_does_not_preempt_inflight_fetch() {
        let mut c = Client::new(ClientId(0), cfg(Scheme::SimpleChecking));
        c.start_query(t(5.0), vec![ItemId(3)]);
        let acts = c.on_report(t(20.0), &window(20.0, -180.0, vec![]));
        assert!(matches!(
            &acts[0],
            ClientAction::Uplink(UplinkKind::QueryRequest { .. })
        ));
        // A snooped copy of the same item arrives mid-fetch: ignored so
        // the addressed delivery resolves the query.
        c.on_snooped_data(t(21.0), ItemId(3), t(10.0));
        assert!(c.cache().peek(ItemId(3)).is_none());
        let acts = c.on_data(t(27.0), ItemId(3), t(10.0));
        assert!(matches!(&acts[0], ClientAction::QueryDone(_)));
        // Snooping an unrelated item, though, caches it.
        c.on_snooped_data(t(28.0), ItemId(8), t(12.0));
        assert!(c.cache().peek(ItemId(8)).is_some());
    }

    #[test]
    fn sig_client_uses_baseline() {
        let mut c = Client::new(ClientId(0), cfg(Scheme::Sig));
        let signer = mobicache_reports::Signer::new(16, 32, 1);
        let versions = vec![SimTime::ZERO; 32];
        let sig0 = ReportPayload::Sig(
            mobicache_reports::SigReport {
                broadcast_at: t(20.0),
                combined: signer.combine(&versions),
            },
            signer,
        );
        // First report: no baseline yet, cache empty, fine.
        c.start_query(t(5.0), vec![ItemId(3)]);
        let acts = c.on_report(t(20.0), &sig0);
        assert!(matches!(
            &acts[0],
            ClientAction::Uplink(UplinkKind::QueryRequest { .. })
        ));
        c.on_data(t(22.0), ItemId(3), SimTime::ZERO);
        // Second report: item 3 unchanged — cache keeps it.
        let sig1 = ReportPayload::Sig(
            mobicache_reports::SigReport {
                broadcast_at: t(40.0),
                combined: signer.combine(&versions),
            },
            signer,
        );
        c.on_report(t(40.0), &sig1);
        assert!(c.cache().peek(ItemId(3)).is_some());
        // Third report: item 3 changed — flagged and dropped.
        let mut v2 = versions.clone();
        v2[3] = t(50.0);
        let sig2 = ReportPayload::Sig(
            mobicache_reports::SigReport {
                broadcast_at: t(60.0),
                combined: signer.combine(&v2),
            },
            signer,
        );
        c.on_report(t(60.0), &sig2);
        assert!(c.cache().peek(ItemId(3)).is_none());
    }

    // --- fault-injection retry/backoff ---------------------------------

    fn cfg_retry(scheme: Scheme, timeout_intervals: u32, max_retries: u32) -> ClientConfig {
        ClientConfig {
            retry: Some(RetryPolicy {
                timeout_intervals,
                max_retries,
                backoff_cap_intervals: 8,
            }),
            ..cfg(scheme)
        }
    }

    fn tlb_reports(acts: &[ClientAction]) -> usize {
        acts.iter()
            .filter(|a| matches!(a, ClientAction::Uplink(UplinkKind::TlbReport { .. })))
            .count()
    }

    #[test]
    fn adaptive_client_retries_tlb_with_backoff_then_degrades() {
        let mut c = Client::new(ClientId(0), cfg_retry(Scheme::Afw, 1, 2));
        warm(&mut c, 20.0, 3);
        c.disconnect(t(30.0));
        c.reconnect(t(800.0));
        // Initial Tlb goes up on the first uncovering report.
        let acts = c.on_report(t(800.0), &window(800.0, 600.0, vec![]));
        assert_eq!(tlb_reports(&acts), 1);
        // One interval without coverage: first retry.
        let acts = c.on_report(t(820.0), &window(820.0, 620.0, vec![]));
        assert_eq!(tlb_reports(&acts), 1, "first retry after one interval");
        assert_eq!(c.counters().retries_sent, 1);
        // Backoff doubled to two intervals: nothing at +1, retry at +2.
        let acts = c.on_report(t(840.0), &window(840.0, 640.0, vec![]));
        assert_eq!(tlb_reports(&acts), 0, "still inside doubled backoff");
        let acts = c.on_report(t(860.0), &window(860.0, 660.0, vec![]));
        assert_eq!(tlb_reports(&acts), 1, "second retry after two intervals");
        assert_eq!(c.counters().retries_sent, 2);
        assert_eq!(c.counters().tlbs_sent, 3);
        // Budget spent (max_retries = 2): after four more silent
        // intervals the client degrades to a whole-cache drop.
        for at in [880.0, 900.0, 920.0] {
            let acts = c.on_report(t(at), &window(at, at - 200.0, vec![]));
            assert!(acts.is_empty(), "waiting out the capped backoff at {at}");
        }
        let acts = c.on_report(t(940.0), &window(940.0, 740.0, vec![]));
        assert!(acts.is_empty());
        assert!(c.cache().is_empty(), "graceful degradation drops the cache");
        assert_eq!(c.counters().backoff_exhaustions, 1);
        assert_eq!(c.counters().full_drops, 1);
        assert!(!c.cache().has_limbo());
    }

    #[test]
    fn checking_client_retries_check_then_degrades() {
        let mut c = Client::new(ClientId(0), cfg_retry(Scheme::SimpleChecking, 1, 1));
        warm(&mut c, 20.0, 3);
        c.disconnect(t(30.0));
        c.reconnect(t(800.0));
        c.on_report(t(800.0), &window(800.0, 600.0, vec![]));
        assert_eq!(c.counters().checks_sent, 1);
        // Lost reply: the check is re-sent after one interval.
        let acts = c.on_report(t(820.0), &window(820.0, 620.0, vec![]));
        assert!(acts
            .iter()
            .any(|a| matches!(a, ClientAction::Uplink(UplinkKind::CheckRequest { .. }))));
        assert_eq!(c.counters().checks_sent, 2);
        assert_eq!(c.counters().retries_sent, 1);
        // max_retries = 1: after the doubled wait, degrade.
        c.on_report(t(840.0), &window(840.0, 640.0, vec![]));
        assert!(c.cache().has_limbo(), "inside doubled backoff");
        c.on_report(t(860.0), &window(860.0, 660.0, vec![]));
        assert!(c.cache().is_empty());
        assert_eq!(c.counters().backoff_exhaustions, 1);
    }

    #[test]
    fn lost_data_request_is_retried_until_answered() {
        let mut c = Client::new(ClientId(0), cfg_retry(Scheme::Afw, 1, 2));
        c.start_query(t(5.0), vec![ItemId(7)]);
        let acts = c.on_report(t(21.0), &window(21.0, -179.0, vec![]));
        assert!(matches!(
            &acts[0],
            ClientAction::Uplink(UplinkKind::QueryRequest { .. })
        ));
        // The request (or its reply) was lost: re-sent after one
        // interval, then after two (capped exponential backoff).
        let acts = c.on_report(t(41.0), &window(41.0, -159.0, vec![]));
        assert!(
            matches!(
                &acts[..],
                [ClientAction::Uplink(UplinkKind::QueryRequest { item })] if *item == ItemId(7)
            ),
            "retry after one interval: {acts:?}"
        );
        let acts = c.on_report(t(61.0), &window(61.0, -139.0, vec![]));
        assert!(acts.is_empty(), "inside doubled backoff");
        let acts = c.on_report(t(81.0), &window(81.0, -119.0, vec![]));
        assert_eq!(acts.len(), 1, "second retry");
        assert_eq!(c.counters().retries_sent, 2);
        // Data finally lands: the query completes normally.
        let acts = c.on_data(t(85.0), ItemId(7), SimTime::ZERO);
        assert!(matches!(&acts[0], ClientAction::QueryDone(_)));
        assert_eq!(c.counters().queries_answered, 1);
    }

    #[test]
    fn stuck_validity_wait_falls_back_to_data_fetch() {
        let mut c = Client::new(
            ClientId(0),
            ClientConfig {
                checking_mode: CheckingMode::QueriedItems,
                ..cfg_retry(Scheme::SimpleChecking, 1, 2)
            },
        );
        warm(&mut c, 20.0, 3);
        c.disconnect(t(30.0));
        c.reconnect(t(800.0));
        c.on_report(t(800.0), &window(800.0, 600.0, vec![]));
        assert!(c.cache().has_limbo());
        // Query the limbo item: a targeted check goes up.
        c.start_query(t(805.0), vec![ItemId(3)]);
        let acts = c.on_report(t(820.0), &window(820.0, 620.0, vec![]));
        assert!(acts
            .iter()
            .any(|a| matches!(a, ClientAction::Uplink(UplinkKind::CheckRequest { .. }))));
        // The verdict never arrives: fall back to fetching fresh data.
        let acts = c.on_report(t(840.0), &window(840.0, 640.0, vec![]));
        assert!(
            acts.iter().any(|a| matches!(
                a,
                ClientAction::Uplink(UplinkKind::QueryRequest { item }) if *item == ItemId(3)
            )),
            "fallback fetch: {acts:?}"
        );
        assert_eq!(c.counters().retries_sent, 1);
        let acts = c.on_data(t(845.0), ItemId(3), t(841.0));
        assert!(matches!(&acts[0], ClientAction::QueryDone(_)));
    }
}
