//! LRU cache with per-entry validity state.

use mobicache_model::ItemId;
use mobicache_sim::SimTime;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Validity of a cached entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntryState {
    /// Known valid as of the entry's `validated_at`.
    Valid,
    /// Unknown validity after a long disconnection; must not answer
    /// queries until salvaged by a covering report.
    Limbo,
}

/// One cached item.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CacheEntry {
    /// Timestamp of the last server update this copy reflects (the "data
    /// version"). Used by timestamp-carrying reports to decide staleness.
    pub version: SimTime,
    /// Last time a report (or fetch) vouched for this entry.
    pub validated_at: SimTime,
    /// Validity state.
    pub state: EntryState,
}

/// Sentinel slot index for list ends.
const NIL: u32 = u32::MAX;

/// One resident entry plus its intrusive recency links (slab indices).
struct Slot {
    item: ItemId,
    entry: CacheEntry,
    /// Towards the MRU end (`NIL` at the head).
    prev: u32,
    /// Towards the LRU end (`NIL` at the tail).
    next: u32,
}

/// Deterministic multiply-mix hasher for the compact item table. Item ids
/// are dense small integers, so one multiply-xor round spreads them fine;
/// a fixed hasher also keeps the table's behaviour identical run to run.
#[derive(Default)]
pub struct IdHasher(u64);

impl Hasher for IdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        let mut z = self.0 ^ v;
        z = z.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = z ^ (z >> 29);
    }
}

type IdBuildHasher = BuildHasherDefault<IdHasher>;

/// A fixed-capacity LRU cache of data items.
///
/// Entries live in a dense slab (`Vec<Slot>`, never longer than the
/// capacity) threaded by an intrusive doubly-linked recency list, with a
/// compact item table mapping ids to slab positions. Touch, insert,
/// evict and invalidate are all `O(1)` with zero allocation after the
/// first fill — the per-report client pass iterates the slab directly.
///
/// ```
/// use mobicache_cache::LruCache;
/// use mobicache_model::ItemId;
/// use mobicache_sim::SimTime;
///
/// let t = SimTime::from_secs;
/// let mut cache = LruCache::new(2);
/// cache.insert(ItemId(1), t(5.0), t(10.0));
/// cache.insert(ItemId(2), t(6.0), t(11.0));
/// cache.get_valid(ItemId(1));                 // touch 1; 2 is now LRU
/// cache.insert(ItemId(3), t(7.0), t(12.0));   // evicts 2
/// assert!(cache.peek(ItemId(2)).is_none());
/// // After a long disconnection the whole cache goes limbo and stops
/// // answering queries until a covering report salvages it.
/// cache.mark_all_limbo();
/// assert!(cache.get_valid(ItemId(1)).is_none());
/// cache.salvage_limbo(t(20.0), |_| true);
/// assert!(cache.get_valid(ItemId(1)).is_some());
/// ```
pub struct LruCache {
    capacity: usize,
    slots: Vec<Slot>,
    /// Compact item table: id → slab position.
    index: HashMap<ItemId, u32, IdBuildHasher>,
    /// Most recently used slot (`NIL` when empty).
    head: u32,
    /// Least recently used slot (`NIL` when empty).
    tail: u32,
    /// Membership bitmap: bit `item.0` is set iff the item is resident
    /// (any state). Grown lazily to the highest word ever touched, so a
    /// cold cache costs nothing; invalidation plans AND this against a
    /// report's stale bitmap word-wise instead of walking the slab.
    member: Vec<u64>,
    evictions: u64,
}

impl LruCache {
    /// A cache holding at most `capacity` items.
    ///
    /// Allocation is lazy: a fresh cache owns no slab and no table until
    /// the first insert, so a million-client population of mostly-cold
    /// caches costs a few machine words each, not `capacity` slots each.
    /// The eviction gate compares against `len()`, never the allocated
    /// capacity, so laziness is invisible to behaviour.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be at least 1");
        LruCache {
            capacity,
            slots: Vec::new(),
            index: HashMap::with_hasher(IdBuildHasher::default()),
            head: NIL,
            tail: NIL,
            member: Vec::new(),
            evictions: 0,
        }
    }

    /// Sets `item`'s membership bit, growing the bitmap to reach it.
    #[inline]
    fn member_set(&mut self, item: ItemId) {
        let w = item.0 as usize / 64;
        if w >= self.member.len() {
            self.member.resize(w + 1, 0);
        }
        self.member[w] |= 1u64 << (item.0 % 64);
    }

    /// Clears `item`'s membership bit (always within the grown range).
    #[inline]
    fn member_clear(&mut self, item: ItemId) {
        self.member[item.0 as usize / 64] &= !(1u64 << (item.0 % 64));
    }

    /// The membership bitmap words (bit `i` = `ItemId(i)` resident). May
    /// be shorter than `db_size.div_ceil(64)` — absent words mean no
    /// residents in that id range.
    pub fn member_words(&self) -> &[u64] {
        &self.member
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries (valid + limbo).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of entries evicted so far by capacity pressure.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Detaches slot `i` from the recency list (the slot stays in the
    /// slab).
    #[inline]
    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let s = &self.slots[i as usize];
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Links slot `i` at the MRU end.
    #[inline]
    fn push_front(&mut self, i: u32) {
        let old_head = self.head;
        {
            let s = &mut self.slots[i as usize];
            s.prev = NIL;
            s.next = old_head;
        }
        if old_head != NIL {
            self.slots[old_head as usize].prev = i;
        } else {
            self.tail = i;
        }
        self.head = i;
    }

    /// Moves slot `i` to the MRU end — the O(1) touch.
    #[inline]
    fn touch(&mut self, i: u32) {
        if self.head == i {
            return;
        }
        self.unlink(i);
        self.push_front(i);
    }

    /// Removes slot `i` entirely: unlink, drop from the item table, and
    /// keep the slab dense by swapping the last slot into the hole (its
    /// links and table entry are rewired).
    fn remove_slot(&mut self, i: u32) {
        self.unlink(i);
        let gone = self.slots[i as usize].item;
        self.member_clear(gone);
        self.index.remove(&gone);
        let last = (self.slots.len() - 1) as u32;
        self.slots.swap_remove(i as usize);
        if i != last {
            let (item, prev, next) = {
                let s = &self.slots[i as usize];
                (s.item, s.prev, s.next)
            };
            *self.index.get_mut(&item).expect("moved slot indexed") = i;
            if prev != NIL {
                self.slots[prev as usize].next = i;
            } else {
                self.head = i;
            }
            if next != NIL {
                self.slots[next as usize].prev = i;
            } else {
                self.tail = i;
            }
        }
    }

    /// Looks up a **valid** entry, refreshing its recency. Limbo entries
    /// and absent items both return `None` (a limbo hit is
    /// indistinguishable from a miss to the query path — the copy must
    /// not be used).
    pub fn get_valid(&mut self, item: ItemId) -> Option<CacheEntry> {
        let i = *self.index.get(&item)?;
        let entry = self.slots[i as usize].entry;
        if entry.state != EntryState::Valid {
            return None;
        }
        self.touch(i);
        Some(entry)
    }

    /// Peeks at an entry (any state) without touching recency.
    pub fn peek(&self, item: ItemId) -> Option<&CacheEntry> {
        let i = *self.index.get(&item)?;
        Some(&self.slots[i as usize].entry)
    }

    /// Inserts (or replaces) an item just fetched from the server,
    /// evicting the least recently used entry if the cache is full.
    /// The new entry is `Valid` with the given version.
    pub fn insert(&mut self, item: ItemId, version: SimTime, now: SimTime) {
        let entry = CacheEntry {
            version,
            validated_at: now,
            state: EntryState::Valid,
        };
        if let Some(&i) = self.index.get(&item) {
            self.slots[i as usize].entry = entry;
            self.touch(i);
            return;
        }
        if self.slots.len() == self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "cache full but list empty");
            self.remove_slot(victim);
            self.evictions += 1;
        }
        let i = self.slots.len() as u32;
        self.slots.push(Slot {
            item,
            entry,
            prev: NIL,
            next: NIL,
        });
        self.push_front(i);
        self.index.insert(item, i);
        self.member_set(item);
    }

    /// Drops a single entry (invalidation). Returns `true` if it was
    /// present.
    pub fn invalidate(&mut self, item: ItemId) -> bool {
        match self.index.get(&item) {
            Some(&i) => {
                self.remove_slot(i);
                true
            }
            None => false,
        }
    }

    /// Drops every listed entry; returns how many were present.
    pub fn invalidate_many<I>(&mut self, items: I) -> usize
    where
        I: IntoIterator<Item = ItemId>,
    {
        items.into_iter().filter(|&i| self.invalidate(i)).count()
    }

    /// Drops the entire cache (the `TS` no-checking path after a long
    /// disconnection).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.index.clear();
        self.head = NIL;
        self.tail = NIL;
        self.member.fill(0);
    }

    /// Marks every entry limbo (validity unknown after reconnection).
    pub fn mark_all_limbo(&mut self) {
        for slot in &mut self.slots {
            slot.entry.state = EntryState::Limbo;
        }
    }

    /// Revalidates every remaining entry as of `now` (after the stale
    /// ones were dropped by a covering report) — the `tc_j ← T_i` step of
    /// the Figure-1 client algorithm. Limbo entries become valid again.
    pub fn revalidate_all(&mut self, now: SimTime) {
        for slot in &mut self.slots {
            slot.entry.state = EntryState::Valid;
            slot.entry.validated_at = now;
        }
    }

    /// Salvages limbo entries given a validity verdict per item: entries
    /// for which `is_valid` returns `false` are dropped, the rest become
    /// valid as of `now`. Valid entries are untouched. Allocation-free:
    /// a single forward walk over the slab (removals swap the unvisited
    /// last slot into the hole). Returns `(salvaged, dropped)` counts.
    pub fn salvage_limbo<F>(&mut self, now: SimTime, mut is_valid: F) -> (usize, usize)
    where
        F: FnMut(ItemId) -> bool,
    {
        let mut salvaged = 0;
        let mut dropped = 0;
        let mut i = 0;
        while i < self.slots.len() {
            let slot = &mut self.slots[i];
            if slot.entry.state != EntryState::Limbo {
                i += 1;
                continue;
            }
            if is_valid(slot.item) {
                slot.entry.state = EntryState::Valid;
                slot.entry.validated_at = now;
                salvaged += 1;
                i += 1;
            } else {
                self.remove_slot(i as u32);
                dropped += 1;
                // The swapped-in slot (if any) is unvisited; stay at `i`.
            }
        }
        (salvaged, dropped)
    }

    /// Salvages (or drops) a **single** limbo entry given its validity
    /// verdict — the lazy-checking path, where only the queried items are
    /// verified. Valid entries and absent items are untouched. Returns
    /// `true` if the entry was limbo and got processed.
    pub fn salvage_item(&mut self, item: ItemId, valid: bool, now: SimTime) -> bool {
        let Some(&i) = self.index.get(&item) else {
            return false;
        };
        let entry = &mut self.slots[i as usize].entry;
        if entry.state != EntryState::Limbo {
            return false;
        }
        if valid {
            entry.state = EntryState::Valid;
            entry.validated_at = now;
        } else {
            self.remove_slot(i);
        }
        true
    }

    /// Drops every limbo entry (the adaptive give-up path), returning how
    /// many went. Allocation-free slab walk.
    pub fn drop_limbo(&mut self) -> usize {
        let mut dropped = 0;
        let mut i = 0;
        while i < self.slots.len() {
            if self.slots[i].entry.state == EntryState::Limbo {
                self.remove_slot(i as u32);
                dropped += 1;
            } else {
                i += 1;
            }
        }
        dropped
    }

    /// All entries as `(item, version)` pairs, without allocating — the
    /// view the pure report algorithms consume. Iterates in slab order
    /// (an implementation detail; callers must not rely on it).
    pub fn items_iter(&self) -> impl Iterator<Item = (ItemId, SimTime)> + '_ {
        self.slots.iter().map(|s| (s.item, s.entry.version))
    }

    /// All entries with their full state, without allocating (the
    /// consistency oracle's view).
    pub fn entries_iter(&self) -> impl Iterator<Item = (ItemId, &CacheEntry)> + '_ {
        self.slots.iter().map(|s| (s.item, &s.entry))
    }
    /// Items currently in limbo, without allocating.
    pub fn limbo_iter(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.slots
            .iter()
            .filter(|s| s.entry.state == EntryState::Limbo)
            .map(|s| s.item)
    }

    /// `true` when any entry is in limbo.
    pub fn has_limbo(&self) -> bool {
        self.slots
            .iter()
            .any(|s| s.entry.state == EntryState::Limbo)
    }

    /// Internal-consistency check used by tests and debug assertions.
    ///
    /// # Panics
    /// Panics if the slab, the item table and the recency list disagree.
    pub fn check_invariants(&self) {
        assert!(self.slots.len() <= self.capacity, "over capacity");
        assert_eq!(self.slots.len(), self.index.len(), "index out of sync");
        for (&item, &i) in &self.index {
            assert_eq!(
                self.slots[i as usize].item, item,
                "table points {item:?} at a slot holding another item"
            );
        }
        // Walk the recency list head→tail: every slot exactly once, with
        // mutually consistent links.
        let mut seen = 0usize;
        let mut prev = NIL;
        let mut cur = self.head;
        while cur != NIL {
            let s = &self.slots[cur as usize];
            assert_eq!(s.prev, prev, "broken back-link at slot {cur}");
            assert!(seen <= self.slots.len(), "recency list cycles");
            prev = cur;
            cur = s.next;
            seen += 1;
        }
        assert_eq!(prev, self.tail, "tail out of sync");
        assert_eq!(seen, self.slots.len(), "recency list misses slots");
        // Membership bitmap ≡ slab: every resident item's bit is set, and
        // the total popcount matches, so no stray bits survive removals.
        for slot in &self.slots {
            let (w, b) = (slot.item.0 as usize / 64, slot.item.0 % 64);
            assert!(
                self.member.get(w).is_some_and(|word| word & (1 << b) != 0),
                "membership bit missing for {:?}",
                slot.item
            );
        }
        let pop: u32 = self.member.iter().map(|w| w.count_ones()).sum();
        assert_eq!(pop as usize, self.slots.len(), "stray membership bits");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut c = LruCache::new(4);
        c.insert(ItemId(1), t(5.0), t(10.0));
        let e = c.get_valid(ItemId(1)).expect("present");
        assert_eq!(e.version, t(5.0));
        assert_eq!(e.validated_at, t(10.0));
        assert_eq!(e.state, EntryState::Valid);
        assert!(c.get_valid(ItemId(2)).is_none());
        c.check_invariants();
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(3);
        c.insert(ItemId(1), t(1.0), t(1.0));
        c.insert(ItemId(2), t(1.0), t(2.0));
        c.insert(ItemId(3), t(1.0), t(3.0));
        // Touch 1 so 2 becomes the LRU victim.
        c.get_valid(ItemId(1));
        c.insert(ItemId(4), t(1.0), t(4.0));
        assert!(c.peek(ItemId(2)).is_none(), "LRU entry evicted");
        assert!(c.peek(ItemId(1)).is_some());
        assert_eq!(c.len(), 3);
        assert_eq!(c.evictions(), 1);
        c.check_invariants();
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut c = LruCache::new(2);
        c.insert(ItemId(1), t(1.0), t(1.0));
        c.insert(ItemId(1), t(9.0), t(9.0));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get_valid(ItemId(1)).unwrap().version, t(9.0));
        assert_eq!(c.evictions(), 0);
        c.check_invariants();
    }

    #[test]
    fn reinsert_refreshes_recency() {
        let mut c = LruCache::new(2);
        c.insert(ItemId(1), t(1.0), t(1.0));
        c.insert(ItemId(2), t(1.0), t(2.0));
        // Re-inserting 1 makes 2 the LRU victim.
        c.insert(ItemId(1), t(3.0), t(3.0));
        c.insert(ItemId(3), t(4.0), t(4.0));
        assert!(c.peek(ItemId(2)).is_none(), "LRU entry evicted");
        assert!(c.peek(ItemId(1)).is_some());
        c.check_invariants();
    }

    #[test]
    fn limbo_entries_do_not_answer_queries() {
        let mut c = LruCache::new(2);
        c.insert(ItemId(1), t(1.0), t(1.0));
        c.mark_all_limbo();
        assert!(c.get_valid(ItemId(1)).is_none());
        assert!(c.has_limbo());
        assert_eq!(c.limbo_iter().collect::<Vec<_>>(), vec![ItemId(1)]);
        assert_eq!(c.len(), 1, "limbo keeps its slot");
    }

    #[test]
    fn salvage_keeps_valid_and_drops_invalid() {
        let mut c = LruCache::new(4);
        c.insert(ItemId(1), t(1.0), t(1.0));
        c.insert(ItemId(2), t(1.0), t(1.0));
        c.insert(ItemId(3), t(1.0), t(1.0));
        c.mark_all_limbo();
        let (salvaged, dropped) = c.salvage_limbo(t(50.0), |i| i != ItemId(2));
        assert_eq!((salvaged, dropped), (2, 1));
        assert!(c.get_valid(ItemId(1)).is_some());
        assert!(c.peek(ItemId(2)).is_none());
        assert_eq!(c.get_valid(ItemId(3)).unwrap().validated_at, t(50.0));
        assert!(!c.has_limbo());
        c.check_invariants();
    }

    #[test]
    fn salvage_does_not_touch_valid_entries() {
        let mut c = LruCache::new(4);
        c.insert(ItemId(1), t(1.0), t(1.0));
        let (salvaged, dropped) = c.salvage_limbo(t(50.0), |_| false);
        assert_eq!((salvaged, dropped), (0, 0));
        assert_eq!(c.get_valid(ItemId(1)).unwrap().validated_at, t(1.0));
    }

    #[test]
    fn revalidate_all_restores_limbo() {
        let mut c = LruCache::new(2);
        c.insert(ItemId(1), t(1.0), t(1.0));
        c.mark_all_limbo();
        c.revalidate_all(t(20.0));
        let e = c.get_valid(ItemId(1)).expect("valid again");
        assert_eq!(e.validated_at, t(20.0));
        assert_eq!(e.version, t(1.0), "version untouched");
    }

    #[test]
    fn invalidate_many_counts_hits() {
        let mut c = LruCache::new(4);
        c.insert(ItemId(1), t(1.0), t(1.0));
        c.insert(ItemId(2), t(1.0), t(1.0));
        let n = c.invalidate_many(vec![ItemId(1), ItemId(7)]);
        assert_eq!(n, 1);
        assert_eq!(c.len(), 1);
        c.check_invariants();
    }

    #[test]
    fn drop_limbo_removes_exactly_the_limbo_entries() {
        let mut c = LruCache::new(4);
        c.insert(ItemId(1), t(1.0), t(1.0));
        c.insert(ItemId(2), t(1.0), t(1.0));
        c.mark_all_limbo();
        c.insert(ItemId(3), t(2.0), t(2.0)); // fresh, valid
        assert_eq!(c.drop_limbo(), 2);
        assert_eq!(c.len(), 1);
        assert!(c.peek(ItemId(3)).is_some());
        assert!(!c.has_limbo());
        c.check_invariants();
    }

    #[test]
    fn clear_empties_everything() {
        let mut c = LruCache::new(4);
        c.insert(ItemId(1), t(1.0), t(1.0));
        c.insert(ItemId(2), t(1.0), t(1.0));
        c.clear();
        assert!(c.is_empty());
        c.check_invariants();
    }

    #[test]
    fn limbo_entry_replaced_by_fresh_fetch() {
        let mut c = LruCache::new(2);
        c.insert(ItemId(1), t(1.0), t(1.0));
        c.mark_all_limbo();
        c.insert(ItemId(1), t(30.0), t(30.0));
        let e = c.get_valid(ItemId(1)).expect("fresh copy valid");
        assert_eq!(e.version, t(30.0));
    }

    #[test]
    fn eviction_order_survives_interior_removals() {
        // Exercise the swap_remove rewiring: delete from the middle, then
        // check the LRU victim order is still oldest-first.
        let mut c = LruCache::new(4);
        for i in 1..=4 {
            c.insert(ItemId(i), t(f64::from(i)), t(f64::from(i)));
        }
        c.invalidate(ItemId(2)); // interior removal swaps slot 3 into 1
        c.check_invariants();
        c.get_valid(ItemId(1)); // 1 touched; LRU order now 3, 4, 1
        c.insert(ItemId(5), t(9.0), t(9.0));
        c.insert(ItemId(6), t(9.5), t(9.5)); // evicts 3
        assert!(c.peek(ItemId(3)).is_none(), "oldest untouched entry went");
        assert!(c.peek(ItemId(4)).is_some());
        assert!(c.peek(ItemId(1)).is_some());
        assert_eq!(c.evictions(), 1);
        c.check_invariants();
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_rejected() {
        LruCache::new(0);
    }
}
