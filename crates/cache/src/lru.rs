//! LRU cache with per-entry validity state.

use mobicache_model::ItemId;
use mobicache_sim::SimTime;
use std::collections::{BTreeMap, HashMap};

/// Validity of a cached entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntryState {
    /// Known valid as of the entry's `validated_at`.
    Valid,
    /// Unknown validity after a long disconnection; must not answer
    /// queries until salvaged by a covering report.
    Limbo,
}

/// One cached item.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CacheEntry {
    /// Timestamp of the last server update this copy reflects (the "data
    /// version"). Used by timestamp-carrying reports to decide staleness.
    pub version: SimTime,
    /// Last time a report (or fetch) vouched for this entry.
    pub validated_at: SimTime,
    /// Validity state.
    pub state: EntryState,
}

struct Slot {
    entry: CacheEntry,
    seq: u64,
}

/// A fixed-capacity LRU cache of data items.
///
/// Recency order is maintained with a sequence counter plus an ordered
/// index (`O(log n)` per touch), which is plenty for caches of a few
/// thousand entries and keeps the implementation obviously correct.
///
/// ```
/// use mobicache_cache::LruCache;
/// use mobicache_model::ItemId;
/// use mobicache_sim::SimTime;
///
/// let t = SimTime::from_secs;
/// let mut cache = LruCache::new(2);
/// cache.insert(ItemId(1), t(5.0), t(10.0));
/// cache.insert(ItemId(2), t(6.0), t(11.0));
/// cache.get_valid(ItemId(1));                 // touch 1; 2 is now LRU
/// cache.insert(ItemId(3), t(7.0), t(12.0));   // evicts 2
/// assert!(cache.peek(ItemId(2)).is_none());
/// // After a long disconnection the whole cache goes limbo and stops
/// // answering queries until a covering report salvages it.
/// cache.mark_all_limbo();
/// assert!(cache.get_valid(ItemId(1)).is_none());
/// cache.salvage_limbo(t(20.0), |_| true);
/// assert!(cache.get_valid(ItemId(1)).is_some());
/// ```
pub struct LruCache {
    capacity: usize,
    map: HashMap<ItemId, Slot>,
    order: BTreeMap<u64, ItemId>,
    next_seq: u64,
    evictions: u64,
}

impl LruCache {
    /// A cache holding at most `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be at least 1");
        LruCache {
            capacity,
            map: HashMap::with_capacity(capacity),
            order: BTreeMap::new(),
            next_seq: 0,
            evictions: 0,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries (valid + limbo).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of entries evicted so far by capacity pressure.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn touch(&mut self, item: ItemId) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(slot) = self.map.get_mut(&item) {
            self.order.remove(&slot.seq);
            slot.seq = seq;
            self.order.insert(seq, item);
        }
    }

    /// Looks up a **valid** entry, refreshing its recency. Limbo entries
    /// and absent items both return `None` (a limbo hit is
    /// indistinguishable from a miss to the query path — the copy must
    /// not be used).
    pub fn get_valid(&mut self, item: ItemId) -> Option<CacheEntry> {
        match self.map.get(&item) {
            Some(slot) if slot.entry.state == EntryState::Valid => {
                let entry = slot.entry;
                self.touch(item);
                Some(entry)
            }
            _ => None,
        }
    }

    /// Peeks at an entry (any state) without touching recency.
    pub fn peek(&self, item: ItemId) -> Option<&CacheEntry> {
        self.map.get(&item).map(|s| &s.entry)
    }

    /// Inserts (or replaces) an item just fetched from the server,
    /// evicting the least recently used entry if the cache is full.
    /// The new entry is `Valid` with the given version.
    pub fn insert(&mut self, item: ItemId, version: SimTime, now: SimTime) {
        if !self.map.contains_key(&item) && self.map.len() == self.capacity {
            // Evict the least recently used entry.
            let (&oldest_seq, &victim) = self
                .order
                .iter()
                .next()
                .expect("cache full but order empty");
            self.order.remove(&oldest_seq);
            self.map.remove(&victim);
            self.evictions += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(old) = self.map.insert(
            item,
            Slot {
                entry: CacheEntry {
                    version,
                    validated_at: now,
                    state: EntryState::Valid,
                },
                seq,
            },
        ) {
            self.order.remove(&old.seq);
        }
        self.order.insert(seq, item);
    }

    /// Drops a single entry (invalidation). Returns `true` if it was
    /// present.
    pub fn invalidate(&mut self, item: ItemId) -> bool {
        match self.map.remove(&item) {
            Some(slot) => {
                self.order.remove(&slot.seq);
                true
            }
            None => false,
        }
    }

    /// Drops every listed entry; returns how many were present.
    pub fn invalidate_many<I>(&mut self, items: I) -> usize
    where
        I: IntoIterator<Item = ItemId>,
    {
        items.into_iter().filter(|&i| self.invalidate(i)).count()
    }

    /// Drops the entire cache (the `TS` no-checking path after a long
    /// disconnection).
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }

    /// Marks every entry limbo (validity unknown after reconnection).
    pub fn mark_all_limbo(&mut self) {
        for slot in self.map.values_mut() {
            slot.entry.state = EntryState::Limbo;
        }
    }

    /// Revalidates every remaining entry as of `now` (after the stale
    /// ones were dropped by a covering report) — the `tc_j ← T_i` step of
    /// the Figure-1 client algorithm. Limbo entries become valid again.
    pub fn revalidate_all(&mut self, now: SimTime) {
        for slot in self.map.values_mut() {
            slot.entry.state = EntryState::Valid;
            slot.entry.validated_at = now;
        }
    }

    /// Salvages limbo entries given a validity verdict per item: entries
    /// for which `is_valid` returns `false` are dropped, the rest become
    /// valid as of `now`. Valid entries are untouched. Returns
    /// `(salvaged, dropped)` counts.
    pub fn salvage_limbo<F>(&mut self, now: SimTime, mut is_valid: F) -> (usize, usize)
    where
        F: FnMut(ItemId) -> bool,
    {
        let limbo: Vec<ItemId> = self
            .map
            .iter()
            .filter(|(_, s)| s.entry.state == EntryState::Limbo)
            .map(|(&i, _)| i)
            .collect();
        let mut salvaged = 0;
        let mut dropped = 0;
        for item in limbo {
            if is_valid(item) {
                let slot = self.map.get_mut(&item).expect("just listed");
                slot.entry.state = EntryState::Valid;
                slot.entry.validated_at = now;
                salvaged += 1;
            } else {
                self.invalidate(item);
                dropped += 1;
            }
        }
        (salvaged, dropped)
    }

    /// Salvages (or drops) a **single** limbo entry given its validity
    /// verdict — the lazy-checking path, where only the queried items are
    /// verified. Valid entries and absent items are untouched. Returns
    /// `true` if the entry was limbo and got processed.
    pub fn salvage_item(&mut self, item: ItemId, valid: bool, now: SimTime) -> bool {
        match self.map.get_mut(&item) {
            Some(slot) if slot.entry.state == EntryState::Limbo => {
                if valid {
                    slot.entry.state = EntryState::Valid;
                    slot.entry.validated_at = now;
                } else {
                    self.invalidate(item);
                }
                true
            }
            _ => false,
        }
    }

    /// All entries as `(item, version)` pairs — the view the pure report
    /// algorithms consume.
    pub fn items(&self) -> Vec<(ItemId, SimTime)> {
        self.items_iter().collect()
    }

    /// Borrowing form of [`LruCache::items`]: the same `(item, version)`
    /// view without allocating. The per-report client hot path iterates
    /// this directly against a shared report index.
    pub fn items_iter(&self) -> impl Iterator<Item = (ItemId, SimTime)> + '_ {
        self.map.iter().map(|(&i, s)| (i, s.entry.version))
    }

    /// Items currently in limbo.
    pub fn limbo_items(&self) -> Vec<ItemId> {
        self.map
            .iter()
            .filter(|(_, s)| s.entry.state == EntryState::Limbo)
            .map(|(&i, _)| i)
            .collect()
    }

    /// `true` when any entry is in limbo.
    pub fn has_limbo(&self) -> bool {
        self.map
            .values()
            .any(|s| s.entry.state == EntryState::Limbo)
    }

    /// Internal-consistency check used by tests and debug assertions.
    pub fn check_invariants(&self) {
        assert!(self.map.len() <= self.capacity, "over capacity");
        assert_eq!(self.map.len(), self.order.len(), "index out of sync");
        for (&seq, item) in &self.order {
            let slot = self.map.get(item).expect("order references missing item");
            assert_eq!(slot.seq, seq, "stale sequence for {item:?}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut c = LruCache::new(4);
        c.insert(ItemId(1), t(5.0), t(10.0));
        let e = c.get_valid(ItemId(1)).expect("present");
        assert_eq!(e.version, t(5.0));
        assert_eq!(e.validated_at, t(10.0));
        assert_eq!(e.state, EntryState::Valid);
        assert!(c.get_valid(ItemId(2)).is_none());
        c.check_invariants();
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(3);
        c.insert(ItemId(1), t(1.0), t(1.0));
        c.insert(ItemId(2), t(1.0), t(2.0));
        c.insert(ItemId(3), t(1.0), t(3.0));
        // Touch 1 so 2 becomes the LRU victim.
        c.get_valid(ItemId(1));
        c.insert(ItemId(4), t(1.0), t(4.0));
        assert!(c.peek(ItemId(2)).is_none(), "LRU entry evicted");
        assert!(c.peek(ItemId(1)).is_some());
        assert_eq!(c.len(), 3);
        assert_eq!(c.evictions(), 1);
        c.check_invariants();
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut c = LruCache::new(2);
        c.insert(ItemId(1), t(1.0), t(1.0));
        c.insert(ItemId(1), t(9.0), t(9.0));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get_valid(ItemId(1)).unwrap().version, t(9.0));
        assert_eq!(c.evictions(), 0);
        c.check_invariants();
    }

    #[test]
    fn limbo_entries_do_not_answer_queries() {
        let mut c = LruCache::new(2);
        c.insert(ItemId(1), t(1.0), t(1.0));
        c.mark_all_limbo();
        assert!(c.get_valid(ItemId(1)).is_none());
        assert!(c.has_limbo());
        assert_eq!(c.limbo_items(), vec![ItemId(1)]);
        assert_eq!(c.len(), 1, "limbo keeps its slot");
    }

    #[test]
    fn salvage_keeps_valid_and_drops_invalid() {
        let mut c = LruCache::new(4);
        c.insert(ItemId(1), t(1.0), t(1.0));
        c.insert(ItemId(2), t(1.0), t(1.0));
        c.insert(ItemId(3), t(1.0), t(1.0));
        c.mark_all_limbo();
        let (salvaged, dropped) = c.salvage_limbo(t(50.0), |i| i != ItemId(2));
        assert_eq!((salvaged, dropped), (2, 1));
        assert!(c.get_valid(ItemId(1)).is_some());
        assert!(c.peek(ItemId(2)).is_none());
        assert_eq!(c.get_valid(ItemId(3)).unwrap().validated_at, t(50.0));
        assert!(!c.has_limbo());
        c.check_invariants();
    }

    #[test]
    fn salvage_does_not_touch_valid_entries() {
        let mut c = LruCache::new(4);
        c.insert(ItemId(1), t(1.0), t(1.0));
        let (salvaged, dropped) = c.salvage_limbo(t(50.0), |_| false);
        assert_eq!((salvaged, dropped), (0, 0));
        assert_eq!(c.get_valid(ItemId(1)).unwrap().validated_at, t(1.0));
    }

    #[test]
    fn revalidate_all_restores_limbo() {
        let mut c = LruCache::new(2);
        c.insert(ItemId(1), t(1.0), t(1.0));
        c.mark_all_limbo();
        c.revalidate_all(t(20.0));
        let e = c.get_valid(ItemId(1)).expect("valid again");
        assert_eq!(e.validated_at, t(20.0));
        assert_eq!(e.version, t(1.0), "version untouched");
    }

    #[test]
    fn invalidate_many_counts_hits() {
        let mut c = LruCache::new(4);
        c.insert(ItemId(1), t(1.0), t(1.0));
        c.insert(ItemId(2), t(1.0), t(1.0));
        let n = c.invalidate_many(vec![ItemId(1), ItemId(7)]);
        assert_eq!(n, 1);
        assert_eq!(c.len(), 1);
        c.check_invariants();
    }

    #[test]
    fn clear_empties_everything() {
        let mut c = LruCache::new(4);
        c.insert(ItemId(1), t(1.0), t(1.0));
        c.insert(ItemId(2), t(1.0), t(1.0));
        c.clear();
        assert!(c.is_empty());
        c.check_invariants();
    }

    #[test]
    fn limbo_entry_replaced_by_fresh_fetch() {
        let mut c = LruCache::new(2);
        c.insert(ItemId(1), t(1.0), t(1.0));
        c.mark_all_limbo();
        c.insert(ItemId(1), t(30.0), t(30.0));
        let e = c.get_valid(ItemId(1)).expect("fresh copy valid");
        assert_eq!(e.version, t(30.0));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_rejected() {
        LruCache::new(0);
    }
}
