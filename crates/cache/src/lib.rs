//! # mobicache-cache — the client buffer pool
//!
//! §4 of the paper: *"The size of the client buffer pools is specified as
//! a percentage of the database size. Cached data items are managed using
//! an LRU replacement policy."*
//!
//! Beyond plain LRU, mobile invalidation needs a **validity state** per
//! entry: after a disconnection longer than the report coverage, the cache
//! contents are neither known-valid nor known-stale — they are in *limbo*
//! until a covering report (bit-sequences, enlarged window, or a validity
//! report) arrives to salvage them, or the scheme gives up and drops them.
//! Limbo entries must never answer queries, but they keep their slot (and
//! their LRU position) because salvaging them is the entire point of the
//! paper's adaptive schemes.

mod lru;

pub use lru::{CacheEntry, EntryState, LruCache};
