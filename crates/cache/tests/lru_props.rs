//! Property tests: the LRU cache against two reference models — a
//! trivially-correct Vec ordered by recency, and a faithful
//! reimplementation of the pre-slab `HashMap` + `BTreeMap`
//! implementation (the design the dense-slab rewrite replaced), which
//! additionally pins down the eviction counter and the wider API
//! surface (`salvage_item`, `drop_limbo`, `invalidate_many`).

use mobicache_cache::{EntryState, LruCache};
use mobicache_model::ItemId;
use mobicache_sim::SimTime;
use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap};

#[derive(Debug, Clone)]
enum Op {
    Insert(u32),
    Get(u32),
    Invalidate(u32),
    MarkAllLimbo,
    RevalidateAll,
    SalvageEven,
    Clear,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u32..32).prop_map(Op::Insert),
        4 => (0u32..32).prop_map(Op::Get),
        1 => (0u32..32).prop_map(Op::Invalidate),
        1 => Just(Op::MarkAllLimbo),
        1 => Just(Op::RevalidateAll),
        1 => Just(Op::SalvageEven),
        1 => Just(Op::Clear),
    ]
}

/// Reference model: most-recently-used last.
#[derive(Default)]
struct Model {
    entries: Vec<(u32, EntryState)>,
    capacity: usize,
}

impl Model {
    fn touch(&mut self, id: u32) {
        if let Some(pos) = self.entries.iter().position(|&(i, _)| i == id) {
            let e = self.entries.remove(pos);
            self.entries.push(e);
        }
    }

    fn apply(&mut self, op: &Op) {
        match *op {
            Op::Insert(id) => {
                if let Some(pos) = self.entries.iter().position(|&(i, _)| i == id) {
                    self.entries.remove(pos);
                } else if self.entries.len() == self.capacity {
                    self.entries.remove(0);
                }
                self.entries.push((id, EntryState::Valid));
            }
            Op::Get(id) => {
                let valid = self
                    .entries
                    .iter()
                    .any(|&(i, s)| i == id && s == EntryState::Valid);
                if valid {
                    self.touch(id);
                }
            }
            Op::Invalidate(id) => self.entries.retain(|&(i, _)| i != id),
            Op::MarkAllLimbo => {
                for e in &mut self.entries {
                    e.1 = EntryState::Limbo;
                }
            }
            Op::RevalidateAll => {
                for e in &mut self.entries {
                    e.1 = EntryState::Valid;
                }
            }
            Op::SalvageEven => {
                self.entries
                    .retain(|&(i, s)| s == EntryState::Valid || i % 2 == 0);
                for e in &mut self.entries {
                    e.1 = EntryState::Valid;
                }
            }
            Op::Clear => self.entries.clear(),
        }
    }
}

/// The previous `LruCache` design, reimplemented as a reference model:
/// entries in a `HashMap<ItemId, (state, seq)>`, recency tracked by a
/// `BTreeMap<seq, ItemId>` keyed by a monotonically increasing sequence
/// number (smallest = least recently used). Every observable behaviour
/// of the slab — membership, states, get results, return values, and
/// the eviction counter — must match this model exactly.
struct MapLru {
    capacity: usize,
    map: HashMap<ItemId, (EntryState, u64)>,
    recency: BTreeMap<u64, ItemId>,
    next_seq: u64,
    evictions: u64,
}

impl MapLru {
    fn new(capacity: usize) -> Self {
        MapLru {
            capacity,
            map: HashMap::new(),
            recency: BTreeMap::new(),
            next_seq: 0,
            evictions: 0,
        }
    }

    fn touch(&mut self, item: ItemId) {
        if let Some((_, seq)) = self.map.get_mut(&item) {
            self.recency.remove(seq);
            *seq = self.next_seq;
            self.next_seq += 1;
            self.recency.insert(*seq, item);
        }
    }

    fn insert(&mut self, item: ItemId) {
        if let Some((state, _)) = self.map.get_mut(&item) {
            *state = EntryState::Valid;
            self.touch(item);
            return;
        }
        if self.map.len() == self.capacity {
            let (&seq, &victim) = self.recency.iter().next().expect("full but untracked");
            self.recency.remove(&seq);
            self.map.remove(&victim);
            self.evictions += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.map.insert(item, (EntryState::Valid, seq));
        self.recency.insert(seq, item);
    }

    fn get_valid(&mut self, item: ItemId) -> bool {
        match self.map.get(&item) {
            Some(&(EntryState::Valid, _)) => {
                self.touch(item);
                true
            }
            _ => false,
        }
    }

    fn invalidate(&mut self, item: ItemId) -> bool {
        match self.map.remove(&item) {
            Some((_, seq)) => {
                self.recency.remove(&seq);
                true
            }
            None => false,
        }
    }

    fn mark_all_limbo(&mut self) {
        for (state, _) in self.map.values_mut() {
            *state = EntryState::Limbo;
        }
    }

    fn revalidate_all(&mut self) {
        for (state, _) in self.map.values_mut() {
            *state = EntryState::Valid;
        }
    }

    fn salvage_limbo<F: FnMut(ItemId) -> bool>(&mut self, mut is_valid: F) -> (usize, usize) {
        let limbo: Vec<ItemId> = self
            .map
            .iter()
            .filter(|(_, &(s, _))| s == EntryState::Limbo)
            .map(|(&i, _)| i)
            .collect();
        let (mut salvaged, mut dropped) = (0, 0);
        for item in limbo {
            if is_valid(item) {
                self.map.get_mut(&item).expect("limbo entry").0 = EntryState::Valid;
                salvaged += 1;
            } else {
                self.invalidate(item);
                dropped += 1;
            }
        }
        (salvaged, dropped)
    }

    fn salvage_item(&mut self, item: ItemId, valid: bool) -> bool {
        match self.map.get_mut(&item) {
            Some((state, _)) if *state == EntryState::Limbo => {
                if valid {
                    *state = EntryState::Valid;
                } else {
                    self.invalidate(item);
                }
                true
            }
            _ => false,
        }
    }

    fn drop_limbo(&mut self) -> usize {
        let limbo: Vec<ItemId> = self
            .map
            .iter()
            .filter(|(_, &(s, _))| s == EntryState::Limbo)
            .map(|(&i, _)| i)
            .collect();
        for &item in &limbo {
            self.invalidate(item);
        }
        limbo.len()
    }

    fn clear(&mut self) {
        self.map.clear();
        self.recency.clear();
    }
}

/// Ops for the slab-vs-old-implementation test: the full public
/// mutation surface.
#[derive(Debug, Clone)]
enum SlabOp {
    Insert(u32),
    Get(u32),
    Invalidate(u32),
    InvalidateMany(Vec<u32>),
    MarkAllLimbo,
    RevalidateAll,
    SalvageOdd,
    SalvageItem(u32, bool),
    DropLimbo,
    Clear,
}

fn slab_op_strategy() -> impl Strategy<Value = SlabOp> {
    prop_oneof![
        5 => (0u32..24).prop_map(SlabOp::Insert),
        4 => (0u32..24).prop_map(SlabOp::Get),
        2 => (0u32..24).prop_map(SlabOp::Invalidate),
        1 => prop::collection::vec(0u32..24, 0..6).prop_map(SlabOp::InvalidateMany),
        1 => Just(SlabOp::MarkAllLimbo),
        1 => Just(SlabOp::RevalidateAll),
        1 => Just(SlabOp::SalvageOdd),
        2 => ((0u32..24), any::<bool>()).prop_map(|(i, v)| SlabOp::SalvageItem(i, v)),
        1 => Just(SlabOp::DropLimbo),
        1 => Just(SlabOp::Clear),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cache_matches_reference_model(
        capacity in 1usize..8,
        ops in prop::collection::vec(op_strategy(), 0..80),
    ) {
        let mut cache = LruCache::new(capacity);
        let mut model = Model { capacity, ..Model::default() };
        let now = SimTime::from_secs(1.0);
        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Insert(id) => cache.insert(ItemId(id), now, now),
                Op::Get(id) => {
                    let got = cache.get_valid(ItemId(id)).is_some();
                    let expect = model
                        .entries
                        .iter()
                        .any(|&(i, s)| i == id && s == EntryState::Valid);
                    prop_assert_eq!(got, expect, "get mismatch at step {}", step);
                }
                Op::Invalidate(id) => { cache.invalidate(ItemId(id)); }
                Op::MarkAllLimbo => cache.mark_all_limbo(),
                Op::RevalidateAll => cache.revalidate_all(now),
                Op::SalvageEven => { cache.salvage_limbo(now, |i| i.0 % 2 == 0); }
                Op::Clear => cache.clear(),
            }
            model.apply(op);
            cache.check_invariants();
            prop_assert_eq!(cache.len(), model.entries.len(), "len mismatch at step {}", step);
            // Same membership and states.
            for &(id, state) in &model.entries {
                let entry = cache.peek(ItemId(id));
                prop_assert!(entry.is_some(), "missing {} at step {}", id, step);
                prop_assert_eq!(entry.unwrap().state, state, "state of {} at step {}", id, step);
            }
        }
    }

    /// The dense slab must be observation-equivalent to the old
    /// `HashMap` + `BTreeMap` implementation it replaced — including
    /// return values and the eviction counter, which the first model
    /// does not track.
    #[test]
    fn slab_matches_old_map_btreemap_model(
        capacity in 1usize..8,
        ops in prop::collection::vec(slab_op_strategy(), 0..120),
    ) {
        let mut cache = LruCache::new(capacity);
        let mut old = MapLru::new(capacity);
        let now = SimTime::from_secs(1.0);
        for (step, op) in ops.iter().enumerate() {
            match op {
                SlabOp::Insert(id) => {
                    cache.insert(ItemId(*id), now, now);
                    old.insert(ItemId(*id));
                }
                SlabOp::Get(id) => {
                    let got = cache.get_valid(ItemId(*id)).is_some();
                    let expect = old.get_valid(ItemId(*id));
                    prop_assert_eq!(got, expect, "get mismatch at step {}", step);
                }
                SlabOp::Invalidate(id) => {
                    let got = cache.invalidate(ItemId(*id));
                    let expect = old.invalidate(ItemId(*id));
                    prop_assert_eq!(got, expect, "invalidate mismatch at step {}", step);
                }
                SlabOp::InvalidateMany(ids) => {
                    let got = cache.invalidate_many(ids.iter().map(|&i| ItemId(i)));
                    let expect = ids.iter().filter(|&&i| old.invalidate(ItemId(i))).count();
                    prop_assert_eq!(got, expect, "invalidate_many mismatch at step {}", step);
                }
                SlabOp::MarkAllLimbo => {
                    cache.mark_all_limbo();
                    old.mark_all_limbo();
                }
                SlabOp::RevalidateAll => {
                    cache.revalidate_all(now);
                    old.revalidate_all();
                }
                SlabOp::SalvageOdd => {
                    let got = cache.salvage_limbo(now, |i| i.0 % 2 == 1);
                    let expect = old.salvage_limbo(|i| i.0 % 2 == 1);
                    prop_assert_eq!(got, expect, "salvage counts mismatch at step {}", step);
                }
                SlabOp::SalvageItem(id, valid) => {
                    let got = cache.salvage_item(ItemId(*id), *valid, now);
                    let expect = old.salvage_item(ItemId(*id), *valid);
                    prop_assert_eq!(got, expect, "salvage_item mismatch at step {}", step);
                }
                SlabOp::DropLimbo => {
                    let got = cache.drop_limbo();
                    let expect = old.drop_limbo();
                    prop_assert_eq!(got, expect, "drop_limbo mismatch at step {}", step);
                }
                SlabOp::Clear => {
                    cache.clear();
                    old.clear();
                }
            }
            cache.check_invariants();
            prop_assert_eq!(cache.len(), old.map.len(), "len mismatch at step {}", step);
            prop_assert_eq!(
                cache.evictions(), old.evictions,
                "eviction counter mismatch at step {}", step
            );
            for (&item, &(state, _)) in &old.map {
                let entry = cache.peek(item);
                prop_assert!(entry.is_some(), "missing {:?} at step {}", item, step);
                prop_assert_eq!(
                    entry.unwrap().state, state,
                    "state of {:?} at step {}", item, step
                );
            }
            prop_assert_eq!(
                cache.has_limbo(),
                old.map.values().any(|&(s, _)| s == EntryState::Limbo),
                "has_limbo mismatch at step {}", step
            );
        }
    }

    /// The membership bitmap must equal the slab exactly — same ids, no
    /// stray bits — after every mutation the public API can express
    /// (insert/evict, invalidate, invalidate_many, clear, limbo marking,
    /// both salvage paths and drop_limbo). This is the invariant the
    /// invalidation-plan fast path relies on: `plan & member` must see
    /// exactly the resident items.
    #[test]
    fn membership_bitmap_matches_items_iter(
        capacity in 1usize..8,
        ops in prop::collection::vec(slab_op_strategy(), 0..120),
    ) {
        let mut cache = LruCache::new(capacity);
        let now = SimTime::from_secs(1.0);
        for (step, op) in ops.iter().enumerate() {
            match op {
                SlabOp::Insert(id) => cache.insert(ItemId(*id), now, now),
                SlabOp::Get(id) => { cache.get_valid(ItemId(*id)); }
                SlabOp::Invalidate(id) => { cache.invalidate(ItemId(*id)); }
                SlabOp::InvalidateMany(ids) => {
                    cache.invalidate_many(ids.iter().map(|&i| ItemId(i)));
                }
                SlabOp::MarkAllLimbo => cache.mark_all_limbo(),
                SlabOp::RevalidateAll => cache.revalidate_all(now),
                SlabOp::SalvageOdd => { cache.salvage_limbo(now, |i| i.0 % 2 == 1); }
                SlabOp::SalvageItem(id, valid) => {
                    cache.salvage_item(ItemId(*id), *valid, now);
                }
                SlabOp::DropLimbo => { cache.drop_limbo(); }
                SlabOp::Clear => cache.clear(),
            }
            // Rebuild the expected bitmap from the slab's own view.
            let mut expect = vec![0u64; cache.member_words().len()];
            for (item, _) in cache.items_iter() {
                expect[item.0 as usize / 64] |= 1 << (item.0 % 64);
            }
            prop_assert_eq!(
                cache.member_words(), expect.as_slice(),
                "bitmap diverged from slab at step {} ({:?})", step, op
            );
            cache.check_invariants();
        }
    }
}
