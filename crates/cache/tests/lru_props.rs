//! Property tests: the LRU cache against a trivially-correct reference
//! model (a Vec ordered by recency).

use mobicache_cache::{EntryState, LruCache};
use mobicache_model::ItemId;
use mobicache_sim::SimTime;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(u32),
    Get(u32),
    Invalidate(u32),
    MarkAllLimbo,
    RevalidateAll,
    SalvageEven,
    Clear,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u32..32).prop_map(Op::Insert),
        4 => (0u32..32).prop_map(Op::Get),
        1 => (0u32..32).prop_map(Op::Invalidate),
        1 => Just(Op::MarkAllLimbo),
        1 => Just(Op::RevalidateAll),
        1 => Just(Op::SalvageEven),
        1 => Just(Op::Clear),
    ]
}

/// Reference model: most-recently-used last.
#[derive(Default)]
struct Model {
    entries: Vec<(u32, EntryState)>,
    capacity: usize,
}

impl Model {
    fn touch(&mut self, id: u32) {
        if let Some(pos) = self.entries.iter().position(|&(i, _)| i == id) {
            let e = self.entries.remove(pos);
            self.entries.push(e);
        }
    }

    fn apply(&mut self, op: &Op) {
        match *op {
            Op::Insert(id) => {
                if let Some(pos) = self.entries.iter().position(|&(i, _)| i == id) {
                    self.entries.remove(pos);
                } else if self.entries.len() == self.capacity {
                    self.entries.remove(0);
                }
                self.entries.push((id, EntryState::Valid));
            }
            Op::Get(id) => {
                let valid = self
                    .entries
                    .iter()
                    .any(|&(i, s)| i == id && s == EntryState::Valid);
                if valid {
                    self.touch(id);
                }
            }
            Op::Invalidate(id) => self.entries.retain(|&(i, _)| i != id),
            Op::MarkAllLimbo => {
                for e in &mut self.entries {
                    e.1 = EntryState::Limbo;
                }
            }
            Op::RevalidateAll => {
                for e in &mut self.entries {
                    e.1 = EntryState::Valid;
                }
            }
            Op::SalvageEven => {
                self.entries
                    .retain(|&(i, s)| s == EntryState::Valid || i % 2 == 0);
                for e in &mut self.entries {
                    e.1 = EntryState::Valid;
                }
            }
            Op::Clear => self.entries.clear(),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cache_matches_reference_model(
        capacity in 1usize..8,
        ops in prop::collection::vec(op_strategy(), 0..80),
    ) {
        let mut cache = LruCache::new(capacity);
        let mut model = Model { capacity, ..Model::default() };
        let now = SimTime::from_secs(1.0);
        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Insert(id) => cache.insert(ItemId(id), now, now),
                Op::Get(id) => {
                    let got = cache.get_valid(ItemId(id)).is_some();
                    let expect = model
                        .entries
                        .iter()
                        .any(|&(i, s)| i == id && s == EntryState::Valid);
                    prop_assert_eq!(got, expect, "get mismatch at step {}", step);
                }
                Op::Invalidate(id) => { cache.invalidate(ItemId(id)); }
                Op::MarkAllLimbo => cache.mark_all_limbo(),
                Op::RevalidateAll => cache.revalidate_all(now),
                Op::SalvageEven => { cache.salvage_limbo(now, |i| i.0 % 2 == 0); }
                Op::Clear => cache.clear(),
            }
            model.apply(op);
            cache.check_invariants();
            prop_assert_eq!(cache.len(), model.entries.len(), "len mismatch at step {}", step);
            // Same membership and states.
            for &(id, state) in &model.entries {
                let entry = cache.peek(ItemId(id));
                prop_assert!(entry.is_some(), "missing {} at step {}", id, step);
                prop_assert_eq!(entry.unwrap().state, state, "state of {} at step {}", id, step);
            }
        }
    }
}
