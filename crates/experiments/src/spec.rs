//! Experiment specifications and results.

use mobicache::Metrics;
use mobicache_model::{Scheme, SimConfig};

/// Which metric a figure plots on its Y axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// "No. of Queries Answered" (Figures 5, 7, 9, 11, 13, 15, 16).
    QueriesAnswered,
    /// "Uplink Communication Cost Per Query (bits/query)"
    /// (Figures 6, 8, 10, 12, 14).
    ValidityBitsPerQuery,
    /// Cache hit ratio (ablations).
    HitRatio,
    /// Mean query latency in seconds (ablations).
    MeanLatencySecs,
    /// Invalidation-report downlink bits (ablations).
    ReportDownlinkBits,
    /// Client energy per answered query (extension; §1's power-efficiency
    /// motivation).
    EnergyPerQuery,
    /// Total uplink traffic in bits — every client transmission: queries,
    /// Tlbs, validity checks and retries (extension; the handoff sweep's
    /// cost axis, where roamer re-announcements dominate).
    UplinkTotalBits,
}

impl MetricKind {
    /// Pulls the metric out of a run's results.
    pub fn extract(self, m: &Metrics) -> f64 {
        match self {
            MetricKind::QueriesAnswered => m.queries_answered as f64,
            MetricKind::ValidityBitsPerQuery => m.uplink_validity_bits_per_query,
            MetricKind::HitRatio => m.hit_ratio,
            MetricKind::MeanLatencySecs => m.mean_query_latency_secs,
            MetricKind::ReportDownlinkBits => m.downlink_report_bits,
            MetricKind::EnergyPerQuery => m.energy_per_query,
            MetricKind::UplinkTotalBits => m.uplink_total_bits,
        }
    }

    /// Axis label as it appears in the paper.
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::QueriesAnswered => "No. of Queries Answered",
            MetricKind::ValidityBitsPerQuery => "Uplink Communication Cost Per Query (bits/query)",
            MetricKind::HitRatio => "Cache Hit Ratio",
            MetricKind::MeanLatencySecs => "Mean Query Latency (s)",
            MetricKind::ReportDownlinkBits => "Invalidation Report Downlink (bits)",
            MetricKind::EnergyPerQuery => "Client Energy Per Query (units)",
            MetricKind::UplinkTotalBits => "Total Uplink Traffic (bits)",
        }
    }
}

/// A declarative experiment: sweep `points`, one series per scheme.
#[derive(Clone, Debug)]
pub struct FigureSpec {
    /// Short id (`fig05`, `abl-window`, …) used for CSV filenames and
    /// bench names.
    pub id: &'static str,
    /// The paper artefact this reproduces (`Figure 5`) or `extension`.
    pub paper_ref: &'static str,
    /// Human title.
    pub title: &'static str,
    /// X-axis label.
    pub x_label: &'static str,
    /// Y-axis metric.
    pub metric: MetricKind,
    /// One series per scheme, in legend order.
    pub schemes: Vec<Scheme>,
    /// `(x value, base config)` — the runner stamps each scheme into the
    /// config.
    pub points: Vec<(f64, SimConfig)>,
    /// The qualitative shape the paper shows (recorded in
    /// EXPERIMENTS.md next to our measurements).
    pub expected_shape: &'static str,
}

/// One simulated point of one series.
#[derive(Clone, Debug)]
pub struct PointResult {
    /// X value.
    pub x: f64,
    /// Extracted Y value — the mean over replications when
    /// [`RunScale::replications`](crate::RunScale) > 1.
    pub y: f64,
    /// Standard error of `y` over replications (0 for a single run).
    pub y_stderr: f64,
    /// Number of replications aggregated.
    pub replications: u32,
    /// Wall-clock seconds this job took (all replications).
    pub wall_secs: f64,
    /// Engine worker threads this job ran with — what the runner's
    /// core-budget split allocated (1 = serial engine). Results are
    /// thread-invariant; this records where the cores went.
    pub engine_threads: u32,
    /// The full metrics of the first replication.
    pub metrics: Metrics,
}

/// One scheme's curve.
#[derive(Clone, Debug)]
pub struct SeriesResult {
    /// The scheme.
    pub scheme: Scheme,
    /// Points in X order.
    pub points: Vec<PointResult>,
}

/// A fully executed figure.
#[derive(Clone, Debug)]
pub struct FigureResult {
    /// Spec id.
    pub id: String,
    /// Paper reference.
    pub paper_ref: String,
    /// Title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// One curve per scheme.
    pub series: Vec<SeriesResult>,
    /// Wall-clock seconds spent simulating.
    pub wall_secs: f64,
}

impl FigureResult {
    /// The series for `scheme`, if present.
    pub fn series_for(&self, scheme: Scheme) -> Option<&SeriesResult> {
        self.series.iter().find(|s| s.scheme == scheme)
    }

    /// Y values of a scheme's curve, in X order.
    pub fn curve(&self, scheme: Scheme) -> Vec<f64> {
        self.series_for(scheme)
            .map(|s| s.points.iter().map(|p| p.y).collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_extraction() {
        let m = Metrics {
            queries_answered: 42,
            uplink_validity_bits_per_query: 7.5,
            hit_ratio: 0.25,
            mean_query_latency_secs: 3.0,
            downlink_report_bits: 99.0,
            uplink_total_bits: 123.0,
            ..Metrics::default()
        };
        assert_eq!(MetricKind::QueriesAnswered.extract(&m), 42.0);
        assert_eq!(MetricKind::ValidityBitsPerQuery.extract(&m), 7.5);
        assert_eq!(MetricKind::HitRatio.extract(&m), 0.25);
        assert_eq!(MetricKind::MeanLatencySecs.extract(&m), 3.0);
        assert_eq!(MetricKind::ReportDownlinkBits.extract(&m), 99.0);
        assert_eq!(MetricKind::UplinkTotalBits.extract(&m), 123.0);
    }

    #[test]
    fn labels_match_paper_axes() {
        assert_eq!(
            MetricKind::QueriesAnswered.label(),
            "No. of Queries Answered"
        );
        assert!(MetricKind::ValidityBitsPerQuery
            .label()
            .contains("bits/query"));
    }
}
