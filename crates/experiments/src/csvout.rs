//! CSV serialization of figure results (hand-rolled; the offline crate
//! set has no `csv`, and the format is trivial).

use crate::spec::FigureResult;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// One row per `(scheme, point)` with the headline metrics unpacked —
/// stable columns for downstream plotting.
pub fn to_csv(fig: &FigureResult) -> String {
    let mut out = String::from(
        "figure,scheme,x,y,y_stderr,replications,queries_answered,\
         uplink_validity_bits_per_query,hit_ratio,\
         mean_latency_secs,downlink_utilization,uplink_utilization,downlink_report_bits,\
         bs_reports,enlarged_reports,tlbs_sent,checks_sent,full_drops,salvaged\n",
    );
    for s in &fig.series {
        for p in &s.points {
            let m = &p.metrics;
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                fig.id,
                s.scheme.short(),
                p.x,
                p.y,
                p.y_stderr,
                p.replications,
                m.queries_answered,
                m.uplink_validity_bits_per_query,
                m.hit_ratio,
                m.mean_query_latency_secs,
                m.downlink_utilization,
                m.uplink_utilization,
                m.downlink_report_bits,
                m.server.bs_reports,
                m.server.enlarged_reports,
                m.clients.tlbs_sent,
                m.clients.checks_sent,
                m.clients.full_drops,
                m.clients.salvaged,
            );
        }
    }
    out
}

/// Writes the figure's CSV into `dir/<figure id>.csv`.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_csv(fig: &FigureResult, dir: &Path) -> io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.csv", fig.id));
    std::fs::write(&path, to_csv(fig))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{PointResult, SeriesResult};
    use mobicache::Metrics;
    use mobicache_model::Scheme;

    fn fig() -> FigureResult {
        FigureResult {
            id: "figtest".into(),
            paper_ref: "Figure 0".into(),
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![SeriesResult {
                scheme: Scheme::Afw,
                points: vec![PointResult {
                    x: 3.0,
                    y: 4.0,
                    y_stderr: 0.5,
                    replications: 2,
                    wall_secs: 0.0,
                    engine_threads: 1,
                    metrics: Metrics {
                        queries_answered: 7,
                        ..Metrics::default()
                    },
                }],
            }],
            wall_secs: 0.0,
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = to_csv(&fig());
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("figure,scheme,x,y,"));
        let row = lines.next().unwrap();
        assert!(row.starts_with("figtest,afw,3,4,0.5,2,7,"));
        assert_eq!(
            header.split(',').count(),
            row.split(',').count(),
            "column count mismatch"
        );
    }

    #[test]
    fn csv_roundtrips_to_disk() {
        let dir = std::env::temp_dir().join("mobicache-csv-test");
        let path = write_csv(&fig(), &dir).expect("writable temp dir");
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, to_csv(&fig()));
        let _ = std::fs::remove_file(path);
    }
}
