//! `repro` — regenerate the paper's figures.
//!
//! ```text
//! repro --list              list every experiment id
//! repro --tables            print Tables 1 and 2 (the input parameters)
//! repro --all               run all 12 paper figures + ablations
//! repro fig05 fig06         run specific experiments
//! repro --smoke fig05       run at 1/20 horizon (quick sanity pass)
//! repro --scale 0.2 fig05   custom horizon scale
//! repro --out results fig05 CSV output directory (default: results)
//! repro --progress fig05    live per-job progress lines on stderr
//! repro --trace-dir results/trace fig05
//!                           write per-job interval-snapshot JSONL traces
//! repro --split points fig05
//!                           keep engines serial (one core per point);
//!                           default `auto` hands leftover cores to the
//!                           engines when points are scarce
//! ```

use mobicache_experiments::figures;
use mobicache_experiments::{
    chart, csvout, run_figure_with, CoreSplitPolicy, Progress, RunReporting, RunScale,
};
use mobicache_model::{Scheme, SimConfig, Workload};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage();
        return ExitCode::FAILURE;
    }

    let mut scale = RunScale::default();
    let mut out_dir = PathBuf::from("results");
    let mut ids: Vec<String> = Vec::new();
    let mut run_all = false;
    let mut progress = false;
    let mut trace_dir: Option<PathBuf> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                for spec in figures::all_figures() {
                    println!("{:<12} {:<28} {}", spec.id, spec.paper_ref, spec.title);
                }
                return ExitCode::SUCCESS;
            }
            "--tables" => {
                print_tables();
                return ExitCode::SUCCESS;
            }
            "--all" => run_all = true,
            "--smoke" => scale.time_factor = 0.05,
            "--scale" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse::<f64>().ok()) else {
                    eprintln!("--scale needs a positive number");
                    return ExitCode::FAILURE;
                };
                scale.time_factor = v;
            }
            "--reps" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse::<u32>().ok()) else {
                    eprintln!("--reps needs a positive integer");
                    return ExitCode::FAILURE;
                };
                if v == 0 {
                    eprintln!("--reps needs a positive integer");
                    return ExitCode::FAILURE;
                }
                scale.replications = v;
            }
            "--threads" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse::<usize>().ok()) else {
                    eprintln!("--threads needs a positive integer");
                    return ExitCode::FAILURE;
                };
                scale.max_threads = Some(v);
            }
            "--split" => {
                i += 1;
                scale.split = match args.get(i).map(String::as_str) {
                    Some("auto") => CoreSplitPolicy::Auto,
                    Some("points") => CoreSplitPolicy::PointsOnly,
                    _ => {
                        eprintln!("--split needs `auto` or `points`");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--out" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("--out needs a directory");
                    return ExitCode::FAILURE;
                };
                out_dir = PathBuf::from(v);
            }
            "--progress" => progress = true,
            "--trace-dir" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("--trace-dir needs a directory");
                    return ExitCode::FAILURE;
                };
                trace_dir = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}");
                print_usage();
                return ExitCode::FAILURE;
            }
            id => ids.push(id.to_string()),
        }
        i += 1;
    }

    let specs: Vec<_> = if run_all {
        figures::all_figures()
    } else {
        let mut specs = Vec::new();
        for id in &ids {
            match figures::by_id(id) {
                Some(s) => specs.push(s),
                None => {
                    eprintln!("unknown experiment id: {id} (try --list)");
                    return ExitCode::FAILURE;
                }
            }
        }
        specs
    };
    if specs.is_empty() {
        eprintln!("nothing to run (use --all or name experiments; see --list)");
        return ExitCode::FAILURE;
    }

    let show_progress = |p: Progress| {
        let eta = if p.eta_secs >= 60.0 {
            format!(
                "{:.0}m{:02.0}s",
                (p.eta_secs / 60.0).floor(),
                p.eta_secs % 60.0
            )
        } else {
            format!("{:.0}s", p.eta_secs)
        };
        eprintln!(
            "   [{:>3}/{:<3}] {:?} x={} [{}t] done in {:.1}s (elapsed {:.1}s, eta {eta})",
            p.done, p.total, p.scheme, p.x, p.engine_threads, p.job_wall_secs, p.elapsed_secs
        );
    };

    for spec in specs {
        eprintln!(
            ">> running {} [{} schemes x {} points, horizon x{}]",
            spec.id,
            spec.schemes.len(),
            spec.points.len(),
            scale.time_factor
        );
        let reporting = RunReporting {
            on_progress: progress.then_some(&show_progress as &(dyn Fn(Progress) + Sync)),
            trace_dir: trace_dir.as_deref(),
            ..RunReporting::default()
        };
        let result = match run_figure_with(&spec, scale, reporting) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {}: invalid configuration: {e}", spec.id);
                return ExitCode::FAILURE;
            }
        };
        println!("{}", chart::render(&result));
        println!("{}", chart::render_table(&result));
        println!("expected shape: {}\n", spec.expected_shape);
        match csvout::write_csv(&result, &out_dir) {
            Ok(path) => eprintln!(
                "   {} done in {:.1}s -> {}",
                result.id,
                result.wall_secs,
                path.display()
            ),
            Err(e) => eprintln!("   warning: could not write CSV: {e}"),
        }
    }
    ExitCode::SUCCESS
}

fn print_usage() {
    eprintln!(
        "usage: repro [--smoke|--scale F] [--reps N] [--threads N] [--split auto|points] \
         [--out DIR] [--progress] [--trace-dir DIR] (--all | --list | --tables | IDS...)"
    );
}

/// Prints the paper's input tables as encoded in the defaults.
fn print_tables() {
    let cfg = SimConfig::paper_default();
    println!("Table 1. System Parameter Settings (SimConfig::paper_default)");
    println!("  {:<38} {} seconds", "Simulation Time", cfg.sim_time_secs);
    println!("  {:<38} {}", "Number of Clients", cfg.num_clients);
    println!(
        "  {:<38} 1000 to 80000 data items (default 10000)",
        "Database Size"
    );
    println!("  {:<38} {} bytes", "Data Item Size", cfg.item_bytes);
    println!("  {:<38} 1 % or 2 % of database size", "Client Buffer Size");
    println!(
        "  {:<38} {} seconds",
        "Broadcast Period", cfg.broadcast_period_secs
    );
    println!(
        "  {:<38} {} bits per second",
        "Network Downlink Bandwidth", cfg.downlink_bps
    );
    println!(
        "  {:<38} 1 % to 100 % of downlink",
        "Network Uplink Bandwidth"
    );
    println!(
        "  {:<38} {} bytes",
        "Control Message Size", cfg.control_bytes
    );
    println!(
        "  {:<38} {} seconds",
        "Mean Think Time", cfg.mean_think_secs
    );
    println!(
        "  {:<38} {} (Table 1 lists 10; see DESIGN.md on the Section 5 reconciliation)",
        "Mean Data Items Ref. by a Query", cfg.items_per_query_mean
    );
    println!(
        "  {:<38} {}",
        "Mean Data Items Updated by a Txn", cfg.items_per_update_mean
    );
    println!(
        "  {:<38} {} seconds",
        "Mean Update Arrival Time", cfg.mean_update_interarrival_secs
    );
    println!("  {:<38} 200 to 8000 seconds", "Mean Disconnect Time");
    println!("  {:<38} 0.1 to 0.8", "Prob. of Client Disc. per Interval");
    println!(
        "  {:<38} {} intervals",
        "Window for Broadcast Invalidation", cfg.window_intervals
    );
    println!();
    println!("Table 2. Query/Update Pattern (Workload::uniform / Workload::hotcold)");
    let u = Workload::uniform();
    let h = Workload::hotcold();
    println!("  UNIFORM: query = {:?}, update = {:?}", u.query, u.update);
    println!("  HOTCOLD: query = {:?}, update = {:?}", h.query, h.update);
    println!();
    println!(
        "Schemes compared in the paper's plots: {}",
        Scheme::PAPER_SET
            .iter()
            .map(|s| s.label())
            .collect::<Vec<_>>()
            .join(", ")
    );
}
