//! # mobicache-experiments — the reproduction harness
//!
//! One [`FigureSpec`] per figure of the paper's evaluation (§5, Figures
//! 5–16) plus the ablations listed in DESIGN.md. Each spec is a parameter
//! sweep over [`SimConfig`](mobicache_model::SimConfig); the
//! [`runner`] executes the sweep (in parallel when cores allow) and the
//! [`chart`]/[`csvout`] modules render the same rows/series the paper
//! plots.
//!
//! Regenerate everything with the `repro` binary:
//!
//! ```text
//! cargo run --release -p mobicache-experiments --bin repro -- --all
//! cargo run --release -p mobicache-experiments --bin repro -- fig05 fig06
//! cargo run --release -p mobicache-experiments --bin repro -- --list
//! cargo run --release -p mobicache-experiments --bin repro -- --tables
//! ```

pub mod chart;
pub mod csvout;
pub mod figures;
pub mod runner;
pub mod spec;

pub use runner::{
    run_figure, run_figure_with, split_core_budget, CoreSplitPolicy, Progress, RunReporting,
    RunScale,
};
pub use spec::{FigureResult, FigureSpec, MetricKind, PointResult, SeriesResult};
