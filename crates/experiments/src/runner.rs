//! Sweep execution.
//!
//! Runs every `(scheme, point)` job of a figure, fanning out over the
//! available cores with scoped threads pulling from an atomic job
//! counter. Each job is an independent simulation (common random
//! numbers: the same master seed, so streams match across schemes), so
//! the fan-out is embarrassingly parallel; results are reassembled in
//! spec order.
//!
//! The core budget is split between the two parallelism axes by
//! [`CoreSplitPolicy`]: many jobs → point-parallel with serial engines;
//! few huge jobs → every point in flight plus leftover cores handed to
//! the engines as worker threads (one persistent [`WorkerPool`] per
//! point worker, shared across all jobs it claims). Engine results are
//! bit-identical at any thread count, so the split never changes
//! figures — only wall clock.
//!
//! [`RunReporting`] adds live progress (jobs done/total, per-job wall
//! time, ETA) and per-job interval-snapshot traces written as JSONL —
//! the `repro` binary's `--progress` and `--trace-dir` flags.

use crate::spec::{FigureResult, FigureSpec, PointResult, SeriesResult};
use mobicache::{run, IntervalSampler, RunOptions, WorkerPool};
use mobicache_model::{ConfigError, Scheme};
use std::num::NonZeroUsize;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How [`run_figure_with`] divides its core budget between concurrent
/// figure points and engine worker threads inside each point.
///
/// Results are identical either way — the engine is bit-deterministic
/// at any thread count — so this is purely a wall-clock shape knob.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CoreSplitPolicy {
    /// Decide from the job list: with at least as many jobs as cores,
    /// run point-parallel with serial engines (maximum throughput);
    /// with fewer jobs than cores, keep every point in flight and hand
    /// the leftover cores to the engines as worker threads, so a few
    /// huge points still use the whole budget.
    #[default]
    Auto,
    /// The historical shape: one core per concurrent point, engines
    /// strictly serial, leftover cores idle.
    PointsOnly,
}

/// Engine threads only pay off on populations big enough to shard; the
/// engine's own `pool_min_shard_clients` floor runs phases serially
/// below roughly this size anyway, so splitting would waste cores.
const ENGINE_SPLIT_MIN_CLIENTS: u32 = 2_048;

/// Divides a core budget of `budget` across up to `jobs` concurrent
/// point workers. Returns one entry per spawned worker: the engine
/// thread count that worker runs its jobs with. The entries sum to
/// `budget` whenever the split engages (Auto with fewer jobs than
/// cores), spreading the remainder over the earliest workers.
pub fn split_core_budget(
    policy: CoreSplitPolicy,
    budget: usize,
    jobs: usize,
    max_clients: u32,
) -> Vec<u32> {
    let budget = budget.max(1);
    let jobs = jobs.max(1);
    match policy {
        CoreSplitPolicy::PointsOnly => vec![1; budget.min(jobs)],
        CoreSplitPolicy::Auto => {
            if jobs >= budget || max_clients < ENGINE_SPLIT_MIN_CLIENTS {
                return vec![1; budget.min(jobs)];
            }
            let base = (budget / jobs) as u32;
            let rem = budget % jobs;
            (0..jobs).map(|w| base + u32::from(w < rem)).collect()
        }
    }
}

/// Scales a spec for quick smoke runs and benches.
#[derive(Clone, Copy, Debug)]
pub struct RunScale {
    /// Multiplier on the simulated horizon (1.0 = the paper's 100 000 s).
    pub time_factor: f64,
    /// Core budget: concurrent point workers × their engine threads
    /// (`None` = all available cores).
    pub max_threads: Option<usize>,
    /// Independent replications per point (different derived seeds);
    /// curves report the mean and standard error. The paper plots single
    /// runs, so the default is 1.
    pub replications: u32,
    /// How the core budget is divided between concurrent points and
    /// engine worker threads.
    pub split: CoreSplitPolicy,
}

impl Default for RunScale {
    fn default() -> Self {
        RunScale {
            time_factor: 1.0,
            max_threads: None,
            replications: 1,
            split: CoreSplitPolicy::default(),
        }
    }
}

impl RunScale {
    /// A reduced-horizon scale for smoke tests and benches.
    pub fn smoke() -> Self {
        RunScale {
            time_factor: 0.05,
            ..RunScale::default()
        }
    }

    /// Builder-style replication count override.
    pub fn with_replications(mut self, replications: u32) -> Self {
        assert!(replications > 0, "need at least one replication");
        self.replications = replications;
        self
    }

    /// Builder-style core-split policy override.
    pub fn with_split(mut self, split: CoreSplitPolicy) -> Self {
        self.split = split;
        self
    }
}

/// A finished job, as reported to the progress callback.
#[derive(Clone, Copy, Debug)]
pub struct Progress {
    /// Jobs finished so far (including this one).
    pub done: usize,
    /// Total jobs in the figure.
    pub total: usize,
    /// The finished job's scheme.
    pub scheme: Scheme,
    /// The finished job's X value.
    pub x: f64,
    /// Wall-clock seconds the job took (all replications).
    pub job_wall_secs: f64,
    /// Engine worker threads the job ran with (the core-budget split's
    /// allocation for its worker; 1 = serial engine).
    pub engine_threads: u32,
    /// Wall-clock seconds since the figure started.
    pub elapsed_secs: f64,
    /// Estimated seconds remaining, from the mean job rate so far.
    pub eta_secs: f64,
}

/// Observation options for a figure run: live progress and JSONL
/// interval-snapshot traces.
#[derive(Clone, Copy)]
pub struct RunReporting<'a> {
    /// Called after every finished job. Invoked from worker threads, so
    /// it must be `Sync`; calls are serialized by the runner.
    pub on_progress: Option<&'a (dyn Fn(Progress) + Sync)>,
    /// Directory receiving one `<figure>-<scheme>-p<point>.jsonl` trace
    /// per job (interval snapshots of the first replication). Created if
    /// missing; write failures are reported to stderr, not fatal.
    pub trace_dir: Option<&'a Path>,
    /// Snapshot stride for traces, in broadcast periods.
    pub trace_every: u32,
}

impl Default for RunReporting<'_> {
    fn default() -> Self {
        RunReporting {
            on_progress: None,
            trace_dir: None,
            trace_every: 10,
        }
    }
}

impl std::fmt::Debug for RunReporting<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunReporting")
            .field("on_progress", &self.on_progress.is_some())
            .field("trace_dir", &self.trace_dir)
            .field("trace_every", &self.trace_every)
            .finish()
    }
}

/// Executes every point of `spec` and reassembles the curves.
///
/// # Errors
/// Returns the typed validation error if any job's configuration is
/// inconsistent (checked up front, before any simulation runs).
pub fn run_figure(spec: &FigureSpec, scale: RunScale) -> Result<FigureResult, ConfigError> {
    run_figure_with(spec, scale, RunReporting::default())
}

/// [`run_figure`] with live progress and trace output.
///
/// # Errors
/// Returns the typed validation error if any job's configuration is
/// inconsistent (checked up front, before any simulation runs).
pub fn run_figure_with(
    spec: &FigureSpec,
    scale: RunScale,
    reporting: RunReporting<'_>,
) -> Result<FigureResult, ConfigError> {
    let started = Instant::now();
    // Job list: (series index, point index, config).
    let mut jobs = Vec::new();
    for (si, &scheme) in spec.schemes.iter().enumerate() {
        for (pi, (_, base)) in spec.points.iter().enumerate() {
            let mut cfg = base.clone().with_scheme(scheme);
            cfg.sim_time_secs = (cfg.sim_time_secs * scale.time_factor).max(
                // Never shrink below a few broadcast periods.
                10.0 * cfg.broadcast_period_secs,
            );
            cfg.validate()?; // fail fast, before spawning workers
            jobs.push((si, pi, cfg));
        }
    }
    let total = jobs.len();

    if let Some(dir) = reporting.trace_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create trace dir {}: {e}", dir.display());
        }
    }

    // Core budget → (point workers, engine threads per worker). The
    // engine is bit-deterministic at any thread count, so the split
    // shapes wall clock only, never results.
    let budget = scale.max_threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    });
    let max_clients = jobs
        .iter()
        .map(|(_, _, cfg)| cfg.num_clients)
        .max()
        .unwrap_or(0);
    let alloc = split_core_budget(scale.split, budget, total, max_clients);
    let point_workers = alloc.len();

    let results: Mutex<Vec<(usize, usize, PointResult)>> = Mutex::new(Vec::with_capacity(total));
    let next_job = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    // Serializes progress callbacks so lines never interleave.
    let progress_gate = Mutex::new(());

    std::thread::scope(|scope| {
        for &engine_threads in &alloc {
            let jobs = &jobs;
            let next_job = &next_job;
            let done = &done;
            let progress_gate = &progress_gate;
            let results = &results;
            let spec = &spec;
            let reporting = &reporting;
            scope.spawn(move || {
                // One pool per worker, shared across every job it claims
                // (engines reset all shared state between runs, so pool
                // reuse is free — see `RunOptions::worker_pool`).
                let pool = (engine_threads > 1)
                    .then(|| Arc::new(WorkerPool::new(engine_threads as usize)));
                loop {
                    let idx = next_job.fetch_add(1, Ordering::Relaxed);
                    let Some(&(si, pi, ref cfg)) = jobs.get(idx) else {
                        break;
                    };
                    let job_started = Instant::now();
                    // Replications vary the seed only; everything else is
                    // common random numbers across schemes and points.
                    let mut ys = mobicache_sim::OnlineStats::new();
                    let mut first_metrics = None;
                    // Snapshot trace of the first replication only (the
                    // probe does not perturb it — see `mobicache::probe`).
                    let mut sampler = reporting
                        .trace_dir
                        .map(|_| IntervalSampler::every(reporting.trace_every.max(1)));
                    for rep in 0..scale.replications {
                        let mut rep_cfg = cfg
                            .clone()
                            .with_seed(cfg.seed.wrapping_add(rep as u64 * 0x9E37_79B9));
                        if engine_threads > 1 {
                            rep_cfg = rep_cfg.with_threads(engine_threads);
                        }
                        let mut opts = match (rep, sampler.as_mut()) {
                            (0, Some(s)) => RunOptions::new().probe(s),
                            _ => RunOptions::default(),
                        };
                        if let Some(p) = &pool {
                            opts = opts.worker_pool(Arc::clone(p));
                        }
                        // Validated above; a rejection here is a bug.
                        let outcome = run(&rep_cfg, opts)
                            .unwrap_or_else(|e| panic!("{}: invalid config: {e}", spec.id));
                        ys.record(spec.metric.extract(&outcome.metrics));
                        if first_metrics.is_none() {
                            first_metrics = Some(outcome.metrics);
                        }
                    }
                    let scheme = spec.schemes[si];
                    if let (Some(dir), Some(s)) = (reporting.trace_dir, sampler.as_ref()) {
                        let name = format!("{}-{:?}-p{pi}.jsonl", spec.id, scheme).to_lowercase();
                        let path = dir.join(&name);
                        // Leading meta line records where the core budget
                        // went for this job; snapshots follow, one per line.
                        let mut body = format!(
                            "{{\"job\":\"{}\",\"engine_threads\":{engine_threads},\"point_workers\":{point_workers}}}\n",
                            name.trim_end_matches(".jsonl"),
                        );
                        body.push_str(&s.to_jsonl());
                        if let Err(e) = std::fs::write(&path, body) {
                            eprintln!("warning: cannot write trace {}: {e}", path.display());
                        }
                    }
                    let job_wall_secs = job_started.elapsed().as_secs_f64();
                    let n = ys.count() as f64;
                    let stderr = if n > 1.0 {
                        // Sample std dev over sqrt(n).
                        (ys.variance() * n / (n - 1.0)).sqrt() / n.sqrt()
                    } else {
                        0.0
                    };
                    let x = spec.points[pi].0;
                    results.lock().unwrap().push((
                        si,
                        pi,
                        PointResult {
                            x,
                            y: ys.mean(),
                            y_stderr: stderr,
                            replications: scale.replications,
                            wall_secs: job_wall_secs,
                            engine_threads,
                            metrics: first_metrics.expect("at least one replication"),
                        },
                    ));
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    if let Some(cb) = reporting.on_progress {
                        let elapsed_secs = started.elapsed().as_secs_f64();
                        let remaining = total.saturating_sub(finished) as f64;
                        let eta_secs = elapsed_secs / finished as f64 * remaining;
                        let _gate = progress_gate.lock().unwrap();
                        cb(Progress {
                            done: finished,
                            total,
                            scheme,
                            x,
                            job_wall_secs,
                            engine_threads,
                            elapsed_secs,
                            eta_secs,
                        });
                    }
                }
            });
        }
    });

    let mut collected = results.into_inner().expect("no worker panicked");
    collected.sort_by_key(|&(si, pi, _)| (si, pi));
    let mut series: Vec<SeriesResult> = spec
        .schemes
        .iter()
        .map(|&scheme| SeriesResult {
            scheme,
            points: Vec::with_capacity(spec.points.len()),
        })
        .collect();
    for (si, _, point) in collected {
        series[si].points.push(point);
    }

    Ok(FigureResult {
        id: spec.id.to_string(),
        paper_ref: spec.paper_ref.to_string(),
        title: spec.title.to_string(),
        x_label: spec.x_label.to_string(),
        y_label: spec.metric.label().to_string(),
        series,
        wall_secs: started.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MetricKind;
    use mobicache_model::{ConfigError, Scheme, SimConfig};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tiny_spec() -> FigureSpec {
        let base = SimConfig::paper_default()
            .with_sim_time(2_000.0)
            .with_db_size(500)
            .with_num_clients(10);
        FigureSpec {
            id: "test",
            paper_ref: "none",
            title: "test",
            x_label: "x",
            metric: MetricKind::QueriesAnswered,
            schemes: vec![Scheme::Bs, Scheme::Aaw],
            points: vec![(1.0, base.clone()), (2.0, base)],
            expected_shape: "n/a",
        }
    }

    #[test]
    fn runner_preserves_order_and_shape() {
        let result = run_figure(&tiny_spec(), RunScale::default()).expect("valid spec");
        assert_eq!(result.series.len(), 2);
        assert_eq!(result.series[0].scheme, Scheme::Bs);
        assert_eq!(result.series[1].scheme, Scheme::Aaw);
        for s in &result.series {
            assert_eq!(s.points.len(), 2);
            assert_eq!(s.points[0].x, 1.0);
            assert_eq!(s.points[1].x, 2.0);
            assert!(s.points.iter().all(|p| p.y > 0.0));
            assert!(s.points.iter().all(|p| p.wall_secs > 0.0));
        }
        assert!(result.wall_secs > 0.0);
    }

    #[test]
    fn invalid_point_config_is_a_typed_error() {
        let mut spec = tiny_spec();
        spec.points[1].1.db_size = 0;
        match run_figure(&spec, RunScale::default()) {
            Err(ConfigError::ZeroCount { field }) => assert_eq!(field, "db_size"),
            other => panic!("expected ZeroCount, got {other:?}"),
        }
    }

    #[test]
    fn progress_callback_sees_every_job() {
        let spec = tiny_spec();
        let calls = AtomicUsize::new(0);
        let max_done = AtomicUsize::new(0);
        let reporting = RunReporting {
            on_progress: Some(&|p: Progress| {
                calls.fetch_add(1, Ordering::Relaxed);
                max_done.fetch_max(p.done, Ordering::Relaxed);
                assert_eq!(p.total, 4);
                assert!(p.done >= 1 && p.done <= 4);
                assert!(p.job_wall_secs > 0.0);
                assert!(p.eta_secs >= 0.0);
            }),
            ..RunReporting::default()
        };
        run_figure_with(&spec, RunScale::default(), reporting).expect("valid spec");
        assert_eq!(calls.load(Ordering::Relaxed), 4);
        assert_eq!(max_done.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn trace_dir_receives_one_jsonl_per_job() {
        let spec = tiny_spec();
        let dir = std::env::temp_dir().join(format!("mobicache-trace-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let reporting = RunReporting {
            trace_dir: Some(&dir),
            trace_every: 5,
            ..RunReporting::default()
        };
        run_figure_with(&spec, RunScale::default(), reporting).expect("valid spec");
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .expect("trace dir created")
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec![
                "test-aaw-p0.jsonl",
                "test-aaw-p1.jsonl",
                "test-bs-p0.jsonl",
                "test-bs-p1.jsonl"
            ]
        );
        let body = std::fs::read_to_string(dir.join("test-bs-p0.jsonl")).unwrap();
        assert!(body.lines().count() > 2, "expected a snapshot series");
        assert!(body.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        // First line is the allocation meta record.
        let meta = body.lines().next().unwrap();
        assert!(meta.contains("\"job\":\"test-bs-p0\""), "{meta}");
        assert!(meta.contains("\"engine_threads\":1"), "{meta}");
        assert!(meta.contains("\"point_workers\":"), "{meta}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn split_points_only_never_allocates_engine_threads() {
        assert_eq!(
            split_core_budget(CoreSplitPolicy::PointsOnly, 8, 3, 1_000_000),
            vec![1, 1, 1]
        );
        assert_eq!(
            split_core_budget(CoreSplitPolicy::PointsOnly, 2, 5, 1_000_000),
            vec![1, 1]
        );
    }

    #[test]
    fn split_auto_stays_point_parallel_when_jobs_cover_budget() {
        assert_eq!(
            split_core_budget(CoreSplitPolicy::Auto, 4, 4, 1_000_000),
            vec![1, 1, 1, 1]
        );
        assert_eq!(
            split_core_budget(CoreSplitPolicy::Auto, 4, 40, 1_000_000),
            vec![1, 1, 1, 1]
        );
    }

    #[test]
    fn split_auto_hands_leftover_cores_to_engines() {
        // 8 cores over 3 big jobs: remainder goes to the earliest
        // workers, and the allocation sums to the whole budget.
        let alloc = split_core_budget(CoreSplitPolicy::Auto, 8, 3, 1_000_000);
        assert_eq!(alloc, vec![3, 3, 2]);
        assert_eq!(alloc.iter().sum::<u32>(), 8);
        assert_eq!(
            split_core_budget(CoreSplitPolicy::Auto, 6, 2, 1_000_000),
            vec![3, 3]
        );
    }

    #[test]
    fn split_auto_keeps_small_populations_serial() {
        // Tiny engines cannot shard profitably, so leftover cores stay
        // idle rather than being burned on pool overhead.
        assert_eq!(
            split_core_budget(CoreSplitPolicy::Auto, 8, 3, 10),
            vec![1, 1, 1]
        );
    }

    #[test]
    fn split_degenerate_inputs_yield_one_serial_worker() {
        assert_eq!(split_core_budget(CoreSplitPolicy::Auto, 0, 0, 0), vec![1]);
        assert_eq!(
            split_core_budget(CoreSplitPolicy::PointsOnly, 0, 0, 0),
            vec![1]
        );
    }

    #[test]
    fn auto_split_matches_points_only_results() {
        // The split is a wall-clock knob only: a population big enough
        // to engage engine threading must produce bit-identical curves
        // under both policies (the engine's determinism contract).
        let base = SimConfig::paper_default()
            .with_sim_time(400.0)
            .with_db_size(500)
            .with_num_clients(2_500);
        let spec = FigureSpec {
            id: "split",
            paper_ref: "none",
            title: "split",
            x_label: "x",
            metric: MetricKind::QueriesAnswered,
            schemes: vec![Scheme::Aaw],
            points: vec![(1.0, base)],
            expected_shape: "n/a",
        };
        let budget = Some(3); // 1 job < 3 cores → Auto allocates [3]
        let auto = run_figure(
            &spec,
            RunScale {
                max_threads: budget,
                split: CoreSplitPolicy::Auto,
                ..RunScale::default()
            },
        )
        .expect("valid spec");
        let serial = run_figure(
            &spec,
            RunScale {
                max_threads: budget,
                split: CoreSplitPolicy::PointsOnly,
                ..RunScale::default()
            },
        )
        .expect("valid spec");
        let (a, s) = (&auto.series[0].points[0], &serial.series[0].points[0]);
        assert_eq!(a.engine_threads, 3, "Auto hands the whole budget over");
        assert_eq!(s.engine_threads, 1, "PointsOnly keeps engines serial");
        assert_eq!(a.y, s.y);
        // Full-metrics digest equality — the same pin the golden
        // determinism suite uses.
        assert_eq!(format!("{:?}", a.metrics), format!("{:?}", s.metrics));
    }

    #[test]
    fn scale_shrinks_horizon_but_not_below_floor() {
        let spec = tiny_spec();
        let one = Some(1);
        let full = run_figure(
            &spec,
            RunScale {
                time_factor: 1.0,
                max_threads: one,
                ..RunScale::default()
            },
        )
        .expect("valid spec");
        let small = run_figure(
            &spec,
            RunScale {
                time_factor: 0.1,
                max_threads: one,
                ..RunScale::default()
            },
        )
        .expect("valid spec");
        let yf = full.curve(Scheme::Bs)[0];
        let ys = small.curve(Scheme::Bs)[0];
        assert!(
            ys < yf,
            "shorter horizon answers fewer queries ({ys} !< {yf})"
        );
    }

    #[test]
    fn replications_produce_error_bars() {
        let spec = tiny_spec();
        let result =
            run_figure(&spec, RunScale::default().with_replications(3)).expect("valid spec");
        for s in &result.series {
            for p in &s.points {
                assert_eq!(p.replications, 3);
                assert!(p.y > 0.0);
                // Different seeds give slightly different throughput, so
                // the spread is positive (run-length quantisation could in
                // principle collapse it, but not at these sizes).
                assert!(p.y_stderr > 0.0, "expected spread, got {}", p.y_stderr);
            }
        }
    }

    #[test]
    fn single_replication_has_zero_stderr() {
        let spec = tiny_spec();
        let result = run_figure(&spec, RunScale::default()).expect("valid spec");
        assert!(result
            .series
            .iter()
            .flat_map(|s| &s.points)
            .all(|p| p.y_stderr == 0.0 && p.replications == 1));
    }
}
