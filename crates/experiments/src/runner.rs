//! Sweep execution.
//!
//! Runs every `(scheme, point)` job of a figure, fanning out over the
//! available cores with scoped threads and a crossbeam work queue. Each
//! job is an independent simulation (common random numbers: the same
//! master seed, so streams match across schemes), so the fan-out is
//! embarrassingly parallel; results are reassembled in spec order.

use crate::spec::{FigureResult, FigureSpec, PointResult, SeriesResult};
use crossbeam::channel;
use mobicache::{run, RunOptions};
use parking_lot::Mutex;
use std::num::NonZeroUsize;
use std::time::Instant;

/// Scales a spec for quick smoke runs and benches.
#[derive(Clone, Copy, Debug)]
pub struct RunScale {
    /// Multiplier on the simulated horizon (1.0 = the paper's 100 000 s).
    pub time_factor: f64,
    /// Cap on worker threads (`None` = all available cores).
    pub max_threads: Option<usize>,
    /// Independent replications per point (different derived seeds);
    /// curves report the mean and standard error. The paper plots single
    /// runs, so the default is 1.
    pub replications: u32,
}

impl Default for RunScale {
    fn default() -> Self {
        RunScale {
            time_factor: 1.0,
            max_threads: None,
            replications: 1,
        }
    }
}

impl RunScale {
    /// A reduced-horizon scale for smoke tests and benches.
    pub fn smoke() -> Self {
        RunScale {
            time_factor: 0.05,
            max_threads: None,
            replications: 1,
        }
    }

    /// Builder-style replication count override.
    pub fn with_replications(mut self, replications: u32) -> Self {
        assert!(replications > 0, "need at least one replication");
        self.replications = replications;
        self
    }
}

/// Executes every point of `spec` and reassembles the curves.
///
/// # Panics
/// Panics if any underlying simulation rejects its configuration — specs
/// are constructed from validated bases, so that is a programming error.
pub fn run_figure(spec: &FigureSpec, scale: RunScale) -> FigureResult {
    let started = Instant::now();
    // Job list: (series index, point index, config).
    let mut jobs = Vec::new();
    for (si, &scheme) in spec.schemes.iter().enumerate() {
        for (pi, (_, base)) in spec.points.iter().enumerate() {
            let mut cfg = base.clone().with_scheme(scheme);
            cfg.sim_time_secs = (cfg.sim_time_secs * scale.time_factor).max(
                // Never shrink below a few broadcast periods.
                10.0 * cfg.broadcast_period_secs,
            );
            jobs.push((si, pi, cfg));
        }
    }

    let threads = scale
        .max_threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
        .clamp(1, jobs.len().max(1));

    let results: Mutex<Vec<(usize, usize, PointResult)>> =
        Mutex::new(Vec::with_capacity(jobs.len()));
    let (tx, rx) = channel::unbounded();
    for job in jobs {
        tx.send(job).expect("queue open");
    }
    drop(tx);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let rx = rx.clone();
            let results = &results;
            let spec = &spec;
            scope.spawn(move || {
                while let Ok((si, pi, cfg)) = rx.recv() {
                    // Replications vary the seed only; everything else is
                    // common random numbers across schemes and points.
                    let mut ys = mobicache_sim::OnlineStats::new();
                    let mut first_metrics = None;
                    for rep in 0..scale.replications {
                        let rep_cfg = cfg
                            .clone()
                            .with_seed(cfg.seed.wrapping_add(rep as u64 * 0x9E37_79B9));
                        let outcome = run(&rep_cfg, RunOptions::default())
                            .unwrap_or_else(|e| panic!("{}: invalid config: {e}", spec.id));
                        ys.record(spec.metric.extract(&outcome.metrics));
                        if first_metrics.is_none() {
                            first_metrics = Some(outcome.metrics);
                        }
                    }
                    let n = ys.count() as f64;
                    let stderr = if n > 1.0 {
                        // Sample std dev over sqrt(n).
                        (ys.variance() * n / (n - 1.0)).sqrt() / n.sqrt()
                    } else {
                        0.0
                    };
                    let x = spec.points[pi].0;
                    results.lock().push((
                        si,
                        pi,
                        PointResult {
                            x,
                            y: ys.mean(),
                            y_stderr: stderr,
                            replications: scale.replications,
                            metrics: first_metrics.expect("at least one replication"),
                        },
                    ));
                }
            });
        }
    });

    let mut collected = results.into_inner();
    collected.sort_by_key(|&(si, pi, _)| (si, pi));
    let mut series: Vec<SeriesResult> = spec
        .schemes
        .iter()
        .map(|&scheme| SeriesResult {
            scheme,
            points: Vec::with_capacity(spec.points.len()),
        })
        .collect();
    for (si, _, point) in collected {
        series[si].points.push(point);
    }

    FigureResult {
        id: spec.id.to_string(),
        paper_ref: spec.paper_ref.to_string(),
        title: spec.title.to_string(),
        x_label: spec.x_label.to_string(),
        y_label: spec.metric.label().to_string(),
        series,
        wall_secs: started.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MetricKind;
    use mobicache_model::{Scheme, SimConfig};

    fn tiny_spec() -> FigureSpec {
        let mut base = SimConfig::paper_default();
        base.sim_time_secs = 2_000.0;
        base.db_size = 500;
        base.num_clients = 10;
        FigureSpec {
            id: "test",
            paper_ref: "none",
            title: "test",
            x_label: "x",
            metric: MetricKind::QueriesAnswered,
            schemes: vec![Scheme::Bs, Scheme::Aaw],
            points: vec![(1.0, base.clone()), (2.0, base)],
            expected_shape: "n/a",
        }
    }

    #[test]
    fn runner_preserves_order_and_shape() {
        let result = run_figure(&tiny_spec(), RunScale::default());
        assert_eq!(result.series.len(), 2);
        assert_eq!(result.series[0].scheme, Scheme::Bs);
        assert_eq!(result.series[1].scheme, Scheme::Aaw);
        for s in &result.series {
            assert_eq!(s.points.len(), 2);
            assert_eq!(s.points[0].x, 1.0);
            assert_eq!(s.points[1].x, 2.0);
            assert!(s.points.iter().all(|p| p.y > 0.0));
        }
        assert!(result.wall_secs > 0.0);
    }

    #[test]
    fn scale_shrinks_horizon_but_not_below_floor() {
        let spec = tiny_spec();
        let one = Some(1);
        let full = run_figure(
            &spec,
            RunScale { time_factor: 1.0, max_threads: one, replications: 1 },
        );
        let small = run_figure(
            &spec,
            RunScale { time_factor: 0.1, max_threads: one, replications: 1 },
        );
        let yf = full.curve(Scheme::Bs)[0];
        let ys = small.curve(Scheme::Bs)[0];
        assert!(ys < yf, "shorter horizon answers fewer queries ({ys} !< {yf})");
    }

    #[test]
    fn replications_produce_error_bars() {
        let spec = tiny_spec();
        let result = run_figure(&spec, RunScale::default().with_replications(3));
        for s in &result.series {
            for p in &s.points {
                assert_eq!(p.replications, 3);
                assert!(p.y > 0.0);
                // Different seeds give slightly different throughput, so
                // the spread is positive (run-length quantisation could in
                // principle collapse it, but not at these sizes).
                assert!(p.y_stderr > 0.0, "expected spread, got {}", p.y_stderr);
            }
        }
    }

    #[test]
    fn single_replication_has_zero_stderr() {
        let spec = tiny_spec();
        let result = run_figure(&spec, RunScale::default());
        assert!(result
            .series
            .iter()
            .flat_map(|s| &s.points)
            .all(|p| p.y_stderr == 0.0 && p.replications == 1));
    }
}
