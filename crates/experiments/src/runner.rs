//! Sweep execution.
//!
//! Runs every `(scheme, point)` job of a figure, fanning out over the
//! available cores with scoped threads pulling from an atomic job
//! counter. Each job is an independent simulation (common random
//! numbers: the same master seed, so streams match across schemes), so
//! the fan-out is embarrassingly parallel; results are reassembled in
//! spec order.
//!
//! [`RunReporting`] adds live progress (jobs done/total, per-job wall
//! time, ETA) and per-job interval-snapshot traces written as JSONL —
//! the `repro` binary's `--progress` and `--trace-dir` flags.

use crate::spec::{FigureResult, FigureSpec, PointResult, SeriesResult};
use mobicache::{run, IntervalSampler, RunOptions};
use mobicache_model::{ConfigError, Scheme};
use std::num::NonZeroUsize;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Scales a spec for quick smoke runs and benches.
#[derive(Clone, Copy, Debug)]
pub struct RunScale {
    /// Multiplier on the simulated horizon (1.0 = the paper's 100 000 s).
    pub time_factor: f64,
    /// Cap on worker threads (`None` = all available cores).
    pub max_threads: Option<usize>,
    /// Independent replications per point (different derived seeds);
    /// curves report the mean and standard error. The paper plots single
    /// runs, so the default is 1.
    pub replications: u32,
}

impl Default for RunScale {
    fn default() -> Self {
        RunScale {
            time_factor: 1.0,
            max_threads: None,
            replications: 1,
        }
    }
}

impl RunScale {
    /// A reduced-horizon scale for smoke tests and benches.
    pub fn smoke() -> Self {
        RunScale {
            time_factor: 0.05,
            max_threads: None,
            replications: 1,
        }
    }

    /// Builder-style replication count override.
    pub fn with_replications(mut self, replications: u32) -> Self {
        assert!(replications > 0, "need at least one replication");
        self.replications = replications;
        self
    }
}

/// A finished job, as reported to the progress callback.
#[derive(Clone, Copy, Debug)]
pub struct Progress {
    /// Jobs finished so far (including this one).
    pub done: usize,
    /// Total jobs in the figure.
    pub total: usize,
    /// The finished job's scheme.
    pub scheme: Scheme,
    /// The finished job's X value.
    pub x: f64,
    /// Wall-clock seconds the job took (all replications).
    pub job_wall_secs: f64,
    /// Wall-clock seconds since the figure started.
    pub elapsed_secs: f64,
    /// Estimated seconds remaining, from the mean job rate so far.
    pub eta_secs: f64,
}

/// Observation options for a figure run: live progress and JSONL
/// interval-snapshot traces.
#[derive(Clone, Copy)]
pub struct RunReporting<'a> {
    /// Called after every finished job. Invoked from worker threads, so
    /// it must be `Sync`; calls are serialized by the runner.
    pub on_progress: Option<&'a (dyn Fn(Progress) + Sync)>,
    /// Directory receiving one `<figure>-<scheme>-p<point>.jsonl` trace
    /// per job (interval snapshots of the first replication). Created if
    /// missing; write failures are reported to stderr, not fatal.
    pub trace_dir: Option<&'a Path>,
    /// Snapshot stride for traces, in broadcast periods.
    pub trace_every: u32,
}

impl Default for RunReporting<'_> {
    fn default() -> Self {
        RunReporting {
            on_progress: None,
            trace_dir: None,
            trace_every: 10,
        }
    }
}

impl std::fmt::Debug for RunReporting<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunReporting")
            .field("on_progress", &self.on_progress.is_some())
            .field("trace_dir", &self.trace_dir)
            .field("trace_every", &self.trace_every)
            .finish()
    }
}

/// Executes every point of `spec` and reassembles the curves.
///
/// # Errors
/// Returns the typed validation error if any job's configuration is
/// inconsistent (checked up front, before any simulation runs).
pub fn run_figure(spec: &FigureSpec, scale: RunScale) -> Result<FigureResult, ConfigError> {
    run_figure_with(spec, scale, RunReporting::default())
}

/// [`run_figure`] with live progress and trace output.
///
/// # Errors
/// Returns the typed validation error if any job's configuration is
/// inconsistent (checked up front, before any simulation runs).
pub fn run_figure_with(
    spec: &FigureSpec,
    scale: RunScale,
    reporting: RunReporting<'_>,
) -> Result<FigureResult, ConfigError> {
    let started = Instant::now();
    // Job list: (series index, point index, config).
    let mut jobs = Vec::new();
    for (si, &scheme) in spec.schemes.iter().enumerate() {
        for (pi, (_, base)) in spec.points.iter().enumerate() {
            let mut cfg = base.clone().with_scheme(scheme);
            cfg.sim_time_secs = (cfg.sim_time_secs * scale.time_factor).max(
                // Never shrink below a few broadcast periods.
                10.0 * cfg.broadcast_period_secs,
            );
            cfg.validate()?; // fail fast, before spawning workers
            jobs.push((si, pi, cfg));
        }
    }
    let total = jobs.len();

    if let Some(dir) = reporting.trace_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create trace dir {}: {e}", dir.display());
        }
    }

    let threads = scale
        .max_threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
        .clamp(1, total.max(1));

    let results: Mutex<Vec<(usize, usize, PointResult)>> = Mutex::new(Vec::with_capacity(total));
    let next_job = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    // Serializes progress callbacks so lines never interleave.
    let progress_gate = Mutex::new(());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let jobs = &jobs;
            let next_job = &next_job;
            let done = &done;
            let progress_gate = &progress_gate;
            let results = &results;
            let spec = &spec;
            let reporting = &reporting;
            scope.spawn(move || {
                loop {
                    let idx = next_job.fetch_add(1, Ordering::Relaxed);
                    let Some(&(si, pi, ref cfg)) = jobs.get(idx) else {
                        break;
                    };
                    let job_started = Instant::now();
                    // Replications vary the seed only; everything else is
                    // common random numbers across schemes and points.
                    let mut ys = mobicache_sim::OnlineStats::new();
                    let mut first_metrics = None;
                    // Snapshot trace of the first replication only (the
                    // probe does not perturb it — see `mobicache::probe`).
                    let mut sampler = reporting
                        .trace_dir
                        .map(|_| IntervalSampler::every(reporting.trace_every.max(1)));
                    for rep in 0..scale.replications {
                        let rep_cfg = cfg
                            .clone()
                            .with_seed(cfg.seed.wrapping_add(rep as u64 * 0x9E37_79B9));
                        let opts = match (rep, sampler.as_mut()) {
                            (0, Some(s)) => RunOptions::new().probe(s),
                            _ => RunOptions::default(),
                        };
                        // Validated above; a rejection here is a bug.
                        let outcome = run(&rep_cfg, opts)
                            .unwrap_or_else(|e| panic!("{}: invalid config: {e}", spec.id));
                        ys.record(spec.metric.extract(&outcome.metrics));
                        if first_metrics.is_none() {
                            first_metrics = Some(outcome.metrics);
                        }
                    }
                    let scheme = spec.schemes[si];
                    if let (Some(dir), Some(s)) = (reporting.trace_dir, sampler.as_ref()) {
                        let name = format!("{}-{:?}-p{pi}.jsonl", spec.id, scheme).to_lowercase();
                        let path = dir.join(name);
                        if let Err(e) = std::fs::write(&path, s.to_jsonl()) {
                            eprintln!("warning: cannot write trace {}: {e}", path.display());
                        }
                    }
                    let job_wall_secs = job_started.elapsed().as_secs_f64();
                    let n = ys.count() as f64;
                    let stderr = if n > 1.0 {
                        // Sample std dev over sqrt(n).
                        (ys.variance() * n / (n - 1.0)).sqrt() / n.sqrt()
                    } else {
                        0.0
                    };
                    let x = spec.points[pi].0;
                    results.lock().unwrap().push((
                        si,
                        pi,
                        PointResult {
                            x,
                            y: ys.mean(),
                            y_stderr: stderr,
                            replications: scale.replications,
                            wall_secs: job_wall_secs,
                            metrics: first_metrics.expect("at least one replication"),
                        },
                    ));
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    if let Some(cb) = reporting.on_progress {
                        let elapsed_secs = started.elapsed().as_secs_f64();
                        let remaining = total.saturating_sub(finished) as f64;
                        let eta_secs = elapsed_secs / finished as f64 * remaining;
                        let _gate = progress_gate.lock().unwrap();
                        cb(Progress {
                            done: finished,
                            total,
                            scheme,
                            x,
                            job_wall_secs,
                            elapsed_secs,
                            eta_secs,
                        });
                    }
                }
            });
        }
    });

    let mut collected = results.into_inner().expect("no worker panicked");
    collected.sort_by_key(|&(si, pi, _)| (si, pi));
    let mut series: Vec<SeriesResult> = spec
        .schemes
        .iter()
        .map(|&scheme| SeriesResult {
            scheme,
            points: Vec::with_capacity(spec.points.len()),
        })
        .collect();
    for (si, _, point) in collected {
        series[si].points.push(point);
    }

    Ok(FigureResult {
        id: spec.id.to_string(),
        paper_ref: spec.paper_ref.to_string(),
        title: spec.title.to_string(),
        x_label: spec.x_label.to_string(),
        y_label: spec.metric.label().to_string(),
        series,
        wall_secs: started.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MetricKind;
    use mobicache_model::{ConfigError, Scheme, SimConfig};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tiny_spec() -> FigureSpec {
        let base = SimConfig::paper_default()
            .with_sim_time(2_000.0)
            .with_db_size(500)
            .with_num_clients(10);
        FigureSpec {
            id: "test",
            paper_ref: "none",
            title: "test",
            x_label: "x",
            metric: MetricKind::QueriesAnswered,
            schemes: vec![Scheme::Bs, Scheme::Aaw],
            points: vec![(1.0, base.clone()), (2.0, base)],
            expected_shape: "n/a",
        }
    }

    #[test]
    fn runner_preserves_order_and_shape() {
        let result = run_figure(&tiny_spec(), RunScale::default()).expect("valid spec");
        assert_eq!(result.series.len(), 2);
        assert_eq!(result.series[0].scheme, Scheme::Bs);
        assert_eq!(result.series[1].scheme, Scheme::Aaw);
        for s in &result.series {
            assert_eq!(s.points.len(), 2);
            assert_eq!(s.points[0].x, 1.0);
            assert_eq!(s.points[1].x, 2.0);
            assert!(s.points.iter().all(|p| p.y > 0.0));
            assert!(s.points.iter().all(|p| p.wall_secs > 0.0));
        }
        assert!(result.wall_secs > 0.0);
    }

    #[test]
    fn invalid_point_config_is_a_typed_error() {
        let mut spec = tiny_spec();
        spec.points[1].1.db_size = 0;
        match run_figure(&spec, RunScale::default()) {
            Err(ConfigError::ZeroCount { field }) => assert_eq!(field, "db_size"),
            other => panic!("expected ZeroCount, got {other:?}"),
        }
    }

    #[test]
    fn progress_callback_sees_every_job() {
        let spec = tiny_spec();
        let calls = AtomicUsize::new(0);
        let max_done = AtomicUsize::new(0);
        let reporting = RunReporting {
            on_progress: Some(&|p: Progress| {
                calls.fetch_add(1, Ordering::Relaxed);
                max_done.fetch_max(p.done, Ordering::Relaxed);
                assert_eq!(p.total, 4);
                assert!(p.done >= 1 && p.done <= 4);
                assert!(p.job_wall_secs > 0.0);
                assert!(p.eta_secs >= 0.0);
            }),
            ..RunReporting::default()
        };
        run_figure_with(&spec, RunScale::default(), reporting).expect("valid spec");
        assert_eq!(calls.load(Ordering::Relaxed), 4);
        assert_eq!(max_done.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn trace_dir_receives_one_jsonl_per_job() {
        let spec = tiny_spec();
        let dir = std::env::temp_dir().join(format!("mobicache-trace-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let reporting = RunReporting {
            trace_dir: Some(&dir),
            trace_every: 5,
            ..RunReporting::default()
        };
        run_figure_with(&spec, RunScale::default(), reporting).expect("valid spec");
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .expect("trace dir created")
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec![
                "test-aaw-p0.jsonl",
                "test-aaw-p1.jsonl",
                "test-bs-p0.jsonl",
                "test-bs-p1.jsonl"
            ]
        );
        let body = std::fs::read_to_string(dir.join("test-bs-p0.jsonl")).unwrap();
        assert!(body.lines().count() > 2, "expected a snapshot series");
        assert!(body.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scale_shrinks_horizon_but_not_below_floor() {
        let spec = tiny_spec();
        let one = Some(1);
        let full = run_figure(
            &spec,
            RunScale {
                time_factor: 1.0,
                max_threads: one,
                replications: 1,
            },
        )
        .expect("valid spec");
        let small = run_figure(
            &spec,
            RunScale {
                time_factor: 0.1,
                max_threads: one,
                replications: 1,
            },
        )
        .expect("valid spec");
        let yf = full.curve(Scheme::Bs)[0];
        let ys = small.curve(Scheme::Bs)[0];
        assert!(
            ys < yf,
            "shorter horizon answers fewer queries ({ys} !< {yf})"
        );
    }

    #[test]
    fn replications_produce_error_bars() {
        let spec = tiny_spec();
        let result =
            run_figure(&spec, RunScale::default().with_replications(3)).expect("valid spec");
        for s in &result.series {
            for p in &s.points {
                assert_eq!(p.replications, 3);
                assert!(p.y > 0.0);
                // Different seeds give slightly different throughput, so
                // the spread is positive (run-length quantisation could in
                // principle collapse it, but not at these sizes).
                assert!(p.y_stderr > 0.0, "expected spread, got {}", p.y_stderr);
            }
        }
    }

    #[test]
    fn single_replication_has_zero_stderr() {
        let spec = tiny_spec();
        let result = run_figure(&spec, RunScale::default()).expect("valid spec");
        assert!(result
            .series
            .iter()
            .flat_map(|s| &s.points)
            .all(|p| p.y_stderr == 0.0 && p.replications == 1));
    }
}
