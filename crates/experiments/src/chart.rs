//! ASCII chart rendering for figure results.
//!
//! Renders each figure as the paper renders it — one curve per scheme —
//! in a fixed-size terminal grid, plus a tabular view with the exact
//! numbers (the paper's gnuplot figures become our tables + charts).

use crate::spec::FigureResult;
use std::fmt::Write as _;

const WIDTH: usize = 72;
const HEIGHT: usize = 20;
const GLYPHS: [char; 7] = ['*', '+', 'x', 'o', '#', '@', '%'];

/// Renders the figure as an ASCII chart with a legend.
pub fn render(fig: &FigureResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {} ({}) ==", fig.title, fig.paper_ref);

    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for s in &fig.series {
        for p in &s.points {
            xmin = xmin.min(p.x);
            xmax = xmax.max(p.x);
            ymin = ymin.min(p.y);
            ymax = ymax.max(p.y);
        }
    }
    if !xmin.is_finite() || !ymin.is_finite() {
        let _ = writeln!(out, "(no data)");
        return out;
    }
    // Give the Y axis a little headroom and keep zero visible when close.
    if ymin > 0.0 && ymin < 0.25 * ymax {
        ymin = 0.0;
    }
    if (ymax - ymin).abs() < f64::EPSILON {
        ymax = ymin + 1.0;
    }
    if (xmax - xmin).abs() < f64::EPSILON {
        xmax = xmin + 1.0;
    }

    let mut grid = vec![vec![' '; WIDTH]; HEIGHT];
    for (si, s) in fig.series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for p in &s.points {
            let cx = ((p.x - xmin) / (xmax - xmin) * (WIDTH - 1) as f64).round() as usize;
            let cy = ((p.y - ymin) / (ymax - ymin) * (HEIGHT - 1) as f64).round() as usize;
            let row = HEIGHT - 1 - cy.min(HEIGHT - 1);
            let col = cx.min(WIDTH - 1);
            // Later series overwrite — acceptable for a terminal sketch.
            grid[row][col] = glyph;
        }
    }

    let _ = writeln!(out, "{:>12} |", format_val(ymax));
    for (i, row) in grid.iter().enumerate() {
        let label = if i == HEIGHT - 1 {
            format_val(ymin)
        } else {
            String::new()
        };
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{label:>12} |{line}");
    }
    let _ = writeln!(out, "{:>13}{}", "+", "-".repeat(WIDTH));
    let _ = writeln!(
        out,
        "{:>13}{:<36}{:>36}",
        "",
        format_val(xmin),
        format_val(xmax)
    );
    let _ = writeln!(out, "{:>14}x: {}   y: {}", "", fig.x_label, fig.y_label);
    for (si, s) in fig.series.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:>14}{} = {}",
            "",
            GLYPHS[si % GLYPHS.len()],
            s.scheme.label()
        );
    }
    out
}

/// Renders the figure as an aligned data table (x in rows, one column
/// per scheme) — the numbers behind the chart.
pub fn render_table(fig: &FigureResult) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:>14}", fig.x_label_short());
    for s in &fig.series {
        let _ = write!(out, "{:>14}", s.scheme.short());
    }
    let _ = writeln!(out);
    let n = fig.series.first().map_or(0, |s| s.points.len());
    for i in 0..n {
        let x = fig.series[0].points[i].x;
        let _ = write!(out, "{:>14}", format_val(x));
        for s in &fig.series {
            let _ = write!(out, "{:>14}", format_val(s.points[i].y));
        }
        let _ = writeln!(out);
    }
    out
}

impl FigureResult {
    fn x_label_short(&self) -> String {
        let mut label: String = self.x_label.chars().take(13).collect();
        if label.len() < self.x_label.len() {
            label.push('…');
        }
        label
    }
}

fn format_val(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 10_000.0 {
        format!("{:.0}", v)
    } else if v.abs() >= 10.0 {
        format!("{:.1}", v)
    } else {
        format!("{:.3}", v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{PointResult, SeriesResult};
    use mobicache::Metrics;
    use mobicache_model::Scheme;

    fn fig() -> FigureResult {
        let mk = |x: f64, y: f64| PointResult {
            x,
            y,
            y_stderr: 0.0,
            replications: 1,
            wall_secs: 0.0,
            engine_threads: 1,
            metrics: Metrics::default(),
        };
        FigureResult {
            id: "t".into(),
            paper_ref: "Figure 0".into(),
            title: "test figure".into(),
            x_label: "X".into(),
            y_label: "Y".into(),
            series: vec![
                SeriesResult {
                    scheme: Scheme::Aaw,
                    points: vec![mk(1.0, 10.0), mk(2.0, 20.0)],
                },
                SeriesResult {
                    scheme: Scheme::Bs,
                    points: vec![mk(1.0, 5.0), mk(2.0, 2.0)],
                },
            ],
            wall_secs: 0.1,
        }
    }

    #[test]
    fn chart_contains_legend_and_axes() {
        let s = render(&fig());
        assert!(s.contains("test figure"));
        assert!(s.contains("adaptive with adjusting window"));
        assert!(s.contains("bit sequences"));
        assert!(s.contains("x: X"));
    }

    #[test]
    fn table_lists_every_point() {
        let t = render_table(&fig());
        assert!(t.contains("aaw"));
        assert!(t.contains("bs"));
        assert!(t.contains("10.0"));
        assert!(t.contains("2.000"));
        assert_eq!(t.lines().count(), 3); // header + 2 rows
    }

    #[test]
    fn empty_figure_does_not_panic() {
        let empty = FigureResult {
            series: vec![],
            ..fig()
        };
        assert!(render(&empty).contains("no data"));
    }
}
