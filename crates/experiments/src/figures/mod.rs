//! The experiment registry: one module per paper figure plus the
//! ablation extensions (see DESIGN.md §4 for the index).

pub mod ablations;
pub mod common;
pub mod extensions;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;

use crate::spec::FigureSpec;

/// Every paper figure, in order.
pub fn paper_figures() -> Vec<FigureSpec> {
    vec![
        fig05::spec(),
        fig06::spec(),
        fig07::spec(),
        fig08::spec(),
        fig09::spec(),
        fig10::spec(),
        fig11::spec(),
        fig12::spec(),
        fig13::spec(),
        fig14::spec(),
        fig15::spec(),
        fig16::spec(),
    ]
}

/// The ablation extensions beyond the paper's plots.
pub fn ablation_figures() -> Vec<FigureSpec> {
    ablations::all()
}

/// The extension experiments (future work, energy, GCORE, robustness).
pub fn extension_figures() -> Vec<FigureSpec> {
    extensions::all()
}

/// Every experiment the harness knows.
pub fn all_figures() -> Vec<FigureSpec> {
    let mut v = paper_figures();
    v.extend(ablation_figures());
    v.extend(extension_figures());
    v
}

/// Looks up a spec by id.
pub fn by_id(id: &str) -> Option<FigureSpec> {
    all_figures().into_iter().find(|s| s.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_paper_figures() {
        let figs = paper_figures();
        assert_eq!(figs.len(), 12);
        for (i, f) in figs.iter().enumerate() {
            assert_eq!(f.id, format!("fig{:02}", i + 5), "ordering broken");
            assert!(!f.points.is_empty());
            assert!(!f.schemes.is_empty());
            for (_, cfg) in &f.points {
                cfg.validate().unwrap_or_else(|e| panic!("{}: {e}", f.id));
            }
        }
    }

    #[test]
    fn ids_are_unique() {
        let figs = all_figures();
        let mut ids: Vec<_> = figs.iter().map(|f| f.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), figs.len());
    }

    #[test]
    fn lookup_by_id() {
        assert!(by_id("fig05").is_some());
        assert!(by_id("abl-window").is_some());
        assert!(by_id("nope").is_none());
    }

    #[test]
    fn paper_figures_use_the_paper_scheme_set() {
        for f in paper_figures() {
            assert_eq!(f.schemes.len(), 4, "{}", f.id);
        }
    }
}
