//! Figure 16: asymmetric communication environment, HOTCOLD workload —
//! queries answered vs uplink bandwidth.

use super::common;
use crate::spec::{FigureSpec, MetricKind};
use mobicache_model::Workload;

/// The spec.
pub fn spec() -> FigureSpec {
    FigureSpec {
        id: "fig16",
        paper_ref: "Figure 16",
        title: "Asymmetric environment, HOTCOLD workload: throughput vs uplink \
                bandwidth (N=5*10^3, mean disc 4000 s, buffer 2 %)",
        x_label: "Uplink Bandwidth (bits/second)",
        metric: MetricKind::QueriesAnswered,
        schemes: common::paper_schemes(),
        points: common::uplink_points(common::asymmetric_base(Workload::hotcold())),
        expected_shape: "Same crossover as Figure 15 at higher absolute throughput \
                         (the hot set makes caching effective).",
    }
}
