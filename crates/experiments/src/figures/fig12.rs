//! Figure 12: HOTCOLD workload — validity uplink cost vs database size.

use super::common;
use crate::spec::{FigureSpec, MetricKind};

/// The spec.
pub fn spec() -> FigureSpec {
    FigureSpec {
        id: "fig12",
        paper_ref: "Figure 12",
        title: "HOTCOLD workload: uplink validity cost vs database size \
                (p=0.1, mean disc 400 s, buffer 2 %)",
        x_label: "Database Size",
        metric: MetricKind::ValidityBitsPerQuery,
        schemes: common::paper_schemes(),
        points: common::db_points(common::hotcold_dbsweep_base()),
        expected_shape: "Simple checking highest and growing with N; adaptive methods \
                         low and flat; BS zero.",
    }
}
