//! Figure 10: UNIFORM workload — validity uplink cost vs mean
//! disconnection time.

use super::common;
use crate::spec::{FigureSpec, MetricKind};

/// The spec.
pub fn spec() -> FigureSpec {
    FigureSpec {
        id: "fig10",
        paper_ref: "Figure 10",
        title: "UNIFORM workload: uplink validity cost vs mean disconnection time \
                (N=10^4, p=0.1, buffer 1 %)",
        x_label: "Mean Disconnection Time",
        metric: MetricKind::ValidityBitsPerQuery,
        schemes: common::paper_schemes(),
        points: common::disc_points(common::uniform_discsweep_base(), &common::DISC_TIMES_LONG),
        expected_shape: "Simple checking highest; adaptive methods low and flat; BS zero.",
    }
}
