//! Figure 8: UNIFORM workload — validity uplink cost vs disconnection
//! probability.

use super::common;
use crate::spec::{FigureSpec, MetricKind};

/// The spec.
pub fn spec() -> FigureSpec {
    FigureSpec {
        id: "fig08",
        paper_ref: "Figure 8",
        title: "UNIFORM workload: uplink validity cost vs disconnection probability \
                (N=10^4, mean disc 400 s, buffer 2 %)",
        x_label: "Probability of Disconnection in an Interval",
        metric: MetricKind::ValidityBitsPerQuery,
        schemes: common::paper_schemes(),
        points: common::prob_points(common::uniform_probsweep_base()),
        expected_shape: "Costs grow with p for every uplinking scheme; simple checking \
                         grows fastest, the adaptive methods stay low and close to each \
                         other, BS stays at zero.",
    }
}
