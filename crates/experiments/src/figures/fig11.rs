//! Figure 11: HOTCOLD workload — queries answered vs database size.

use super::common;
use crate::spec::{FigureSpec, MetricKind};

/// The spec.
pub fn spec() -> FigureSpec {
    FigureSpec {
        id: "fig11",
        paper_ref: "Figure 11",
        title: "HOTCOLD workload: throughput vs database size \
                (p=0.1, mean disc 400 s, buffer 2 %)",
        x_label: "Database Size",
        metric: MetricKind::QueriesAnswered,
        schemes: common::paper_schemes(),
        points: common::db_points(common::hotcold_dbsweep_base()),
        expected_shape: "Throughput low below N=5000 (the 2 % cache is smaller than the \
                         100-item hot set), then caching pays off: simple checking best, \
                         AAW second, AFW third, BS worst and falling with N.",
    }
}
