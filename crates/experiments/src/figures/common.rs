//! Shared sweep building blocks.

use mobicache_model::{Scheme, SimConfig, Workload};

/// The four schemes of every paper plot, in the paper's legend order.
pub fn paper_schemes() -> Vec<Scheme> {
    vec![Scheme::Aaw, Scheme::Afw, Scheme::SimpleChecking, Scheme::Bs]
}

/// Database sizes swept in Figures 5/6 and 11/12 ("1000 to 80000 data
/// items", Table 1).
pub const DB_SIZES: [u32; 7] = [1_000, 5_000, 10_000, 20_000, 40_000, 60_000, 80_000];

/// Disconnection probabilities swept in Figures 7/8 and 13/14.
pub const DISC_PROBS: [f64; 8] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];

/// Mean disconnection times for Figure 9 (x axis 200–2000 s).
pub const DISC_TIMES_SHORT: [f64; 7] = [200.0, 500.0, 800.0, 1_100.0, 1_400.0, 1_700.0, 2_000.0];

/// Mean disconnection times for Figure 10 (x axis up to 8000 s).
pub const DISC_TIMES_LONG: [f64; 7] = [500.0, 1_000.0, 2_000.0, 3_000.0, 4_000.0, 6_000.0, 8_000.0];

/// Uplink bandwidths for the asymmetric-environment Figures 15/16
/// (100–1000 bits/second).
pub const UPLINK_BPS: [f64; 10] = [
    100.0, 200.0, 300.0, 400.0, 500.0, 600.0, 700.0, 800.0, 900.0, 1_000.0,
];

/// Base config for the Figure 5/6 sweep: UNIFORM workload, p = 0.1,
/// mean disconnection 4000 s, 2 % buffers.
pub fn uniform_dbsweep_base() -> SimConfig {
    let mut cfg = SimConfig::paper_default().with_workload(Workload::uniform());
    cfg.p_disconnect = 0.1;
    cfg.mean_disconnect_secs = 4_000.0;
    cfg.cache_fraction = 0.02;
    cfg
}

/// Base config for the Figure 7/8 sweep: UNIFORM, N = 10⁴, mean
/// disconnection 400 s, 2 % buffers.
pub fn uniform_probsweep_base() -> SimConfig {
    let mut cfg = SimConfig::paper_default()
        .with_workload(Workload::uniform())
        .with_db_size(10_000);
    cfg.mean_disconnect_secs = 400.0;
    cfg.cache_fraction = 0.02;
    cfg
}

/// Base config for the Figure 9/10 sweep: UNIFORM, N = 10⁴, p = 0.1,
/// 1 % buffers.
pub fn uniform_discsweep_base() -> SimConfig {
    let mut cfg = SimConfig::paper_default()
        .with_workload(Workload::uniform())
        .with_db_size(10_000);
    cfg.p_disconnect = 0.1;
    cfg.cache_fraction = 0.01;
    cfg
}

/// Base config for the Figure 11/12 sweep: HOTCOLD, p = 0.1, mean
/// disconnection 400 s, 2 % buffers.
pub fn hotcold_dbsweep_base() -> SimConfig {
    let mut cfg = SimConfig::paper_default().with_workload(Workload::hotcold());
    cfg.p_disconnect = 0.1;
    cfg.mean_disconnect_secs = 400.0;
    cfg.cache_fraction = 0.02;
    cfg
}

/// Base config for the Figure 13/14 sweep: HOTCOLD, N = 10⁴, mean
/// disconnection 400 s, 2 % buffers.
pub fn hotcold_probsweep_base() -> SimConfig {
    let mut cfg = SimConfig::paper_default()
        .with_workload(Workload::hotcold())
        .with_db_size(10_000);
    cfg.mean_disconnect_secs = 400.0;
    cfg.cache_fraction = 0.02;
    cfg
}

/// Base config for the Figure 15/16 sweep: N = 5·10³, mean disconnection
/// 4000 s, p = 0.1, 2 % buffers; the uplink bandwidth is the swept
/// variable.
pub fn asymmetric_base(workload: Workload) -> SimConfig {
    let mut cfg = SimConfig::paper_default()
        .with_workload(workload)
        .with_db_size(5_000);
    cfg.mean_disconnect_secs = 4_000.0;
    cfg.p_disconnect = 0.1;
    cfg.cache_fraction = 0.02;
    cfg
}

/// Sweeps database size over a base config.
pub fn db_points(base: SimConfig) -> Vec<(f64, SimConfig)> {
    DB_SIZES
        .iter()
        .map(|&n| (n as f64, base.clone().with_db_size(n)))
        .collect()
}

/// Sweeps disconnection probability over a base config.
pub fn prob_points(base: SimConfig) -> Vec<(f64, SimConfig)> {
    DISC_PROBS
        .iter()
        .map(|&p| {
            let mut cfg = base.clone();
            cfg.p_disconnect = p;
            (p, cfg)
        })
        .collect()
}

/// Sweeps mean disconnection time over a base config.
pub fn disc_points(base: SimConfig, times: &[f64]) -> Vec<(f64, SimConfig)> {
    times
        .iter()
        .map(|&d| {
            let mut cfg = base.clone();
            cfg.mean_disconnect_secs = d;
            (d, cfg)
        })
        .collect()
}

/// Sweeps uplink bandwidth over a base config.
pub fn uplink_points(base: SimConfig) -> Vec<(f64, SimConfig)> {
    UPLINK_BPS
        .iter()
        .map(|&bw| {
            let mut cfg = base.clone();
            cfg.uplink_bps = bw;
            (bw, cfg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_bases_validate() {
        uniform_dbsweep_base().validate().unwrap();
        uniform_probsweep_base().validate().unwrap();
        uniform_discsweep_base().validate().unwrap();
        hotcold_dbsweep_base().validate().unwrap();
        hotcold_probsweep_base().validate().unwrap();
        asymmetric_base(Workload::uniform()).validate().unwrap();
    }

    #[test]
    fn sweeps_produce_expected_counts() {
        assert_eq!(db_points(uniform_dbsweep_base()).len(), 7);
        assert_eq!(prob_points(uniform_probsweep_base()).len(), 8);
        assert_eq!(
            uplink_points(asymmetric_base(Workload::hotcold())).len(),
            10
        );
        assert_eq!(
            disc_points(uniform_discsweep_base(), &DISC_TIMES_SHORT).len(),
            7
        );
    }

    #[test]
    fn db_sweep_sets_db_size() {
        let pts = db_points(uniform_dbsweep_base());
        assert_eq!(pts[0].1.db_size, 1_000);
        assert_eq!(pts[6].1.db_size, 80_000);
    }
}
