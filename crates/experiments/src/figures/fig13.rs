//! Figure 13: HOTCOLD workload — queries answered vs disconnection
//! probability.

use super::common;
use crate::spec::{FigureSpec, MetricKind};

/// The spec.
pub fn spec() -> FigureSpec {
    FigureSpec {
        id: "fig13",
        paper_ref: "Figure 13",
        title: "HOTCOLD workload: throughput vs disconnection probability \
                (N=10^4, mean disc 400 s, buffer 2 %)",
        x_label: "Probability of Disconnection in an Interval",
        metric: MetricKind::QueriesAnswered,
        schemes: common::paper_schemes(),
        points: common::prob_points(common::hotcold_probsweep_base()),
        expected_shape: "Throughput declines as p grows; simple checking >= AAW >= AFW > BS.",
    }
}
