//! Figure 15: asymmetric communication environment, UNIFORM workload —
//! queries answered vs uplink bandwidth.

use super::common;
use crate::spec::{FigureSpec, MetricKind};
use mobicache_model::Workload;

/// The spec.
pub fn spec() -> FigureSpec {
    FigureSpec {
        id: "fig15",
        paper_ref: "Figure 15",
        title: "Asymmetric environment, UNIFORM workload: throughput vs uplink \
                bandwidth (N=5*10^3, mean disc 4000 s, buffer 2 %)",
        x_label: "Uplink Bandwidth (bits/second)",
        metric: MetricKind::QueriesAnswered,
        schemes: common::paper_schemes(),
        points: common::uplink_points(common::asymmetric_base(Workload::uniform())),
        expected_shape: "Every curve rises with uplink bandwidth and flattens at the \
                         downlink-bound plateau; below roughly 200 bits/second the \
                         adaptive methods overtake simple checking (whose big check \
                         messages starve the uplink).",
    }
}
