//! Extension experiments beyond the paper: its §6 future work
//! (multi-channel downlinks), its §1 motivation (client energy), the
//! related-work GCORE idea, and a robustness sweep under report loss.

use super::common;
use crate::spec::{FigureSpec, MetricKind};
use mobicache_model::{CellTopology, ChannelFaults, DownlinkTopology, Scheme, SimConfig, Workload};

/// All extension specs.
pub fn all() -> Vec<FigureSpec> {
    vec![
        energy(),
        multichannel(),
        gcore(),
        report_loss(),
        snoop(),
        burst(),
        handoff(),
        handoff_uplink(),
    ]
}

/// Handoff rates swept by `ext-handoff`/`ext-handoff-uplink`, in
/// handoffs per hour per client. A rate maps to a mean cell residency
/// of `3600 / rate` seconds against a 20 s broadcast period; `0` keeps
/// the same 4-cell topology but pushes the residency far past any
/// horizon, so no re-association ever fires. The topology is held
/// fixed across the sweep on purpose: 4 cells mean 4 downlinks, so
/// letting the cell count vary with the rate would conflate aggregate
/// channel capacity with mobility — the one independent variable here
/// is the handoff rate.
const HANDOFF_RATES: [f64; 6] = [0.0, 4.0, 8.0, 16.0, 36.0, 72.0];

/// The multi-cell mobility base behind the handoff sweep: the stress
/// workload spread over 4 cells, a 12 s blackout per re-association,
/// and a roam coin that lands the client in another cell four times
/// out of five (an expiry that "stays" re-associates in place — same
/// blackout, no cell change — so the x axis counts *blackouts*, the
/// thing every scheme actually pays for).
fn handoff_points() -> Vec<(f64, SimConfig)> {
    HANDOFF_RATES
        .iter()
        .map(|&rate| {
            let cfg = stress_base().with_cells(CellTopology {
                cells: 4,
                // Beyond any horizon at rate 0: one residency clock is
                // scheduled per client and never expires.
                mean_residency_secs: if rate > 0.0 { 3_600.0 / rate } else { 1.0e12 },
                handoff_secs: 12.0,
                p_roam: 0.8,
            });
            (rate, cfg)
        })
        .collect()
}

/// `ext-handoff`: throughput vs handoff rate across a 4-cell topology.
/// Every roamer arrives in the destination cell with a `Tlb` that means
/// nothing there — the mobility-triggered incarnation of the paper's
/// long-disconnection problem.
pub fn handoff() -> FigureSpec {
    FigureSpec {
        id: "ext-handoff",
        paper_ref: "extension (multi-cell mobility)",
        title: "Client mobility: throughput vs handoff rate (HOTCOLD, N=10^4, p=0.3, \
                disc 400 s; 4 cells, 12 s blackout, 80% roam)",
        x_label: "Handoff rate (handoffs/hour per client; 0 = same topology, no mobility)",
        metric: MetricKind::QueriesAnswered,
        schemes: Scheme::ALL.to_vec(),
        points: handoff_points(),
        expected_shape: "Every handoff is a forced disconnection, so all curves fall \
                         with the rate; the window-report schemes (TS, AT, SIG) fall \
                         hardest once the blackout plus residency churn outruns their \
                         window, while BS and the checking schemes shrug off the cell \
                         change (any report or a check re-validates them). AFW/AAW \
                         track BS closely by design: the roamer's Tlb triggers the \
                         long-disconnection recovery in the new cell.",
    }
}

/// `ext-handoff-uplink`: the cost axis of the same sweep — total uplink
/// traffic vs handoff rate. Roamer re-announcements (Tlbs, checks,
/// retries) are uplink traffic, and the uplink is the scarce channel.
pub fn handoff_uplink() -> FigureSpec {
    FigureSpec {
        id: "ext-handoff-uplink",
        paper_ref: "extension (multi-cell mobility)",
        title: "Client mobility: total uplink traffic vs handoff rate (HOTCOLD, \
                N=10^4, p=0.3, disc 400 s; 4 cells, 12 s blackout, 80% roam)",
        x_label: "Handoff rate (handoffs/hour per client; 0 = same topology, no mobility)",
        metric: MetricKind::UplinkTotalBits,
        schemes: Scheme::ALL.to_vec(),
        points: handoff_points(),
        expected_shape: "The checking schemes' uplink grows fastest with the rate \
                         (every post-handoff query re-checks against the new cell), \
                         GCORE sits below simple checking by its grouping factor, and \
                         the adaptive schemes pay only one Tlb per arrival — their \
                         uplink stays near the stateless TS floor even at 72 \
                         handoffs/hour.",
    }
}

/// `ext-snoop`: opportunistic caching of overheard data items (the
/// downlink is a broadcast medium). x = 0: the paper's model; x = 1:
/// snooping on.
pub fn snoop() -> FigureSpec {
    let points = [false, true]
        .iter()
        .map(|&on| {
            let mut cfg = stress_base().with_db_size(5_000);
            cfg.snoop_broadcasts = on;
            (on as u8 as f64, cfg)
        })
        .collect();
    FigureSpec {
        id: "ext-snoop",
        paper_ref: "extension (broadcast-medium opportunism)",
        title: "Broadcast snooping: throughput without (0) and with (1) opportunistic \
                caching of overheard items (HOTCOLD, N=5*10^3, p=0.3, disc 400 s)",
        x_label: "Snooping (0=off, 1=on)",
        metric: MetricKind::QueriesAnswered,
        schemes: common::paper_schemes(),
        points,
        expected_shape: "Under HOTCOLD every client wants the same 100 hot items, so \
                         one client's miss warms everyone's cache: throughput jumps for \
                         all schemes, compressing the differences between them.",
    }
}

fn stress_base() -> SimConfig {
    let mut cfg = common::uniform_probsweep_base().with_workload(Workload::hotcold());
    cfg.p_disconnect = 0.3;
    cfg
}

/// `ext-energy`: client energy per answered query vs disconnection
/// probability — §1's packet- vs power-efficiency argument made
/// quantitative. Transmission costs 100× reception per bit.
pub fn energy() -> FigureSpec {
    let points = common::DISC_PROBS
        .iter()
        .map(|&p| {
            let mut cfg = stress_base();
            cfg.p_disconnect = p;
            (p, cfg)
        })
        .collect();
    FigureSpec {
        id: "ext-energy",
        paper_ref: "extension (motivated by §1)",
        title: "Client energy per query vs disconnection probability \
                (HOTCOLD, N=10^4, disc 400 s; tx = 100x rx per bit)",
        x_label: "Probability of Disconnection in an Interval",
        metric: MetricKind::EnergyPerQuery,
        schemes: vec![
            Scheme::Aaw,
            Scheme::Afw,
            Scheme::SimpleChecking,
            Scheme::Bs,
            Scheme::Gcore,
        ],
        points,
        expected_shape: "BS is the energy hog (its 2N-bit report reaches every \
                         listening client every period); AAW is cheapest across the \
                         sweep. Two second-order effects the chart surfaces: AFW's \
                         full-BS salvages charge the *whole population* reception \
                         energy, pushing it above simple checking at low p; and \
                         checking's expensive transmissions make it the fastest-growing \
                         curve in p.",
    }
}

/// `ext-multichannel`: §6's future work — a dedicated broadcast channel.
/// Sweeps the broadcast share for the BS scheme at a size where Figure 5
/// showed it collapsing on a shared channel.
pub fn multichannel() -> FigureSpec {
    let base = common::uniform_dbsweep_base().with_db_size(40_000);
    let mut points = vec![(0.0, base.clone())]; // 0 = shared (the paper)
    for &share in &[0.1, 0.2, 0.3, 0.4, 0.5] {
        let mut cfg = base.clone();
        cfg.downlink_topology = DownlinkTopology::Dedicated {
            broadcast_share: share,
        };
        points.push((share, cfg));
    }
    FigureSpec {
        id: "ext-multichannel",
        paper_ref: "extension (§6 future work)",
        title: "Dedicated broadcast channel: throughput vs broadcast share of the \
                downlink (UNIFORM, N=4*10^4, total bandwidth fixed; x=0 is the \
                paper's shared channel)",
        x_label: "Broadcast-channel share of downlink bandwidth (0 = shared)",
        metric: MetricKind::QueriesAnswered,
        schemes: common::paper_schemes(),
        points,
        expected_shape: "BS gains dramatically from a modest dedicated share (its \
                         report no longer steals data bandwidth) and collapses again \
                         when the share starves the data channel; window-report \
                         schemes only lose data bandwidth as the share grows.",
    }
}

/// `ext-gcore`: the grouped-checking scheme against its parents —
/// validity uplink per query across the disconnection sweep.
pub fn gcore() -> FigureSpec {
    let points = common::DISC_PROBS
        .iter()
        .map(|&p| {
            let mut cfg = stress_base();
            cfg.p_disconnect = p;
            (p, cfg)
        })
        .collect();
    FigureSpec {
        id: "ext-gcore",
        paper_ref: "extension (related work, Wu/Yu/Chen)",
        title: "Grouped checking vs simple checking vs adaptive: validity uplink \
                per query (HOTCOLD, N=10^4, disc 400 s, 64 groups)",
        x_label: "Probability of Disconnection in an Interval",
        metric: MetricKind::ValidityBitsPerQuery,
        schemes: vec![
            Scheme::SimpleChecking,
            Scheme::Gcore,
            Scheme::Aaw,
            Scheme::Afw,
        ],
        points,
        expected_shape: "Grouping cuts the checking uplink well below per-item checks \
                         (one record per cached group instead of per cached item), but \
                         the adaptive schemes' single-timestamp uplink still wins.",
    }
}

/// `ext-loss`: robustness under per-client broadcast loss (fading).
pub fn report_loss() -> FigureSpec {
    let points = [0.0f64, 0.05, 0.1, 0.2, 0.4]
        .iter()
        .map(|&p| {
            let mut cfg = stress_base();
            cfg.p_report_loss = p;
            (p, cfg)
        })
        .collect();
    FigureSpec {
        id: "ext-loss",
        paper_ref: "extension (robustness)",
        title: "Report loss robustness: throughput vs per-client broadcast loss \
                probability (HOTCOLD, N=10^4, p=0.3, disc 400 s)",
        x_label: "Per-client report loss probability",
        metric: MetricKind::QueriesAnswered,
        schemes: common::paper_schemes(),
        points,
        expected_shape: "No scheme ever violates consistency (the oracle tests enforce \
                         this); what differs is throughput. Checking and BS barely \
                         notice loss (any later report serves them equally), while the \
                         adaptive schemes degrade the most: their salvage depends on \
                         catching the one covering BS / enlarged-window broadcast, and \
                         missing it triggers the conservative give-up drop.",
    }
}

/// `ext-burst`: the fault-injection sweep — mean burst length of a
/// Gilbert–Elliott lossy downlink vs query latency, with a mildly lossy
/// uplink forcing the retry/backoff path. The expected loss rate is held
/// roughly constant across the sweep (p_enter scales inversely with
/// burst length), isolating *burstiness* as the variable.
pub fn burst() -> FigureSpec {
    let points = [1.0f64, 2.0, 4.0, 8.0, 16.0]
        .iter()
        .map(|&mean| {
            let mut cfg = stress_base();
            cfg.faults.downlink = ChannelFaults {
                p_enter_burst: 0.4 / mean,
                mean_burst_intervals: mean,
                p_loss_good: 0.01,
                p_loss_bad: 0.9,
            };
            cfg.faults.p_uplink_loss = 0.05;
            (mean, cfg)
        })
        .collect();
    FigureSpec {
        id: "ext-burst",
        paper_ref: "extension (fault injection)",
        title: "Bursty channel faults: mean query latency vs mean burst length in \
                broadcast intervals (HOTCOLD, N=10^4, p=0.3, disc 400 s; \
                Gilbert-Elliott downlink at ~constant loss rate, 5% uplink loss)",
        x_label: "Mean burst length (broadcast intervals)",
        metric: MetricKind::MeanLatencySecs,
        schemes: common::paper_schemes(),
        points,
        expected_shape: "At equal average loss, longer bursts hurt more: a burst eats \
                         several *consecutive* reports, so window-report clients \
                         overrun their window and fall into the drop-everything path, \
                         while short scattered losses only stretch queries by one \
                         interval. BS is flattest (any surviving report resyncs it); \
                         AFW/AAW sit between, their salvage hostage to catching the \
                         one covering broadcast after the burst ends.",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extension_specs_validate() {
        for spec in all() {
            assert!(spec.id.starts_with("ext-"));
            for (_, cfg) in &spec.points {
                cfg.validate()
                    .unwrap_or_else(|e| panic!("{}: {e}", spec.id));
            }
        }
    }

    #[test]
    fn handoff_figures_render_for_all_schemes() {
        use crate::runner::{run_figure, RunScale};
        for mut spec in [handoff(), handoff_uplink()] {
            // Shrink the workload, keep the topology: the full-scale
            // sweep belongs to the harness, this pins that every scheme
            // renders a curve and every mobile point really roams.
            for (_, cfg) in &mut spec.points {
                *cfg = cfg.clone().with_db_size(500).with_num_clients(10);
            }
            let scale = RunScale {
                time_factor: 0.04,
                ..RunScale::default()
            };
            let result = run_figure(&spec, scale).expect("valid spec");
            assert_eq!(result.series.len(), Scheme::ALL.len(), "{}", spec.id);
            for series in &result.series {
                assert_eq!(series.points.len(), HANDOFF_RATES.len());
                let baseline = &series.points[0];
                assert_eq!(
                    baseline.metrics.mobility.handoffs, 0,
                    "{} {:?}: x=0 must never re-associate",
                    spec.id, series.scheme
                );
                for p in &series.points[1..] {
                    assert!(
                        p.metrics.mobility.handoffs > 0,
                        "{} {:?} at x={}: no handoffs",
                        spec.id,
                        series.scheme,
                        p.x
                    );
                    assert!(p.y > 0.0, "{} {:?} at x={}", spec.id, series.scheme, p.x);
                }
            }
        }
    }

    #[test]
    fn multichannel_x_zero_is_shared() {
        let s = multichannel();
        assert_eq!(s.points[0].1.downlink_topology, DownlinkTopology::Shared);
        assert!(matches!(
            s.points[1].1.downlink_topology,
            DownlinkTopology::Dedicated { .. }
        ));
    }
}
