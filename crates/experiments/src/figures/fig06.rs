//! Figure 6: UNIFORM workload — validity uplink cost vs database size.

use super::common;
use crate::spec::{FigureSpec, MetricKind};

/// The spec.
pub fn spec() -> FigureSpec {
    FigureSpec {
        id: "fig06",
        paper_ref: "Figure 6",
        title: "UNIFORM workload: uplink validity cost vs database size \
                (p=0.1, mean disc 4000 s, buffer 2 %)",
        x_label: "Database Size",
        metric: MetricKind::ValidityBitsPerQuery,
        schemes: common::paper_schemes(),
        points: common::db_points(common::uniform_dbsweep_base()),
        expected_shape: "BS pays zero uplink; the adaptive methods pay a small flat cost \
                         (one Tlb timestamp per reconnection); simple checking pays the \
                         most and its cost grows with N (cached ids+timestamps).",
    }
}
