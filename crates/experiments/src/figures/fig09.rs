//! Figure 9: UNIFORM workload — queries answered vs mean disconnection
//! time.

use super::common;
use crate::spec::{FigureSpec, MetricKind};

/// The spec.
pub fn spec() -> FigureSpec {
    FigureSpec {
        id: "fig09",
        paper_ref: "Figure 9",
        title: "UNIFORM workload: throughput vs mean disconnection time \
                (N=10^4, p=0.1, buffer 1 %)",
        x_label: "Mean Disconnection Time",
        metric: MetricKind::QueriesAnswered,
        schemes: common::paper_schemes(),
        points: common::disc_points(common::uniform_discsweep_base(), &common::DISC_TIMES_SHORT),
        expected_shape: "Mild decline with longer disconnections; AAW above AFW; BS \
                         lowest (fixed report overhead), simple checking highest.",
    }
}
