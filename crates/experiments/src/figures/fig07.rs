//! Figure 7: UNIFORM workload — queries answered vs disconnection
//! probability.

use super::common;
use crate::spec::{FigureSpec, MetricKind};

/// The spec.
pub fn spec() -> FigureSpec {
    FigureSpec {
        id: "fig07",
        paper_ref: "Figure 7",
        title: "UNIFORM workload: throughput vs disconnection probability \
                (N=10^4, mean disc 400 s, buffer 2 %)",
        x_label: "Probability of Disconnection in an Interval",
        metric: MetricKind::QueriesAnswered,
        schemes: common::paper_schemes(),
        points: common::prob_points(common::uniform_probsweep_base()),
        expected_shape: "All but BS decline slightly as p grows (more reconnection \
                         traffic and adaptive BS broadcasts); AAW stays above AFW; BS \
                         is lowest and flat.",
    }
}
