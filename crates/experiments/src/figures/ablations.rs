//! Ablation experiments beyond the paper's plots (DESIGN.md §4).

use super::common;
use crate::spec::{FigureSpec, MetricKind};
use mobicache_model::{CheckingMode, Scheme, SimConfig};

/// All ablation specs.
pub fn all() -> Vec<FigureSpec> {
    vec![
        window_sweep(),
        items_per_query(),
        checking_mode(),
        timestamp_bits(),
        broadcast_period(),
    ]
}

fn base() -> SimConfig {
    let mut cfg = common::uniform_probsweep_base();
    cfg.p_disconnect = 0.3;
    cfg
}

/// `abl-window`: throughput vs the broadcast window `w` — the core
/// tension of the `TS` family (§2.1/§3.1: small windows drop caches after
/// short disconnections, large windows bloat every report).
pub fn window_sweep() -> FigureSpec {
    let points = [2u32, 5, 10, 20, 50, 100]
        .iter()
        .map(|&w| {
            let mut cfg = base();
            cfg.window_intervals = w;
            (w as f64, cfg)
        })
        .collect();
    FigureSpec {
        id: "abl-window",
        paper_ref: "extension (motivated by §3.1)",
        title: "Window-size ablation: throughput vs w (UNIFORM, N=10^4, p=0.3, disc 400 s)",
        x_label: "Broadcast window w (intervals)",
        metric: MetricKind::QueriesAnswered,
        schemes: vec![
            Scheme::TsNoCheck,
            Scheme::SimpleChecking,
            Scheme::Afw,
            Scheme::Aaw,
        ],
        points,
        expected_shape: "TS no-checking gains the most from larger windows (fewer full \
                         drops); the adaptive schemes are nearly window-insensitive — \
                         that insensitivity is the paper's point.",
    }
}

/// `abl-itemsper`: the Table 1 "10 items per query" reconciliation —
/// throughput vs items referenced per query.
pub fn items_per_query() -> FigureSpec {
    let points = [1.0f64, 2.0, 5.0, 10.0]
        .iter()
        .map(|&k| {
            let mut cfg = base();
            cfg.items_per_query_mean = k;
            (k, cfg)
        })
        .collect();
    FigureSpec {
        id: "abl-itemsper",
        paper_ref: "extension (Table 1 reconciliation, DESIGN.md §3)",
        title: "Items-per-query ablation (UNIFORM, N=10^4, p=0.3, disc 400 s)",
        x_label: "Mean data items referenced by a query",
        metric: MetricKind::QueriesAnswered,
        schemes: common::paper_schemes(),
        points,
        expected_shape: "Throughput scales roughly as 1/k on the saturated downlink — \
                         showing why Table 1's nominal 10 cannot reproduce the paper's \
                         ~15000 answered queries and the text's 'each query reads a \
                         data item' is the operative model.",
    }
}

/// `abl-checkmode`: simple checking's §2.2 ambiguity — full-cache checks
/// vs lazy per-query checks, measured on validity uplink cost.
pub fn checking_mode() -> FigureSpec {
    let points = [
        (0.0, CheckingMode::FullCache),
        (1.0, CheckingMode::QueriedItems),
    ]
    .iter()
    .map(|&(x, mode)| {
        let mut cfg = base();
        cfg.checking_mode = mode;
        (x, cfg)
    })
    .collect();
    FigureSpec {
        id: "abl-checkmode",
        paper_ref: "extension (§2.2 ambiguity, DESIGN.md §3)",
        title: "Checking-mode ablation: 0 = full-cache check, 1 = queried-items check \
                (UNIFORM, N=10^4, p=0.3, disc 400 s)",
        x_label: "Checking mode (0=FullCache, 1=QueriedItems)",
        metric: MetricKind::ValidityBitsPerQuery,
        schemes: vec![Scheme::SimpleChecking],
        points,
        expected_shape: "Full-cache checks cost an order of magnitude more uplink per \
                         query than lazy per-query checks.",
    }
}

/// `abl-bt`: timestamp width sensitivity of the report sizes.
pub fn timestamp_bits() -> FigureSpec {
    let points = [32.0f64, 48.0, 64.0]
        .iter()
        .map(|&b| {
            let mut cfg = base();
            cfg.timestamp_bits = b;
            (b, cfg)
        })
        .collect();
    FigureSpec {
        id: "abl-bt",
        paper_ref: "extension (report-size formulas, §3.1)",
        title: "Timestamp-width ablation (UNIFORM, N=10^4, p=0.3, disc 400 s)",
        x_label: "Timestamp width b_T (bits)",
        metric: MetricKind::ReportDownlinkBits,
        schemes: common::paper_schemes(),
        points,
        expected_shape: "Window-report bits grow linearly in b_T; BS reports barely move \
                         (dominated by the 2N bitmap term).",
    }
}

/// `sched-scan`: broadcast period `L` sweep — the latency/overhead
/// trade-off (every query waits for the next report).
pub fn broadcast_period() -> FigureSpec {
    let points = [5.0f64, 10.0, 20.0, 40.0, 80.0]
        .iter()
        .map(|&l| {
            let mut cfg = base();
            cfg.broadcast_period_secs = l;
            (l, cfg)
        })
        .collect();
    FigureSpec {
        id: "sched-scan",
        paper_ref: "extension (broadcast period, §4)",
        title: "Broadcast-period ablation (UNIFORM, N=10^4, p=0.3, disc 400 s)",
        x_label: "Broadcast period L (seconds)",
        metric: MetricKind::MeanLatencySecs,
        schemes: common::paper_schemes(),
        points,
        expected_shape: "Under a saturated downlink the report *overhead* dominates the \
                         naive ~L/2 report wait: shrinking L inflates latency (most \
                         dramatically for BS, whose 2N-bit report then burns 4x the \
                         bandwidth), while the TS-family schemes are nearly flat.",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ablations_validate() {
        for spec in all() {
            for (_, cfg) in &spec.points {
                cfg.validate()
                    .unwrap_or_else(|e| panic!("{}: {e}", spec.id));
            }
            assert!(spec.id.starts_with("abl-") || spec.id == "sched-scan");
        }
    }

    #[test]
    fn window_sweep_sets_window() {
        let s = window_sweep();
        assert_eq!(s.points[0].1.window_intervals, 2);
        assert_eq!(s.points.last().unwrap().1.window_intervals, 100);
    }
}
