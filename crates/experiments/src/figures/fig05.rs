//! Figure 5: UNIFORM workload — queries answered vs database size.

use super::common;
use crate::spec::{FigureSpec, MetricKind};

/// The spec.
pub fn spec() -> FigureSpec {
    FigureSpec {
        id: "fig05",
        paper_ref: "Figure 5",
        title: "UNIFORM workload: throughput vs database size \
                (p=0.1, mean disc 4000 s, buffer 2 %)",
        x_label: "Database Size",
        metric: MetricKind::QueriesAnswered,
        schemes: common::paper_schemes(),
        points: common::db_points(common::uniform_dbsweep_base()),
        expected_shape: "BS throughput collapses as N grows (its report is ~2N bits per \
                         period); the other three stay roughly flat, with simple checking \
                         >= AAW >= AFW.",
    }
}
