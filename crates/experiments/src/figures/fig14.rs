//! Figure 14: HOTCOLD workload — validity uplink cost vs disconnection
//! probability.

use super::common;
use crate::spec::{FigureSpec, MetricKind};

/// The spec.
pub fn spec() -> FigureSpec {
    FigureSpec {
        id: "fig14",
        paper_ref: "Figure 14",
        title: "HOTCOLD workload: uplink validity cost vs disconnection probability \
                (N=10^4, mean disc 400 s, buffer 2 %)",
        x_label: "Probability of Disconnection in an Interval",
        metric: MetricKind::ValidityBitsPerQuery,
        schemes: common::paper_schemes(),
        points: common::prob_points(common::hotcold_probsweep_base()),
        expected_shape: "Simple checking rises steeply with p; adaptive methods rise \
                         slowly; BS stays at zero.",
    }
}
