//! Per-tick invalidation **plans**: one report decoded once into a dense
//! stale bitmap over `ItemId`, applied to each cache by a word-wise AND.
//!
//! The per-item fan-out path (`WindowIndex::is_stale` /
//! `BsIndex::is_marked` per cached entry) pays `O(|cache| · log |report|)`
//! per client even though almost every connected client holds the same
//! effective `Tlb` (the previous report's timestamp) and therefore
//! computes the *same* stale set. A [`PlanCache`] flips the loop: decode
//! the report into `db_size` bits once per tick, memoized by the `Tlb`
//! bucket the decode depends on, then each client intersects the plan
//! with its own cache-membership bitmap — visiting only non-zero words —
//! instead of re-deriving the decision item by item.
//!
//! Per report kind the `Tlb` bucket degenerates differently:
//!
//! * **Window** — the provably-stale set (`version < t_listed`) is
//!   `Tlb`-independent: the listed-item bitmap plus a dense timestamp
//!   table serve *every* client; coverage (`covers(tlb)`) stays a cheap
//!   per-client scalar check.
//! * **Bit-sequences** — staleness is pure prefix membership, a function
//!   of `select(tlb)` alone, so the bucket key is the selected prefix
//!   length. The engine pre-decodes the dominant bucket (the previous
//!   report's broadcast time — every client that heard it lands there);
//!   other buckets fall back to the per-item path.
//! * **AT** — the listed-item bitmap is `Tlb`-independent; coverage is a
//!   scalar check, an uncovered client drops its whole cache anyway.
//! * **SIG** — no plan: the verdict depends on each client's stored
//!   signature baseline, which is per-client by construction.
//!
//! The plan is an *evaluation strategy*, never a behavioural change: the
//! bitmap intersection yields exactly the stale **set** the per-item
//! walk yields (pinned by the `plan ≡ decide` proptests), and the engine
//! golden digests stay bit-identical.

use crate::bitseq::BsSelect;
use crate::payload::ReportPayload;
use mobicache_model::ItemId;
use mobicache_sim::SimTime;

/// Which decode the plan currently holds (one report kind per tick).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum PlanKind {
    /// No plan decoded for this tick (SIG report, or a BS report whose
    /// dominant bucket resolved to Clean/DropAll).
    #[default]
    None,
    /// Window report: bitmap of listed items + dense update timestamps.
    Window,
    /// AT report: bitmap of listed items.
    At,
    /// BS report: bitmap of the first `prefix` recency entries, decoded
    /// for this one prefix bucket.
    Bs(usize),
}

/// Per-client plan-application tallies, accumulated shard-locally by the
/// engine fan-out and merged serially (sums are order-free, so the
/// counters are thread-invariant).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Report applications served by a memoized plan bitmap.
    pub hits: u64,
    /// Applications that fell back to the per-item path (plan absent for
    /// the client's bucket, or the cache too small to profit).
    pub misses: u64,
}

/// A reusable per-tick invalidation-plan cache.
///
/// `decode_for_tick` turns one [`ReportPayload`] into a dense stale
/// bitmap (`db_size.div_ceil(64)` words of `u64`); `intersect_into`
/// applies it to one cache's membership bitmap. The buffers persist
/// across ticks, so steady state allocates nothing.
///
/// Shared immutably across the engine's fan-out shards: after the serial
/// phase-0 decode every read is lock-free (`&PlanCache` is `Sync` — the
/// struct is plain `Vec`s).
#[derive(Debug, Default)]
pub struct PlanCache {
    kind: PlanKind,
    /// The stale bitmap, bit `i` = `ItemId(i)`.
    bits: Vec<u64>,
    /// Window plans only: `ts[i]` is the listed update timestamp of
    /// `ItemId(i)`. Only slots whose `bits` bit is set are meaningful
    /// (stale slots from earlier ticks are never read).
    ts: Vec<SimTime>,
    /// Bitmap decodes performed over the cache's lifetime.
    decodes: u64,
}

impl PlanCache {
    /// An empty plan cache; buffers grow on first decode.
    pub fn new() -> Self {
        Self::default()
    }

    /// Zeroes the bitmap at `words` words, keeping the allocation.
    fn reset_bits(&mut self, words: usize) {
        self.bits.clear();
        self.bits.resize(words, 0);
    }

    #[inline]
    fn set(&mut self, item: ItemId) {
        let i = item.0 as usize;
        debug_assert!(i / 64 < self.bits.len(), "item id beyond db_size");
        self.bits[i / 64] |= 1u64 << (i % 64);
    }

    /// Decodes `payload` into this tick's plan. Serial phase-0 only —
    /// shards read the result immutably.
    ///
    /// `dominant_tlb` keys the BS prefix bucket: pass the previous
    /// report's broadcast time (every client that heard it selects this
    /// bucket). Window and AT decodes are `Tlb`-independent. A SIG
    /// payload, or a BS dominant bucket resolving to Clean/DropAll,
    /// leaves the plan empty (every client falls back per-item — both
    /// non-prefix BS verdicts are O(1) anyway).
    pub fn decode_for_tick(
        &mut self,
        payload: &ReportPayload,
        dominant_tlb: SimTime,
        db_size: u32,
    ) {
        self.kind = PlanKind::None;
        let words = (db_size as usize).div_ceil(64);
        match payload {
            ReportPayload::Window(w) => {
                self.reset_bits(words);
                if self.ts.len() < db_size as usize {
                    self.ts.resize(db_size as usize, SimTime::ZERO);
                }
                for &(item, t) in &w.records {
                    self.set(item);
                    self.ts[item.0 as usize] = t;
                }
                self.kind = PlanKind::Window;
                self.decodes += 1;
            }
            ReportPayload::At(at) => {
                self.reset_bits(words);
                for &item in &at.items {
                    self.set(item);
                }
                self.kind = PlanKind::At;
                self.decodes += 1;
            }
            ReportPayload::BitSeq(bs) => {
                if let BsSelect::Prefix(p) = bs.select(dominant_tlb) {
                    self.reset_bits(words);
                    for &(item, _) in &bs.recency[..p.min(bs.recency.len())] {
                        self.set(item);
                    }
                    self.kind = PlanKind::Bs(p);
                    self.decodes += 1;
                }
            }
            ReportPayload::Sig(..) => {}
        }
    }

    /// Bitmap decodes performed so far (cumulative).
    pub fn decodes(&self) -> u64 {
        self.decodes
    }

    /// `true` when a window plan is loaded (listed bitmap + timestamps).
    pub fn window_active(&self) -> bool {
        self.kind == PlanKind::Window
    }

    /// `true` when an AT plan is loaded (listed bitmap).
    pub fn at_active(&self) -> bool {
        self.kind == PlanKind::At
    }

    /// The decoded BS prefix bucket, when one is loaded.
    pub fn bs_prefix(&self) -> Option<usize> {
        match self.kind {
            PlanKind::Bs(p) => Some(p),
            _ => None,
        }
    }

    /// The plan bitmap words (bit `i` = `ItemId(i)`).
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// The listed update timestamp of `item` under a window plan.
    /// Meaningful only for items whose plan bit is set.
    #[inline]
    pub fn listed_ts(&self, item: ItemId) -> SimTime {
        self.ts[item.0 as usize]
    }

    /// Word-wise `plan & member` intersection: for every set bit of the
    /// AND (ascending item id, extracted via `trailing_zeros`), pushes
    /// the item onto `out` if `keep` accepts it. Only non-zero words do
    /// per-bit work; `member` is each cache's membership bitmap, grown
    /// lazily, so the loop runs `min(|member|, |plan|)` words.
    pub fn intersect_into(
        &self,
        member: &[u64],
        out: &mut Vec<ItemId>,
        mut keep: impl FnMut(ItemId) -> bool,
    ) {
        let n = member.len().min(self.bits.len());
        for (wi, (&m, &p)) in member[..n].iter().zip(&self.bits[..n]).enumerate() {
            let mut w = m & p;
            while w != 0 {
                let item = ItemId((wi * 64) as u32 + w.trailing_zeros());
                w &= w - 1;
                if keep(item) {
                    out.push(item);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::at::AtReport;
    use crate::bitseq::BitSequences;
    use crate::window::WindowReport;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// A little member bitmap over the given ids.
    fn member_of(ids: &[u32], db: u32) -> Vec<u64> {
        let mut words = vec![0u64; (db as usize).div_ceil(64)];
        for &id in ids {
            words[id as usize / 64] |= 1 << (id % 64);
        }
        words
    }

    fn window(records: Vec<(u32, f64)>) -> ReportPayload {
        ReportPayload::Window(WindowReport {
            broadcast_at: t(1000.0),
            window_start: t(800.0),
            records: records
                .into_iter()
                .map(|(i, ts)| (ItemId(i), t(ts)))
                .collect(),
            dummy: None,
        })
    }

    #[test]
    fn window_plan_intersects_listed_and_cached() {
        let mut plan = PlanCache::new();
        plan.decode_for_tick(&window(vec![(3, 950.0), (70, 920.0)]), t(0.0), 128);
        assert!(plan.window_active());
        assert_eq!(plan.decodes(), 1);
        let member = member_of(&[3, 5, 70], 128);
        let mut out = Vec::new();
        plan.intersect_into(&member, &mut out, |_| true);
        assert_eq!(out, vec![ItemId(3), ItemId(70)]);
        assert_eq!(plan.listed_ts(ItemId(3)), t(950.0));
        assert_eq!(plan.listed_ts(ItemId(70)), t(920.0));
    }

    #[test]
    fn keep_filter_prunes_fresh_versions() {
        let mut plan = PlanCache::new();
        plan.decode_for_tick(&window(vec![(3, 950.0), (7, 920.0)]), t(0.0), 64);
        let member = member_of(&[3, 7], 64);
        let mut out = Vec::new();
        // Pretend item 3's cached version is fresh (≥ listed ts).
        plan.intersect_into(&member, &mut out, |i| {
            t(930.0) < plan.listed_ts(i) // only 3 (950) qualifies
        });
        assert_eq!(out, vec![ItemId(3)]);
    }

    #[test]
    fn at_plan_marks_listed_items() {
        let mut plan = PlanCache::new();
        let at = ReportPayload::At(AtReport {
            broadcast_at: t(200.0),
            prev_broadcast: t(100.0),
            items: vec![ItemId(1), ItemId(65)],
        });
        plan.decode_for_tick(&at, t(100.0), 128);
        assert!(plan.at_active());
        let mut out = Vec::new();
        plan.intersect_into(&member_of(&[0, 1, 64, 65], 128), &mut out, |_| true);
        assert_eq!(out, vec![ItemId(1), ItemId(65)]);
    }

    #[test]
    fn bs_plan_keys_off_dominant_prefix() {
        // Recency-descending updates: 9 @ 95, 4 @ 85, 2 @ 75.
        let bs = BitSequences::from_recency(
            t(100.0),
            64,
            vec![
                (ItemId(9), t(95.0)),
                (ItemId(4), t(85.0)),
                (ItemId(2), t(75.0)),
            ],
        );
        let sel = bs.select(t(90.0));
        let BsSelect::Prefix(p) = sel else {
            panic!("expected a prefix selection, got {sel:?}");
        };
        let payload = ReportPayload::BitSeq(bs);
        let mut plan = PlanCache::new();
        plan.decode_for_tick(&payload, t(90.0), 64);
        assert_eq!(plan.bs_prefix(), Some(p));
        let mut out = Vec::new();
        plan.intersect_into(&member_of(&[2, 4, 9], 64), &mut out, |_| true);
        // The plan marks exactly the prefix items; a Tlb of 90 must at
        // least invalidate the newest update (9 @ 95).
        assert!(out.contains(&ItemId(9)));
        let ReportPayload::BitSeq(bs) = &payload else {
            unreachable!()
        };
        let marked: Vec<ItemId> = bs.recency[..p.min(bs.recency.len())]
            .iter()
            .map(|&(i, _)| i)
            .collect();
        for i in &out {
            assert!(marked.contains(i));
        }
    }

    #[test]
    fn clean_select_and_sig_leave_no_plan() {
        let bs = BitSequences::from_recency(t(100.0), 64, vec![(ItemId(9), t(50.0))]);
        let mut plan = PlanCache::new();
        // Tlb newer than every update: Clean — nothing to decode.
        plan.decode_for_tick(&ReportPayload::BitSeq(bs), t(60.0), 64);
        assert!(!plan.window_active() && !plan.at_active());
        assert_eq!(plan.bs_prefix(), None);
        assert_eq!(plan.decodes(), 0);
    }

    #[test]
    fn redecoding_clears_the_previous_tick() {
        let mut plan = PlanCache::new();
        plan.decode_for_tick(&window(vec![(3, 950.0)]), t(0.0), 64);
        plan.decode_for_tick(&window(vec![(5, 960.0)]), t(0.0), 64);
        let mut out = Vec::new();
        plan.intersect_into(&member_of(&[3, 5], 64), &mut out, |_| true);
        assert_eq!(out, vec![ItemId(5)], "stale bit from tick 1 must be gone");
        assert_eq!(plan.decodes(), 2);
    }
}
