//! The bit-sequences (`BS`) invalidation report — §2.3 of the paper,
//! after Jing et al.
//!
//! The report is a hierarchy of bit sequences `B_n, B_{n-1}, …, B_1` plus a
//! dummy `B_0`. `B_n` has `N` bits (one per database item) of which up to
//! `N/2` are set, marking the `N/2` most recently updated items;
//! `TS(B_n)` is the time after which exactly those items were updated.
//! Each subsequent sequence `B_k` has half the bits — its `k`-th bit
//! corresponds to the `k`-th "1" in `B_{k+1}` — and marks the half of
//! *those* items updated after the (more recent) `TS(B_k)`. `TS(B_0)` is
//! the time of the most recent update (nothing changed after it).
//!
//! Observation used throughout this implementation: the entire structure
//! is equivalent to the **recency-ordered prefix list** of updated items
//! with cut timestamps at halving prefix lengths. The "1"s of `B_k` are
//! exactly the `|B_k|/2` most recently updated items, so a level is fully
//! described by `(prefix_len, cut_ts)` over one shared recency-sorted
//! array. The bit-level wire encoding (for size verification) is produced
//! by [`BitSequences::encode_wire`].
//!
//! Client algorithm (Figure 2 of the paper):
//!
//! ```text
//! if TS(B_0) ≤ Tlb:                 nothing to invalidate
//! if Tlb < TS(B_n):                 drop the entire cache
//! else: locate B_j with TS(B_j) ≤ Tlb < TS(B_{j-1});
//!       invalidate every item marked in B_j
//! ```

use mobicache_model::msg::SizeParams;
use mobicache_model::units::{bits_per_id, Bits};
use mobicache_model::ItemId;
use mobicache_sim::pool::{shard_count, SendPtr, WorkerPool};
use mobicache_sim::SimTime;

/// One level of the hierarchy: the `prefix_len` most recently updated
/// items were all updated after `cut`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Level {
    /// Number of marked ("1") items at this level.
    pub prefix_len: u32,
    /// `TS(B_k)`: `None` means the level reaches back to the beginning of
    /// time (fewer items have ever been updated than the level can mark),
    /// so it covers any `Tlb`.
    pub cut: Option<SimTime>,
}

impl Level {
    /// `true` when this level's history reaches back to `tlb`.
    #[inline]
    fn covers(&self, tlb: SimTime) -> bool {
        match self.cut {
            None => true,
            Some(cut) => cut <= tlb,
        }
    }
}

/// A bit-sequences invalidation report.
///
/// ```
/// use mobicache_model::ItemId;
/// use mobicache_reports::{BitSequences, BsDecision};
/// use mobicache_sim::SimTime;
///
/// let t = SimTime::from_secs;
/// // Items 7 and 3 were updated (most recent first) in a 16-item DB.
/// let bs = BitSequences::from_recency(
///     t(100.0),
///     16,
///     vec![(ItemId(7), t(90.0)), (ItemId(3), t(40.0))],
/// );
/// // A client last synced at t=50 caching items 3 and 7: only item 7
/// // changed afterwards, and the hierarchy pinpoints it.
/// assert_eq!(
///     bs.decide(t(50.0), vec![ItemId(3), ItemId(7)]),
///     BsDecision::Invalidate(vec![ItemId(7)])
/// );
/// // A fully current client is told its cache is clean.
/// assert_eq!(bs.decide(t(95.0), vec![ItemId(3)]), BsDecision::Clean);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct BitSequences {
    /// Broadcast timestamp `T_i`.
    pub broadcast_at: SimTime,
    /// Database size `N` (determines the level geometry and wire size).
    pub db_size: u32,
    /// `TS(B_0)`: time of the most recent update; `None` when no item has
    /// ever been updated.
    pub latest_update: Option<SimTime>,
    /// Updated items, most recent first, truncated to `N/2` entries
    /// (the "1"s of `B_n`).
    pub recency: Vec<(ItemId, SimTime)>,
    /// Levels ordered from the smallest prefix (`B_1`) to the largest
    /// (`B_n`).
    pub levels: Vec<Level>,
}

/// What a client should do with its cache after receiving a
/// [`BitSequences`] report.
#[derive(Clone, Debug, PartialEq)]
pub enum BsDecision {
    /// `TS(B_0) ≤ Tlb`: no update since the client's last report; the
    /// whole cache is valid.
    Clean,
    /// `Tlb < TS(B_n)`: more than half the database may have changed; the
    /// entire cache must be dropped.
    DropAll,
    /// Invalidate exactly the listed items (the marked prefix of the
    /// smallest covering level); everything else is revalidated.
    Invalidate(Vec<ItemId>),
}

/// The cache-independent part of the Figure-2 algorithm: which level (if
/// any) covers a given `Tlb`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BsSelect {
    /// No update since `Tlb`; the whole cache is valid.
    Clean,
    /// Even `B_n` is too recent; drop everything.
    DropAll,
    /// The smallest covering level marks this many most-recent items:
    /// a cached item is stale iff its recency rank is below this.
    Prefix(usize),
}

/// A build-once lookup index over a [`BitSequences`] report: each listed
/// item's recency rank, sorted by item id. A cached item is stale at a
/// selected level exactly when its rank is inside the level's prefix, so
/// the per-client pass is `O(|cache| · log |recency|)` with no
/// allocation — no per-client `HashSet` of the whole cache.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BsIndex {
    /// `(item, recency rank)`, sorted by item id.
    by_id: Vec<(ItemId, u32)>,
}

impl BsIndex {
    /// Builds the index: `O(|recency| · log |recency|)`, once per report.
    pub fn build(report: &BitSequences) -> Self {
        let mut by_id: Vec<(ItemId, u32)> = report
            .recency
            .iter()
            .enumerate()
            .map(|(rank, &(id, _))| (id, rank as u32))
            .collect();
        by_id.sort_unstable_by_key(|&(id, _)| id);
        BsIndex { by_id }
    }

    /// The sorted `(item, recency rank)` pairs — exposed so tests can
    /// compare a sharded build against a serial one structurally.
    pub fn entries(&self) -> &[(ItemId, u32)] {
        &self.by_id
    }

    /// [`BsIndex::build`] sharded over `pool`: the recency list is split
    /// into contiguous chunks (so ranks stay a pure function of position),
    /// each chunk sorted by item id in parallel, then reduced by a serial
    /// k-way merge in chunk order. Item ids are unique within a report
    /// (the server's recency index lists each item once), so the merge is
    /// deterministic and equals the full sort — bit-identical to
    /// [`BsIndex::build`] whatever the shard geometry.
    pub fn build_sharded(
        report: &BitSequences,
        pool: &WorkerPool,
        max_shards: usize,
        min_per_shard: usize,
    ) -> Self {
        let recency = &report.recency;
        let n = recency.len();
        let t = shard_count(max_shards, n, min_per_shard);
        if t <= 1 {
            return Self::build(report);
        }
        let chunk = n.div_ceil(t);
        let mut parts: Vec<Vec<(ItemId, u32)>> = (0..t).map(|_| Vec::new()).collect();
        let parts_ptr = SendPtr(parts.as_mut_ptr());
        pool.run(t, &|i| {
            let start = i * chunk;
            if start >= n {
                return;
            }
            let end = (start + chunk).min(n);
            // SAFETY: chunk `i` writes only to slot `i`.
            let slot = unsafe { &mut *parts_ptr.get().add(i) };
            *slot = recency[start..end]
                .iter()
                .enumerate()
                .map(|(off, &(id, _))| (id, (start + off) as u32))
                .collect();
            slot.sort_unstable_by_key(|&(id, _)| id);
        });
        let mut by_id = Vec::with_capacity(n);
        let mut heads = vec![0usize; parts.len()];
        loop {
            let mut best: Option<usize> = None;
            for (k, part) in parts.iter().enumerate() {
                if heads[k] < part.len()
                    && best.is_none_or(|b| part[heads[k]].0 < parts[b][heads[b]].0)
                {
                    best = Some(k);
                }
            }
            match best {
                Some(b) => {
                    by_id.push(parts[b][heads[b]]);
                    heads[b] += 1;
                }
                None => break,
            }
        }
        debug_assert_eq!(by_id.len(), n);
        BsIndex { by_id }
    }

    /// The recency rank of `item` (0 = most recently updated), if listed.
    #[inline]
    pub fn rank(&self, item: ItemId) -> Option<u32> {
        self.by_id
            .binary_search_by_key(&item, |&(id, _)| id)
            .ok()
            .map(|pos| self.by_id[pos].1)
    }

    /// `true` when `item` is marked at a level of `prefix_len` "1"s.
    #[inline]
    pub fn is_marked(&self, item: ItemId, prefix_len: usize) -> bool {
        self.rank(item).is_some_and(|r| (r as usize) < prefix_len)
    }
}

impl BitSequences {
    /// The halving level geometry for a database of `n` items: prefix
    /// lengths `1, 2, …` doubling up to `n/2` (ordered smallest first).
    ///
    /// For `n < 2` there are no levels — the dummy `B_0` alone decides.
    pub fn level_lengths(n: u32) -> Vec<u32> {
        let mut lens = Vec::new();
        let top = n / 2;
        let mut len = 1u32;
        while len < top {
            lens.push(len);
            len *= 2;
        }
        if top >= 1 {
            lens.push(top);
        }
        lens
    }

    /// Builds the structure from a **recency-descending** iterator of
    /// `(item, last update time)` — the server's update index. The
    /// iterator may yield more than `N/2` entries; extras beyond the
    /// largest level (plus the one needed for its cut) are ignored.
    ///
    /// # Panics
    /// Debug-panics if the input is not sorted by descending timestamp.
    pub fn from_recency<I>(broadcast_at: SimTime, db_size: u32, iter: I) -> Self
    where
        I: IntoIterator<Item = (ItemId, SimTime)>,
    {
        let lens = Self::level_lengths(db_size);
        let top = lens.last().copied().unwrap_or(0) as usize;
        // Keep one extra entry: the (top+1)-th item's timestamp is TS(B_n).
        let mut recency: Vec<(ItemId, SimTime)> = Vec::with_capacity(top + 1);
        for entry in iter {
            if let Some(last) = recency.last() {
                debug_assert!(
                    last.1 >= entry.1,
                    "recency input must be sorted by descending timestamp"
                );
            }
            recency.push(entry);
            if recency.len() > top {
                break;
            }
        }
        let latest_update = recency.first().map(|&(_, ts)| ts);
        let overflow = recency.len() > top;
        let overflow_ts = if overflow { Some(recency[top].1) } else { None };
        recency.truncate(top);

        let levels = lens
            .iter()
            .map(|&len| {
                let cut = if (len as usize) < recency.len() {
                    Some(recency[len as usize].1)
                } else if (len as usize) == recency.len() {
                    // Exactly filled: the cut is the next (excluded) update
                    // if one exists, otherwise the beginning of time.
                    overflow_ts.filter(|_| len as usize == top).or(
                        // A non-top level exactly filled means there were
                        // no further updates at all.
                        None,
                    )
                } else {
                    None
                };
                Level {
                    prefix_len: len,
                    cut,
                }
            })
            .collect();

        BitSequences {
            broadcast_at,
            db_size,
            latest_update,
            recency,
            levels,
        }
    }

    /// Runs the Figure-2 client algorithm for a client whose last report
    /// was at `tlb`.
    ///
    /// Faithful to the paper, the invalidation is *bit-level*: every
    /// cached item marked in the selected sequence is dropped, even if the
    /// cached copy happens to be fresh (the bits carry no per-item
    /// timestamps).
    pub fn decide<I>(&self, tlb: SimTime, cached: I) -> BsDecision
    where
        I: IntoIterator<Item = ItemId>,
    {
        let prefix = match self.select(tlb) {
            BsSelect::Clean => return BsDecision::Clean,
            BsSelect::DropAll => return BsDecision::DropAll,
            BsSelect::Prefix(p) => p,
        };
        let marked: &[(ItemId, SimTime)] = &self.recency[..prefix.min(self.recency.len())];
        // O(cache + prefix): membership set over the (possibly large)
        // cache, then one scan of the marked prefix. Keeps the common
        // connected-client case (tiny prefix) cheap and the long-reconnect
        // case (prefix up to N/2) linear.
        let cached_set: std::collections::HashSet<ItemId> = cached.into_iter().collect();
        let stale: Vec<ItemId> = marked
            .iter()
            .map(|&(id, _)| id)
            .filter(|id| cached_set.contains(id))
            .collect();
        BsDecision::Invalidate(stale)
    }

    /// The cache-independent half of [`BitSequences::decide`]: resolves
    /// `Tlb` to Clean / DropAll / the smallest covering level's prefix
    /// length. Shared across the whole fan-out — each client then only
    /// tests its own cached items against the prefix via [`BsIndex`].
    pub fn select(&self, tlb: SimTime) -> BsSelect {
        match self.latest_update {
            None => return BsSelect::Clean,
            Some(latest) if latest <= tlb => return BsSelect::Clean,
            _ => {}
        }
        // Smallest level whose cut reaches back to tlb.
        match self.levels.iter().find(|l| l.covers(tlb)) {
            Some(level) => BsSelect::Prefix(level.prefix_len as usize),
            None => BsSelect::DropAll,
        }
    }

    /// Builds the shared id→rank index for this report. Build once, apply
    /// to every client of the broadcast fan-out.
    pub fn index(&self) -> BsIndex {
        BsIndex::build(self)
    }

    /// The fan-out form of [`BitSequences::decide`]: same verdict through
    /// a prebuilt [`BsIndex`] (`idx` must be built from this report).
    /// Under `Prefix`, the stale items are appended to `out` (not
    /// cleared) in `cached` order; otherwise `out` is untouched.
    pub fn decide_with<I>(
        &self,
        idx: &BsIndex,
        tlb: SimTime,
        cached: I,
        out: &mut Vec<ItemId>,
    ) -> BsSelect
    where
        I: IntoIterator<Item = ItemId>,
    {
        let sel = self.select(tlb);
        if let BsSelect::Prefix(prefix) = sel {
            for item in cached {
                if idx.is_marked(item, prefix) {
                    out.push(item);
                }
            }
        }
        sel
    }

    /// Report body size per the paper's formula: `2N + b_T · log₂N` bits
    /// (§3.1). This is what the simulator charges the downlink.
    pub fn size_bits(&self, p: &SizeParams) -> Bits {
        2.0 * self.db_size as f64 + p.timestamp_bits * bits_per_id(self.db_size as u64)
    }

    /// Exact size of the wire encoding produced by
    /// [`BitSequences::encode_wire`], in bits: `Σ |B_k|` bitmap bits plus
    /// one timestamp per level plus `TS(B_0)`.
    pub fn exact_size_bits(&self, p: &SizeParams) -> Bits {
        // The bitmap of each level is one bit per "1" of the level above:
        // the top level (`B_n`) spans the whole database; level `i` spans
        // `levels[i+1].prefix_len` bits.
        let bitmap_bits: u64 = self
            .levels
            .iter()
            .enumerate()
            .map(|(i, _)| match self.levels.get(i + 1) {
                Some(parent) => parent.prefix_len as u64,
                None => self.db_size as u64,
            })
            .sum();
        bitmap_bits as f64 + (self.levels.len() as f64 + 1.0) * p.timestamp_bits
    }

    /// Produces the literal bit-sequence encoding: for each level from
    /// `B_n` down to `B_1`, its bitmap (`B_n` over item ids ascending;
    /// deeper levels over the "1" positions of the level above, in the
    /// same order), each preceded by its 64-bit cut timestamp; then
    /// `TS(B_0)`. Used by tests to validate the size formulas and the
    /// hierarchy's self-consistency; the simulator itself only charges
    /// sizes.
    pub fn encode_wire(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let encode_ts = |out: &mut Vec<u8>, ts: Option<SimTime>| {
            out.extend_from_slice(&ts.map_or(f64::NEG_INFINITY, SimTime::as_secs).to_be_bytes());
        };
        // Current members, ordered by item id, of the level above;
        // starts as the whole database for B_n.
        let mut above: Vec<ItemId> = (0..self.db_size).map(ItemId).collect();
        for level in self.levels.iter().rev() {
            encode_ts(&mut out, level.cut);
            let prefix = level.prefix_len as usize;
            let marked: Vec<ItemId> = {
                let mut m: Vec<ItemId> = self.recency[..prefix.min(self.recency.len())]
                    .iter()
                    .map(|&(id, _)| id)
                    .collect();
                m.sort_unstable();
                m
            };
            // Bitmap over `above`, one bit per member.
            let mut byte = 0u8;
            let mut nbits = 0;
            let mut next_above = Vec::with_capacity(marked.len());
            for &id in &above {
                let bit = marked.binary_search(&id).is_ok();
                byte = (byte << 1) | bit as u8;
                nbits += 1;
                if nbits == 8 {
                    out.push(byte);
                    byte = 0;
                    nbits = 0;
                }
                if bit {
                    next_above.push(id);
                }
            }
            if nbits > 0 {
                out.push(byte << (8 - nbits));
            }
            above = next_above;
        }
        encode_ts(&mut out, self.latest_update);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// Recency list: item k updated at time 1000 - k*10 (item 0 most
    /// recent).
    fn recency(n: usize) -> Vec<(ItemId, SimTime)> {
        (0..n)
            .map(|k| (ItemId(k as u32), t(1000.0 - k as f64 * 10.0)))
            .collect()
    }

    #[test]
    fn level_geometry_power_of_two() {
        assert_eq!(BitSequences::level_lengths(16), vec![1, 2, 4, 8]);
        assert_eq!(BitSequences::level_lengths(2), vec![1]);
        assert_eq!(BitSequences::level_lengths(1), Vec::<u32>::new());
    }

    #[test]
    fn level_geometry_general() {
        assert_eq!(BitSequences::level_lengths(10), vec![1, 2, 4, 5]);
        assert_eq!(
            BitSequences::level_lengths(1000),
            vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 500]
        );
    }

    #[test]
    fn clean_when_no_updates_since_tlb() {
        let bs = BitSequences::from_recency(t(2000.0), 16, recency(5));
        assert_eq!(bs.decide(t(1000.0), vec![ItemId(3)]), BsDecision::Clean);
        assert_eq!(bs.decide(t(1500.0), vec![ItemId(3)]), BsDecision::Clean);
    }

    #[test]
    fn clean_on_virgin_database() {
        let bs = BitSequences::from_recency(t(100.0), 16, vec![]);
        assert_eq!(bs.latest_update, None);
        assert_eq!(bs.decide(t(0.0), vec![ItemId(1)]), BsDecision::Clean);
    }

    #[test]
    fn selects_smallest_covering_level() {
        // 8 updated items in a DB of 16; levels 1,2,4,8.
        let bs = BitSequences::from_recency(t(2000.0), 16, recency(9));
        // Tlb = 995: only item 0 (ts 1000) updated after; level 1 covers
        // because cut(level 1) = ts of item 1 = 990 ≤ 995.
        match bs.decide(t(995.0), vec![ItemId(0), ItemId(1), ItemId(5)]) {
            BsDecision::Invalidate(stale) => assert_eq!(stale, vec![ItemId(0)]),
            other => panic!("{other:?}"),
        }
        // Tlb = 975: items 0,1,2 updated after; level 2's cut = ts of item
        // 2 = 980 > 975, so level 4 (cut = ts of item 4 = 960 ≤ 975).
        match bs.decide(t(975.0), vec![ItemId(0), ItemId(3), ItemId(5)]) {
            BsDecision::Invalidate(stale) => assert_eq!(stale, vec![ItemId(0), ItemId(3)]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn drop_all_when_even_largest_level_is_too_recent() {
        // 9 updates, DB 16: top level 8 marks items 0..8, cut = ts of item
        // 8 = 920. A client with Tlb = 900 < 920 cannot be salvaged.
        let bs = BitSequences::from_recency(t(2000.0), 16, recency(9));
        assert_eq!(bs.decide(t(900.0), vec![ItemId(1)]), BsDecision::DropAll);
    }

    #[test]
    fn sparse_history_covers_everything() {
        // Only 3 items ever updated in a DB of 16: level 4 (and 8) reach
        // back to the beginning of time.
        let bs = BitSequences::from_recency(t(2000.0), 16, recency(3));
        match bs.decide(t(0.0), vec![ItemId(0), ItemId(2), ItemId(9)]) {
            BsDecision::Invalidate(stale) => {
                assert_eq!(stale, vec![ItemId(0), ItemId(2)]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bit_level_invalidation_is_conservative() {
        // Item 1 is marked at the selected level even though this client's
        // copy might be fresh — the paper's BS drops it regardless.
        let bs = BitSequences::from_recency(t(2000.0), 16, recency(9));
        match bs.decide(t(955.0), vec![ItemId(4)]) {
            // Tlb=955: level 8 is the smallest covering (cut level4 = ts
            // item 4 = 960 > 955; cut level8 = ts item 8 = 920 ≤ 955).
            BsDecision::Invalidate(stale) => assert_eq!(stale, vec![ItemId(4)]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn paper_size_formula() {
        let p = SizeParams {
            db_size: 10_000,
            group_count: 64,
            timestamp_bits: 48.0,
            header_bits: 64.0,
            control_bytes: 512,
            item_bytes: 8192,
        };
        let bs = BitSequences::from_recency(t(10.0), 10_000, vec![]);
        // 2N + bT * log2 N = 20 000 + 48 * 14.
        assert_eq!(bs.size_bits(&p), 20_000.0 + 48.0 * 14.0);
    }

    #[test]
    fn wire_encoding_matches_exact_size() {
        let p = SizeParams {
            db_size: 64,
            group_count: 64,
            timestamp_bits: 64.0,
            header_bits: 0.0,
            control_bytes: 512,
            item_bytes: 8192,
        };
        let bs = BitSequences::from_recency(t(2000.0), 64, recency(40));
        let wire = bs.encode_wire();
        // Bitmap bits: levels 1,2,4,8,16,32 -> |B_k| = 2,4,8,16,32,64 =
        // 126 bits -> padded to bytes per level: 1+1+1+2+4+8 = 17 bytes.
        // Timestamps: 7 * 8 bytes.
        assert_eq!(wire.len(), 17 + 56);
        let exact = bs.exact_size_bits(&p);
        assert_eq!(exact, 126.0 + 7.0 * 64.0);
        // The paper's closed form upper-bounds the bitmap portion.
        assert!(bs.size_bits(&p) >= exact - 7.0 * 64.0);
    }

    #[test]
    fn exactly_filled_top_level_with_overflow() {
        // DB 16, 20 updates: recency truncated to 8, cut of level 8 = ts
        // of the 9th most recent.
        let bs = BitSequences::from_recency(t(2000.0), 16, recency(20));
        assert_eq!(bs.recency.len(), 8);
        let top = bs.levels.last().unwrap();
        assert_eq!(top.prefix_len, 8);
        assert_eq!(top.cut, Some(t(1000.0 - 8.0 * 10.0)));
    }

    #[test]
    fn indexed_fanout_matches_decide() {
        let bs = BitSequences::from_recency(t(2000.0), 16, recency(9));
        let idx = bs.index();
        let caches: [&[u32]; 4] = [&[0, 1, 5], &[0, 3, 5], &[4], &[9, 12]];
        for (tlb, cached) in [(995.0, 0), (975.0, 1), (955.0, 2), (1500.0, 3), (900.0, 0)]
            .map(|(tlb, ci)| (tlb, caches[ci]))
        {
            let items: Vec<ItemId> = cached.iter().map(|&i| ItemId(i)).collect();
            let mut out = Vec::new();
            let sel = bs.decide_with(&idx, t(tlb), items.iter().copied(), &mut out);
            match bs.decide(t(tlb), items) {
                BsDecision::Clean => assert_eq!(sel, BsSelect::Clean),
                BsDecision::DropAll => assert_eq!(sel, BsSelect::DropAll),
                BsDecision::Invalidate(mut stale) => {
                    assert!(matches!(sel, BsSelect::Prefix(_)));
                    stale.sort_unstable();
                    out.sort_unstable();
                    assert_eq!(out, stale, "tlb {tlb}");
                }
            }
        }
    }

    #[test]
    fn sharded_index_build_matches_serial() {
        let pool = WorkerPool::new(3);
        // Sizes chosen to exercise empty, single-entry, non-dividing and
        // larger-than-shard-count recency lists.
        for n in [0usize, 1, 2, 7, 8, 40] {
            let bs = BitSequences::from_recency(t(2000.0), 128, recency(n));
            let serial = BsIndex::build(&bs);
            for shards in [1usize, 2, 3, 5, 16] {
                let sharded = BsIndex::build_sharded(&bs, &pool, shards, 1);
                assert_eq!(serial, sharded, "n={n} shards={shards}");
            }
            // A min-items threshold changes who builds, never the result.
            assert_eq!(serial, BsIndex::build_sharded(&bs, &pool, 4, 16));
        }
    }

    #[test]
    fn boundary_tlb_equal_to_cut_is_covered() {
        let bs = BitSequences::from_recency(t(2000.0), 16, recency(9));
        // cut of level 1 = 990; Tlb = 990 exactly: items updated after 990
        // are a subset of the level-1 prefix, so it must cover.
        match bs.decide(t(990.0), vec![ItemId(0), ItemId(1)]) {
            BsDecision::Invalidate(stale) => assert_eq!(stale, vec![ItemId(0)]),
            other => panic!("{other:?}"),
        }
    }
}
