//! The `AT` (amnesic terminals) invalidation report of Barbara &
//! Imielinski.
//!
//! The server is amnesic: the report broadcast at `T_i` lists only the
//! items updated since the *previous* report at `T_i − L` — ids only, no
//! per-item timestamps. A client that heard the previous report
//! invalidates exactly the listed items; a client that missed even one
//! report cannot reconstruct the gap and must drop its entire cache.
//! (This is why the paper excludes `AT` from the long-disconnection
//! plots; it is implemented here for library completeness and the window
//! ablation.)

use mobicache_model::msg::SizeParams;
use mobicache_model::units::Bits;
use mobicache_model::ItemId;
use mobicache_sim::SimTime;

/// An amnesic-terminals report.
#[derive(Clone, Debug, PartialEq)]
pub struct AtReport {
    /// Broadcast timestamp `T_i`.
    pub broadcast_at: SimTime,
    /// Timestamp of the previous report (`T_i − L`); the report covers
    /// exactly the interval `(prev_broadcast, broadcast_at]`.
    pub prev_broadcast: SimTime,
    /// Items updated in the covered interval (ids only).
    pub items: Vec<ItemId>,
}

/// What a client should do with its cache after receiving an
/// [`AtReport`].
#[derive(Clone, Debug, PartialEq)]
pub enum AtDecision {
    /// The client missed at least one report; nothing can be salvaged.
    NotCovered,
    /// Drop exactly the listed items.
    Invalidate(Vec<ItemId>),
}

/// A build-once membership index over an [`AtReport`]'s item list:
/// sorted ids, queried by binary search. Shared across the broadcast
/// fan-out so each client's pass is `O(|cache| · log |items|)` with no
/// per-client `HashSet`.
#[derive(Clone, Debug)]
pub struct AtIndex {
    sorted: Vec<ItemId>,
}

impl AtIndex {
    /// Builds the index: `O(|items| · log |items|)`, once per report.
    pub fn build(report: &AtReport) -> Self {
        let mut sorted = report.items.clone();
        sorted.sort_unstable();
        AtIndex { sorted }
    }

    /// `true` when the report lists `item` as updated.
    #[inline]
    pub fn contains(&self, item: ItemId) -> bool {
        self.sorted.binary_search(&item).is_ok()
    }
}

impl AtReport {
    /// `true` when a client whose last report was at `tlb` can use this
    /// report (it heard the immediately preceding one).
    pub fn covers(&self, tlb: SimTime) -> bool {
        tlb >= self.prev_broadcast
    }

    /// Client algorithm: drop the listed items if covered, else signal a
    /// full drop.
    pub fn decide<I>(&self, tlb: SimTime, cached: I) -> AtDecision
    where
        I: IntoIterator<Item = ItemId>,
    {
        if !self.covers(tlb) {
            return AtDecision::NotCovered;
        }
        let listed: std::collections::HashSet<ItemId> = self.items.iter().copied().collect();
        AtDecision::Invalidate(
            cached
                .into_iter()
                .filter(|item| listed.contains(item))
                .collect(),
        )
    }

    /// Builds the shared membership index for this report. Build once,
    /// apply to every client of the broadcast fan-out.
    pub fn index(&self) -> AtIndex {
        AtIndex::build(self)
    }

    /// The fan-out form of [`AtReport::decide`]: same verdict through a
    /// prebuilt [`AtIndex`] (`idx` must be built from this report). When
    /// covered, the listed cached items are appended to `out` (not
    /// cleared) in `cached` order and `true` is returned; otherwise `out`
    /// is untouched and `false` is returned (full drop).
    pub fn decide_with<I>(
        &self,
        idx: &AtIndex,
        tlb: SimTime,
        cached: I,
        out: &mut Vec<ItemId>,
    ) -> bool
    where
        I: IntoIterator<Item = ItemId>,
    {
        if !self.covers(tlb) {
            return false;
        }
        for item in cached {
            if idx.contains(item) {
                out.push(item);
            }
        }
        true
    }

    /// Report body size: the current timestamp plus one id per listed
    /// item (no per-item timestamps — that is the whole point of `AT`).
    pub fn size_bits(&self, p: &SizeParams) -> Bits {
        p.timestamp_bits + self.items.len() as f64 * p.id_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn report() -> AtReport {
        AtReport {
            broadcast_at: t(100.0),
            prev_broadcast: t(80.0),
            items: vec![ItemId(2), ItemId(5)],
        }
    }

    #[test]
    fn connected_client_invalidates_listed() {
        let r = report();
        assert_eq!(
            r.decide(t(80.0), vec![ItemId(1), ItemId(2), ItemId(9)]),
            AtDecision::Invalidate(vec![ItemId(2)])
        );
    }

    #[test]
    fn one_missed_report_means_drop() {
        let r = report();
        assert_eq!(r.decide(t(79.9), vec![ItemId(1)]), AtDecision::NotCovered);
    }

    #[test]
    fn size_counts_ids_only() {
        let p = SizeParams {
            db_size: 1024,
            group_count: 64,
            timestamp_bits: 48.0,
            header_bits: 64.0,
            control_bytes: 512,
            item_bytes: 8192,
        };
        assert_eq!(report().size_bits(&p), 48.0 + 2.0 * 10.0);
    }

    #[test]
    fn empty_report_keeps_everything() {
        let r = AtReport {
            broadcast_at: t(100.0),
            prev_broadcast: t(80.0),
            items: vec![],
        };
        assert_eq!(
            r.decide(t(90.0), vec![ItemId(1)]),
            AtDecision::Invalidate(vec![])
        );
    }
}
