//! The report payload broadcast by the server each period.
//!
//! The adaptive schemes choose among report kinds period by period (§3),
//! so the downlink carries a sum type. Size dispatch lives here so the
//! simulator charges every kind through one call.

use crate::at::{AtIndex, AtReport};
use crate::bitseq::{BitSequences, BsIndex};
use crate::sig::{SigReport, Signer};
use crate::window::{WindowIndex, WindowReport};
use mobicache_model::msg::SizeParams;
use mobicache_model::units::Bits;
use mobicache_sim::SimTime;

/// One invalidation report, of whichever kind the scheme broadcast.
#[derive(Clone, Debug, PartialEq)]
pub enum ReportPayload {
    /// A `TS` window report (plain or AAW-enlarged — distinguished by the
    /// dummy record inside).
    Window(WindowReport),
    /// A bit-sequences report.
    BitSeq(BitSequences),
    /// An amnesic-terminals report.
    At(AtReport),
    /// A signatures report (carries its signer parameters for size
    /// accounting).
    Sig(SigReport, Signer),
}

impl ReportPayload {
    /// Broadcast timestamp of the report.
    pub fn broadcast_at(&self) -> SimTime {
        match self {
            ReportPayload::Window(r) => r.broadcast_at,
            ReportPayload::BitSeq(r) => r.broadcast_at,
            ReportPayload::At(r) => r.broadcast_at,
            ReportPayload::Sig(r, _) => r.broadcast_at,
        }
    }

    /// Body size in bits (header added by the message layer).
    pub fn size_bits(&self, p: &SizeParams) -> Bits {
        match self {
            ReportPayload::Window(r) => r.size_bits(p),
            ReportPayload::BitSeq(r) => r.size_bits(p),
            ReportPayload::At(r) => r.size_bits(p),
            ReportPayload::Sig(r, signer) => r.size_bits(signer, p),
        }
    }

    /// `true` for a bit-sequences report (the adaptive-decision metric
    /// "how often did the server fall back to BS" keys off this).
    pub fn is_bitseq(&self) -> bool {
        matches!(self, ReportPayload::BitSeq(_))
    }

    /// `true` for an AAW-enlarged window report.
    pub fn is_enlarged_window(&self) -> bool {
        matches!(self, ReportPayload::Window(w) if w.dummy.is_some())
    }

    /// Builds the per-kind shared lookup index for this report —
    /// [`PreparedReport::new`] in method form.
    pub fn prepare(&self) -> PreparedReport<'_> {
        PreparedReport::new(self)
    }
}

/// The per-kind shared lookup index of one broadcast report.
enum PreparedIndex {
    Window(WindowIndex),
    BitSeq(BsIndex),
    At(AtIndex),
    /// Signature reports are applied via the signer directly; there is
    /// nothing to pre-index.
    Sig,
}

/// A [`ReportPayload`] paired with its build-once lookup index.
///
/// One broadcast report is applied by every connected client, so the
/// simulator prepares the report once per delivery and routes the whole
/// fan-out through the shared index: each client's pass is then
/// `O(|cache| · log |report|)` with no per-client sorting, hashing or
/// allocation.
pub struct PreparedReport<'a> {
    payload: &'a ReportPayload,
    index: PreparedIndex,
}

impl<'a> PreparedReport<'a> {
    /// Indexes `payload` — `O(|report| · log |report|)`, once per
    /// broadcast delivery.
    pub fn new(payload: &'a ReportPayload) -> Self {
        let index = match payload {
            ReportPayload::Window(w) => PreparedIndex::Window(w.index()),
            ReportPayload::BitSeq(bs) => PreparedIndex::BitSeq(bs.index()),
            ReportPayload::At(at) => PreparedIndex::At(at.index()),
            ReportPayload::Sig(..) => PreparedIndex::Sig,
        };
        PreparedReport { payload, index }
    }

    /// Pairs a [`ReportPayload::BitSeq`] with an externally built index —
    /// the engine builds it through the worker pool via
    /// [`BsIndex::build_sharded`]. For any other payload kind the index
    /// argument is meaningless, so this falls back to
    /// [`PreparedReport::new`].
    pub fn with_bs_index(payload: &'a ReportPayload, index: BsIndex) -> Self {
        match payload {
            ReportPayload::BitSeq(_) => PreparedReport {
                payload,
                index: PreparedIndex::BitSeq(index),
            },
            _ => PreparedReport::new(payload),
        }
    }

    /// The underlying report.
    pub fn payload(&self) -> &'a ReportPayload {
        self.payload
    }

    /// The shared window index ([`ReportPayload::Window`] only).
    pub fn window_index(&self) -> Option<&WindowIndex> {
        match &self.index {
            PreparedIndex::Window(idx) => Some(idx),
            _ => None,
        }
    }

    /// The shared bit-sequences index ([`ReportPayload::BitSeq`] only).
    pub fn bs_index(&self) -> Option<&BsIndex> {
        match &self.index {
            PreparedIndex::BitSeq(idx) => Some(idx),
            _ => None,
        }
    }

    /// The shared AT membership index ([`ReportPayload::At`] only).
    pub fn at_index(&self) -> Option<&AtIndex> {
        match &self.index {
            PreparedIndex::At(idx) => Some(idx),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobicache_model::ItemId;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn p() -> SizeParams {
        SizeParams {
            db_size: 1024,
            group_count: 64,
            timestamp_bits: 48.0,
            header_bits: 64.0,
            control_bytes: 512,
            item_bytes: 8192,
        }
    }

    #[test]
    fn dispatch_matches_inner_types() {
        let w = WindowReport {
            broadcast_at: t(100.0),
            window_start: t(0.0),
            records: vec![(ItemId(1), t(50.0))],
            dummy: None,
        };
        let payload = ReportPayload::Window(w.clone());
        assert_eq!(payload.broadcast_at(), t(100.0));
        assert_eq!(payload.size_bits(&p()), w.size_bits(&p()));
        assert!(!payload.is_bitseq());
        assert!(!payload.is_enlarged_window());
    }

    #[test]
    fn enlarged_window_detection() {
        let w = WindowReport {
            broadcast_at: t(100.0),
            window_start: t(0.0),
            records: vec![],
            dummy: Some(t(10.0)),
        };
        assert!(ReportPayload::Window(w).is_enlarged_window());
    }

    #[test]
    fn bitseq_detection() {
        let bs = BitSequences::from_recency(t(100.0), 16, vec![]);
        let payload = ReportPayload::BitSeq(bs);
        assert!(payload.is_bitseq());
        assert_eq!(payload.broadcast_at(), t(100.0));
    }
}
