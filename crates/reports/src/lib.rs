//! # mobicache-reports — invalidation report structures and algorithms
//!
//! Everything a stateless server broadcasts and a mobile client evaluates:
//!
//! * [`window`] — the `TS` *broadcasting timestamps* report (§2.1 of the
//!   paper): the update history of the last `w` broadcast intervals, plus
//!   the AAW *enlarged window* variant carrying a dummy record.
//! * [`at`] — the *amnesic terminals* report: only the items updated since
//!   the previous report.
//! * [`bitseq`] — the *bit-sequences* structure of Jing et al. (§2.3): a
//!   hierarchy of bit sequences `B_n … B_1` plus the dummy `B_0`, able to
//!   salvage a cache after arbitrarily long disconnections.
//! * [`sig`] — the *signatures* scheme of Barbara & Imielinski: combined
//!   signatures over pseudo-random item subsets (group testing).
//! * [`payload`] — the [`ReportPayload`] sum type the simulator broadcasts.
//!
//! All client-side logic here is **pure**: a report plus the client's
//! last-report timestamp (`Tlb`) and a view of its cache produce a
//! decision describing which entries to drop. The `mobicache-client` crate
//! applies decisions to the actual cache; keeping the algorithms pure makes
//! them property-testable against a ground-truth update history (see
//! `tests/` in this crate).

pub mod at;
pub mod bitseq;
pub mod payload;
pub mod plan;
pub mod sig;
pub mod window;

pub use at::{AtDecision, AtIndex, AtReport};
pub use bitseq::{BitSequences, BsDecision, BsIndex, BsSelect};
pub use payload::{PreparedReport, ReportPayload};
pub use plan::{PlanCache, PlanStats};
pub use sig::{SigDecision, SigReport, Signer};
pub use window::{WindowDecision, WindowIndex, WindowReport};
