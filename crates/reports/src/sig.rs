//! The `SIG` (signatures) invalidation scheme of Barbara & Imielinski.
//!
//! Instead of an update list, the server periodically broadcasts `m`
//! **combined signatures**. Each combined signature is the XOR of the
//! per-item signatures of a pseudo-random half of the database, where an
//! item's signature is a `k`-bit hash of `(item, version)`. A client keeps
//! the combined signatures from the last report it heard; on the next
//! report it compares: a combined signature that differs proves that some
//! member item changed. Group-testing decoding then flags a cached item as
//! stale when **every** combined signature containing it differs.
//!
//! Properties (verified by the tests below):
//!
//! * *No false negatives* w.h.p.: a genuinely updated item flips each of
//!   its ≈ m/2 containing signatures (two simultaneous changes cancelling
//!   a k-bit XOR has probability 2⁻ᵏ per signature).
//! * *False positives grow with the number of updates*: with `c` changed
//!   items, an unchanged item's containing signature also differs with
//!   probability `1 − 2⁻ᶜ`, so precision degrades as `c` grows — exactly
//!   the known limitation that makes `SIG` suitable only for low update
//!   rates, and why the paper's adaptive schemes build on `TS`/`BS`
//!   instead. The report size, in exchange, is a constant `m·k` bits
//!   independent of the update rate and disconnection time.
//!
//! The membership relation and per-item signatures are derived
//! deterministically from a shared seed (in a real system: a protocol
//! constant), so server and clients agree without communication.

use mobicache_model::msg::SizeParams;
use mobicache_model::units::Bits;
use mobicache_model::ItemId;
use mobicache_sim::SimTime;

/// Deterministic signature/membership oracle shared by server and clients.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Signer {
    /// Number of combined signatures per report.
    pub num_sigs: u32,
    /// Width of each signature in bits (≤ 64).
    pub sig_bits: u32,
    /// Protocol constant seeding membership and hashing.
    pub seed: u64,
}

impl Signer {
    /// A signer with `num_sigs` combined signatures of `sig_bits` bits.
    ///
    /// # Panics
    /// Panics if `sig_bits` is 0 or exceeds 64, or `num_sigs` is 0.
    pub fn new(num_sigs: u32, sig_bits: u32, seed: u64) -> Self {
        assert!(num_sigs > 0, "need at least one combined signature");
        assert!(
            (1..=64).contains(&sig_bits),
            "sig_bits must be in 1..=64, got {sig_bits}"
        );
        Signer {
            num_sigs,
            sig_bits,
            seed,
        }
    }

    #[inline]
    fn mix(&self, a: u64, b: u64) -> u64 {
        // SplitMix64-style finalizer over the pair.
        let mut z = a
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(b)
            .wrapping_add(self.seed);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// `true` when `item` participates in combined signature `sig_index`
    /// (each item joins each signature independently with probability ½).
    #[inline]
    pub fn is_member(&self, sig_index: u32, item: ItemId) -> bool {
        self.mix(sig_index as u64 ^ 0xA5A5_A5A5, item.0 as u64) & 1 == 1
    }

    /// The `sig_bits`-bit signature of `(item, version)`.
    #[inline]
    pub fn item_signature(&self, item: ItemId, version: SimTime) -> u64 {
        let v = self.mix(item.0 as u64, version.as_secs().to_bits());
        if self.sig_bits == 64 {
            v
        } else {
            v & ((1u64 << self.sig_bits) - 1)
        }
    }

    /// Builds the combined signatures over the whole database given each
    /// item's current version (indexed by item id).
    pub fn combine(&self, versions: &[SimTime]) -> Vec<u64> {
        let mut sigs = vec![0u64; self.num_sigs as usize];
        for (idx, &version) in versions.iter().enumerate() {
            let item = ItemId(idx as u32);
            let s = self.item_signature(item, version);
            for (j, sig) in sigs.iter_mut().enumerate() {
                if self.is_member(j as u32, item) {
                    *sig ^= s;
                }
            }
        }
        sigs
    }
}

/// A signatures report: the current combined signatures.
#[derive(Clone, Debug, PartialEq)]
pub struct SigReport {
    /// Broadcast timestamp `T_i`.
    pub broadcast_at: SimTime,
    /// The `m` combined signatures.
    pub combined: Vec<u64>,
}

/// Outcome of comparing a new report with the client's stored one.
#[derive(Clone, Debug, PartialEq)]
pub enum SigDecision {
    /// The client has no stored signatures to compare against (first
    /// report it ever hears); it must treat its cache as unverifiable.
    NoBaseline,
    /// Drop the listed cached items (those whose containing signatures
    /// all differ).
    Invalidate(Vec<ItemId>),
}

impl SigReport {
    /// Group-testing decode: given the client's stored combined
    /// signatures (from time `Tlb`) and its cached items, flags the items
    /// to invalidate.
    pub fn decide<I>(&self, signer: &Signer, baseline: Option<&[u64]>, cached: I) -> SigDecision
    where
        I: IntoIterator<Item = ItemId>,
    {
        let Some(baseline) = baseline else {
            return SigDecision::NoBaseline;
        };
        assert_eq!(
            baseline.len(),
            self.combined.len(),
            "baseline/report signature count mismatch"
        );
        let differs: Vec<bool> = baseline
            .iter()
            .zip(&self.combined)
            .map(|(a, b)| a != b)
            .collect();
        let stale = cached
            .into_iter()
            .filter(|&item| {
                let mut in_any = false;
                for (j, &diff) in differs.iter().enumerate() {
                    if signer.is_member(j as u32, item) {
                        in_any = true;
                        if !diff {
                            return false; // a clean containing signature vouches for it
                        }
                    }
                }
                in_any // an item in no signature at all cannot be vouched for
            })
            .collect();
        SigDecision::Invalidate(stale)
    }

    /// Report body size: `m · k` bits plus the timestamp — constant in the
    /// update rate and the disconnection time.
    pub fn size_bits(&self, signer: &Signer, p: &SizeParams) -> Bits {
        p.timestamp_bits + (signer.num_sigs as f64) * (signer.sig_bits as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn signer() -> Signer {
        Signer::new(32, 32, 0x516)
    }

    fn versions(n: usize) -> Vec<SimTime> {
        vec![SimTime::ZERO; n]
    }

    #[test]
    fn membership_is_roughly_half() {
        let s = signer();
        let members = (0..1000).filter(|&i| s.is_member(0, ItemId(i))).count();
        assert!((400..600).contains(&members), "members {members}");
    }

    #[test]
    fn unchanged_database_invalidates_nothing() {
        let s = signer();
        let v = versions(100);
        let base = s.combine(&v);
        let report = SigReport {
            broadcast_at: t(10.0),
            combined: s.combine(&v),
        };
        match report.decide(&s, Some(&base), (0..100).map(ItemId)) {
            SigDecision::Invalidate(stale) => assert!(stale.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn single_update_is_always_caught() {
        let s = signer();
        let mut v = versions(200);
        let base = s.combine(&v);
        v[17] = t(5.0);
        let report = SigReport {
            broadcast_at: t(10.0),
            combined: s.combine(&v),
        };
        match report.decide(&s, Some(&base), (0..200).map(ItemId)) {
            SigDecision::Invalidate(stale) => {
                assert!(stale.contains(&ItemId(17)), "no false negative");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn few_updates_have_few_false_positives() {
        let s = signer();
        let n = 500usize;
        let mut v = versions(n);
        let base = s.combine(&v);
        for &i in &[3usize, 99, 250] {
            v[i] = t(7.0);
        }
        let report = SigReport {
            broadcast_at: t(10.0),
            combined: s.combine(&v),
        };
        match report.decide(&s, Some(&base), (0..n as u32).map(ItemId)) {
            SigDecision::Invalidate(stale) => {
                for &i in &[3u32, 99, 250] {
                    assert!(stale.contains(&ItemId(i)));
                }
                // With c=3 changes and m=32 sigs, an unchanged item's ~16
                // containing sigs must all differ: P ≈ (1-2^-3)^16 ≈ 0.12.
                // Bound loosely to keep the test robust.
                assert!(
                    stale.len() < 3 + n / 4,
                    "false positives {} out of {}",
                    stale.len() - 3,
                    n
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn many_updates_degrade_precision() {
        // The documented SIG failure mode: lots of updates make most
        // signatures differ, flagging much of the cache.
        let s = signer();
        let n = 400usize;
        let mut v = versions(n);
        let base = s.combine(&v);
        for item in v.iter_mut().take(n / 2) {
            *item = t(9.0);
        }
        let report = SigReport {
            broadcast_at: t(10.0),
            combined: s.combine(&v),
        };
        match report.decide(&s, Some(&base), (0..n as u32).map(ItemId)) {
            SigDecision::Invalidate(stale) => {
                assert!(stale.len() > n / 2, "most of the cache is flagged");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn no_baseline_means_no_verdict() {
        let s = signer();
        let report = SigReport {
            broadcast_at: t(10.0),
            combined: s.combine(&versions(10)),
        };
        assert_eq!(
            report.decide(&s, None, vec![ItemId(1)]),
            SigDecision::NoBaseline
        );
    }

    #[test]
    fn size_is_constant() {
        let s = signer();
        let p = SizeParams {
            db_size: 80_000,
            group_count: 64,
            timestamp_bits: 48.0,
            header_bits: 64.0,
            control_bytes: 512,
            item_bytes: 8192,
        };
        let report = SigReport {
            broadcast_at: t(10.0),
            combined: vec![0; 32],
        };
        assert_eq!(report.size_bits(&s, &p), 48.0 + 32.0 * 32.0);
    }
}
