//! The `TS` (broadcasting timestamps) window report — §2.1 of the paper —
//! and the AAW enlarged-window variant (§3.2).
//!
//! The report broadcast at time `T` carries the current timestamp and the
//! list of `(oid, t_oid)` pairs for every item updated in the covered
//! window `[window_start, T]`; in the plain scheme `window_start = T − w·L`.
//! AAW may *enlarge* the window back to the oldest pending client `Tlb`;
//! the enlargement is signalled in-band with a single **dummy record**
//! `(dummy_id, Tlb)` (the window size itself is deliberately not carried —
//! §3.2: "to keep the invalidation report size small, we do not explicitly
//! include in each report the window size").
//!
//! Client algorithm (Figure 1 of the paper):
//!
//! ```text
//! if Tlb < Ti − L·w:            drop the entire cache
//! else: for every cached oj:
//!     if oj ∈ IR and tc_j < t_j: throw oj out of the cache
//!     else:                      tc_j ← Ti        (revalidate)
//! ```

use mobicache_model::msg::SizeParams;
use mobicache_model::units::Bits;
use mobicache_model::ItemId;
use mobicache_sim::SimTime;

/// A `TS` window invalidation report.
///
/// ```
/// use mobicache_model::ItemId;
/// use mobicache_reports::{WindowDecision, WindowReport};
/// use mobicache_sim::SimTime;
///
/// let t = SimTime::from_secs;
/// let report = WindowReport {
///     broadcast_at: t(1000.0),
///     window_start: t(800.0), // w·L = 200 s of history
///     records: vec![(ItemId(4), t(950.0))],
///     dummy: None,
/// };
/// // In-window client: drop exactly the stale entry.
/// assert_eq!(
///     report.decide(t(900.0), vec![(ItemId(4), t(100.0)), (ItemId(9), t(100.0))]),
///     WindowDecision::Invalidate(vec![ItemId(4)])
/// );
/// // A client that slept past the window cannot be served.
/// assert_eq!(
///     report.decide(t(700.0), vec![(ItemId(9), t(100.0))]),
///     WindowDecision::NotCovered
/// );
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct WindowReport {
    /// Broadcast timestamp `T_i`.
    pub broadcast_at: SimTime,
    /// Start of the covered window: every update with timestamp
    /// `> window_start` is listed in `records`.
    pub window_start: SimTime,
    /// `(oid, latest update timestamp)` for every item updated in the
    /// window — at most one record per item.
    pub records: Vec<(ItemId, SimTime)>,
    /// AAW enlargement marker: `Some(tlb)` means this report's window was
    /// enlarged back to `tlb` and carries the dummy record
    /// `(dummy_id, tlb)`. `None` for a plain `TS` report.
    pub dummy: Option<SimTime>,
}

/// What a client should do with its cache after receiving a
/// [`WindowReport`].
#[derive(Clone, Debug, PartialEq)]
pub enum WindowDecision {
    /// The report does not reach back to the client's `Tlb`; nothing can
    /// be salvaged through this report alone. (A plain-`TS` client drops
    /// its cache; an adaptive client uplinks its `Tlb` instead.)
    NotCovered,
    /// The report covers the client's `Tlb`: drop exactly the listed
    /// items, keep and revalidate the rest.
    Invalidate(Vec<ItemId>),
}

/// A build-once lookup index over a [`WindowReport`]'s records: the
/// records sorted by item id, queried by binary search.
///
/// One report is applied by every connected client each broadcast
/// period, so the simulator builds this once per delivered report and
/// shares it across the whole fan-out — each client's Figure-1 pass is
/// then `O(|cache| · log |records|)` with no per-client allocation,
/// instead of the reference algorithm's `O(|cache| · |records|)` scan.
#[derive(Clone, Debug)]
pub struct WindowIndex {
    /// Records sorted by item id (at most one record per item).
    sorted: Vec<(ItemId, SimTime)>,
}

impl WindowIndex {
    /// Builds the index: `O(|records| · log |records|)`, once per report.
    pub fn build(report: &WindowReport) -> Self {
        let mut sorted = report.records.clone();
        sorted.sort_unstable_by_key(|&(id, _)| id);
        WindowIndex { sorted }
    }

    /// The listed update timestamp for `item`, if the window lists it.
    #[inline]
    pub fn updated_at(&self, item: ItemId) -> Option<SimTime> {
        self.sorted
            .binary_search_by_key(&item, |&(id, _)| id)
            .ok()
            .map(|pos| self.sorted[pos].1)
    }

    /// `true` when the report proves a cached copy at `version` stale.
    #[inline]
    pub fn is_stale(&self, item: ItemId, version: SimTime) -> bool {
        self.updated_at(item).is_some_and(|t| version < t)
    }

    /// Appends every provably stale cached entry to `out` (which is not
    /// cleared) — the allocation-free fan-out primitive behind
    /// [`WindowReport::stale_items`].
    pub fn stale_into<I>(&self, cached: I, out: &mut Vec<ItemId>)
    where
        I: IntoIterator<Item = (ItemId, SimTime)>,
    {
        for (item, version) in cached {
            if self.is_stale(item, version) {
                out.push(item);
            }
        }
    }
}

impl WindowReport {
    /// `true` when this report's history reaches back to `tlb`, i.e. every
    /// update that happened after `tlb` is listed.
    ///
    /// Coverage comes from either the window itself (`tlb ≥ window_start`)
    /// or, for an enlarged report, the dummy record (`dummy ≤ tlb`). The
    /// dummy path is exactly the client check in Figure 4 of the paper.
    pub fn covers(&self, tlb: SimTime) -> bool {
        if tlb >= self.window_start {
            return true;
        }
        match self.dummy {
            Some(dummy_tlb) => dummy_tlb <= tlb,
            None => false,
        }
    }

    /// Builds the shared lookup index for this report. Build once, apply
    /// to every client of the broadcast fan-out.
    pub fn index(&self) -> WindowIndex {
        WindowIndex::build(self)
    }

    /// Runs the Figure-1 client algorithm for a client whose last report
    /// was at `tlb`, over a cache view of `(item, version)` pairs, where
    /// `version` is the timestamp of the last update the cached copy
    /// reflects.
    ///
    /// Returns [`WindowDecision::NotCovered`] when the report cannot
    /// vouch for the missed period; the caller decides between dropping
    /// (plain `TS`) and uplinking `Tlb` (adaptive schemes).
    ///
    /// Thin wrapper over the indexed path (builds a throwaway
    /// [`WindowIndex`]); callers applying one report to many caches
    /// should build the index once and use [`WindowReport::decide_with`].
    pub fn decide<I>(&self, tlb: SimTime, cached: I) -> WindowDecision
    where
        I: IntoIterator<Item = (ItemId, SimTime)>,
    {
        self.decide_with(&self.index(), tlb, cached)
    }

    /// The obviously-correct reference implementation of
    /// [`WindowReport::decide`]: a linear `records` scan per cached item,
    /// `O(|cache| · |records|)`. Kept for property tests (the indexed
    /// path must agree with it exactly) and as the baseline side of the
    /// tick fan-out micro-benchmark.
    pub fn decide_linear<I>(&self, tlb: SimTime, cached: I) -> WindowDecision
    where
        I: IntoIterator<Item = (ItemId, SimTime)>,
    {
        if !self.covers(tlb) {
            return WindowDecision::NotCovered;
        }
        let mut stale = Vec::new();
        for (item, version) in cached {
            if let Some(&(_, updated_at)) = self.records.iter().find(|(id, _)| *id == item) {
                if version < updated_at {
                    stale.push(item);
                }
            }
        }
        WindowDecision::Invalidate(stale)
    }

    /// Like [`WindowReport::decide`] but with an index for large reports —
    /// `O(cache · log records)` instead of `O(cache · records)`. Builds
    /// the index per call; [`WindowReport::decide_with`] amortizes it.
    pub fn decide_indexed<I>(&self, tlb: SimTime, cached: I) -> WindowDecision
    where
        I: IntoIterator<Item = (ItemId, SimTime)>,
    {
        self.decide_with(&self.index(), tlb, cached)
    }

    /// The fan-out form of [`WindowReport::decide`]: applies this report
    /// through a prebuilt [`WindowIndex`] (`idx` must be built from this
    /// report).
    pub fn decide_with<I>(&self, idx: &WindowIndex, tlb: SimTime, cached: I) -> WindowDecision
    where
        I: IntoIterator<Item = (ItemId, SimTime)>,
    {
        if !self.covers(tlb) {
            return WindowDecision::NotCovered;
        }
        let mut stale = Vec::new();
        idx.stale_into(cached, &mut stale);
        WindowDecision::Invalidate(stale)
    }

    /// Lists the cached entries this report *proves* stale — a pure
    /// version comparison against the records, ignoring coverage. Always
    /// sound to apply: a record `(oid, t)` with `t >` the cached version
    /// is a definite update the copy misses. Used for partial application
    /// while a reconnection gap is pending (the gap only prevents
    /// *re-validating* entries, not dropping provably stale ones).
    ///
    /// Builds a throwaway index; the fan-out path uses
    /// [`WindowIndex::stale_into`] with a shared index and scratch buffer.
    pub fn stale_items<I>(&self, cached: I) -> Vec<ItemId>
    where
        I: IntoIterator<Item = (ItemId, SimTime)>,
    {
        let mut stale = Vec::new();
        self.index().stale_into(cached, &mut stale);
        stale
    }

    /// Report body size in bits: `n_w · (log₂N + b_T)` (§3.1) plus the
    /// current timestamp, plus one more record if the dummy is present.
    pub fn size_bits(&self, p: &SizeParams) -> Bits {
        let n_records = self.records.len() as f64 + if self.dummy.is_some() { 1.0 } else { 0.0 };
        p.timestamp_bits + n_records * p.record_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn report(records: Vec<(u32, f64)>) -> WindowReport {
        WindowReport {
            broadcast_at: t(1000.0),
            window_start: t(800.0),
            records: records
                .into_iter()
                .map(|(id, ts)| (ItemId(id), t(ts)))
                .collect(),
            dummy: None,
        }
    }

    #[test]
    fn covered_client_invalidates_exactly_the_stale_items() {
        let r = report(vec![(1, 950.0), (2, 900.0)]);
        // Cached: item 1 fetched before its update (stale), item 2 fetched
        // after (fresh), item 3 never updated.
        let cache = vec![
            (ItemId(1), t(850.0)),
            (ItemId(2), t(920.0)),
            (ItemId(3), t(100.0)),
        ];
        match r.decide(t(900.0), cache) {
            WindowDecision::Invalidate(stale) => assert_eq!(stale, vec![ItemId(1)]),
            other => panic!("expected Invalidate, got {other:?}"),
        }
    }

    #[test]
    fn out_of_window_client_is_not_covered() {
        let r = report(vec![(1, 950.0)]);
        assert_eq!(
            r.decide(t(700.0), vec![(ItemId(1), t(650.0))]),
            WindowDecision::NotCovered
        );
    }

    #[test]
    fn window_boundary_is_inclusive() {
        let r = report(vec![]);
        assert!(r.covers(t(800.0)));
        assert!(!r.covers(t(799.999)));
    }

    #[test]
    fn dummy_record_extends_coverage() {
        let mut r = report(vec![(4, 700.0)]);
        r.dummy = Some(t(600.0));
        // Client with Tlb=650: outside the window but after the dummy.
        assert!(r.covers(t(650.0)));
        match r.decide(t(650.0), vec![(ItemId(4), t(640.0))]) {
            WindowDecision::Invalidate(stale) => assert_eq!(stale, vec![ItemId(4)]),
            other => panic!("{other:?}"),
        }
        // Client with Tlb=500: before even the dummy — still uncovered.
        assert!(!r.covers(t(500.0)));
    }

    #[test]
    fn equal_version_and_update_is_fresh() {
        // A copy fetched at exactly the update instant reflects it.
        let r = report(vec![(9, 900.0)]);
        match r.decide(t(900.0), vec![(ItemId(9), t(900.0))]) {
            WindowDecision::Invalidate(stale) => assert!(stale.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn indexed_matches_reference() {
        let r = report(vec![(5, 990.0), (1, 950.0), (3, 810.0)]);
        let cache = vec![
            (ItemId(0), t(100.0)),
            (ItemId(1), t(960.0)),
            (ItemId(3), t(500.0)),
            (ItemId(5), t(985.0)),
        ];
        assert_eq!(
            r.decide_linear(t(900.0), cache.clone()),
            r.decide_indexed(t(900.0), cache.clone())
        );
        assert_eq!(
            r.decide_linear(t(900.0), cache.clone()),
            r.decide(t(900.0), cache)
        );
    }

    #[test]
    fn shared_index_reuses_across_clients() {
        let r = report(vec![(5, 990.0), (1, 950.0), (3, 810.0)]);
        let idx = r.index();
        assert_eq!(idx.updated_at(ItemId(5)), Some(t(990.0)));
        assert_eq!(idx.updated_at(ItemId(4)), None);
        assert!(idx.is_stale(ItemId(1), t(940.0)));
        assert!(!idx.is_stale(ItemId(1), t(950.0)), "equal version is fresh");
        // Two different caches through one index, scratch reused.
        let mut scratch = Vec::new();
        idx.stale_into(vec![(ItemId(1), t(940.0))], &mut scratch);
        assert_eq!(scratch, vec![ItemId(1)]);
        scratch.clear();
        idx.stale_into(vec![(ItemId(3), t(900.0))], &mut scratch);
        assert!(scratch.is_empty());
        assert_eq!(
            r.decide_with(&idx, t(900.0), vec![(ItemId(5), t(100.0))]),
            WindowDecision::Invalidate(vec![ItemId(5)])
        );
        assert_eq!(
            r.decide_with(&idx, t(700.0), vec![(ItemId(5), t(100.0))]),
            WindowDecision::NotCovered
        );
    }

    #[test]
    fn size_formula() {
        let p = SizeParams {
            db_size: 1024,
            group_count: 64,
            timestamp_bits: 48.0,
            header_bits: 64.0,
            control_bytes: 512,
            item_bytes: 8192,
        };
        let mut r = report(vec![(1, 900.0), (2, 910.0), (3, 920.0)]);
        // 3 records * (10 + 48) + 48.
        assert_eq!(r.size_bits(&p), 3.0 * 58.0 + 48.0);
        r.dummy = Some(t(100.0));
        assert_eq!(r.size_bits(&p), 4.0 * 58.0 + 48.0);
    }

    #[test]
    fn empty_report_still_covers_its_window() {
        let r = report(vec![]);
        match r.decide(t(900.0), vec![(ItemId(7), t(10.0))]) {
            WindowDecision::Invalidate(stale) => assert!(stale.is_empty()),
            other => panic!("{other:?}"),
        }
    }
}
