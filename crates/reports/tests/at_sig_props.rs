//! Property tests for the `AT` and `SIG` report algorithms.

use mobicache_model::ItemId;
use mobicache_reports::{AtDecision, AtReport, SigDecision, SigReport, Signer};
use mobicache_sim::SimTime;
use proptest::prelude::*;
use std::collections::HashMap;

fn t(s: f64) -> SimTime {
    SimTime::from_secs(s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// AT soundness: a covered client never keeps an item listed in the
    /// report, and never drops an unlisted one.
    #[test]
    fn at_invalidation_is_exact_for_covered_clients(
        listed in prop::collection::hash_set(0u32..64, 0..20),
        cached in prop::collection::hash_set(0u32..64, 0..20),
    ) {
        let report = AtReport {
            broadcast_at: t(100.0),
            prev_broadcast: t(80.0),
            items: listed.iter().copied().map(ItemId).collect(),
        };
        match report.decide(t(80.0), cached.iter().copied().map(ItemId)) {
            AtDecision::Invalidate(stale) => {
                for item in &cached {
                    let should_drop = listed.contains(item);
                    prop_assert_eq!(stale.contains(&ItemId(*item)), should_drop);
                }
            }
            other => return Err(TestCaseError::fail(format!("covered client got {other:?}"))),
        }
    }

    /// AT refuses any client that missed even part of the last interval.
    #[test]
    fn at_refuses_stale_clients(tlb in 0.0..79.99f64) {
        let report = AtReport {
            broadcast_at: t(100.0),
            prev_broadcast: t(80.0),
            items: vec![],
        };
        prop_assert_eq!(report.decide(t(tlb), vec![ItemId(0)]), AtDecision::NotCovered);
    }

    /// SIG has no false negatives: every genuinely updated cached item is
    /// flagged (XOR cancellation across 32x32-bit signatures is
    /// negligible at these sizes, and the seed is fixed).
    #[test]
    fn sig_flags_every_updated_cached_item(
        updates in prop::collection::hash_map(0u32..128, 1.0f64..100.0, 1..10),
        cached in prop::collection::hash_set(0u32..128, 0..40),
    ) {
        let signer = Signer::new(32, 32, 42);
        let n = 128usize;
        let base_versions = vec![SimTime::ZERO; n];
        let baseline = signer.combine(&base_versions);
        let mut versions = base_versions;
        for (&item, &ts) in &updates {
            versions[item as usize] = t(ts);
        }
        let report = SigReport { broadcast_at: t(200.0), combined: signer.combine(&versions) };
        match report.decide(&signer, Some(&baseline), cached.iter().copied().map(ItemId)) {
            SigDecision::Invalidate(flagged) => {
                for item in cached.iter().filter(|i| updates.contains_key(i)) {
                    prop_assert!(
                        flagged.contains(&ItemId(*item)),
                        "updated item {} not flagged", item
                    );
                }
            }
            other => return Err(TestCaseError::fail(format!("{other:?}"))),
        }
    }

    /// SIG with an unchanged database flags nothing.
    #[test]
    fn sig_unchanged_database_flags_nothing(
        cached in prop::collection::hash_set(0u32..128, 0..40),
        seed in 0u64..1000,
    ) {
        let signer = Signer::new(32, 32, seed);
        let versions = vec![SimTime::ZERO; 128];
        let baseline = signer.combine(&versions);
        let report = SigReport { broadcast_at: t(10.0), combined: signer.combine(&versions) };
        match report.decide(&signer, Some(&baseline), cached.into_iter().map(ItemId)) {
            SigDecision::Invalidate(flagged) => prop_assert!(flagged.is_empty()),
            other => return Err(TestCaseError::fail(format!("{other:?}"))),
        }
    }

    /// The incremental XOR maintenance used by the server equals batch
    /// recomputation for any update sequence.
    #[test]
    fn sig_incremental_equals_batch(
        updates in prop::collection::vec((0u32..64, 1.0f64..1000.0), 0..50),
    ) {
        let signer = Signer::new(16, 24, 9);
        let n = 64usize;
        let mut versions = vec![SimTime::ZERO; n];
        let mut combined = signer.combine(&versions);
        let mut latest: HashMap<u32, f64> = HashMap::new();
        // Apply updates in increasing-time order, as the server would.
        let mut ordered = updates.clone();
        ordered.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        for (item, ts) in ordered {
            let prev = latest.insert(item, ts).map_or(SimTime::ZERO, t);
            let delta = signer.item_signature(ItemId(item), prev)
                ^ signer.item_signature(ItemId(item), t(ts));
            for (j, sig) in combined.iter_mut().enumerate() {
                if signer.is_member(j as u32, ItemId(item)) {
                    *sig ^= delta;
                }
            }
            versions[item as usize] = t(ts);
        }
        prop_assert_eq!(combined, signer.combine(&versions));
    }
}
