//! Property tests for the invalidation algorithms against a ground-truth
//! update history.
//!
//! The central safety property of any invalidation scheme: after a client
//! applies a *covering* report, **no stale entry survives** — every cached
//! item the client keeps reflects the database state as of the report.
//! `TS` window reports are additionally *exact* (they drop nothing valid);
//! bit-sequences are conservative (they may drop fresh copies, never keep
//! stale ones).

use mobicache_model::ItemId;
use mobicache_reports::{
    AtDecision, AtReport, BitSequences, BsDecision, WindowDecision, WindowReport,
};
use mobicache_sim::SimTime;
use proptest::prelude::*;
use std::collections::HashMap;

const HORIZON: f64 = 1000.0;

fn t(s: f64) -> SimTime {
    SimTime::from_secs(s)
}

/// A random update history: (timestamp, item) pairs over `[0, HORIZON)`.
fn history_strategy(db: u32) -> impl Strategy<Value = Vec<(f64, u32)>> {
    prop::collection::vec((0.0..HORIZON, 0..db), 0..120)
}

/// Ground truth: each item's last update time, if any.
fn last_updates(history: &[(f64, u32)]) -> HashMap<u32, f64> {
    let mut last: HashMap<u32, f64> = HashMap::new();
    for &(ts, item) in history {
        let e = last.entry(item).or_insert(ts);
        if ts > *e {
            *e = ts;
        }
    }
    last
}

/// The version a correct client holds for `item` having observed all
/// updates up to and including `asof`: the item's last update ≤ `asof`
/// (or 0 — the initial version — if none).
fn version_asof(last: &HashMap<u32, f64>, history: &[(f64, u32)], item: u32, asof: f64) -> f64 {
    let _ = last;
    history
        .iter()
        .filter(|&&(ts, i)| i == item && ts <= asof)
        .map(|&(ts, _)| ts)
        .fold(0.0, f64::max)
}

/// Builds the `TS` window report the server would broadcast at `HORIZON`
/// with the given window start.
fn window_report(history: &[(f64, u32)], window_start: f64) -> WindowReport {
    let mut latest_in_window: HashMap<u32, f64> = HashMap::new();
    for &(ts, item) in history {
        if ts > window_start {
            let e = latest_in_window.entry(item).or_insert(ts);
            if ts > *e {
                *e = ts;
            }
        }
    }
    WindowReport {
        broadcast_at: t(HORIZON),
        window_start: t(window_start),
        records: latest_in_window
            .into_iter()
            .map(|(i, ts)| (ItemId(i), t(ts)))
            .collect(),
        dummy: None,
    }
}

/// Builds the bit-sequences report the server would broadcast at
/// `HORIZON`.
fn bs_report(history: &[(f64, u32)], db: u32) -> BitSequences {
    let last = last_updates(history);
    let mut recency: Vec<(ItemId, SimTime)> =
        last.iter().map(|(&i, &ts)| (ItemId(i), t(ts))).collect();
    recency.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    BitSequences::from_recency(t(HORIZON), db, recency)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A covered TS client invalidates exactly the truly-stale entries.
    #[test]
    fn window_invalidation_is_exact(
        history in history_strategy(64),
        window_start in 0.0..HORIZON,
        tlb_off in 0.0..1.0f64,
        cached_items in prop::collection::hash_set(0u32..64, 0..20),
    ) {
        let tlb = window_start + tlb_off * (HORIZON - window_start);
        let last = last_updates(&history);
        let cache: Vec<(ItemId, SimTime)> = cached_items
            .iter()
            .map(|&i| (ItemId(i), t(version_asof(&last, &history, i, tlb))))
            .collect();
        let report = window_report(&history, window_start);
        prop_assert!(report.covers(t(tlb)));
        let WindowDecision::Invalidate(stale) = report.decide(t(tlb), cache.clone()) else {
            return Err(TestCaseError::fail("covered client got NotCovered"));
        };
        for &(item, version) in &cache {
            let truth = last.get(&item.0).copied().unwrap_or(0.0);
            let is_stale = truth > version.as_secs();
            prop_assert_eq!(
                stale.contains(&item),
                is_stale,
                "item {:?}: version {} truth {}",
                item, version.as_secs(), truth
            );
        }
    }

    /// The indexed fast path agrees with the linear reference
    /// implementation, and `decide` (now a thin wrapper over the index)
    /// agrees with both.
    #[test]
    fn window_indexed_matches_reference(
        history in history_strategy(64),
        window_start in 0.0..HORIZON,
        tlb in 0.0..HORIZON,
        cached_items in prop::collection::hash_set(0u32..64, 0..20),
    ) {
        let last = last_updates(&history);
        let cache: Vec<(ItemId, SimTime)> = cached_items
            .iter()
            .map(|&i| (ItemId(i), t(version_asof(&last, &history, i, tlb))))
            .collect();
        let report = window_report(&history, window_start);
        let linear = report.decide_linear(t(tlb), cache.clone());
        let indexed = report.decide_indexed(t(tlb), cache.clone());
        let wrapper = report.decide(t(tlb), cache);
        // Order within the stale list may differ; compare as sets.
        let canon = |d: WindowDecision| match d {
            WindowDecision::Invalidate(mut x) => {
                x.sort_unstable();
                WindowDecision::Invalidate(x)
            }
            other => other,
        };
        let (linear, indexed, wrapper) = (canon(linear), canon(indexed), canon(wrapper));
        prop_assert_eq!(&linear, &indexed);
        prop_assert_eq!(&linear, &wrapper);
    }

    /// The shared BS fan-out index produces the same verdict and stale
    /// set as the per-client `decide`.
    #[test]
    fn bitseq_indexed_matches_decide(
        history in history_strategy(64),
        tlb in 0.0..HORIZON,
        cached_items in prop::collection::hash_set(0u32..64, 0..32),
    ) {
        let report = bs_report(&history, 64);
        let cache: Vec<ItemId> = cached_items.iter().copied().map(ItemId).collect();
        let reference = report.decide(t(tlb), cache.clone());
        let idx = report.index();
        let mut out = Vec::new();
        let select = report.decide_with(&idx, t(tlb), cache.iter().copied(), &mut out);
        match (reference, select) {
            (BsDecision::Clean, mobicache_reports::BsSelect::Clean) => {
                prop_assert!(out.is_empty());
            }
            (BsDecision::DropAll, mobicache_reports::BsSelect::DropAll) => {
                prop_assert!(out.is_empty());
            }
            (BsDecision::Invalidate(mut stale), mobicache_reports::BsSelect::Prefix(_)) => {
                stale.sort_unstable();
                out.sort_unstable();
                prop_assert_eq!(stale, out);
            }
            (r, s) => {
                return Err(TestCaseError::fail(format!(
                    "verdict mismatch: decide {r:?} vs select {s:?}"
                )));
            }
        }
    }

    /// The shared AT membership index produces the same verdict and stale
    /// set as the per-client `decide`.
    #[test]
    fn at_indexed_matches_decide(
        history in history_strategy(64),
        prev in 0.0..HORIZON,
        tlb in 0.0..HORIZON,
        cached_items in prop::collection::hash_set(0u32..64, 0..32),
    ) {
        let items: Vec<ItemId> = last_updates(&history)
            .iter()
            .filter(|&(_, &ts)| ts > prev)
            .map(|(&i, _)| ItemId(i))
            .collect();
        let report = AtReport {
            broadcast_at: t(HORIZON),
            prev_broadcast: t(prev),
            items,
        };
        let cache: Vec<ItemId> = cached_items.iter().copied().map(ItemId).collect();
        let reference = report.decide(t(tlb), cache.clone());
        let idx = report.index();
        let mut out = Vec::new();
        let covered = report.decide_with(&idx, t(tlb), cache.iter().copied(), &mut out);
        match reference {
            AtDecision::NotCovered => {
                prop_assert!(!covered);
                prop_assert!(out.is_empty());
            }
            AtDecision::Invalidate(mut stale) => {
                prop_assert!(covered);
                stale.sort_unstable();
                out.sort_unstable();
                prop_assert_eq!(stale, out);
            }
        }
    }

    /// Uncovered TS clients are told so — never silently given a partial
    /// answer.
    #[test]
    fn window_refuses_uncovered_clients(
        history in history_strategy(64),
        window_start in 1.0..HORIZON,
    ) {
        let report = window_report(&history, window_start);
        let tlb = window_start - 0.5;
        prop_assert_eq!(
            report.decide(t(tlb), vec![(ItemId(1), t(0.0))]),
            WindowDecision::NotCovered
        );
    }

    /// BS soundness: whatever the decision, no stale entry survives.
    #[test]
    fn bitseq_never_keeps_a_stale_entry(
        history in history_strategy(64),
        tlb in 0.0..HORIZON,
        cached_items in prop::collection::hash_set(0u32..64, 0..32),
    ) {
        let db = 64;
        let last = last_updates(&history);
        let report = bs_report(&history, db);
        let cache: Vec<ItemId> = cached_items.iter().copied().map(ItemId).collect();
        let survivors: Vec<ItemId> = match report.decide(t(tlb), cache.clone()) {
            BsDecision::Clean => cache.clone(),
            BsDecision::DropAll => vec![],
            BsDecision::Invalidate(stale) => {
                cache.iter().copied().filter(|i| !stale.contains(i)).collect()
            }
        };
        for item in survivors {
            let version = version_asof(&last, &history, item.0, tlb);
            let truth = last.get(&item.0).copied().unwrap_or(0.0);
            prop_assert!(
                truth <= version,
                "stale survivor {:?}: version-asof-tlb {} but truth {}",
                item, version, truth
            );
        }
    }

    /// BS conservativeness bounds: Clean only when genuinely clean;
    /// DropAll only when more than half the database changed after Tlb;
    /// Invalidate drops only cached items.
    #[test]
    fn bitseq_decisions_are_justified(
        history in history_strategy(64),
        tlb in 0.0..HORIZON,
        cached_items in prop::collection::hash_set(0u32..64, 0..32),
    ) {
        let db: u32 = 64;
        let last = last_updates(&history);
        let report = bs_report(&history, db);
        let cache: Vec<ItemId> = cached_items.iter().copied().map(ItemId).collect();
        let changed_after_tlb = last.values().filter(|&&ts| ts > tlb).count();
        match report.decide(t(tlb), cache.clone()) {
            BsDecision::Clean => {
                prop_assert_eq!(changed_after_tlb, 0, "Clean but {} items changed", changed_after_tlb);
            }
            BsDecision::DropAll => {
                prop_assert!(
                    changed_after_tlb > (db / 2) as usize,
                    "DropAll with only {} changed items",
                    changed_after_tlb
                );
            }
            BsDecision::Invalidate(stale) => {
                for item in &stale {
                    prop_assert!(cache.contains(item), "invalidated uncached {:?}", item);
                }
            }
        }
    }

    /// The BS report size formula from the paper dominates the exact wire
    /// encoding's bitmap portion for power-of-two databases.
    #[test]
    fn bitseq_wire_size_is_bounded_by_formula(history in history_strategy(64)) {
        let p = mobicache_model::msg::SizeParams {
            db_size: 64,
            group_count: 64,
            timestamp_bits: 48.0,
            header_bits: 0.0,
            control_bytes: 512,
            item_bytes: 8192,
        };
        let report = bs_report(&history, 64);
        let wire_bits = report.encode_wire().len() as f64 * 8.0;
        // Padding adds at most 7 bits per level plus one per timestamp
        // widened to 64 bits; allow that slack.
        let levels = report.levels.len() as f64;
        prop_assert!(
            report.exact_size_bits(&p) <= wire_bits + levels * 7.0,
            "exact {} wire {}",
            report.exact_size_bits(&p),
            wire_bits
        );
        prop_assert!(report.size_bits(&p) >= report.exact_size_bits(&p) - (levels + 1.0) * 48.0);
    }
}
