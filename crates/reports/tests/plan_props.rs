//! Property tests pinning the `plan ≡ decide` equivalence: the bitmap
//! invalidation plan ([`PlanCache`]) applied through a cache-membership
//! bitmap must produce exactly the stale **set** the per-item
//! `decide_with` walk produces, for every report shape that admits a
//! plan. The engine relies on this to swap evaluation strategies without
//! moving the golden digests.

use mobicache_model::ItemId;
use mobicache_reports::{
    AtReport, BitSequences, BsSelect, PlanCache, ReportPayload, WindowDecision, WindowReport,
};
use mobicache_sim::SimTime;
use proptest::prelude::*;
use std::collections::HashMap;

const HORIZON: f64 = 1000.0;

fn t(s: f64) -> SimTime {
    SimTime::from_secs(s)
}

/// A random update history: (timestamp, item) pairs over `[0, HORIZON)`.
fn history_strategy(db: u32) -> impl Strategy<Value = Vec<(f64, u32)>> {
    prop::collection::vec((0.0..HORIZON, 0..db), 0..120)
}

/// Ground truth: each item's last update time, if any.
fn last_updates(history: &[(f64, u32)]) -> HashMap<u32, f64> {
    let mut last: HashMap<u32, f64> = HashMap::new();
    for &(ts, item) in history {
        let e = last.entry(item).or_insert(ts);
        if ts > *e {
            *e = ts;
        }
    }
    last
}

/// Builds the `TS` window report the server would broadcast at `HORIZON`.
fn window_report(history: &[(f64, u32)], window_start: f64) -> WindowReport {
    let mut latest_in_window: HashMap<u32, f64> = HashMap::new();
    for &(ts, item) in history {
        if ts > window_start {
            let e = latest_in_window.entry(item).or_insert(ts);
            if ts > *e {
                *e = ts;
            }
        }
    }
    WindowReport {
        broadcast_at: t(HORIZON),
        window_start: t(window_start),
        records: latest_in_window
            .into_iter()
            .map(|(i, ts)| (ItemId(i), t(ts)))
            .collect(),
        dummy: None,
    }
}

/// Builds the bit-sequences report the server would broadcast at
/// `HORIZON`.
fn bs_report(history: &[(f64, u32)], db: u32) -> BitSequences {
    let last = last_updates(history);
    let mut recency: Vec<(ItemId, SimTime)> =
        last.iter().map(|(&i, &ts)| (ItemId(i), t(ts))).collect();
    recency.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    BitSequences::from_recency(t(HORIZON), db, recency)
}

/// Membership bitmap over the given ids, exactly as `LruCache` keeps it.
fn member_of(ids: impl IntoIterator<Item = u32>, db: u32) -> Vec<u64> {
    let mut words = vec![0u64; (db as usize).div_ceil(64)];
    for id in ids {
        words[id as usize / 64] |= 1 << (id % 64);
    }
    words
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Window plan ≡ `WindowReport::decide_with`: for a covered client,
    /// the word-wise intersection filtered by the listed-timestamp check
    /// yields exactly the per-item stale set — for *arbitrary* cached
    /// versions, not just histories a well-behaved client could hold.
    #[test]
    fn window_plan_matches_decide_with(
        history in history_strategy(128),
        window_start in 0.0..HORIZON,
        tlb in 0.0..HORIZON,
        cached in prop::collection::hash_map(0u32..128, 0.0..HORIZON, 0..40),
    ) {
        let report = window_report(&history, window_start);
        let mut plan = PlanCache::new();
        // The window decode is Tlb-independent: key with an arbitrary
        // bucket and apply to a client with a different `tlb`.
        plan.decode_for_tick(&ReportPayload::Window(report.clone()), t(0.0), 128);
        prop_assert!(plan.window_active());

        let entries: Vec<(ItemId, SimTime)> =
            cached.iter().map(|(&i, &v)| (ItemId(i), t(v))).collect();
        let reference = report.decide_with(&report.index(), t(tlb), entries.clone());

        let member = member_of(cached.keys().copied(), 128);
        let mut planned = Vec::new();
        plan.intersect_into(&member, &mut planned, |item| {
            t(cached[&item.0]) < plan.listed_ts(item)
        });

        match reference {
            WindowDecision::NotCovered => {
                // The engine never applies a window plan to an uncovered
                // client (`covers` is checked per client first); nothing
                // to compare.
                prop_assert!(!report.covers(t(tlb)));
            }
            WindowDecision::Invalidate(mut stale) => {
                stale.sort_unstable();
                planned.sort_unstable();
                prop_assert_eq!(stale, planned);
            }
        }
    }

    /// BS plan ≡ `BitSequences::decide_with`: whenever the client's
    /// selected prefix bucket matches the plan's decoded bucket, the
    /// prefix bitmap intersection yields exactly the per-item marked set.
    #[test]
    fn bs_plan_matches_decide_with(
        history in history_strategy(128),
        dominant in 0.0..HORIZON,
        tlb in 0.0..HORIZON,
        cached_items in prop::collection::hash_set(0u32..128, 0..48),
    ) {
        let report = bs_report(&history, 128);
        let mut plan = PlanCache::new();
        plan.decode_for_tick(&ReportPayload::BitSeq(report.clone()), t(dominant), 128);
        // The plan holds a prefix exactly when the dominant bucket
        // resolves to one.
        match report.select(t(dominant)) {
            BsSelect::Prefix(p) => prop_assert_eq!(plan.bs_prefix(), Some(p)),
            _ => prop_assert_eq!(plan.bs_prefix(), None),
        }

        let idx = report.index();
        let mut reference = Vec::new();
        let sel = report.decide_with(
            &idx,
            t(tlb),
            cached_items.iter().copied().map(ItemId),
            &mut reference,
        );
        let (BsSelect::Prefix(p), Some(decoded)) = (sel, plan.bs_prefix()) else {
            return Ok(()); // Clean/DropAll verdicts, or no plan: per-item path.
        };
        if p != decoded {
            return Ok(()); // bucket mismatch: the engine falls back per-item.
        }
        let member = member_of(cached_items.iter().copied(), 128);
        let mut planned = Vec::new();
        plan.intersect_into(&member, &mut planned, |_| true);
        reference.sort_unstable();
        planned.sort_unstable();
        prop_assert_eq!(reference, planned);
    }

    /// AT plan ≡ `AtReport::decide_with`: for a covered client the listed
    /// bitmap intersection yields exactly the per-item membership set.
    #[test]
    fn at_plan_matches_decide_with(
        history in history_strategy(128),
        prev in 0.0..HORIZON,
        tlb in 0.0..HORIZON,
        cached_items in prop::collection::hash_set(0u32..128, 0..48),
    ) {
        let items: Vec<ItemId> = last_updates(&history)
            .iter()
            .filter(|&(_, &ts)| ts > prev)
            .map(|(&i, _)| ItemId(i))
            .collect();
        let report = AtReport {
            broadcast_at: t(HORIZON),
            prev_broadcast: t(prev),
            items,
        };
        let mut plan = PlanCache::new();
        plan.decode_for_tick(&ReportPayload::At(report.clone()), t(0.0), 128);
        prop_assert!(plan.at_active());

        let idx = report.index();
        let mut reference = Vec::new();
        let covered = report.decide_with(
            &idx,
            t(tlb),
            cached_items.iter().copied().map(ItemId),
            &mut reference,
        );
        if !covered {
            // Uncovered AT clients drop the whole cache; the plan is
            // never consulted.
            return Ok(());
        }
        let member = member_of(cached_items.iter().copied(), 128);
        let mut planned = Vec::new();
        plan.intersect_into(&member, &mut planned, |_| true);
        reference.sort_unstable();
        planned.sort_unstable();
        prop_assert_eq!(reference, planned);
    }
}
