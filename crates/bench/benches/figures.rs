//! One benchmark per paper figure / ablation: the figure's full
//! scheme × point sweep at 1 % of the paper's horizon (1000 simulated
//! seconds — 50 broadcast periods), single-threaded for stable numbers.
//!
//! Full-scale regeneration of the figures (the paper's actual tables of
//! numbers) is done by `cargo run --release -p mobicache-experiments
//! --bin repro -- --all`; see EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use mobicache_experiments::figures;
use mobicache_experiments::{run_figure, RunScale};
use std::hint::black_box;
use std::time::Duration;

fn bench_figures(c: &mut Criterion) {
    let scale = RunScale {
        time_factor: 0.01,
        max_threads: Some(1),
        replications: 1,
        ..RunScale::default()
    };
    let mut group = c.benchmark_group("figures");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
    for spec in figures::all_figures() {
        group.bench_function(spec.id, |b| {
            b.iter(|| black_box(run_figure(black_box(&spec), scale)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
