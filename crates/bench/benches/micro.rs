//! Micro-benchmarks of the simulator's hot paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mobicache::{RunOptions, Simulation};
use mobicache_model::msg::SizeParams;
use mobicache_model::{ItemId, Scheme, SimConfig};
use mobicache_reports::{BitSequences, SigReport, Signer, WindowReport};
use mobicache_sim::{Facility, FacilityConfig, Job, SimRng, SimTime};
use std::hint::black_box;
use std::time::Duration;

fn t(s: f64) -> SimTime {
    SimTime::from_secs(s)
}

fn size_params(db: u64) -> SizeParams {
    SizeParams {
        db_size: db,
        group_count: 64,
        timestamp_bits: 48.0,
        header_bits: 64.0,
        control_bytes: 512,
        item_bytes: 8192,
    }
}

/// A synthetic recency history of `n` updated items.
fn recency(n: u32) -> Vec<(ItemId, SimTime)> {
    (0..n)
        .map(|k| (ItemId(k), t(100_000.0 - k as f64)))
        .collect()
}

fn bench_bitseq(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitseq");
    group.warm_up_time(Duration::from_millis(300));
    for &db in &[1_000u32, 10_000, 80_000] {
        let hist = recency(db / 2 + 1);
        group.bench_with_input(BenchmarkId::new("build", db), &db, |b, &db| {
            b.iter(|| {
                black_box(BitSequences::from_recency(
                    t(200_000.0),
                    db,
                    hist.iter().copied(),
                ))
            });
        });
        let bs = BitSequences::from_recency(t(200_000.0), db, hist.iter().copied());
        let cache: Vec<ItemId> = (0..200).map(|i| ItemId(i * 7 % db)).collect();
        group.bench_with_input(BenchmarkId::new("decide_deep", db), &db, |b, _| {
            // Tlb far in the past: the largest level is selected.
            b.iter(|| black_box(bs.decide(t(0.0), cache.iter().copied())));
        });
        group.bench_with_input(BenchmarkId::new("decide_recent", db), &db, |b, _| {
            // Tlb one period back: the common connected-client case.
            b.iter(|| black_box(bs.decide(t(199_999.5), cache.iter().copied())));
        });
        group.bench_with_input(BenchmarkId::new("encode_wire", db), &db, |b, _| {
            b.iter(|| black_box(bs.encode_wire()));
        });
    }
    group.finish();
}

fn bench_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("window");
    let p = size_params(10_000);
    for &records in &[10usize, 100, 1_000] {
        let report = WindowReport {
            broadcast_at: t(1_000.0),
            window_start: t(800.0),
            records: (0..records)
                .map(|k| (ItemId(k as u32), t(810.0 + k as f64 * 0.01)))
                .collect(),
            dummy: None,
        };
        let cache: Vec<(ItemId, SimTime)> = (0..200)
            .map(|i| (ItemId(i * 31 % 10_000), t(805.0)))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("decide_indexed", records),
            &records,
            |b, _| {
                b.iter(|| black_box(report.decide_indexed(t(900.0), cache.iter().copied())));
            },
        );
        group.bench_with_input(BenchmarkId::new("size_bits", records), &records, |b, _| {
            b.iter(|| black_box(report.size_bits(&p)));
        });
    }
    group.finish();
}

/// The tick fan-out: ONE report applied by MANY clients. The legacy path
/// rescans the record list per cached item per client; the shared-index
/// path builds the sorted index once and gives every client an
/// `O(|cache| · log |records|)` allocation-free pass.
fn bench_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("fanout");
    group.warm_up_time(Duration::from_millis(300));
    let db = 10_000u32;
    for &records in &[1_000usize, 4_000] {
        let report = WindowReport {
            broadcast_at: t(1_000.0),
            window_start: t(800.0),
            records: (0..records)
                .map(|k| (ItemId(k as u32), t(810.0 + k as f64 * 0.01)))
                .collect(),
            dummy: None,
        };
        // 200 clients, 200 cached items each, caches pairwise distinct.
        let caches: Vec<Vec<(ItemId, SimTime)>> = (0..200u32)
            .map(|cl| {
                (0..200u32)
                    .map(|i| (ItemId((cl * 97 + i * 31) % db), t(805.0)))
                    .collect()
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("window_linear_200c", records),
            &records,
            |b, _| {
                b.iter(|| {
                    for cache in &caches {
                        black_box(report.decide_linear(t(900.0), cache.iter().copied()));
                    }
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("window_shared_index_200c", records),
            &records,
            |b, _| {
                let mut stale = Vec::new();
                b.iter(|| {
                    let idx = report.index();
                    for cache in &caches {
                        stale.clear();
                        idx.stale_into(cache.iter().copied(), &mut stale);
                        black_box(stale.len());
                    }
                });
            },
        );
    }
    group.finish();
}

fn bench_sig(c: &mut Criterion) {
    let mut group = c.benchmark_group("sig");
    group.warm_up_time(Duration::from_millis(300));
    let signer = Signer::new(32, 32, 7);
    for &db in &[1_000usize, 10_000] {
        let versions = vec![SimTime::ZERO; db];
        group.bench_with_input(BenchmarkId::new("combine", db), &db, |b, _| {
            b.iter(|| black_box(signer.combine(&versions)));
        });
        let base = signer.combine(&versions);
        let mut v2 = versions.clone();
        v2[3] = t(5.0);
        let report = SigReport {
            broadcast_at: t(10.0),
            combined: signer.combine(&v2),
        };
        let cache: Vec<ItemId> = (0..200).map(|i| ItemId((i * 13 % db) as u32)).collect();
        group.bench_with_input(BenchmarkId::new("decide", db), &db, |b, _| {
            b.iter(|| black_box(report.decide(&signer, Some(&base), cache.iter().copied())));
        });
    }
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    use mobicache_cache::LruCache;
    let mut group = c.benchmark_group("lru");
    group.bench_function("insert_evict_1600", |b| {
        b.iter(|| {
            let mut cache = LruCache::new(1_600);
            for i in 0..4_000u32 {
                cache.insert(ItemId(i % 2_400), t(1.0), t(1.0));
            }
            black_box(cache.len())
        });
    });
    group.bench_function("hit_path", |b| {
        let mut cache = LruCache::new(1_600);
        for i in 0..1_600u32 {
            cache.insert(ItemId(i), t(1.0), t(1.0));
        }
        let mut k = 0u32;
        b.iter(|| {
            k = (k + 7) % 1_600;
            black_box(cache.get_valid(ItemId(k)))
        });
    });
    group.finish();
}

fn bench_facility(c: &mut Criterion) {
    let mut group = c.benchmark_group("facility");
    group.bench_function("submit_complete_cycle", |b| {
        b.iter(|| {
            let mut f = Facility::new(FacilityConfig {
                rate_bps: 10_000.0,
                classes: 3,
                preemptive_classes: 1,
            });
            let mut now = SimTime::ZERO;
            let mut pending = Vec::new();
            for i in 0..100u64 {
                if let Some(done) = f.submit(
                    now,
                    Job {
                        bits: 1_000.0,
                        class: (i % 3) as usize,
                        tag: i,
                    },
                ) {
                    pending.push(done);
                }
                while let Some(compl) = pending.pop() {
                    now = now.max(compl.at);
                    if let Some((_, Some(n))) = f.on_complete(now, compl.token) {
                        pending.push(n);
                    }
                }
            }
            black_box(f.jobs_served(0) + f.jobs_served(1) + f.jobs_served(2))
        });
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(8));
    for scheme in [Scheme::Aaw, Scheme::Bs, Scheme::SimpleChecking] {
        let mut cfg = SimConfig::paper_default().with_scheme(scheme);
        cfg.sim_time_secs = 2_000.0;
        group.bench_function(format!("run_2000s_{}", scheme.short()), |b| {
            b.iter(|| {
                let sim = Simulation::new(&cfg, RunOptions::default()).expect("valid");
                black_box(sim.run_to_completion().metrics.queries_answered)
            });
        });
    }
    group.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng");
    group.bench_function("next_u64", |b| {
        let mut rng = SimRng::new(1);
        b.iter(|| black_box(rng.next_u64()));
    });
    group.bench_function("exp_sample", |b| {
        let mut rng = SimRng::new(1);
        let d = mobicache_sim::Exp::with_mean(100.0);
        b.iter(|| black_box(d.sample(&mut rng)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_bitseq,
    bench_window,
    bench_fanout,
    bench_sig,
    bench_cache,
    bench_facility,
    bench_end_to_end,
    bench_rng
);
criterion_main!(benches);
