//! End-to-end report-pipeline benchmark: the numbers behind
//! `BENCH_report_pipeline.json`.
//!
//! Sections:
//!
//! * **e2e** — the `fig05` sweep (one scheme per run, single worker
//!   thread, smoke horizon) for BS, AAW and simple checking: wall
//!   seconds and simulator events/second per scheme, best of several
//!   repetitions.
//! * **stress** — one heavy configuration per scheme (large database,
//!   200 clients, fast updates) where report construction and fan-out
//!   dominate wall time; this is where pipeline regressions are loudest.
//! * **handoff** — the stress shape spread over a 4-cell topology with
//!   migrating clients: per-cell report fan-out, per-cell update replay
//!   and the handoff machinery (blackouts, Tlb re-announcement, parked
//!   queries) all at once, for BS and AAW.
//! * **fanout** — the tick fan-out micro-benchmark: one window report ×
//!   many clients, comparing the legacy per-item linear scan against the
//!   shared sorted index built once per broadcast.
//! * **scaling** — the sharded-engine sweep: clients × worker threads
//!   for the full simulation, measuring the persistent worker pool's
//!   overhead and scaling. Workers are spawned once per engine and fed
//!   per-tick work descriptors, so the per-tick cost is a wake/claim
//!   handshake rather than thread creation. `host_cores` is recorded
//!   alongside: with a single hardware core, threads > 1 exercise
//!   concurrency (the determinism contract) without parallel speedup.
//! * **popscale** — the struct-of-arrays population sweep: one AAW run
//!   at 10 k, 100 k and 1 M clients (shortening the horizon as the
//!   population grows), pinning events/second *and* peak RSS per
//!   population. Runs first and in ascending order because the RSS
//!   figure is `VmHWM` — the process high-water mark, which only ever
//!   rises.
//! * **sched** — the future-event-list micro-benchmark: the retired
//!   `BinaryHeap` scheduler (kept here as a local baseline) vs the live
//!   hierarchical timing wheel on a deterministic fill/churn/drain
//!   workload at 10 k, 100 k and 1 M pending events, in ns per push/pop
//!   operation.
//! * **invplan** — the invalidation-plan micro-benchmark: one AAW-shaped
//!   window report applied to 10 k / 100 k / 1 M real `LruCache`s,
//!   comparing the per-item `stale_into` walk against the decode-once
//!   `PlanCache` bitmap intersection, in ns per client; plus a short
//!   probed AAW run recording the plan-cache hit rate and the number of
//!   all-zero fan-out words skipped.
//!
//! Run via `scripts/bench.sh`, which writes the JSON to the repo root.
//! `--quick` shrinks every section for the CI smoke step; `--out PATH`
//! writes the JSON file (otherwise it goes to stdout); `--threads N`
//! runs the e2e/stress/popscale sections with `N` engine worker threads.
//!
//! CI regression gates (each runs one section and exits non-zero on a
//! miss):
//! * `--smoke-popscale CLIENTS --check-against PATH` — the popscale
//!   configuration at `CLIENTS` vs the committed JSON's matching row;
//!   fails on a >10 % events/second regression.
//! * `--smoke-stress --check-against PATH` — the heavy AAW stress point
//!   vs the committed top-level stress row; fails on a >10 % regression.
//! * `--smoke-handoff --check-against PATH` — the heavy AAW multi-cell
//!   handoff point vs the committed top-level handoff row; fails on a
//!   >10 % events/second regression.
//! * `--smoke-sched` — the 10 k-pending sched row; fails if the wheel
//!   drops below the heap baseline.
//! * `--smoke-invplan --check-against PATH` — the 100 k-client invplan
//!   row; fails if the plan path stops beating the per-item path or its
//!   speedup falls below half the committed ratio (a ratio of two timed
//!   paths carries both runs' noise, hence the wider margin).
//! * `--smoke-e2e --check-against PATH` — the full AAW `fig05` sweep vs
//!   the committed e2e row; fails on a >20 % regression (e2e wall times
//!   are tens of milliseconds, so scheduling noise is proportionally
//!   larger than in the stress/popscale gates).

use mobicache::{run, IntervalSampler, RunOptions};
use mobicache_cache::LruCache;
use mobicache_experiments::figures::fig05;
use mobicache_experiments::{run_figure_with, CoreSplitPolicy, RunReporting, RunScale};
use mobicache_model::{CellTopology, ItemId, Scheme, SimConfig};
use mobicache_reports::{PlanCache, ReportPayload, WindowReport};
use mobicache_sim::{Scheduler, SimTime};
use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Wall numbers measured at the commit *before* the shared-index /
/// report-cache refactor landed, same machine, non-quick settings.
/// Kept in the JSON so a single file shows before vs after.
const BASELINE_BEFORE: &str = r#"  "baseline_before": {
    "note": "pre-refactor (per-client linear scans, report rebuilt every tick)",
    "e2e": [
      { "scheme": "Bs", "wall_secs": 0.033, "events": 17640, "events_per_sec": 537612 },
      { "scheme": "Aaw", "wall_secs": 0.049, "events": 22467, "events_per_sec": 461185 },
      { "scheme": "SimpleChecking", "wall_secs": 0.041, "events": 22721, "events_per_sec": 552418 }
    ],
    "stress": [
      { "scheme": "Bs", "wall_secs": 0.049, "events": 5304, "events_per_sec": 108823 },
      { "scheme": "Aaw", "wall_secs": 0.173, "events": 6472, "events_per_sec": 37412 },
      { "scheme": "SimpleChecking", "wall_secs": 0.134, "events": 6638, "events_per_sec": 49701 }
    ]
  },
"#;

struct E2eRow {
    scheme: Scheme,
    points: usize,
    wall_secs: f64,
    events: u64,
    events_per_sec: f64,
}

/// Best-of-`reps` wall time for one scheme's `fig05` sweep.
fn bench_e2e(quick: bool) -> Vec<E2eRow> {
    let schemes = [Scheme::Bs, Scheme::Aaw, Scheme::SimpleChecking];
    let reps = if quick { 1 } else { 3 };
    let scale = RunScale {
        time_factor: if quick { 0.01 } else { 0.05 },
        max_threads: Some(1),
        replications: 1,
        // Serial engines, as every committed e2e number was measured.
        split: CoreSplitPolicy::PointsOnly,
    };
    let mut rows = Vec::new();
    for scheme in schemes {
        let mut spec = fig05::spec();
        spec.schemes = vec![scheme];
        if quick {
            spec.points.truncate(2);
        }
        let mut best_wall = f64::INFINITY;
        let mut events = 0u64;
        let mut points = 0usize;
        for _ in 0..reps {
            let started = Instant::now();
            let result = run_figure_with(&spec, scale, RunReporting::default())
                .expect("fig05 spec validates");
            let wall = started.elapsed().as_secs_f64();
            best_wall = best_wall.min(wall);
            events = result
                .series
                .iter()
                .flat_map(|s| &s.points)
                .map(|p| p.metrics.events_processed)
                .sum();
            points = result.series.iter().map(|s| s.points.len()).sum();
        }
        eprintln!(
            "e2e {scheme:?}: {points} points, {best_wall:.3}s wall (best of {reps}), \
             {events} events ({:.0} ev/s)",
            events as f64 / best_wall
        );
        rows.push(E2eRow {
            scheme,
            points,
            wall_secs: best_wall,
            events,
            events_per_sec: events as f64 / best_wall,
        });
    }
    rows
}

/// One heavy point per scheme: big database (large caches and BS
/// reports), 200 clients (wide fan-out), updates every 5 s (full
/// windows). Report building and application dominate here.
fn stress_cfg(scheme: Scheme, quick: bool) -> SimConfig {
    let mut cfg = SimConfig::paper_default().with_scheme(scheme);
    cfg.sim_time_secs = if quick { 1_000.0 } else { 8_000.0 };
    cfg.db_size = 40_000;
    cfg.num_clients = 200;
    cfg.mean_update_interarrival_secs = 5.0;
    cfg
}

fn bench_stress(quick: bool, threads: u32) -> Vec<E2eRow> {
    let schemes = [Scheme::Bs, Scheme::Aaw, Scheme::SimpleChecking];
    let reps = if quick { 1 } else { 3 };
    let mut rows = Vec::new();
    for scheme in schemes {
        let cfg = stress_cfg(scheme, quick).with_threads(threads);
        let mut best_wall = f64::INFINITY;
        let mut events = 0u64;
        for _ in 0..reps {
            let started = Instant::now();
            let result = run(&cfg, RunOptions::default()).expect("stress config validates");
            let wall = started.elapsed().as_secs_f64();
            best_wall = best_wall.min(wall);
            events = result.metrics.events_processed;
        }
        eprintln!(
            "stress {scheme:?}: {best_wall:.3}s wall (best of {reps}), \
             {events} events ({:.0} ev/s)",
            events as f64 / best_wall
        );
        rows.push(E2eRow {
            scheme,
            points: 1,
            wall_secs: best_wall,
            events,
            events_per_sec: events as f64 / best_wall,
        });
    }
    rows
}

/// The multi-cell mobility stress point: the heavy stress shape spread
/// over 4 cells, residency expiring every ~250 s against the 20 s
/// broadcast period, a 12 s blackout per handoff and a dozing
/// population — the per-cell report fan-out, the per-cell `UpdateLog`
/// replay (4× the txn application work) and the handoff machinery all
/// on the clock at once.
fn handoff_cfg(scheme: Scheme, quick: bool) -> SimConfig {
    let mut cfg = stress_cfg(scheme, quick).with_cells(CellTopology {
        cells: 4,
        mean_residency_secs: 250.0,
        handoff_secs: 12.0,
        p_roam: 0.8,
    });
    cfg.p_disconnect = 0.2;
    cfg
}

fn bench_handoff(quick: bool, threads: u32) -> Vec<E2eRow> {
    let schemes = [Scheme::Bs, Scheme::Aaw];
    let reps = if quick { 1 } else { 3 };
    let mut rows = Vec::new();
    for scheme in schemes {
        let cfg = handoff_cfg(scheme, quick).with_threads(threads);
        let mut best_wall = f64::INFINITY;
        let mut events = 0u64;
        let mut handoffs = 0u64;
        for _ in 0..reps {
            let started = Instant::now();
            let result = run(&cfg, RunOptions::default()).expect("handoff config validates");
            let wall = started.elapsed().as_secs_f64();
            best_wall = best_wall.min(wall);
            events = result.metrics.events_processed;
            handoffs = result.metrics.mobility.handoffs;
        }
        assert!(handoffs > 0, "handoff bench must actually hand off");
        eprintln!(
            "handoff {scheme:?}: {best_wall:.3}s wall (best of {reps}), \
             {events} events, {handoffs} handoffs ({:.0} ev/s)",
            events as f64 / best_wall
        );
        rows.push(E2eRow {
            scheme,
            points: 1,
            wall_secs: best_wall,
            events,
            events_per_sec: events as f64 / best_wall,
        });
    }
    rows
}

struct FanoutRow {
    records: usize,
    clients: usize,
    linear_ns: f64,
    indexed_ns: f64,
    speedup: f64,
}

/// The tick fan-out in isolation: one window report applied by many
/// clients. `linear_ns` rescans the record list per cached item per
/// client (the pre-refactor path); `indexed_ns` builds the shared
/// sorted index once and runs each client's allocation-free
/// `stale_into` pass. Times are the best full fan-out pass observed.
fn bench_fanout(quick: bool) -> Vec<FanoutRow> {
    let clients = 200usize;
    let cache_len = 200u32;
    let db = 10_000u32;
    let reps = if quick { 5 } else { 30 };
    let record_counts: &[usize] = if quick { &[1_000] } else { &[1_000, 4_000] };
    let mut rows = Vec::new();
    for &records in record_counts {
        let report = WindowReport {
            broadcast_at: SimTime::from_secs(1_000.0),
            window_start: SimTime::from_secs(800.0),
            records: (0..records)
                .map(|k| {
                    (
                        ItemId(k as u32),
                        SimTime::from_secs(810.0 + k as f64 * 0.01),
                    )
                })
                .collect(),
            dummy: None,
        };
        let tlb = SimTime::from_secs(900.0);
        let caches: Vec<Vec<(ItemId, SimTime)>> = (0..clients as u32)
            .map(|cl| {
                (0..cache_len)
                    .map(|i| (ItemId((cl * 97 + i * 31) % db), SimTime::from_secs(805.0)))
                    .collect()
            })
            .collect();

        let mut linear_ns = f64::INFINITY;
        for _ in 0..reps {
            let started = Instant::now();
            for cache in &caches {
                black_box(report.decide_linear(tlb, cache.iter().copied()));
            }
            linear_ns = linear_ns.min(started.elapsed().as_nanos() as f64);
        }

        let mut indexed_ns = f64::INFINITY;
        let mut stale = Vec::new();
        for _ in 0..reps {
            let started = Instant::now();
            let idx = report.index();
            for cache in &caches {
                stale.clear();
                idx.stale_into(cache.iter().copied(), &mut stale);
                black_box(stale.len());
            }
            indexed_ns = indexed_ns.min(started.elapsed().as_nanos() as f64);
        }

        let speedup = linear_ns / indexed_ns;
        eprintln!(
            "fanout {clients}c x {records}r: linear {:.1}us, indexed {:.1}us ({speedup:.1}x)",
            linear_ns / 1_000.0,
            indexed_ns / 1_000.0
        );
        rows.push(FanoutRow {
            records,
            clients,
            linear_ns,
            indexed_ns,
            speedup,
        });
    }
    rows
}

struct ScalingRow {
    clients: u32,
    threads: u32,
    wall_secs: f64,
    events: u64,
    events_per_sec: f64,
    speedup_vs_1t: f64,
}

/// The sharded engine under a fan-out-dominated load (AAW, frequent
/// updates): every broadcast tick applies a report to every connected
/// client, which is exactly the phase the worker shards parallelise.
/// Sweeps the client population × thread count and reports each cell's
/// speedup against its own threads=1 row.
fn bench_scaling(quick: bool) -> Vec<ScalingRow> {
    let client_counts: &[u32] = if quick {
        &[100, 1_000]
    } else {
        &[100, 1_000, 10_000]
    };
    let thread_counts: &[u32] = if quick { &[1, 2] } else { &[1, 2, 4, 8] };
    let mut rows = Vec::new();
    for &clients in client_counts {
        let mut base_wall = f64::NAN;
        for &threads in thread_counts {
            let mut cfg = SimConfig::paper_default()
                .with_scheme(Scheme::Aaw)
                .with_threads(threads);
            cfg.sim_time_secs = if quick { 250.0 } else { 1_000.0 };
            cfg.db_size = 10_000;
            cfg.num_clients = clients;
            cfg.mean_update_interarrival_secs = 5.0;
            let reps = if quick { 1 } else { 2 };
            let mut best_wall = f64::INFINITY;
            let mut events = 0u64;
            for _ in 0..reps {
                let started = Instant::now();
                let result = run(&cfg, RunOptions::default()).expect("scaling config validates");
                best_wall = best_wall.min(started.elapsed().as_secs_f64());
                events = result.metrics.events_processed;
            }
            if threads == 1 {
                base_wall = best_wall;
            }
            let speedup = base_wall / best_wall;
            eprintln!(
                "scaling {clients}c x {threads}t: {best_wall:.3}s wall, {events} events \
                 ({:.0} ev/s, {speedup:.2}x vs 1t)",
                events as f64 / best_wall
            );
            rows.push(ScalingRow {
                clients,
                threads,
                wall_secs: best_wall,
                events,
                events_per_sec: events as f64 / best_wall,
                speedup_vs_1t: speedup,
            });
        }
    }
    rows
}

struct PopRow {
    clients: u32,
    threads: u32,
    wall_secs: f64,
    events: u64,
    events_per_sec: f64,
    peak_rss_mb: f64,
}

/// The process peak resident set (`VmHWM`) in KiB. Monotone over the
/// process lifetime — callers that want per-phase peaks must order
/// phases by expected footprint.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// The pinned popscale configuration for one population size. The
/// horizon shrinks as the population grows so every row costs seconds,
/// not minutes, while still spanning many broadcast periods.
fn popscale_cfg(clients: u32, threads: u32) -> SimConfig {
    let mut cfg = SimConfig::paper_default()
        .with_scheme(Scheme::Aaw)
        .with_threads(threads);
    cfg.db_size = 1_000;
    cfg.num_clients = clients;
    cfg.sim_time_secs = match clients {
        c if c >= 1_000_000 => 60.0,
        c if c >= 100_000 => 200.0,
        _ => 600.0,
    };
    cfg
}

fn run_popscale_once(clients: u32, threads: u32) -> PopRow {
    let cfg = popscale_cfg(clients, threads);
    let started = Instant::now();
    let result = run(&cfg, RunOptions::default()).expect("popscale config validates");
    let wall = started.elapsed().as_secs_f64();
    let events = result.metrics.events_processed;
    let peak_rss_mb = peak_rss_kb().map_or(f64::NAN, |kb| kb as f64 / 1024.0);
    eprintln!(
        "popscale {clients}c x {threads}t: {wall:.3}s wall, {events} events \
         ({:.0} ev/s), peak RSS {peak_rss_mb:.0} MiB",
        events as f64 / wall
    );
    PopRow {
        clients,
        threads,
        wall_secs: wall,
        events,
        events_per_sec: events as f64 / wall,
        peak_rss_mb,
    }
}

/// Ascending populations so each row's `VmHWM` reading is its own peak;
/// this section must run before the others for the same reason.
fn bench_popscale(quick: bool, threads: u32) -> Vec<PopRow> {
    let pops: &[u32] = if quick {
        &[10_000, 100_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    pops.iter()
        .map(|&clients| run_popscale_once(clients, threads))
        .collect()
}

/// The pre-wheel future-event list, verbatim: a `BinaryHeap` with the
/// `(at, seq)` comparator reversed for min-first pops. Kept here as the
/// `sched` section's baseline now that the live scheduler is a timing
/// wheel.
struct HeapSched {
    heap: BinaryHeap<HeapEntry>,
    now: SimTime,
    seq: u64,
}

struct HeapEntry {
    at: SimTime,
    seq: u64,
    value: u64,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The push/pop surface the `sched` section drives — implemented by the
/// heap baseline and the live timing wheel.
trait EventList {
    fn push(&mut self, at: SimTime, value: u64);
    fn pop(&mut self) -> Option<(SimTime, u64)>;
}

impl EventList for HeapSched {
    fn push(&mut self, at: SimTime, value: u64) {
        assert!(at >= self.now);
        self.heap.push(HeapEntry {
            at,
            seq: self.seq,
            value,
        });
        self.seq += 1;
    }
    fn pop(&mut self) -> Option<(SimTime, u64)> {
        let e = self.heap.pop()?;
        self.now = e.at;
        Some((e.at, e.value))
    }
}

impl EventList for Scheduler<u64> {
    fn push(&mut self, at: SimTime, value: u64) {
        self.schedule(at, value);
    }
    fn pop(&mut self) -> Option<(SimTime, u64)> {
        Scheduler::pop(self)
    }
}

/// The simulator-shaped scheduler workload: fill `n` events over a
/// 10 000 s horizon, then `n` pop → re-push churn steps (the steady
/// state: every delivery schedules a successor a bounded delay out),
/// then drain. 4·n push/pop operations total.
fn drive_event_list(s: &mut impl EventList, n: usize) {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut unit = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for i in 0..n {
        s.push(SimTime::from_secs(unit() * 10_000.0), i as u64);
    }
    for i in 0..n {
        let (at, v) = s.pop().expect("list is full");
        black_box(v);
        s.push(at + (1.0 + unit() * 99.0), (n + i) as u64);
    }
    while let Some((_, v)) = s.pop() {
        black_box(v);
    }
}

struct SchedRow {
    pending: usize,
    heap_ns_per_op: f64,
    wheel_ns_per_op: f64,
    speedup: f64,
}

/// Scheduler micro-benchmark: the heap baseline vs the timing wheel on
/// the same deterministic workload, at several steady-state sizes. Best
/// of `reps` full passes; ns amortized over all 4·n operations.
fn bench_sched(quick: bool) -> Vec<SchedRow> {
    let sizes: &[usize] = if quick {
        &[10_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let reps = if quick { 2 } else { 3 };
    let mut rows = Vec::new();
    for &n in sizes {
        let ops = (4 * n) as f64;
        let mut heap_ns = f64::INFINITY;
        let mut wheel_ns = f64::INFINITY;
        for _ in 0..reps {
            let mut heap = HeapSched {
                heap: BinaryHeap::new(),
                now: SimTime::ZERO,
                seq: 0,
            };
            let started = Instant::now();
            drive_event_list(&mut heap, n);
            heap_ns = heap_ns.min(started.elapsed().as_nanos() as f64);

            let mut wheel: Scheduler<u64> = Scheduler::new();
            let started = Instant::now();
            drive_event_list(&mut wheel, n);
            wheel_ns = wheel_ns.min(started.elapsed().as_nanos() as f64);
        }
        let speedup = heap_ns / wheel_ns;
        eprintln!(
            "sched {n} pending: heap {:.1} ns/op, wheel {:.1} ns/op ({speedup:.2}x)",
            heap_ns / ops,
            wheel_ns / ops
        );
        rows.push(SchedRow {
            pending: n,
            heap_ns_per_op: heap_ns / ops,
            wheel_ns_per_op: wheel_ns / ops,
            speedup,
        });
    }
    rows
}

struct InvplanRow {
    clients: u32,
    cache_len: u32,
    per_item_ns_per_client: f64,
    plan_ns_per_client: f64,
    speedup: f64,
}

/// Plan-cache effectiveness observed by a probed short AAW run.
struct InvplanProbe {
    clients: u32,
    sim_secs: f64,
    plan_decodes: u64,
    plan_hits: u64,
    plan_misses: u64,
    hit_rate: f64,
    fanout_words_skipped: u64,
}

/// The AAW stress shape (`stress_cfg`: db 40 000, paper cache fraction →
/// 800-item caches, updates every 5 s → a 200 s window lists ~40 items)
/// frozen at one tick. Caches are real `LruCache`s so both paths pay
/// their true costs — the per-item walk its ~25 KB slab iteration +
/// binary searches, the plan path its 5 KB membership-bitmap AND +
/// `peek` per surviving candidate.
fn invplan_fixture(clients: u32, records: u32, db: u32) -> (WindowReport, Vec<LruCache>) {
    let cache_len = (db as f64 * 0.02) as u32;
    let report = WindowReport {
        broadcast_at: SimTime::from_secs(1_000.0),
        window_start: SimTime::from_secs(800.0),
        records: (0..records)
            .map(|k| {
                (
                    ItemId(k * (db / records)),
                    SimTime::from_secs(810.0 + f64::from(k) * 0.01),
                )
            })
            .collect(),
        dummy: None,
    };
    // A prime stride coprime to `db` makes each cache's ids distinct
    // and spreads record overlap evenly across clients; the client
    // offset rotates each footprint across the database.
    let stride = 53u32;
    assert!(
        !db.is_multiple_of(stride) && cache_len < db,
        "ids must stay distinct"
    );
    let caches: Vec<LruCache> = (0..clients)
        .map(|cl| {
            let mut c = LruCache::new(cache_len as usize);
            for i in 0..cache_len {
                // Half the entries predate the window (stale if listed),
                // half postdate every record (fresh either way).
                let version = if (cl + i) % 2 == 0 { 805.0 } else { 999.0 };
                c.insert(
                    ItemId((cl.wrapping_mul(4099) + i * stride) % db),
                    SimTime::from_secs(version),
                    SimTime::from_secs(version),
                );
            }
            c
        })
        .collect();
    (report, caches)
}

/// One timed invplan cell: full fan-out passes over every cache, best of
/// `reps`, both paths producing the identical stale set per client.
fn run_invplan_once(clients: u32, reps: usize) -> InvplanRow {
    let db = 40_000u32;
    let (report, caches) = invplan_fixture(clients, 40, db);

    let mut per_item_ns = f64::INFINITY;
    let mut stale = Vec::new();
    for _ in 0..reps {
        let idx = report.index();
        let started = Instant::now();
        for cache in &caches {
            stale.clear();
            idx.stale_into(cache.items_iter(), &mut stale);
            black_box(stale.len());
        }
        per_item_ns = per_item_ns.min(started.elapsed().as_nanos() as f64);
    }

    let mut plan_ns = f64::INFINITY;
    let mut plan = PlanCache::new();
    let payload = ReportPayload::Window(report);
    for _ in 0..reps {
        let started = Instant::now();
        plan.decode_for_tick(&payload, SimTime::ZERO, db);
        for cache in &caches {
            stale.clear();
            plan.intersect_into(cache.member_words(), &mut stale, |item| {
                cache
                    .peek(item)
                    .is_some_and(|e| e.version < plan.listed_ts(item))
            });
            black_box(stale.len());
        }
        plan_ns = plan_ns.min(started.elapsed().as_nanos() as f64);
    }

    let n = f64::from(clients);
    let row = InvplanRow {
        clients,
        cache_len: (db as f64 * 0.02) as u32,
        per_item_ns_per_client: per_item_ns / n,
        plan_ns_per_client: plan_ns / n,
        speedup: per_item_ns / plan_ns,
    };
    eprintln!(
        "invplan {clients}c: per-item {:.0} ns/client, plan {:.0} ns/client ({:.1}x)",
        row.per_item_ns_per_client, row.plan_ns_per_client, row.speedup
    );
    row
}

/// The plan hit rate in vivo: a probed AAW run at the popscale shape,
/// reading the cumulative plan counters off the last interval snapshot.
fn invplan_probe(quick: bool, threads: u32) -> InvplanProbe {
    let clients = 10_000u32;
    let mut cfg = popscale_cfg(clients, threads);
    cfg.sim_time_secs = if quick { 100.0 } else { 600.0 };
    let mut sampler = IntervalSampler::every(5);
    run(&cfg, RunOptions::new().probe(&mut sampler)).expect("invplan probe config validates");
    let last = sampler
        .snapshots()
        .last()
        .expect("probed run emits snapshots");
    let applied = last.plan_hits + last.plan_misses;
    let probe = InvplanProbe {
        clients,
        sim_secs: cfg.sim_time_secs,
        plan_decodes: last.plan_decodes,
        plan_hits: last.plan_hits,
        plan_misses: last.plan_misses,
        hit_rate: if applied == 0 {
            0.0
        } else {
            last.plan_hits as f64 / applied as f64
        },
        fanout_words_skipped: last.fanout_words_skipped,
    };
    eprintln!(
        "invplan probe {clients}c x {:.0}s: {} decodes, {} hits / {} misses \
         (hit rate {:.4}), {} fan-out words skipped",
        probe.sim_secs,
        probe.plan_decodes,
        probe.plan_hits,
        probe.plan_misses,
        probe.hit_rate,
        probe.fanout_words_skipped
    );
    probe
}

fn bench_invplan(quick: bool) -> Vec<InvplanRow> {
    let pops: &[u32] = if quick {
        &[10_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let reps = if quick { 3 } else { 5 };
    pops.iter()
        .map(|&clients| run_invplan_once(clients, reps))
        .collect()
}

/// The number after `"key":` inside one JSON row fragment.
fn num_in_row(row: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let v = &row[row.find(&needle)? + needle.len()..];
    v.trim_start()
        .split(|c: char| c != '.' && !c.is_ascii_digit())
        .next()?
        .parse()
        .ok()
}

/// The `events_per_sec` number inside one JSON row fragment.
fn rate_in_row(row: &str) -> Option<f64> {
    num_in_row(row, "events_per_sec")
}

/// The committed events/second for `clients` in the popscale section of
/// the JSON at `path`. A hand-rolled scan — the repo vendors no JSON
/// parser and the bench file's shape is ours to pin.
fn committed_popscale_rate(path: &str, clients: u32) -> Option<f64> {
    let body = std::fs::read_to_string(path).ok()?;
    let section = &body[body.find("\"popscale\"")?..];
    let needle = format!("\"clients\": {clients},");
    let row = &section[section.find(&needle)?..];
    rate_in_row(&row[..row.find('}')?])
}

/// The committed events/second for `scheme` in the *top-level* stress
/// section of the JSON at `path`. `baseline_before` embeds an earlier
/// `"stress"` key, so the top-level section is the last occurrence.
fn committed_stress_rate(path: &str, scheme: Scheme) -> Option<f64> {
    let body = std::fs::read_to_string(path).ok()?;
    let section = &body[body.rfind("\"stress\"")?..];
    let needle = format!("\"scheme\": \"{scheme:?}\"");
    let row = &section[section.find(&needle)?..];
    rate_in_row(&row[..row.find('}')?])
}

/// The committed events/second for `scheme` in the top-level handoff
/// section of the JSON at `path` (last occurrence, like the stress
/// lookup, to stay robust against future embedded baselines).
fn committed_handoff_rate(path: &str, scheme: Scheme) -> Option<f64> {
    let body = std::fs::read_to_string(path).ok()?;
    let section = &body[body.rfind("\"handoff\"")?..];
    let needle = format!("\"scheme\": \"{scheme:?}\"");
    let row = &section[section.find(&needle)?..];
    rate_in_row(&row[..row.find('}')?])
}

/// The committed plan-vs-per-item speedup for `clients` in the invplan
/// section of the JSON at `path`.
fn committed_invplan_speedup(path: &str, clients: u32) -> Option<f64> {
    let body = std::fs::read_to_string(path).ok()?;
    let section = &body[body.find("\"invplan\"")?..];
    let needle = format!("\"clients\": {clients},");
    let row = &section[section.find(&needle)?..];
    num_in_row(&row[..row.find('}')?], "speedup")
}

/// The committed events/second for `scheme` in the *top-level* e2e
/// section of the JSON at `path`. `baseline_before` embeds an earlier
/// `"e2e"` key, so the top-level section is the last occurrence.
fn committed_e2e_rate(path: &str, scheme: Scheme) -> Option<f64> {
    let body = std::fs::read_to_string(path).ok()?;
    let section = &body[body.rfind("\"e2e\"")?..];
    let needle = format!("\"scheme\": \"{scheme:?}\"");
    let row = &section[section.find(&needle)?..];
    rate_in_row(&row[..row.find('}')?])
}

/// The CI regression gate: one popscale run vs the committed rate.
/// Returns the process exit code.
fn smoke_popscale(clients: u32, threads: u32, check_against: &str) -> i32 {
    let row = run_popscale_once(clients, threads);
    let Some(committed) = committed_popscale_rate(check_against, clients) else {
        eprintln!("smoke-popscale: no committed {clients}-client row in {check_against}");
        return 1;
    };
    let floor = committed * 0.9;
    if row.events_per_sec < floor {
        eprintln!(
            "smoke-popscale: REGRESSION — {:.0} ev/s is below 90% of the committed \
             {committed:.0} ev/s (floor {floor:.0})",
            row.events_per_sec
        );
        return 1;
    }
    eprintln!(
        "smoke-popscale: ok — {:.0} ev/s vs committed {committed:.0} ev/s (floor {floor:.0})",
        row.events_per_sec
    );
    0
}

/// The stress-section CI regression gate: one heavy AAW run (the
/// scheme most sensitive to scheduler and report-pipeline throughput)
/// vs the committed rate. Returns the process exit code.
fn smoke_stress(threads: u32, check_against: &str) -> i32 {
    let scheme = Scheme::Aaw;
    let cfg = stress_cfg(scheme, false).with_threads(threads);
    let mut best_wall = f64::INFINITY;
    let mut events = 0u64;
    for _ in 0..2 {
        let started = Instant::now();
        let result = run(&cfg, RunOptions::default()).expect("stress config validates");
        best_wall = best_wall.min(started.elapsed().as_secs_f64());
        events = result.metrics.events_processed;
    }
    let rate = events as f64 / best_wall;
    let Some(committed) = committed_stress_rate(check_against, scheme) else {
        eprintln!("smoke-stress: no committed {scheme:?} stress row in {check_against}");
        return 1;
    };
    let floor = committed * 0.9;
    if rate < floor {
        eprintln!(
            "smoke-stress: REGRESSION — {rate:.0} ev/s is below 90% of the committed \
             {committed:.0} ev/s (floor {floor:.0})"
        );
        return 1;
    }
    eprintln!(
        "smoke-stress: ok — {rate:.0} ev/s vs committed {committed:.0} ev/s (floor {floor:.0})"
    );
    0
}

/// The multi-cell CI regression gate: the heavy AAW handoff point (4
/// cells, migrating clients, per-cell fan-out and update replay) vs the
/// committed rate. Returns the process exit code.
fn smoke_handoff(threads: u32, check_against: &str) -> i32 {
    let scheme = Scheme::Aaw;
    let cfg = handoff_cfg(scheme, false).with_threads(threads);
    let mut best_wall = f64::INFINITY;
    let mut events = 0u64;
    for _ in 0..2 {
        let started = Instant::now();
        let result = run(&cfg, RunOptions::default()).expect("handoff config validates");
        best_wall = best_wall.min(started.elapsed().as_secs_f64());
        events = result.metrics.events_processed;
    }
    let rate = events as f64 / best_wall;
    let Some(committed) = committed_handoff_rate(check_against, scheme) else {
        eprintln!("smoke-handoff: no committed {scheme:?} handoff row in {check_against}");
        return 1;
    };
    let floor = committed * 0.9;
    if rate < floor {
        eprintln!(
            "smoke-handoff: REGRESSION — {rate:.0} ev/s is below 90% of the committed \
             {committed:.0} ev/s (floor {floor:.0})"
        );
        return 1;
    }
    eprintln!(
        "smoke-handoff: ok — {rate:.0} ev/s vs committed {committed:.0} ev/s (floor {floor:.0})"
    );
    0
}

/// The invalidation-plan CI smoke: the 100k-client invplan row. The
/// metric is a ratio of two timed paths, so it carries both runs'
/// noise — the gate requires the plan path to still beat per-item
/// outright *and* to hold at least half the committed speedup (a real
/// regression — the AND degenerating to per-item work — collapses the
/// ratio toward 1x, far below any committed margin).
fn smoke_invplan(check_against: &str) -> i32 {
    let clients = 100_000;
    let row = run_invplan_once(clients, 3);
    let Some(committed) = committed_invplan_speedup(check_against, clients) else {
        eprintln!("smoke-invplan: no committed {clients}-client invplan row in {check_against}");
        return 1;
    };
    let floor = (committed * 0.5).max(1.0);
    if row.speedup < floor {
        eprintln!(
            "smoke-invplan: REGRESSION — {:.1}x speedup is below the floor {floor:.1}x \
             (committed {committed:.1}x)",
            row.speedup
        );
        return 1;
    }
    eprintln!(
        "smoke-invplan: ok — {:.1}x speedup vs committed {committed:.1}x (floor {floor:.1}x)",
        row.speedup
    );
    0
}

/// The e2e CI regression gate: the full AAW `fig05` sweep (the committed
/// rows were measured non-quick, serial, best-of-3; this reruns one
/// scheme best-of-2) vs the committed e2e row. e2e wall times are tens
/// of milliseconds, so the floor is 80% rather than the stress gate's
/// 90% — proportional scheduling noise is larger here.
fn smoke_e2e(check_against: &str) -> i32 {
    let scheme = Scheme::Aaw;
    let scale = RunScale {
        time_factor: 0.05,
        max_threads: Some(1),
        replications: 1,
        split: CoreSplitPolicy::PointsOnly,
    };
    let mut spec = fig05::spec();
    spec.schemes = vec![scheme];
    let mut best_wall = f64::INFINITY;
    let mut events = 0u64;
    for _ in 0..2 {
        let started = Instant::now();
        let result =
            run_figure_with(&spec, scale, RunReporting::default()).expect("fig05 spec validates");
        best_wall = best_wall.min(started.elapsed().as_secs_f64());
        events = result
            .series
            .iter()
            .flat_map(|s| &s.points)
            .map(|p| p.metrics.events_processed)
            .sum();
    }
    let rate = events as f64 / best_wall;
    let Some(committed) = committed_e2e_rate(check_against, scheme) else {
        eprintln!("smoke-e2e: no committed {scheme:?} e2e row in {check_against}");
        return 1;
    };
    let floor = committed * 0.8;
    if rate < floor {
        eprintln!(
            "smoke-e2e: REGRESSION — {rate:.0} ev/s is below 80% of the committed \
             {committed:.0} ev/s (floor {floor:.0})"
        );
        return 1;
    }
    eprintln!("smoke-e2e: ok — {rate:.0} ev/s vs committed {committed:.0} ev/s (floor {floor:.0})");
    0
}

/// The scheduler CI smoke: the 10k-pending `sched` row must show the
/// wheel at least matching the heap baseline (the committed full run
/// pins the ≥2x margin at 1M pending; this leg catches a wheel that
/// regressed to worse-than-heap without burning CI minutes).
fn smoke_sched() -> i32 {
    let rows = bench_sched(true);
    let row = &rows[0];
    if row.speedup < 1.0 {
        eprintln!(
            "smoke-sched: REGRESSION — wheel {:.1} ns/op vs heap {:.1} ns/op ({:.2}x)",
            row.wheel_ns_per_op, row.heap_ns_per_op, row.speedup
        );
        return 1;
    }
    eprintln!(
        "smoke-sched: ok — wheel {:.1} ns/op vs heap {:.1} ns/op ({:.2}x)",
        row.wheel_ns_per_op, row.heap_ns_per_op, row.speedup
    );
    0
}

fn write_rows(out: &mut String, rows: &[E2eRow]) {
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{ \"scheme\": \"{:?}\", \"points\": {}, \"wall_secs\": {:.3}, \
             \"events\": {}, \"events_per_sec\": {:.0} }}",
            r.scheme, r.points, r.wall_secs, r.events, r.events_per_sec
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
}

#[allow(clippy::too_many_arguments)]
fn json(
    popscale: &[PopRow],
    sched: &[SchedRow],
    e2e: &[E2eRow],
    stress: &[E2eRow],
    handoff: &[E2eRow],
    fanout: &[FanoutRow],
    invplan: &[InvplanRow],
    invprobe: &InvplanProbe,
    scaling: &[ScalingRow],
    quick: bool,
    engine_threads: u32,
) -> String {
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"report_pipeline\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"host_cores\": {host_cores},");
    let _ = writeln!(out, "  \"engine_threads\": {engine_threads},");
    let _ = writeln!(
        out,
        "  \"scale\": {{ \"figure\": \"fig05\", \"time_factor\": {}, \"threads\": 1 }},",
        if quick { 0.01 } else { 0.05 }
    );
    out.push_str(BASELINE_BEFORE);
    out.push_str("  \"popscale\": {\n");
    let _ = writeln!(
        out,
        "    \"note\": \"struct-of-arrays population sweep: one AAW run per \
         population (horizon shrinks as clients grow), pinning throughput and \
         peak RSS. Runs first, populations ascending, because peak_rss_mb is \
         VmHWM — the process-lifetime high-water mark.\","
    );
    let _ = writeln!(out, "    \"scheme\": \"Aaw\",");
    out.push_str("    \"rows\": [\n");
    for (i, r) in popscale.iter().enumerate() {
        let _ = write!(
            out,
            "      {{ \"clients\": {}, \"threads\": {}, \"wall_secs\": {:.3}, \
             \"events\": {}, \"events_per_sec\": {:.0}, \"peak_rss_mb\": {:.0} }}",
            r.clients, r.threads, r.wall_secs, r.events, r.events_per_sec, r.peak_rss_mb
        );
        out.push_str(if i + 1 < popscale.len() { ",\n" } else { "\n" });
    }
    out.push_str("    ]\n  },\n");
    out.push_str("  \"sched\": {\n");
    let _ = writeln!(
        out,
        "    \"note\": \"future-event-list micro-benchmark: the retired \
         BinaryHeap scheduler vs the live hierarchical timing wheel on the \
         same deterministic fill/churn/drain workload (4n ops at n pending, \
         10000 s horizon). ns amortized per push/pop op, best-of-reps.\","
    );
    out.push_str("    \"rows\": [\n");
    for (i, r) in sched.iter().enumerate() {
        let _ = write!(
            out,
            "      {{ \"pending\": {}, \"heap_ns_per_op\": {:.1}, \
             \"wheel_ns_per_op\": {:.1}, \"speedup\": {:.2} }}",
            r.pending, r.heap_ns_per_op, r.wheel_ns_per_op, r.speedup
        );
        out.push_str(if i + 1 < sched.len() { ",\n" } else { "\n" });
    }
    out.push_str("    ]\n  },\n");
    out.push_str("  \"e2e\": [\n");
    write_rows(&mut out, e2e);
    out.push_str("  ],\n");
    out.push_str("  \"stress\": [\n");
    write_rows(&mut out, stress);
    out.push_str("  ],\n");
    out.push_str("  \"handoff\": [\n");
    write_rows(&mut out, handoff);
    out.push_str("  ],\n");
    out.push_str("  \"fanout\": [\n");
    for (i, r) in fanout.iter().enumerate() {
        let _ = write!(
            out,
            "    {{ \"records\": {}, \"clients\": {}, \"linear_us\": {:.1}, \
             \"indexed_us\": {:.1}, \"speedup\": {:.1} }}",
            r.records,
            r.clients,
            r.linear_ns / 1_000.0,
            r.indexed_ns / 1_000.0,
            r.speedup
        );
        out.push_str(if i + 1 < fanout.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"invplan\": {\n");
    let _ = writeln!(
        out,
        "    \"note\": \"invalidation-plan micro-benchmark: one AAW-shaped window \
         report at the stress shape (db 40000, 40 records, 800-item caches) \
         applied to N real LruCaches, per-item stale_into walk vs decode-once \
         PlanCache bitmap intersection, ns per client best-of-reps. \
         hit_rate_probe is a probed AAW run at the popscale shape reading the \
         cumulative plan counters off the last interval snapshot.\","
    );
    out.push_str("    \"rows\": [\n");
    for (i, r) in invplan.iter().enumerate() {
        let _ = write!(
            out,
            "      {{ \"clients\": {}, \"cache_len\": {}, \
             \"per_item_ns_per_client\": {:.1}, \"plan_ns_per_client\": {:.1}, \
             \"speedup\": {:.2} }}",
            r.clients, r.cache_len, r.per_item_ns_per_client, r.plan_ns_per_client, r.speedup
        );
        out.push_str(if i + 1 < invplan.len() { ",\n" } else { "\n" });
    }
    out.push_str("    ],\n");
    let _ = writeln!(
        out,
        "    \"hit_rate_probe\": {{ \"clients\": {}, \"sim_secs\": {:.0}, \
         \"plan_decodes\": {}, \"plan_hits\": {}, \"plan_misses\": {}, \
         \"hit_rate\": {:.4}, \"fanout_words_skipped\": {} }}",
        invprobe.clients,
        invprobe.sim_secs,
        invprobe.plan_decodes,
        invprobe.plan_hits,
        invprobe.plan_misses,
        invprobe.hit_rate,
        invprobe.fanout_words_skipped
    );
    out.push_str("  },\n");
    out.push_str("  \"scaling\": {\n");
    let _ = writeln!(
        out,
        "    \"note\": \"full AAW simulation, clients x engine worker threads; \
         speedup_vs_1t compares against the same population single-threaded. \
         Workers persist across ticks (spawned once per engine), so per-tick \
         overhead is a wake/claim handshake, not thread creation. With \
         host_cores = 1 the shards interleave on one core, so ~1.0x is \
         the expected ceiling and the column verifies overhead, not speedup; \
         values above 1.0x on such hosts are run-ordering warm-up artifacts.\","
    );
    let _ = writeln!(out, "    \"scheme\": \"Aaw\",");
    out.push_str("    \"rows\": [\n");
    for (i, r) in scaling.iter().enumerate() {
        let _ = write!(
            out,
            "      {{ \"clients\": {}, \"threads\": {}, \"wall_secs\": {:.3}, \
             \"events\": {}, \"events_per_sec\": {:.0}, \"speedup_vs_1t\": {:.2} }}",
            r.clients, r.threads, r.wall_secs, r.events, r.events_per_sec, r.speedup_vs_1t
        );
        out.push_str(if i + 1 < scaling.len() { ",\n" } else { "\n" });
    }
    out.push_str("    ]\n  }\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1));
    let engine_threads: u32 = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map_or(1, |v| v.parse().expect("--threads takes a number"));

    if let Some(i) = args.iter().position(|a| a == "--smoke-popscale") {
        let clients: u32 = args
            .get(i + 1)
            .map(|v| v.parse().expect("--smoke-popscale takes a client count"))
            .expect("--smoke-popscale takes a client count");
        let check_against = args
            .iter()
            .position(|a| a == "--check-against")
            .and_then(|i| args.get(i + 1))
            .expect("--smoke-popscale requires --check-against PATH");
        std::process::exit(smoke_popscale(clients, engine_threads, check_against));
    }
    if args.iter().any(|a| a == "--smoke-stress") {
        let check_against = args
            .iter()
            .position(|a| a == "--check-against")
            .and_then(|i| args.get(i + 1))
            .expect("--smoke-stress requires --check-against PATH");
        std::process::exit(smoke_stress(engine_threads, check_against));
    }
    if args.iter().any(|a| a == "--smoke-handoff") {
        let check_against = args
            .iter()
            .position(|a| a == "--check-against")
            .and_then(|i| args.get(i + 1))
            .expect("--smoke-handoff requires --check-against PATH");
        std::process::exit(smoke_handoff(engine_threads, check_against));
    }
    if args.iter().any(|a| a == "--smoke-sched") {
        std::process::exit(smoke_sched());
    }
    if args.iter().any(|a| a == "--smoke-invplan") {
        let check_against = args
            .iter()
            .position(|a| a == "--check-against")
            .and_then(|i| args.get(i + 1))
            .expect("--smoke-invplan requires --check-against PATH");
        std::process::exit(smoke_invplan(check_against));
    }
    if args.iter().any(|a| a == "--smoke-e2e") {
        let check_against = args
            .iter()
            .position(|a| a == "--check-against")
            .and_then(|i| args.get(i + 1))
            .expect("--smoke-e2e requires --check-against PATH");
        std::process::exit(smoke_e2e(check_against));
    }

    // popscale first, ascending: its peak-RSS column reads VmHWM.
    let popscale = bench_popscale(quick, engine_threads);
    let sched = bench_sched(quick);
    let e2e = bench_e2e(quick);
    let stress = bench_stress(quick, engine_threads);
    let handoff = bench_handoff(quick, engine_threads);
    let fanout = bench_fanout(quick);
    let invplan = bench_invplan(quick);
    let invprobe = invplan_probe(quick, engine_threads);
    let scaling = bench_scaling(quick);
    let body = json(
        &popscale,
        &sched,
        &e2e,
        &stress,
        &handoff,
        &fanout,
        &invplan,
        &invprobe,
        &scaling,
        quick,
        engine_threads,
    );
    match out_path {
        Some(path) => {
            std::fs::write(path, &body).expect("write bench json");
            eprintln!("wrote {path}");
        }
        None => print!("{body}"),
    }
}
