//! # mobicache-bench
//!
//! Criterion benchmark targets (no library code):
//!
//! * `benches/figures.rs` — one benchmark per paper figure (and per
//!   ablation), each executing that figure's full scheme × point sweep at
//!   a reduced horizon. Regenerating a figure at paper scale is the
//!   `repro` binary's job; these benches track the *cost* of each
//!   experiment so simulator performance regressions are caught.
//! * `benches/micro.rs` — micro-benchmarks of the hot algorithmic pieces:
//!   bit-sequence construction and application, window-report decisions,
//!   LRU operations, signature combination, the channel facility, and the
//!   end-to-end event rate of one simulation.
