//! Run metrics.
//!
//! The paper's evaluation reports two primary quantities per
//! configuration (§5): the **number of queries answered** in the
//! simulated interval (throughput under a fully utilised network) and the
//! **uplink communication cost for validity checking, in bits per
//! answered query**. Everything else here is supporting diagnostics used
//! by the extended experiments and the tests.

use mobicache_client::ClientCounters;
use mobicache_server::ServerCounters;
use std::fmt;

/// Aggregated results of one simulation run.
///
/// `Debug` is implemented by hand (not derived) so that the [`faults`]
/// section only appears when fault injection actually recorded
/// something: the golden-digest determinism suite hashes the `Debug`
/// rendering, and fault-free runs must reproduce historical digests
/// byte-for-byte.
///
/// [`faults`]: Metrics::faults
#[derive(Clone, Default)]
pub struct Metrics {
    // ---- the paper's headline metrics ----
    /// Queries fully answered within the horizon (Figures 5, 7, 9, 11,
    /// 13, 15, 16).
    pub queries_answered: u64,
    /// Validity-checking uplink traffic (`Tlb` reports + check requests)
    /// divided by answered queries (Figures 6, 8, 10, 12, 14).
    pub uplink_validity_bits_per_query: f64,

    // ---- load and cache behaviour ----
    /// Queries issued (answered + still in flight at the horizon).
    pub queries_issued: u64,
    /// Referenced items answered from cache.
    pub item_hits: u64,
    /// Referenced items downloaded from the server.
    pub item_misses: u64,
    /// `item_hits / (item_hits + item_misses)`.
    pub hit_ratio: f64,
    /// Mean query latency (issue → last item resolved), seconds.
    pub mean_query_latency_secs: f64,
    /// 95th-percentile query latency, seconds (histogram estimate).
    pub p95_query_latency_secs: f64,

    // ---- channel accounting (bits fully transmitted) ----
    /// Total validity-checking uplink bits (class 1: `Tlb` + checks).
    pub uplink_validity_bits: f64,
    /// Total uplink bits of every class.
    pub uplink_total_bits: f64,
    /// Invalidation-report downlink bits (class 0).
    pub downlink_report_bits: f64,
    /// Validity-report downlink bits (class 1).
    pub downlink_validity_bits: f64,
    /// Data-item downlink bits (class 2).
    pub downlink_data_bits: f64,
    /// Downlink busy fraction over the horizon.
    pub downlink_utilization: f64,
    /// Uplink busy fraction over the horizon.
    pub uplink_utilization: f64,
    /// Data transmissions interrupted by a broadcast report.
    pub downlink_preemptions: u64,

    // ---- client radio energy (extension; §1 motivates power efficiency) ----
    /// Bits transmitted by client radios (uplink messages).
    pub client_tx_bits: f64,
    /// Bits received by client radios (reports heard + addressed
    /// downlink traffic).
    pub client_rx_bits: f64,
    /// Total client energy: `tx_bits·e_tx + rx_bits·e_rx` in abstract
    /// units (defaults make transmission 100× reception).
    pub energy_total: f64,
    /// Energy per answered query.
    pub energy_per_query: f64,
    /// Broadcast reports individually missed due to fading
    /// (`p_report_loss` extension).
    pub reports_lost: u64,

    // ---- scheme behaviour ----
    /// Server-side report/decision counters.
    pub server: ServerStats,
    /// Client-side counters summed over all clients.
    pub clients: ClientStats,
    /// Cache evictions summed over all clients.
    pub cache_evictions: u64,
    /// Disconnection gaps taken (count of disconnect decisions).
    pub disconnections: u64,
    /// Events processed by the kernel (progress/debug metric).
    pub events_processed: u64,
    /// Simulated horizon, seconds.
    pub sim_time_secs: f64,

    // ---- fault injection (robustness extension) ----
    /// Fault-injection outcomes; all-zero unless the run's
    /// [`FaultPlan`](mobicache_model::FaultPlan) injected something.
    pub faults: FaultMetrics,

    // ---- client mobility (multi-cell extension) ----
    /// Handoff outcomes; all-zero unless the run's
    /// [`CellTopology`](mobicache_model::CellTopology) has more than one
    /// cell.
    pub mobility: MobilityMetrics,
}

impl fmt::Debug for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Mirrors the derived output field-for-field; `faults` is
        // appended only when non-default so fault-free renderings (and
        // therefore golden digests) are unchanged from before the fault
        // layer existed.
        let mut s = f.debug_struct("Metrics");
        s.field("queries_answered", &self.queries_answered)
            .field(
                "uplink_validity_bits_per_query",
                &self.uplink_validity_bits_per_query,
            )
            .field("queries_issued", &self.queries_issued)
            .field("item_hits", &self.item_hits)
            .field("item_misses", &self.item_misses)
            .field("hit_ratio", &self.hit_ratio)
            .field("mean_query_latency_secs", &self.mean_query_latency_secs)
            .field("p95_query_latency_secs", &self.p95_query_latency_secs)
            .field("uplink_validity_bits", &self.uplink_validity_bits)
            .field("uplink_total_bits", &self.uplink_total_bits)
            .field("downlink_report_bits", &self.downlink_report_bits)
            .field("downlink_validity_bits", &self.downlink_validity_bits)
            .field("downlink_data_bits", &self.downlink_data_bits)
            .field("downlink_utilization", &self.downlink_utilization)
            .field("uplink_utilization", &self.uplink_utilization)
            .field("downlink_preemptions", &self.downlink_preemptions)
            .field("client_tx_bits", &self.client_tx_bits)
            .field("client_rx_bits", &self.client_rx_bits)
            .field("energy_total", &self.energy_total)
            .field("energy_per_query", &self.energy_per_query)
            .field("reports_lost", &self.reports_lost)
            .field("server", &self.server)
            .field("clients", &self.clients)
            .field("cache_evictions", &self.cache_evictions)
            .field("disconnections", &self.disconnections)
            .field("events_processed", &self.events_processed)
            .field("sim_time_secs", &self.sim_time_secs);
        if self.faults != FaultMetrics::default() {
            s.field("faults", &self.faults);
        }
        if self.mobility != MobilityMetrics::default() {
            s.field("mobility", &self.mobility);
        }
        s.finish()
    }
}

/// Outcomes of the mobility process over one run. All-zero in the
/// single-cell (legacy) topology, so the field never appears in the
/// golden-digest renderings of pre-mobility configurations.
///
/// There is deliberately no roam-vs-stay split: the cross-cell
/// equivalence battery compares a `p_roam = 1` run against a
/// `p_roam = 0` run bit-for-bit, and both arms of a handoff (moving or
/// staying) are the same radio event.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MobilityMetrics {
    /// Handoffs completed (the client re-associated and reconnected,
    /// whether or not the destination differs from the source cell).
    pub handoffs: u64,
    /// Handoffs postponed because the client was mid-flight (pending
    /// query, dozing, or an unresolved reconnection gap).
    pub handoffs_deferred: u64,
}

/// Outcomes of fault injection over one run. All-zero when the fault
/// plan is inactive.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultMetrics {
    /// Broadcasts lost while a client's channel was in the good state.
    pub downlink_losses_good: u64,
    /// Broadcasts lost inside a Gilbert–Elliott loss burst.
    pub downlink_losses_burst: u64,
    /// Uplink messages lost in flight.
    pub uplink_losses: u64,
    /// Uplink messages that arrived while the server was crashed and
    /// were dropped.
    pub crash_dropped_uplinks: u64,
    /// Client re-uplinks triggered by retry timeouts.
    pub retries_sent: u64,
    /// Retry episodes that exhausted `max_retries` and degraded to a
    /// full cache drop.
    pub backoff_exhaustions: u64,
    /// Scheduled server crashes executed.
    pub server_crashes: u64,
    /// Pending `Tlb` registrations wiped by crashes.
    pub crash_dropped_tlbs: u64,
    /// Duplicate `Tlb` arrivals the server ignored idempotently.
    pub duplicate_tlbs_ignored: u64,
    /// Duplicate data requests ignored because the response was already
    /// on the downlink (a retry racing queueing delay, not loss).
    pub duplicate_requests_ignored: u64,
    /// Server recoveries completed (first broadcast after rebuild).
    pub recoveries: u64,
    /// Mean crash → first-post-recovery-broadcast latency, seconds.
    pub mean_recovery_latency_secs: f64,
    /// Queries that were pending at the moment a fault hit their client
    /// (a lost broadcast) — the paper's "stretch" population.
    pub queries_stretched: u64,
}

/// Serializable mirror of [`ServerCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Plain window reports broadcast.
    pub window_reports: u64,
    /// AAW enlarged-window reports broadcast.
    pub enlarged_reports: u64,
    /// Bit-sequence reports broadcast.
    pub bs_reports: u64,
    /// Amnesic-terminals reports broadcast.
    pub at_reports: u64,
    /// Signature reports broadcast.
    pub sig_reports: u64,
    /// `Tlb` messages received.
    pub tlbs_received: u64,
    /// Check requests processed.
    pub checks_processed: u64,
    /// Update transactions applied.
    pub txns_applied: u64,
    /// Individual item updates applied.
    pub updates_applied: u64,
}

impl From<ServerCounters> for ServerStats {
    fn from(c: ServerCounters) -> Self {
        ServerStats {
            window_reports: c.window_reports,
            enlarged_reports: c.enlarged_reports,
            bs_reports: c.bs_reports,
            at_reports: c.at_reports,
            sig_reports: c.sig_reports,
            tlbs_received: c.tlbs_received,
            checks_processed: c.checks_processed,
            txns_applied: c.txns_applied,
            updates_applied: c.updates_applied,
        }
    }
}

/// Serializable sum of [`ClientCounters`] over all clients.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// `Tlb` messages sent.
    pub tlbs_sent: u64,
    /// Check requests sent.
    pub checks_sent: u64,
    /// Entire-cache drops.
    pub full_drops: u64,
    /// Limbo entries salvaged.
    pub salvaged: u64,
    /// Limbo entries dropped.
    pub limbo_dropped: u64,
    /// Reconnection gaps with cache contents at stake.
    pub limbo_episodes: u64,
}

impl ClientStats {
    /// Accumulates one client's counters.
    pub fn absorb(&mut self, c: &ClientCounters) {
        self.tlbs_sent += c.tlbs_sent;
        self.checks_sent += c.checks_sent;
        self.full_drops += c.full_drops;
        self.salvaged += c.salvaged;
        self.limbo_dropped += c.limbo_dropped;
        self.limbo_episodes += c.limbo_episodes;
    }

    /// Folds another partial aggregate into this one. Every field is a
    /// plain sum, so shard-local aggregates built over disjoint client
    /// ranges merge into exactly the serial total, in any order.
    pub fn merge(&mut self, other: &ClientStats) {
        self.tlbs_sent += other.tlbs_sent;
        self.checks_sent += other.checks_sent;
        self.full_drops += other.full_drops;
        self.salvaged += other.salvaged;
        self.limbo_dropped += other.limbo_dropped;
        self.limbo_episodes += other.limbo_episodes;
    }
}

impl Metrics {
    /// Throughput in queries per second of simulated time.
    pub fn throughput_per_sec(&self) -> f64 {
        if self.sim_time_secs <= 0.0 {
            0.0
        } else {
            self.queries_answered as f64 / self.sim_time_secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_hides_default_faults_and_shows_real_ones() {
        let clean = Metrics {
            queries_answered: 7,
            ..Metrics::default()
        };
        let rendered = format!("{clean:?}");
        assert!(
            !rendered.contains("faults"),
            "fault-free metrics must render exactly as before the fault layer: {rendered}"
        );
        assert!(rendered.starts_with("Metrics { queries_answered: 7,"));
        assert!(rendered.ends_with("sim_time_secs: 0.0 }"));

        let mut faulty = clean.clone();
        faulty.faults.uplink_losses = 3;
        let rendered = format!("{faulty:?}");
        assert!(rendered.contains("faults: FaultMetrics"));
        assert!(rendered.contains("uplink_losses: 3"));

        // Same contract for the mobility section: invisible while
        // all-zero, appended after `faults` once a handoff happened.
        let mut mobile = clean;
        mobile.mobility.handoffs = 2;
        let rendered = format!("{mobile:?}");
        assert!(rendered.contains("mobility: MobilityMetrics"));
        assert!(rendered.contains("handoffs: 2"));
    }

    #[test]
    fn throughput_math() {
        let m = Metrics {
            queries_answered: 15_000,
            sim_time_secs: 100_000.0,
            ..Metrics::default()
        };
        assert!((m.throughput_per_sec() - 0.15).abs() < 1e-12);
        assert_eq!(Metrics::default().throughput_per_sec(), 0.0);
    }

    #[test]
    fn client_stats_absorb_sums() {
        let mut s = ClientStats::default();
        let c = ClientCounters {
            tlbs_sent: 2,
            checks_sent: 3,
            full_drops: 1,
            salvaged: 4,
            limbo_dropped: 5,
            limbo_episodes: 6,
            ..ClientCounters::default()
        };
        s.absorb(&c);
        s.absorb(&c);
        assert_eq!(s.tlbs_sent, 4);
        assert_eq!(s.limbo_episodes, 12);
    }

    #[test]
    fn client_stats_merge_equals_serial_absorb() {
        let counters: Vec<ClientCounters> = (0..6)
            .map(|i| ClientCounters {
                tlbs_sent: i,
                checks_sent: 2 * i,
                salvaged: i * i,
                limbo_episodes: 1,
                ..ClientCounters::default()
            })
            .collect();
        let mut serial = ClientStats::default();
        for c in &counters {
            serial.absorb(c);
        }
        // Two shards over disjoint halves, merged.
        let mut lo = ClientStats::default();
        let mut hi = ClientStats::default();
        for c in &counters[..3] {
            lo.absorb(c);
        }
        for c in &counters[3..] {
            hi.absorb(c);
        }
        let mut merged = ClientStats::default();
        merged.merge(&lo);
        merged.merge(&hi);
        assert_eq!(merged, serial);
    }
}
