//! Run metrics.
//!
//! The paper's evaluation reports two primary quantities per
//! configuration (§5): the **number of queries answered** in the
//! simulated interval (throughput under a fully utilised network) and the
//! **uplink communication cost for validity checking, in bits per
//! answered query**. Everything else here is supporting diagnostics used
//! by the extended experiments and the tests.

use mobicache_client::ClientCounters;
use mobicache_server::ServerCounters;

/// Aggregated results of one simulation run.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    // ---- the paper's headline metrics ----
    /// Queries fully answered within the horizon (Figures 5, 7, 9, 11,
    /// 13, 15, 16).
    pub queries_answered: u64,
    /// Validity-checking uplink traffic (`Tlb` reports + check requests)
    /// divided by answered queries (Figures 6, 8, 10, 12, 14).
    pub uplink_validity_bits_per_query: f64,

    // ---- load and cache behaviour ----
    /// Queries issued (answered + still in flight at the horizon).
    pub queries_issued: u64,
    /// Referenced items answered from cache.
    pub item_hits: u64,
    /// Referenced items downloaded from the server.
    pub item_misses: u64,
    /// `item_hits / (item_hits + item_misses)`.
    pub hit_ratio: f64,
    /// Mean query latency (issue → last item resolved), seconds.
    pub mean_query_latency_secs: f64,
    /// 95th-percentile query latency, seconds (histogram estimate).
    pub p95_query_latency_secs: f64,

    // ---- channel accounting (bits fully transmitted) ----
    /// Total validity-checking uplink bits (class 1: `Tlb` + checks).
    pub uplink_validity_bits: f64,
    /// Total uplink bits of every class.
    pub uplink_total_bits: f64,
    /// Invalidation-report downlink bits (class 0).
    pub downlink_report_bits: f64,
    /// Validity-report downlink bits (class 1).
    pub downlink_validity_bits: f64,
    /// Data-item downlink bits (class 2).
    pub downlink_data_bits: f64,
    /// Downlink busy fraction over the horizon.
    pub downlink_utilization: f64,
    /// Uplink busy fraction over the horizon.
    pub uplink_utilization: f64,
    /// Data transmissions interrupted by a broadcast report.
    pub downlink_preemptions: u64,

    // ---- client radio energy (extension; §1 motivates power efficiency) ----
    /// Bits transmitted by client radios (uplink messages).
    pub client_tx_bits: f64,
    /// Bits received by client radios (reports heard + addressed
    /// downlink traffic).
    pub client_rx_bits: f64,
    /// Total client energy: `tx_bits·e_tx + rx_bits·e_rx` in abstract
    /// units (defaults make transmission 100× reception).
    pub energy_total: f64,
    /// Energy per answered query.
    pub energy_per_query: f64,
    /// Broadcast reports individually missed due to fading
    /// (`p_report_loss` extension).
    pub reports_lost: u64,

    // ---- scheme behaviour ----
    /// Server-side report/decision counters.
    pub server: ServerStats,
    /// Client-side counters summed over all clients.
    pub clients: ClientStats,
    /// Cache evictions summed over all clients.
    pub cache_evictions: u64,
    /// Disconnection gaps taken (count of disconnect decisions).
    pub disconnections: u64,
    /// Events processed by the kernel (progress/debug metric).
    pub events_processed: u64,
    /// Simulated horizon, seconds.
    pub sim_time_secs: f64,
}

/// Serializable mirror of [`ServerCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Plain window reports broadcast.
    pub window_reports: u64,
    /// AAW enlarged-window reports broadcast.
    pub enlarged_reports: u64,
    /// Bit-sequence reports broadcast.
    pub bs_reports: u64,
    /// Amnesic-terminals reports broadcast.
    pub at_reports: u64,
    /// Signature reports broadcast.
    pub sig_reports: u64,
    /// `Tlb` messages received.
    pub tlbs_received: u64,
    /// Check requests processed.
    pub checks_processed: u64,
    /// Update transactions applied.
    pub txns_applied: u64,
    /// Individual item updates applied.
    pub updates_applied: u64,
}

impl From<ServerCounters> for ServerStats {
    fn from(c: ServerCounters) -> Self {
        ServerStats {
            window_reports: c.window_reports,
            enlarged_reports: c.enlarged_reports,
            bs_reports: c.bs_reports,
            at_reports: c.at_reports,
            sig_reports: c.sig_reports,
            tlbs_received: c.tlbs_received,
            checks_processed: c.checks_processed,
            txns_applied: c.txns_applied,
            updates_applied: c.updates_applied,
        }
    }
}

/// Serializable sum of [`ClientCounters`] over all clients.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// `Tlb` messages sent.
    pub tlbs_sent: u64,
    /// Check requests sent.
    pub checks_sent: u64,
    /// Entire-cache drops.
    pub full_drops: u64,
    /// Limbo entries salvaged.
    pub salvaged: u64,
    /// Limbo entries dropped.
    pub limbo_dropped: u64,
    /// Reconnection gaps with cache contents at stake.
    pub limbo_episodes: u64,
}

impl ClientStats {
    /// Accumulates one client's counters.
    pub fn absorb(&mut self, c: &ClientCounters) {
        self.tlbs_sent += c.tlbs_sent;
        self.checks_sent += c.checks_sent;
        self.full_drops += c.full_drops;
        self.salvaged += c.salvaged;
        self.limbo_dropped += c.limbo_dropped;
        self.limbo_episodes += c.limbo_episodes;
    }

    /// Folds another partial aggregate into this one. Every field is a
    /// plain sum, so shard-local aggregates built over disjoint client
    /// ranges merge into exactly the serial total, in any order.
    pub fn merge(&mut self, other: &ClientStats) {
        self.tlbs_sent += other.tlbs_sent;
        self.checks_sent += other.checks_sent;
        self.full_drops += other.full_drops;
        self.salvaged += other.salvaged;
        self.limbo_dropped += other.limbo_dropped;
        self.limbo_episodes += other.limbo_episodes;
    }
}

impl Metrics {
    /// Throughput in queries per second of simulated time.
    pub fn throughput_per_sec(&self) -> f64 {
        if self.sim_time_secs <= 0.0 {
            0.0
        } else {
            self.queries_answered as f64 / self.sim_time_secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_math() {
        let m = Metrics {
            queries_answered: 15_000,
            sim_time_secs: 100_000.0,
            ..Metrics::default()
        };
        assert!((m.throughput_per_sec() - 0.15).abs() < 1e-12);
        assert_eq!(Metrics::default().throughput_per_sec(), 0.0);
    }

    #[test]
    fn client_stats_absorb_sums() {
        let mut s = ClientStats::default();
        let c = ClientCounters {
            tlbs_sent: 2,
            checks_sent: 3,
            full_drops: 1,
            salvaged: 4,
            limbo_dropped: 5,
            limbo_episodes: 6,
            ..ClientCounters::default()
        };
        s.absorb(&c);
        s.absorb(&c);
        assert_eq!(s.tlbs_sent, 4);
        assert_eq!(s.limbo_episodes, 12);
    }

    #[test]
    fn client_stats_merge_equals_serial_absorb() {
        let counters: Vec<ClientCounters> = (0..6)
            .map(|i| ClientCounters {
                tlbs_sent: i,
                checks_sent: 2 * i,
                salvaged: i * i,
                limbo_episodes: 1,
                ..ClientCounters::default()
            })
            .collect();
        let mut serial = ClientStats::default();
        for c in &counters {
            serial.absorb(c);
        }
        // Two shards over disjoint halves, merged.
        let mut lo = ClientStats::default();
        let mut hi = ClientStats::default();
        for c in &counters[..3] {
            lo.absorb(c);
        }
        for c in &counters[3..] {
            hi.absorb(c);
        }
        let mut merged = ClientStats::default();
        merged.merge(&lo);
        merged.merge(&hi);
        assert_eq!(merged, serial);
    }
}
