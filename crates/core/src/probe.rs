//! Run observation: typed events and interval snapshots.
//!
//! The engine is deterministic and silent by default; experiments and
//! debugging want to *watch* a run without perturbing it. A [`Probe`]
//! receives structured [`ProbeEvent`]s at the model's decision points
//! (every broadcast, every adaptive choice, every disconnection gap,
//! every resolved query) plus periodic [`IntervalSnapshot`]s of the
//! cumulative counters. Probes are strictly read-only observers: they
//! never touch the RNG streams or the event list, so attaching one
//! leaves a same-seed run bit-identical.
//!
//! [`IntervalSampler`] is the built-in snapshot collector: it keeps a
//! time series of per-interval counter deltas that sums exactly to the
//! final [`Metrics`](crate::Metrics) and serializes to JSONL for the
//! `repro --trace-dir` flag.

use mobicache_model::ClientId;
use mobicache_reports::ReportPayload;
use mobicache_server::AdaptiveDecision;
use mobicache_sim::SimTime;

/// The kind of invalidation report broadcast in a period.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReportKind {
    /// Plain `TS` window report.
    Window,
    /// AAW-enlarged window report (carries a dummy record).
    EnlargedWindow,
    /// Bit-sequences report.
    BitSeq,
    /// Amnesic-terminals report.
    Amnesic,
    /// Signatures report.
    Sig,
}

impl ReportKind {
    /// Classifies a report payload.
    pub fn of(payload: &ReportPayload) -> ReportKind {
        match payload {
            ReportPayload::Window(w) if w.dummy.is_some() => ReportKind::EnlargedWindow,
            ReportPayload::Window(_) => ReportKind::Window,
            ReportPayload::BitSeq(_) => ReportKind::BitSeq,
            ReportPayload::At(_) => ReportKind::Amnesic,
            ReportPayload::Sig(..) => ReportKind::Sig,
        }
    }

    /// Stable lowercase name (used in traces).
    pub fn name(self) -> &'static str {
        match self {
            ReportKind::Window => "window",
            ReportKind::EnlargedWindow => "enlarged_window",
            ReportKind::BitSeq => "bitseq",
            ReportKind::Amnesic => "amnesic",
            ReportKind::Sig => "sig",
        }
    }
}

/// A cache-population change worth observing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheEventKind {
    /// The whole cache was invalidated (report did not cover the gap).
    FullDrop,
    /// Entries were evicted to make room.
    Evictions {
        /// How many entries were evicted while processing one message.
        count: u64,
    },
}

/// One structured observation from a run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProbeEvent {
    /// The server put an invalidation report on the downlink.
    ReportBroadcast {
        /// Kind of report chosen this period.
        kind: ReportKind,
        /// Full message size on the wire, bits (header included).
        bits: f64,
        /// History coverage start for window reports, seconds.
        window_start_secs: Option<f64>,
    },
    /// An AFW/AAW adaptive choice, with both candidate sizes.
    AdaptiveDecision(AdaptiveDecision),
    /// A client entered doze mode for a sampled duration.
    Disconnect {
        /// Who dozed off.
        client: ClientId,
        /// Planned doze length, seconds.
        for_secs: f64,
    },
    /// A client woke up from doze mode.
    Reconnect {
        /// Who woke up.
        client: ClientId,
        /// How long it was offline, seconds.
        offline_secs: f64,
    },
    /// A report or verdict resolved limbo entries after a reconnection.
    LimboSalvage {
        /// Whose cache.
        client: ClientId,
        /// Entries vouched for and kept.
        salvaged: u64,
        /// Entries dropped as unverifiable or stale.
        dropped: u64,
    },
    /// A client's cache population changed beyond normal fills.
    CacheEvent {
        /// Whose cache.
        client: ClientId,
        /// What happened.
        kind: CacheEventKind,
    },
    /// A query completed (all referenced items resolved).
    QueryResolved {
        /// Who asked.
        client: ClientId,
        /// Issue-to-completion latency, seconds.
        latency_secs: f64,
        /// Items answered from cache.
        hits: u32,
        /// Items fetched from the server.
        misses: u32,
    },
    /// Fault injection dropped a broadcast for one client.
    ReportLost {
        /// Whose downlink faded.
        client: ClientId,
        /// `true` if the channel was inside a Gilbert–Elliott burst.
        in_burst: bool,
    },
    /// Fault injection dropped an uplink message in flight.
    UplinkLost {
        /// Whose message.
        client: ClientId,
    },
    /// A scheduled server crash wiped the server's volatile state.
    ServerCrash {
        /// Pending `Tlb` registrations lost with the crash.
        dropped_tlbs: u64,
    },
    /// A crashed server finished rebuilding from its durable update log.
    ServerRecovered {
        /// How long the server was down, seconds.
        offline_secs: f64,
    },
    /// A mobility handoff completed: the client re-associated with
    /// `to_cell` (possibly its own cell again) and reconnected after the
    /// handoff blackout.
    Handoff {
        /// Who moved.
        client: ClientId,
        /// Cell the client left.
        from_cell: u32,
        /// Cell the client now listens to.
        to_cell: u32,
        /// Length of the handoff blackout, seconds.
        offline_secs: f64,
    },
}

/// Cumulative run counters, sampled at snapshot boundaries.
///
/// `IntervalSnapshot` stores the *delta* between two of these, so the
/// per-interval series telescopes back to the run totals.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunTotals {
    /// Queries issued.
    pub queries_issued: u64,
    /// Queries fully answered.
    pub queries_answered: u64,
    /// Items answered from cache.
    pub item_hits: u64,
    /// Items fetched from the server.
    pub item_misses: u64,
    /// Invalidation reports broadcast (all kinds).
    pub reports_broadcast: u64,
    /// `Tlb` messages the server received.
    pub tlbs_received: u64,
    /// Validity checks the server processed.
    pub checks_processed: u64,
    /// Cache evictions across all clients.
    pub cache_evictions: u64,
    /// Disconnection gaps taken.
    pub disconnections: u64,
    /// Broadcast reports individually missed to fading.
    pub reports_lost: u64,
    /// Uplink messages lost to fault injection.
    pub uplink_losses: u64,
    /// Client re-uplinks triggered by retry timeouts.
    pub fault_retries: u64,
    /// Scheduled server crashes executed.
    pub server_crashes: u64,
    /// Mobility handoffs completed.
    pub handoffs: u64,
    /// Bits transmitted by client radios.
    pub client_tx_bits: f64,
    /// Bits received by client radios.
    pub client_rx_bits: f64,
    /// Events pushed onto the future event list.
    pub events_scheduled: u64,
    /// Events delivered by the kernel.
    pub events_delivered: u64,
}

impl RunTotals {
    /// Field-wise `self - prev` (counter deltas over an interval).
    pub fn delta_since(&self, prev: &RunTotals) -> RunTotals {
        RunTotals {
            queries_issued: self.queries_issued - prev.queries_issued,
            queries_answered: self.queries_answered - prev.queries_answered,
            item_hits: self.item_hits - prev.item_hits,
            item_misses: self.item_misses - prev.item_misses,
            reports_broadcast: self.reports_broadcast - prev.reports_broadcast,
            tlbs_received: self.tlbs_received - prev.tlbs_received,
            checks_processed: self.checks_processed - prev.checks_processed,
            cache_evictions: self.cache_evictions - prev.cache_evictions,
            disconnections: self.disconnections - prev.disconnections,
            reports_lost: self.reports_lost - prev.reports_lost,
            uplink_losses: self.uplink_losses - prev.uplink_losses,
            fault_retries: self.fault_retries - prev.fault_retries,
            server_crashes: self.server_crashes - prev.server_crashes,
            handoffs: self.handoffs - prev.handoffs,
            client_tx_bits: self.client_tx_bits - prev.client_tx_bits,
            client_rx_bits: self.client_rx_bits - prev.client_rx_bits,
            events_scheduled: self.events_scheduled - prev.events_scheduled,
            events_delivered: self.events_delivered - prev.events_delivered,
        }
    }

    /// Field-wise accumulation (the inverse of [`RunTotals::delta_since`]).
    pub fn accumulate(&mut self, d: &RunTotals) {
        self.queries_issued += d.queries_issued;
        self.queries_answered += d.queries_answered;
        self.item_hits += d.item_hits;
        self.item_misses += d.item_misses;
        self.reports_broadcast += d.reports_broadcast;
        self.tlbs_received += d.tlbs_received;
        self.checks_processed += d.checks_processed;
        self.cache_evictions += d.cache_evictions;
        self.disconnections += d.disconnections;
        self.reports_lost += d.reports_lost;
        self.uplink_losses += d.uplink_losses;
        self.fault_retries += d.fault_retries;
        self.server_crashes += d.server_crashes;
        self.handoffs += d.handoffs;
        self.client_tx_bits += d.client_tx_bits;
        self.client_rx_bits += d.client_rx_bits;
        self.events_scheduled += d.events_scheduled;
        self.events_delivered += d.events_delivered;
    }
}

/// One interval of a run: counter deltas between two snapshot points.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IntervalSnapshot {
    /// Zero-based interval index.
    pub index: u32,
    /// Interval start, simulated seconds (inclusive).
    pub start_secs: f64,
    /// Interval end, simulated seconds (the snapshot instant).
    pub end_secs: f64,
    /// Counter deltas over `[start_secs, end_secs]`.
    pub delta: RunTotals,
    /// Largest pending-event-list depth seen so far (absolute, not a
    /// delta — a high-water mark only ratchets up).
    pub queue_high_water: usize,
    /// Largest single timing-wheel slot occupancy seen so far (absolute
    /// high-water mark, like `queue_high_water`) — how bursty the
    /// schedule is at slot granularity.
    pub slot_high_water: usize,
    /// Timing-wheel overflow cascades performed so far (absolute,
    /// cumulative): coarse slots redistributed into finer levels as the
    /// clock crossed window boundaries. Structural work only — cascades
    /// never reorder deliveries.
    pub sched_cascades: u64,
    /// Invalidation-plan bitmap decodes performed so far (absolute,
    /// cumulative): one per broadcast report whose payload yields a
    /// plan. Decode-once/apply-many means this stays at ~1 per tick
    /// regardless of population size.
    pub plan_decodes: u64,
    /// Report applications served by a memoized plan bitmap so far
    /// (absolute, cumulative).
    pub plan_hits: u64,
    /// Report applications that fell back to the per-item path so far
    /// (absolute, cumulative): the client's `Tlb` bucket missed the
    /// pre-decoded plan, or its cache was too small to profit.
    pub plan_misses: u64,
    /// Zero delivery-mask words the broadcast fan-outs skipped so far
    /// (absolute, cumulative) — 64 dozing/unlucky clients apiece that
    /// cost one word load instead of 64 per-client branches.
    pub fanout_words_skipped: u64,
}

impl IntervalSnapshot {
    /// One JSON object (single line, no trailing newline) for JSONL
    /// traces. Hand-rolled: every field is a number, and Rust's `f64`
    /// `Display` for finite values is valid JSON.
    pub fn to_json(&self) -> String {
        let d = &self.delta;
        format!(
            concat!(
                "{{\"interval\":{},\"start_secs\":{},\"end_secs\":{},",
                "\"queries_issued\":{},\"queries_answered\":{},",
                "\"item_hits\":{},\"item_misses\":{},",
                "\"reports_broadcast\":{},\"tlbs_received\":{},",
                "\"checks_processed\":{},\"cache_evictions\":{},",
                "\"disconnections\":{},\"reports_lost\":{},",
                "\"uplink_losses\":{},\"fault_retries\":{},",
                "\"server_crashes\":{},\"handoffs\":{},",
                "\"client_tx_bits\":{},\"client_rx_bits\":{},",
                "\"events_scheduled\":{},\"events_delivered\":{},",
                "\"queue_high_water\":{},\"slot_high_water\":{},",
                "\"sched_cascades\":{},",
                "\"plan_decodes\":{},\"plan_hits\":{},\"plan_misses\":{},",
                "\"fanout_words_skipped\":{}}}"
            ),
            self.index,
            self.start_secs,
            self.end_secs,
            d.queries_issued,
            d.queries_answered,
            d.item_hits,
            d.item_misses,
            d.reports_broadcast,
            d.tlbs_received,
            d.checks_processed,
            d.cache_evictions,
            d.disconnections,
            d.reports_lost,
            d.uplink_losses,
            d.fault_retries,
            d.server_crashes,
            d.handoffs,
            d.client_tx_bits,
            d.client_rx_bits,
            d.events_scheduled,
            d.events_delivered,
            self.queue_high_water,
            self.slot_high_water,
            self.sched_cascades,
            self.plan_decodes,
            self.plan_hits,
            self.plan_misses,
            self.fanout_words_skipped,
        )
    }
}

/// A run observer.
///
/// All methods have no-op defaults, so a probe implements only what it
/// cares about. Probes must not mutate anything the model reads — the
/// engine guarantees they are never handed an RNG or the scheduler, so
/// attaching a probe cannot change a run's trajectory.
pub trait Probe {
    /// Called at each decision point, in simulation-time order. `now` is
    /// the simulated instant the event happened.
    fn on_event(&mut self, now: SimTime, event: &ProbeEvent) {
        let _ = (now, event);
    }

    /// Snapshot stride in broadcast periods: `Some(k)` asks the engine
    /// for an [`IntervalSnapshot`] every `k` broadcasts (plus one final
    /// partial interval at the horizon). `None` (the default) disables
    /// snapshotting.
    fn snapshot_every(&self) -> Option<u32> {
        None
    }

    /// Called with each interval snapshot when [`Probe::snapshot_every`]
    /// returns `Some`.
    fn on_snapshot(&mut self, snap: &IntervalSnapshot) {
        let _ = snap;
    }
}

/// The do-nothing probe (what an unobserved run effectively uses).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullProbe;

impl Probe for NullProbe {}

/// Built-in probe: collects an [`IntervalSnapshot`] time series every
/// `k` broadcast periods.
#[derive(Clone, Debug)]
pub struct IntervalSampler {
    every: u32,
    snapshots: Vec<IntervalSnapshot>,
    events_seen: u64,
}

impl IntervalSampler {
    /// Samples every `k` broadcast periods.
    ///
    /// # Panics
    /// Panics if `k` is zero.
    pub fn every(k: u32) -> Self {
        assert!(k > 0, "snapshot stride must be at least 1");
        IntervalSampler {
            every: k,
            snapshots: Vec::new(),
            events_seen: 0,
        }
    }

    /// The collected time series, in interval order.
    pub fn snapshots(&self) -> &[IntervalSnapshot] {
        &self.snapshots
    }

    /// Number of [`ProbeEvent`]s observed (all kinds).
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Sums the interval deltas back into run totals — by construction
    /// this telescopes to the engine's final counters.
    pub fn summed_totals(&self) -> RunTotals {
        let mut sum = RunTotals::default();
        for s in &self.snapshots {
            sum.accumulate(&s.delta);
        }
        sum
    }

    /// The whole series as JSONL (one snapshot per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.snapshots {
            out.push_str(&s.to_json());
            out.push('\n');
        }
        out
    }
}

impl Probe for IntervalSampler {
    fn on_event(&mut self, _now: SimTime, _event: &ProbeEvent) {
        self.events_seen += 1;
    }

    fn snapshot_every(&self) -> Option<u32> {
        Some(self.every)
    }

    fn on_snapshot(&mut self, snap: &IntervalSnapshot) {
        self.snapshots.push(*snap);
    }
}

/// Forwards to two probes in order (compose observers without boxing).
impl<A: Probe + ?Sized, B: Probe + ?Sized> Probe for (&mut A, &mut B) {
    fn on_event(&mut self, now: SimTime, event: &ProbeEvent) {
        self.0.on_event(now, event);
        self.1.on_event(now, event);
    }

    fn snapshot_every(&self) -> Option<u32> {
        match (self.0.snapshot_every(), self.1.snapshot_every()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn on_snapshot(&mut self, snap: &IntervalSnapshot) {
        self.0.on_snapshot(snap);
        self.1.on_snapshot(snap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(index: u32, answered: u64, tx: f64) -> IntervalSnapshot {
        IntervalSnapshot {
            index,
            start_secs: f64::from(index) * 100.0,
            end_secs: f64::from(index + 1) * 100.0,
            delta: RunTotals {
                queries_answered: answered,
                client_tx_bits: tx,
                ..RunTotals::default()
            },
            queue_high_water: 7,
            slot_high_water: 5,
            sched_cascades: 2,
            plan_decodes: 4,
            plan_hits: 90,
            plan_misses: 3,
            fanout_words_skipped: 6,
        }
    }

    #[test]
    fn deltas_telescope() {
        let a = RunTotals {
            queries_answered: 10,
            client_tx_bits: 1_000.0,
            ..RunTotals::default()
        };
        let b = RunTotals {
            queries_answered: 25,
            client_tx_bits: 2_500.0,
            ..RunTotals::default()
        };
        let d = b.delta_since(&a);
        assert_eq!(d.queries_answered, 15);
        let mut back = a;
        back.accumulate(&d);
        assert_eq!(back, b);
    }

    #[test]
    fn sampler_collects_and_sums() {
        let mut s = IntervalSampler::every(4);
        assert_eq!(s.snapshot_every(), Some(4));
        s.on_snapshot(&snap(0, 3, 10.0));
        s.on_snapshot(&snap(1, 5, 20.0));
        assert_eq!(s.snapshots().len(), 2);
        let sum = s.summed_totals();
        assert_eq!(sum.queries_answered, 8);
        assert!((sum.client_tx_bits - 30.0).abs() < 1e-12);
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let mut s = IntervalSampler::every(1);
        s.on_snapshot(&snap(0, 3, 10.0));
        s.on_snapshot(&snap(1, 5, 20.5));
        let out = s.to_jsonl();
        let lines: Vec<&str> = out.trim_end().split('\n').collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(lines[1].contains("\"queries_answered\":5"));
        assert!(lines[1].contains("\"client_tx_bits\":20.5"));
        assert!(lines[0].contains("\"queue_high_water\":7"));
        assert!(lines[0].contains("\"slot_high_water\":5"));
        assert!(lines[0].contains("\"sched_cascades\":2"));
        assert!(lines[0].contains("\"uplink_losses\":0"));
        assert!(lines[0].contains("\"fault_retries\":0"));
        assert!(lines[0].contains("\"server_crashes\":0"));
        assert!(lines[0].contains("\"handoffs\":0"));
        assert!(lines[0].contains("\"plan_decodes\":4"));
        assert!(lines[0].contains("\"plan_hits\":90"));
        assert!(lines[0].contains("\"plan_misses\":3"));
        assert!(lines[0].contains("\"fanout_words_skipped\":6"));
    }

    #[test]
    fn report_kind_classification() {
        use mobicache_reports::{BitSequences, WindowReport};
        use mobicache_sim::SimTime;
        let t = SimTime::from_secs(10.0);
        let plain = ReportPayload::Window(WindowReport {
            broadcast_at: t,
            window_start: SimTime::ZERO,
            records: vec![],
            dummy: None,
        });
        assert_eq!(ReportKind::of(&plain), ReportKind::Window);
        let enlarged = ReportPayload::Window(WindowReport {
            broadcast_at: t,
            window_start: SimTime::ZERO,
            records: vec![],
            dummy: Some(SimTime::ZERO),
        });
        assert_eq!(ReportKind::of(&enlarged), ReportKind::EnlargedWindow);
        let bs = ReportPayload::BitSeq(BitSequences::from_recency(t, 16, vec![]));
        assert_eq!(ReportKind::of(&bs), ReportKind::BitSeq);
        assert_eq!(ReportKind::of(&bs).name(), "bitseq");
    }

    #[test]
    fn pair_probe_forwards_to_both() {
        let mut a = IntervalSampler::every(2);
        let mut b = IntervalSampler::every(8);
        let mut pair = (&mut a, &mut b);
        assert_eq!(Probe::snapshot_every(&pair), Some(2));
        pair.on_snapshot(&snap(0, 1, 0.0));
        pair.on_event(
            SimTime::ZERO,
            &ProbeEvent::Disconnect {
                client: mobicache_model::ClientId(0),
                for_secs: 5.0,
            },
        );
        assert_eq!(a.snapshots().len(), 1);
        assert_eq!(b.snapshots().len(), 1);
        assert_eq!(a.events_seen(), 1);
        assert_eq!(b.events_seen(), 1);
    }
}
