//! The simulation driver: wires server, clients, channels and workload
//! generators into one event loop (§4 of the paper).
//!
//! Beyond the paper's model, the driver supports three extensions, all
//! off by default (see `DESIGN.md` §4):
//!
//! * **downlink topology** — §6's future work: a dedicated broadcast
//!   channel for invalidation reports with the remaining bandwidth
//!   serving point-to-point traffic ([`DownlinkTopology::Dedicated`]);
//! * **report loss** — per-client fading: each connected client misses a
//!   given broadcast independently with probability `p_report_loss`;
//! * **client energy accounting** — §1 motivates the schemes with power
//!   efficiency ("the power needed for transmission is proportional to
//!   the fourth power of the distance"); the driver charges every client
//!   transmission and reception against the configured per-bit costs.

use crate::metrics::{ClientStats, FaultMetrics, Metrics, MobilityMetrics};
use crate::oracle::Oracle;
use crate::probe::{CacheEventKind, IntervalSnapshot, Probe, ProbeEvent, ReportKind, RunTotals};
use mobicache_client::{ClientAction, ClientConfig, ClientCounters, ClientPop, PopPtr};
use mobicache_model::msg::{DownlinkKind, SizeParams, UplinkKind, CLASS_CHECK, CLASS_REPORT};
use mobicache_model::{ChannelFaults, ClientId, ConfigError, DownlinkTopology, ItemId, SimConfig};
use mobicache_net::Channel;
use mobicache_reports::{BsIndex, PlanCache, PlanStats, PreparedReport, ReportPayload};
use mobicache_server::{Server, ServerCounters};
use mobicache_sim::pool::{shard_count, SendPtr, WorkerPool};
use mobicache_sim::{Exp, Histogram, OnlineStats, Scheduler, SimRng, SimTime, StreamId};
use mobicache_workload::{GapKind, GapProcess, QueryGen, UpdateGen};
use std::sync::Arc;

/// Options orthogonal to the modelled system, built fluently:
///
/// ```
/// use mobicache::{IntervalSampler, RunOptions};
///
/// let mut sampler = IntervalSampler::every(10);
/// let opts = RunOptions::new()
///     .check_consistency(true)
///     .probe(&mut sampler);
/// # let _ = opts;
/// ```
#[derive(Default)]
pub struct RunOptions<'p> {
    /// Record the full update history and assert the cache-consistency
    /// invariant after every message each client processes. Roughly
    /// doubles runtime; intended for tests.
    check_consistency: bool,
    /// Observer receiving typed run events and interval snapshots.
    probe: Option<&'p mut dyn Probe>,
    /// Externally owned worker pool to execute the sharded tick phases
    /// on, instead of spawning one per simulation.
    worker_pool: Option<Arc<WorkerPool>>,
}

impl<'p> RunOptions<'p> {
    /// Defaults: no consistency oracle, no probe.
    pub fn new() -> Self {
        RunOptions::default()
    }

    /// Enables (or disables) the ground-truth consistency oracle.
    #[must_use]
    pub fn check_consistency(mut self, enabled: bool) -> Self {
        self.check_consistency = enabled;
        self
    }

    /// Attaches a run observer. Probes are read-only: they never touch
    /// the RNG streams or the event list, so a probed run stays
    /// bit-identical to an unprobed one with the same seed.
    #[must_use]
    pub fn probe(mut self, probe: &'p mut dyn Probe) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Runs the sharded tick phases on an existing pool instead of
    /// spawning one per simulation — for drivers that create many
    /// short-lived engines. Chunk geometry still follows
    /// [`SimConfig::threads`], so sharing a pool (of any size) never
    /// changes results; the pool only supplies execution lanes and
    /// carries no per-run state.
    #[must_use]
    pub fn worker_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.worker_pool = Some(pool);
        self
    }
}

impl std::fmt::Debug for RunOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunOptions")
            .field("check_consistency", &self.check_consistency)
            .field("probe", &self.probe.is_some())
            .field("worker_pool", &self.worker_pool.is_some())
            .finish()
    }
}

/// Everything a run produces.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The configuration that produced these metrics.
    pub config: SimConfig,
    /// Aggregated measurements.
    pub metrics: Metrics,
}

/// Simulation events.
enum Ev {
    /// Periodic broadcast (every `L` seconds).
    Tick,
    /// Next server update transaction.
    UpdateArrival,
    /// A client's next query is issued.
    QueryArrival(ClientId),
    /// A dozing client wakes up.
    Reconnect(ClientId),
    /// A downlink transmission finished (channel index, facility token).
    DownlinkDone(usize, u64),
    /// An uplink transmission finished (facility token).
    UplinkDone(u64),
    /// A scheduled server crash wipes the volatile server state.
    ServerCrash,
    /// The crashed server finishes rebuilding from its durable log.
    ServerRecover,
    /// The client's cell residency expired: begin a handoff (or defer
    /// it while the client is mid-flight). Multi-cell topologies only.
    Handoff(ClientId),
    /// The client finishes its handoff blackout and re-associates with
    /// the destination cell. Multi-cell topologies only.
    HandoffArrive(ClientId, u32),
}

/// Downlink message payloads.
enum DownPayload {
    /// Broadcast invalidation report, shared with the server's report
    /// cache (never copied per delivery).
    Report(Arc<ReportPayload>),
    /// A data item for one client.
    Data { item: ItemId, dest: ClientId },
    /// A validity verdict for one client.
    Validity {
        dest: ClientId,
        asof: SimTime,
        valid: Vec<ItemId>,
    },
    /// A grouped-checking verdict for one client.
    GroupVerdict {
        dest: ClientId,
        asof: SimTime,
        covered: bool,
        stale: Vec<ItemId>,
    },
}

/// An uplink message in flight: who sent it, what it is, and whether a
/// fault coin already doomed it. A doomed message still charges the
/// sender's radio and occupies the channel — the transmission happens;
/// the receiver just never hears it.
struct UpMsg {
    from: ClientId,
    kind: UplinkKind,
    lost: bool,
}

/// Shard-local scratch for the parallel tick phases. Workers append
/// here and nowhere else; the engine replays the contents serially in
/// client-index order.
#[derive(Default)]
struct ShardScratch {
    /// Actions appended by this shard's clients, in client-index order.
    actions: Vec<ClientAction>,
    /// One record per client that processed the message.
    outcomes: Vec<ShardOutcome>,
    /// Plan-application tallies for this shard's clients; summed into
    /// the engine counters during the serial merge (u64 sums are
    /// order-free, so the totals are thread-invariant).
    plan: PlanStats,
}

/// What one client's parallel report application produced: how many
/// actions it appended to its shard's buffer, plus (when a probe is
/// attached) the counter state captured just before, so the serial
/// merge emits exactly the probe events the serial loop would.
struct ShardOutcome {
    client: usize,
    actions: u32,
    before: Option<(ClientCounters, u64)>,
}

/// Phase-1 worker for the report fan-out: applies one prepared report
/// to a contiguous client index range of the population. Touches
/// nothing but the range's own column cells and the shard's own scratch
/// — no scheduler, channel, RNG or stats access — which is what makes
/// the fan-out embarrassingly parallel and the merged result
/// bit-identical to the serial engine.
///
/// `deliver` is the whole population's delivery mask as bitmap words;
/// the shard walks only its own `[start, end)` range (`start` is
/// word-aligned — see [`fan_out_shards`]), extracting set bits with
/// `trailing_zeros` so a word of 64 dozing or unlucky clients costs one
/// load instead of 64 branches. `plan` is the tick's pre-decoded
/// invalidation plan, shared immutably across shards (lock-free reads).
#[allow(clippy::too_many_arguments)]
fn run_report_shard(
    now: SimTime,
    pop: PopPtr,
    start: usize,
    end: usize,
    deliver: &[u64],
    prepared: &PreparedReport<'_>,
    plan: Option<&PlanCache>,
    probing: bool,
    scratch: &mut ShardScratch,
) {
    debug_assert!(start.is_multiple_of(64), "shard start must be word-aligned");
    for (wi, &word) in deliver
        .iter()
        .enumerate()
        .take(end.div_ceil(64))
        .skip(start / 64)
    {
        let mut w = word;
        if (wi + 1) * 64 > end {
            // Final partial word: bits past `end` belong to the next
            // shard (or past the population) — mask them off.
            w &= (1u64 << (end - wi * 64)) - 1;
        }
        while w != 0 {
            let i = wi * 64 + w.trailing_zeros() as usize;
            w &= w - 1;
            // SAFETY: the fan-out hands each shard a disjoint index
            // range, and no serial-phase arena growth runs while shards
            // are live.
            let mut client = unsafe { pop.client_mut(i) };
            let before = probing.then(|| (client.counters(), client.cache().evictions()));
            let a0 = scratch.actions.len();
            client.on_report_planned(now, prepared, plan, &mut scratch.actions, &mut scratch.plan);
            scratch.outcomes.push(ShardOutcome {
                client: i,
                actions: (scratch.actions.len() - a0) as u32,
                before,
            });
        }
    }
}

/// Phase-1 worker for broadcast snooping: overheard items only touch
/// each client's own cache, so no scratch is needed at all. Same
/// word-wise mask walk as the report shard.
fn run_snoop_shard(
    now: SimTime,
    pop: PopPtr,
    start: usize,
    end: usize,
    deliver: &[u64],
    item: ItemId,
    version: SimTime,
) {
    debug_assert!(start.is_multiple_of(64), "shard start must be word-aligned");
    for (wi, &word) in deliver
        .iter()
        .enumerate()
        .take(end.div_ceil(64))
        .skip(start / 64)
    {
        let mut w = word;
        if (wi + 1) * 64 > end {
            w &= (1u64 << (end - wi * 64)) - 1;
        }
        while w != 0 {
            let i = wi * 64 + w.trailing_zeros() as usize;
            w &= w - 1;
            // SAFETY: disjoint index range per shard (see fan-out).
            let mut client = unsafe { pop.client_mut(i) };
            client.on_snooped_data(now, item, version);
        }
    }
}

/// Splits the client population into contiguous index-range chunks (at
/// most `shards.len()`, thinned by the `min_per_shard` knob) and runs
/// `work` on each through the persistent pool — chunk `i` gets shard
/// scratch `i`, whichever thread claims it. With one effective shard
/// this degenerates to a plain serial call that never touches the pool.
///
/// `work` receives the chunk's `[start, end)` client index range;
/// chunks are rounded up to 64-client multiples so every shard starts
/// on a delivery-bitmap word boundary and the workers can walk whole
/// words without cross-shard overlap. (Chunk geometry is wall-time
/// only — the knob-invariance golden tests pin that digests never
/// depend on it.) Workers reach the columns through a captured
/// [`PopPtr`], staying inside their own index range.
fn fan_out_shards<W>(
    pool: &WorkerPool,
    min_per_shard: usize,
    len: usize,
    shards: &mut [ShardScratch],
    work: W,
) where
    W: Fn(usize, usize, &mut ShardScratch) + Sync,
{
    if len == 0 {
        return;
    }
    let t = shard_count(shards.len(), len, min_per_shard);
    if t == 1 {
        work(0, len, &mut shards[0]);
        return;
    }
    let chunk = len.div_ceil(t).next_multiple_of(64);
    let shards_ptr = SendPtr(shards.as_mut_ptr());
    pool.run(t, &|i| {
        let start = i * chunk;
        if start >= len {
            return;
        }
        let end = (start + chunk).min(len);
        // SAFETY: chunks are disjoint contiguous index ranges, and
        // shard scratch `i` is written by chunk `i` alone; the pool's
        // barrier keeps both alive until every chunk has completed.
        let shard = unsafe { &mut *shards_ptr.get().add(i) };
        work(start, end, shard);
    });
}

/// A fully wired simulation, ready to run.
pub struct Simulation<'p> {
    cfg: SimConfig,
    opts: RunOptions<'p>,
    sp: SizeParams,
    horizon: SimTime,
    sched: Scheduler<Ev>,
    /// One server per cell, indexed by cell id. Every update transaction
    /// is applied to all of them (zero cross-cell skew), so the servers
    /// differ only in the `Tlb`s their own clients registered. The
    /// single-cell topology has exactly one.
    servers: Vec<Server>,
    clients: ClientPop,
    /// Downlink channels, cell-major: cell `c` owns indices
    /// `[c·per_cell, (c+1)·per_cell)`, with `per_cell` = 1 under
    /// [`DownlinkTopology::Shared`] or 2 (broadcast + point-to-point)
    /// under [`DownlinkTopology::Dedicated`]. The single-cell topology
    /// degenerates to the legacy one- or two-channel layout.
    downlinks: Vec<Channel<DownPayload>>,
    /// Downlink channels per cell (see [`Simulation::downlinks`]).
    per_cell_downlinks: usize,
    uplink: Channel<UpMsg>,
    update_gen: UpdateGen,
    query_gen: QueryGen,
    gap_proc: GapProcess,
    rng_update: SimRng,
    rng_clients: Vec<SimRng>,
    /// Per-client fault streams (Gilbert–Elliott transitions, downlink-
    /// and uplink-loss coins), advanced only in the serial phases so
    /// enabling faults never perturbs the workload streams and the coin
    /// schedule is thread-invariant. Untouched while no fault is active.
    rng_faults: Vec<SimRng>,
    /// Per-client Gilbert–Elliott channel state (`true` = in a burst).
    ge_bad: Vec<bool>,
    /// Per-client mobility streams (cell residency, roam choice) —
    /// empty in the single-cell topology, so legacy runs derive no
    /// mobility stream and stay bit-identical.
    rng_mobility: Vec<SimRng>,
    /// Cell-residency distribution; `None` in the single-cell topology
    /// (whose residency knobs are inert and unvalidated).
    residency: Option<Exp>,
    /// Clients whose think-scheduled query arrival landed inside their
    /// own handoff blackout; the query is re-issued at handoff arrival.
    /// Empty in the single-cell topology (a legacy doze always delivers
    /// `Reconnect` before the same-instant `QueryArrival`).
    query_after_handoff: Vec<bool>,
    /// Mobility tallies accumulated during the run.
    mobility: MobilityMetrics,
    /// The downlink fault chain with the legacy `p_report_loss` knob
    /// folded in as an independent loss source.
    eff_downlink: ChannelFaults,
    /// Nesting depth of in-progress server crash windows (0 = up).
    down_depth: u32,
    /// Earliest unacknowledged crash instant — measured (and cleared)
    /// at the first successful post-recovery broadcast.
    crash_pending_since: Option<SimTime>,
    /// Sum of crash → first-post-recovery-broadcast latencies.
    recovery_latency_sum: f64,
    /// Data responses currently queued or in flight on the downlink,
    /// keyed by `(requester, item)`. Retry-armed clients cannot tell a
    /// lost request from queueing delay, so the server ignores a
    /// duplicate request whose answer is already on its way instead of
    /// re-sending a full item. Empty while no fault is active.
    inflight_data: std::collections::HashSet<(ClientId, ItemId)>,
    /// Fault tallies accumulated during the run.
    faults: FaultMetrics,
    latency: OnlineStats,
    latency_hist: Histogram,
    oracle: Option<Oracle>,
    disconnections: u64,
    reports_lost: u64,
    /// Client-radio energy accounting (bits).
    tx_bits: f64,
    rx_bits: f64,
    /// Broadcast periods completed (snapshot stride counter).
    ticks: u64,
    /// Cumulative counters at the last interval snapshot.
    snap_prev: RunTotals,
    /// Simulated second of the last interval snapshot.
    snap_prev_secs: f64,
    /// Next interval snapshot index.
    snap_index: u32,
    /// Reusable client-action buffer, threaded through every message
    /// delivery so the hot paths never allocate an action list.
    action_scratch: Vec<ClientAction>,
    /// Reusable per-client delivery mask for the broadcast phases, as
    /// bitmap words (bit `i` = client `i` hears this transmission).
    deliver_words: Vec<u64>,
    /// Reusable bool expansion of a word mask for the oracle's
    /// `scan_cols`, and the all-true mask of full-population checks.
    deliver_scratch: Vec<bool>,
    /// The per-tick invalidation-plan caches, one per cell: each cell's
    /// report is decoded once into a dense stale bitmap in serial
    /// phase 0, then shared immutably across the fan-out shards (see
    /// `mobicache_reports::plan`).
    plans: Vec<PlanCache>,
    /// Broadcast time of the last report each cell handed to the
    /// fan-out — the dominant `Tlb` bucket for that cell's next plan
    /// decode (every client that heard it holds exactly this `Tlb`).
    prev_report_at: Vec<SimTime>,
    /// Report applications served by the plan bitmap (cumulative).
    plan_hits: u64,
    /// Report applications that fell back to the per-item path.
    plan_misses: u64,
    /// Zero delivery-mask words skipped by the broadcast fan-outs —
    /// 64 clients apiece that cost one word load instead of 64 branches.
    fanout_words_skipped: u64,
    /// One scratch per worker thread (`shards.len()` is the resolved
    /// thread count); reused across ticks so steady state allocates
    /// nothing.
    shards: Vec<ShardScratch>,
    /// Persistent worker pool for the sharded tick phases: spawned once
    /// per simulation (or shared via [`RunOptions::worker_pool`]) and
    /// reused every tick, so no phase ever pays a thread spawn. Joined
    /// on drop.
    pool: Arc<WorkerPool>,
}

/// Builds and runs a simulation in one call.
///
/// # Errors
/// Returns the typed validation error for an inconsistent
/// configuration.
pub fn run(cfg: &SimConfig, opts: RunOptions<'_>) -> Result<RunResult, ConfigError> {
    Ok(Simulation::new(cfg, opts)?.run_to_completion())
}

impl<'p> Simulation<'p> {
    /// Wires up a simulation for `cfg`.
    ///
    /// # Errors
    /// Returns the typed validation error for an inconsistent
    /// configuration.
    pub fn new(cfg: &SimConfig, opts: RunOptions<'p>) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let sp = SizeParams {
            db_size: cfg.db_size as u64,
            group_count: cfg.gcore_groups as u64,
            timestamp_bits: cfg.timestamp_bits,
            header_bits: cfg.header_bits,
            control_bytes: cfg.control_bytes,
            item_bytes: cfg.item_bytes,
        };
        let client_cfg = ClientConfig {
            scheme: cfg.scheme,
            checking_mode: cfg.checking_mode,
            cache_capacity: cfg.cache_capacity_items() as usize,
            broadcast_period_secs: cfg.broadcast_period_secs,
            gcore_groups: cfg.gcore_groups,
            // Retry/backoff only arms under an explicit fault plan; the
            // bare legacy `p_report_loss` knob keeps the historical
            // fixed-grace behaviour (and its golden digests).
            retry: cfg.faults.is_active().then_some(cfg.faults.retry),
        };
        let mut sched = Scheduler::new();
        let mut rng_clients: Vec<SimRng> = (0..cfg.num_clients)
            .map(|c| SimRng::for_stream(cfg.seed, StreamId::Client(c)))
            .collect();

        // First broadcast at t = L; first update per the update process;
        // each client's first query after an initial think period.
        sched.schedule(SimTime::from_secs(cfg.broadcast_period_secs), Ev::Tick);
        let update_gen = UpdateGen::new(
            cfg.workload.update,
            cfg.db_size,
            cfg.mean_update_interarrival_secs,
            cfg.items_per_update_mean,
        );
        let mut rng_update = SimRng::for_stream(cfg.seed, StreamId::Update);
        sched.schedule(
            SimTime::from_secs(update_gen.next_interarrival(&mut rng_update)),
            Ev::UpdateArrival,
        );
        // Scheduled server crashes: the crash lands first, the recovery
        // `recovery_secs` later (FIFO keeps that order when both fall on
        // the same instant). An empty schedule adds no events at all.
        for &at in &cfg.faults.crashes {
            sched.schedule(SimTime::from_secs(at), Ev::ServerCrash);
            sched.schedule(
                SimTime::from_secs(at + cfg.faults.recovery_secs),
                Ev::ServerRecover,
            );
        }
        let threads = match cfg.threads {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n as usize,
        }
        .min(cfg.num_clients as usize)
        .max(1);
        let pool = match &opts.worker_pool {
            Some(pool) => Arc::clone(pool),
            None => Arc::new(WorkerPool::new(threads)),
        };

        // One wake-up per client: every client samples its first think
        // period from its own RNG stream, so the sampling shards across
        // the pool; the per-shard `(time, client)` scratch is replayed
        // serially in client-index order through `schedule_batch`, which
        // hands out the same sequence numbers `num_clients` individual
        // calls would (the FIFO tie-break contract).
        let think = mobicache_sim::Exp::with_mean(cfg.mean_think_secs);
        let n = cfg.num_clients as usize;
        let t = shard_count(threads, n, cfg.pool_min_shard_clients as usize);
        if t <= 1 {
            sched.schedule_batch((0..cfg.num_clients).map(|c| {
                let first = think.sample(&mut rng_clients[c as usize]);
                (SimTime::from_secs(first), Ev::QueryArrival(ClientId(c)))
            }));
        } else {
            let chunk = n.div_ceil(t);
            let mut wake: Vec<Vec<(SimTime, u32)>> = (0..t).map(|_| Vec::new()).collect();
            let wake_ptr = SendPtr(wake.as_mut_ptr());
            let rng_ptr = SendPtr(rng_clients.as_mut_ptr());
            let think_ref = &think;
            pool.run(t, &|i| {
                let start = i * chunk;
                if start >= n {
                    return;
                }
                let end = (start + chunk).min(n);
                // SAFETY: disjoint contiguous RNG ranges; wake slot `i`
                // is written by chunk `i` alone.
                let rngs = unsafe {
                    std::slice::from_raw_parts_mut(rng_ptr.get().add(start), end - start)
                };
                let out = unsafe { &mut *wake_ptr.get().add(i) };
                out.reserve(end - start);
                for (off, rng) in rngs.iter_mut().enumerate() {
                    let first = think_ref.sample(rng);
                    out.push((SimTime::from_secs(first), (start + off) as u32));
                }
            });
            sched.reserve(n);
            for shard in &mut wake {
                sched.schedule_batch(
                    shard
                        .drain(..)
                        .map(|(at, c)| (at, Ev::QueryArrival(ClientId(c)))),
                );
            }
        }

        // Mobility: each client's residency clock starts at t = 0 and
        // runs on its own dedicated stream, so enabling more cells (or
        // more clients) never perturbs the workload or fault streams.
        // Single-cell topologies derive no stream and schedule nothing.
        let cells = cfg.cells.cells as usize;
        let mut rng_mobility: Vec<SimRng> = if cfg.cells.is_multi() {
            (0..cfg.num_clients)
                .map(|c| SimRng::for_stream(cfg.seed, StreamId::Mobility(c)))
                .collect()
        } else {
            Vec::new()
        };
        let residency = cfg
            .cells
            .is_multi()
            .then(|| Exp::with_mean(cfg.cells.mean_residency_secs));
        if let Some(res) = &residency {
            sched.schedule_batch((0..cfg.num_clients).map(|c| {
                let first = res.sample(&mut rng_mobility[c as usize]);
                (SimTime::from_secs(first), Ev::Handoff(ClientId(c)))
            }));
        }

        // Cell-major downlink layout: each cell broadcasts on its own
        // channel(s); one cell reproduces the legacy layout exactly.
        let mut downlinks = Vec::with_capacity(cells * 2);
        for _ in 0..cells {
            match cfg.downlink_topology {
                DownlinkTopology::Shared => downlinks.push(Channel::new(cfg.downlink_bps)),
                DownlinkTopology::Dedicated { broadcast_share } => {
                    downlinks.push(Channel::new(cfg.downlink_bps * broadcast_share));
                    downlinks.push(Channel::new(cfg.downlink_bps * (1.0 - broadcast_share)));
                }
            }
        }
        let per_cell_downlinks = downlinks.len() / cells;

        let servers: Vec<Server> = (0..cells)
            .map(|_| {
                let mut server = Server::new(cfg.scheme, cfg.db_size, cfg.window_secs(), sp);
                server.configure_gcore(
                    cfg.gcore_groups,
                    cfg.gcore_retention_intervals as f64 * cfg.broadcast_period_secs,
                );
                server
            })
            .collect();

        Ok(Simulation {
            sp,
            horizon: SimTime::from_secs(cfg.sim_time_secs),
            servers,
            clients: ClientPop::with_cells(client_cfg, cfg.num_clients as usize, cfg.cells.cells),
            downlinks,
            per_cell_downlinks,
            uplink: Channel::new(cfg.uplink_bps),
            update_gen,
            query_gen: QueryGen::new(cfg.workload.query, cfg.db_size, cfg.items_per_query_mean),
            gap_proc: GapProcess::new(
                cfg.p_disconnect,
                cfg.mean_think_secs,
                cfg.mean_disconnect_secs,
            ),
            rng_update,
            rng_clients,
            rng_faults: (0..cfg.num_clients)
                .map(|c| SimRng::for_stream(cfg.seed, StreamId::Fault(c)))
                .collect(),
            ge_bad: vec![false; cfg.num_clients as usize],
            rng_mobility,
            residency,
            query_after_handoff: vec![
                false;
                if cfg.cells.is_multi() {
                    cfg.num_clients as usize
                } else {
                    0
                }
            ],
            mobility: MobilityMetrics::default(),
            eff_downlink: cfg.faults.downlink.with_independent_loss(cfg.p_report_loss),
            down_depth: 0,
            crash_pending_since: None,
            recovery_latency_sum: 0.0,
            inflight_data: std::collections::HashSet::new(),
            faults: FaultMetrics::default(),
            latency: OnlineStats::new(),
            latency_hist: Histogram::new(0.0, 2_000.0, 200),
            oracle: opts.check_consistency.then(Oracle::new),
            disconnections: 0,
            reports_lost: 0,
            tx_bits: 0.0,
            rx_bits: 0.0,
            ticks: 0,
            snap_prev: RunTotals::default(),
            snap_prev_secs: 0.0,
            snap_index: 0,
            action_scratch: Vec::new(),
            deliver_words: Vec::new(),
            deliver_scratch: Vec::new(),
            plans: (0..cells).map(|_| PlanCache::new()).collect(),
            prev_report_at: vec![SimTime::ZERO; cells],
            plan_hits: 0,
            plan_misses: 0,
            fanout_words_skipped: 0,
            shards: (0..threads).map(|_| ShardScratch::default()).collect(),
            pool,
            sched,
            cfg: cfg.clone(),
            opts,
        })
    }

    /// The downlink channel a message of `class` travels on within
    /// `cell`'s channel group.
    fn downlink_index(&self, cell: usize, class: usize) -> usize {
        let base = cell * self.per_cell_downlinks;
        if self.per_cell_downlinks == 1 || class == CLASS_REPORT {
            base
        } else {
            base + 1
        }
    }

    /// The cell that owns downlink channel `idx`.
    fn cell_of_downlink(&self, idx: usize) -> usize {
        idx / self.per_cell_downlinks
    }

    fn send_downlink(
        &mut self,
        now: SimTime,
        kind_bits: f64,
        class: usize,
        cell: usize,
        payload: DownPayload,
    ) {
        let idx = self.downlink_index(cell, class);
        if let Some(c) = self.downlinks[idx].send(now, kind_bits, class, payload) {
            self.sched.schedule(c.at, Ev::DownlinkDone(idx, c.token));
        }
    }

    /// The cell `client` is currently associated with (where its uplink
    /// traffic lands and its downlink responses originate).
    fn cell_of(&self, client: ClientId) -> usize {
        self.clients.cell_of(client.index()) as usize
    }

    /// Runs the event loop to the horizon and collects metrics.
    pub fn run_to_completion(mut self) -> RunResult {
        while let Some((now, ev)) = self.sched.pop() {
            if now > self.horizon {
                break;
            }
            match ev {
                Ev::Tick => self.on_tick(now),
                Ev::UpdateArrival => self.on_update(now),
                Ev::QueryArrival(c) => self.on_query_arrival(now, c),
                Ev::Reconnect(c) => {
                    let offline_secs = self.clients.reconnect(c.index(), now);
                    self.emit(
                        now,
                        ProbeEvent::Reconnect {
                            client: c,
                            offline_secs,
                        },
                    );
                }
                Ev::DownlinkDone(idx, token) => self.on_downlink_done(now, idx, token),
                Ev::UplinkDone(token) => self.on_uplink_done(now, token),
                Ev::ServerCrash => self.on_server_crash(now),
                Ev::ServerRecover => self.on_server_recover(now),
                Ev::Handoff(c) => self.on_handoff(now, c),
                Ev::HandoffArrive(c, dest) => self.on_handoff_arrive(now, c, dest),
            }
        }
        self.finish()
    }

    fn on_tick(&mut self, now: SimTime) {
        // A crashed server skips the broadcast — the clock keeps ticking
        // (and the snapshot stride with it); clients experience the
        // silent interval exactly like a lost report and fall back on
        // their gap/retry machinery.
        if self.down_depth == 0 {
            // Every cell's server broadcasts its own report on its own
            // downlink, in cell order (one cell = the legacy sequence).
            for cell in 0..self.servers.len() {
                let (report, decision) = self.servers[cell].build_report_shared(now);
                let kind = DownlinkKind::InvalidationReport {
                    content_bits: report.size_bits(&self.sp),
                };
                let bits = kind.size_bits(&self.sp);
                if self.opts.probe.is_some() {
                    let report_kind = ReportKind::of(&report);
                    let window_start_secs = match &*report {
                        ReportPayload::Window(w) => Some(w.window_start.as_secs()),
                        _ => None,
                    };
                    self.emit(
                        now,
                        ProbeEvent::ReportBroadcast {
                            kind: report_kind,
                            bits,
                            window_start_secs,
                        },
                    );
                    if let Some(d) = decision {
                        self.emit(now, ProbeEvent::AdaptiveDecision(d));
                    }
                }
                self.send_downlink(now, bits, kind.class(), cell, DownPayload::Report(report));
            }
            if let Some(since) = self.crash_pending_since.take() {
                // Recovery completes, from the clients' point of view,
                // with the first report built after the server came back.
                let offline_secs = now - since;
                self.faults.recoveries += 1;
                self.recovery_latency_sum += offline_secs;
                self.emit(now, ProbeEvent::ServerRecovered { offline_secs });
            }
        }
        self.sched
            .schedule_in(self.cfg.broadcast_period_secs, Ev::Tick);
        self.ticks += 1;
        let stride = self.opts.probe.as_ref().and_then(|p| p.snapshot_every());
        if let Some(k) = stride {
            if self.ticks.is_multiple_of(u64::from(k.max(1))) {
                self.take_snapshot(now.as_secs());
            }
        }
    }

    /// A scheduled crash wipes the server's volatile state (pending
    /// `Tlb`s, cached report payloads, shared signature state); the
    /// durable update log survives. Overlapping crash windows nest.
    fn on_server_crash(&mut self, now: SimTime) {
        // Crashes are global: the paper's single base station is the
        // whole fixed network here, so every cell's server goes down
        // together (and the tick loop stays silent while any is down).
        let dropped = self.servers.iter_mut().map(Server::crash).sum::<u64>();
        self.down_depth += 1;
        self.faults.server_crashes += 1;
        self.faults.crash_dropped_tlbs += dropped;
        if self.crash_pending_since.is_none() {
            self.crash_pending_since = Some(now);
        }
        self.emit(
            now,
            ProbeEvent::ServerCrash {
                dropped_tlbs: dropped,
            },
        );
        // Nothing a crash does may ever invalidate a client cache entry
        // the oracle would object to — prove it at the boundary.
        self.check_all_consistency();
    }

    /// The crashed server finishes replaying its durable update log and
    /// comes back online (broadcasts resume at the next tick).
    fn on_server_recover(&mut self, _now: SimTime) {
        self.down_depth = self.down_depth.saturating_sub(1);
        if self.down_depth == 0 {
            for server in &mut self.servers {
                server.recover();
            }
        }
        self.check_all_consistency();
    }

    /// Full-population oracle scan (crash/recovery boundaries).
    fn check_all_consistency(&mut self) {
        if self.oracle.is_none() {
            return;
        }
        let mut all = std::mem::take(&mut self.deliver_scratch);
        all.clear();
        all.resize(self.clients.len(), true);
        self.check_consistency_masked(&all);
        self.deliver_scratch = all;
    }

    /// Forwards a typed event to the attached probe, if any.
    fn emit(&mut self, now: SimTime, event: ProbeEvent) {
        if let Some(p) = self.opts.probe.as_mut() {
            p.on_event(now, &event);
        }
    }

    /// Sums the per-cell server counters into one population-wide view.
    /// With one cell this is `ServerCounters::default().absorb(s)`, i.e.
    /// exactly the legacy single-server counters.
    fn server_counters(&self) -> ServerCounters {
        let mut sc = ServerCounters::default();
        for server in &self.servers {
            sc.absorb(&server.counters());
        }
        sc
    }

    /// Current cumulative counters (the snapshot basis — the same sums
    /// [`Simulation::finish`] folds into [`Metrics`]).
    fn current_totals(&self) -> RunTotals {
        let sc = self.server_counters();
        let mut t = RunTotals {
            reports_broadcast: sc.window_reports
                + sc.enlarged_reports
                + sc.bs_reports
                + sc.at_reports
                + sc.sig_reports,
            tlbs_received: sc.tlbs_received,
            checks_processed: sc.checks_processed,
            disconnections: self.disconnections,
            reports_lost: self.reports_lost,
            uplink_losses: self.faults.uplink_losses,
            server_crashes: self.faults.server_crashes,
            handoffs: self.mobility.handoffs,
            client_tx_bits: self.tx_bits,
            client_rx_bits: self.rx_bits,
            events_scheduled: self.sched.events_scheduled(),
            events_delivered: self.sched.events_delivered(),
            ..RunTotals::default()
        };
        // Dense column scan: two contiguous slices, no per-client view
        // construction and no cloning — cheap enough to sample every
        // interval at a million clients.
        for (c, cache) in self
            .clients
            .counters_col()
            .iter()
            .zip(self.clients.caches_col())
        {
            t.queries_issued += c.queries_issued;
            t.queries_answered += c.queries_answered;
            t.item_hits += c.item_hits;
            t.item_misses += c.item_misses;
            t.fault_retries += c.retries_sent;
            t.cache_evictions += cache.evictions();
        }
        t
    }

    /// Closes the current snapshot interval at `end_secs` and hands the
    /// delta to the probe.
    fn take_snapshot(&mut self, end_secs: f64) {
        let totals = self.current_totals();
        let snap = IntervalSnapshot {
            index: self.snap_index,
            start_secs: self.snap_prev_secs,
            end_secs,
            delta: totals.delta_since(&self.snap_prev),
            queue_high_water: self.sched.queue_high_water(),
            slot_high_water: self.sched.slot_high_water(),
            sched_cascades: self.sched.cascades(),
            plan_decodes: self.plans.iter().map(PlanCache::decodes).sum(),
            plan_hits: self.plan_hits,
            plan_misses: self.plan_misses,
            fanout_words_skipped: self.fanout_words_skipped,
        };
        if let Some(p) = self.opts.probe.as_mut() {
            p.on_snapshot(&snap);
        }
        self.snap_prev = totals;
        self.snap_prev_secs = end_secs;
        self.snap_index += 1;
    }

    fn on_update(&mut self, now: SimTime) {
        let items = self.update_gen.next_txn_items(&mut self.rng_update);
        // Zero cross-cell update skew: one transaction stream, applied
        // to every cell's server at the same instant — so a handoff is
        // observationally a disconnection of the same duration (the
        // cross-cell equivalence battery pins exactly this).
        for server in &mut self.servers {
            server.apply_txn(now, &items);
        }
        if let Some(oracle) = &mut self.oracle {
            for &item in &items {
                oracle.record_update(now, item);
            }
        }
        let next = self.update_gen.next_interarrival(&mut self.rng_update);
        self.sched.schedule_in(next, Ev::UpdateArrival);
    }

    fn on_query_arrival(&mut self, now: SimTime, c: ClientId) {
        if !self.clients.is_connected(c.index()) {
            // Only a handoff blackout can strand a think-scheduled
            // arrival on a disconnected client (a legacy doze delivers
            // `Reconnect` before the same-instant `QueryArrival`); park
            // it and re-issue when the client reaches its new cell.
            self.query_after_handoff[c.index()] = true;
            return;
        }
        let items = self
            .query_gen
            .next_query_items(&mut self.rng_clients[c.index()]);
        self.clients.start_query(c.index(), now, &items);
        // The query waits for the next broadcast report (§2).
    }

    /// A client's cell residency expired. If the client is mid-flight —
    /// resolving a query, dozing, or holding an unresolved reconnection
    /// gap — the handoff is deferred by a fresh residency period so no
    /// in-flight traffic or salvage state crosses a cell boundary.
    /// Otherwise the roam coin picks a destination (possibly the same
    /// cell: a stay is a zero-distance handoff), the radio goes dark for
    /// the handoff blackout, and arrival is scheduled. Both arms of the
    /// coin draw and disconnect identically, which is what lets the
    /// equivalence battery compare `p_roam = 1` against `p_roam = 0`
    /// runs bit-for-bit.
    fn on_handoff(&mut self, now: SimTime, c: ClientId) {
        let i = c.index();
        if self.clients.has_pending_query(i)
            || !self.clients.is_connected(i)
            || self.clients.has_open_gap(i)
        {
            self.mobility.handoffs_deferred += 1;
            let res = self.residency.as_ref().expect("mobility event armed");
            let next = res.sample(&mut self.rng_mobility[i]);
            self.sched.schedule_in(next, Ev::Handoff(c));
            return;
        }
        let topo = self.cfg.cells;
        let rng = &mut self.rng_mobility[i];
        let roam = rng.coin(topo.p_roam);
        let from_cell = self.clients.cell_of(i);
        let dest = if !roam {
            from_cell
        } else if topo.cells == 2 {
            1 - from_cell
        } else {
            // Uniform over the other cells: draw in [0, cells-1) and
            // skip past the current cell.
            let r = rng.next_below(u64::from(topo.cells) - 1) as u32;
            if r >= from_cell {
                r + 1
            } else {
                r
            }
        };
        let next_residency = self
            .residency
            .as_ref()
            .expect("mobility event armed")
            .sample(&mut self.rng_mobility[i]);
        self.clients.disconnect(i, now);
        self.sched
            .schedule_in(topo.handoff_secs, Ev::HandoffArrive(c, dest));
        // The next residency clock starts at arrival.
        self.sched
            .schedule_in(topo.handoff_secs + next_residency, Ev::Handoff(c));
    }

    /// The handoff blackout ended: re-associate with the destination
    /// cell and reconnect. A roamer's `Tlb` now refers to another cell's
    /// broadcast history; under zero cross-cell skew the destination
    /// server's reports vouch for the same updates, so the regular
    /// reconnection-gap machinery (window coverage, `Tlb` uplinks, the
    /// AFW/AAW long-disconnection recovery) takes it from here exactly
    /// as if the client had dozed in place.
    fn on_handoff_arrive(&mut self, now: SimTime, c: ClientId, dest: u32) {
        let i = c.index();
        let from_cell = self.clients.cell_of(i);
        self.clients.handoff(i, dest);
        let offline_secs = self.clients.reconnect(i, now);
        self.mobility.handoffs += 1;
        self.emit(
            now,
            ProbeEvent::Handoff {
                client: c,
                from_cell,
                to_cell: dest,
                offline_secs,
            },
        );
        if std::mem::take(&mut self.query_after_handoff[i]) {
            // The think period expired mid-blackout: the parked query
            // is issued now, at the new cell.
            self.on_query_arrival(now, c);
        }
    }

    fn on_downlink_done(&mut self, now: SimTime, idx: usize, token: u64) {
        let Some(delivered) = self.downlinks[idx].complete(now, token) else {
            return; // stale completion (preempted transmission)
        };
        if let Some(c) = delivered.next {
            self.sched.schedule(c.at, Ev::DownlinkDone(idx, c.token));
        }
        match delivered.msg {
            DownPayload::Report(report) => {
                // The broadcasting cell is encoded by the channel index
                // (downlinks are laid out cell-major), so the payload
                // needs no cell tag.
                let cell = self.cell_of_downlink(idx);
                // Index the report once; every client of the fan-out
                // shares it (the tentpole of the report pipeline). The
                // BS index — the one kind whose build is O(N) in the
                // database — is built through the pool, sharded over
                // the recency list.
                let prepared = match &*report {
                    ReportPayload::BitSeq(bs) => PreparedReport::with_bs_index(
                        &report,
                        BsIndex::build_sharded(
                            bs,
                            &self.pool,
                            self.shards.len(),
                            self.cfg.pool_min_shard_items as usize,
                        ),
                    ),
                    _ => report.prepare(),
                };
                // Phase 0 (serial): decide who hears this broadcast,
                // building the delivery mask as bitmap words. Fault
                // coins and the rx-bits accumulation stay in
                // client-index order on dedicated per-client streams, so
                // the coin schedule and the float addition order match
                // the serial engine bit for bit at any thread count.
                let mut deliver = std::mem::take(&mut self.deliver_words);
                deliver.clear();
                deliver.resize(self.clients.len().div_ceil(64), 0);
                if !self.eff_downlink.is_active() {
                    // Every connected member of the broadcasting cell
                    // hears it: the mask is the word-wise intersection
                    // of the connected bitmap and the cell-membership
                    // bitmap (all-ones at one cell, so this is exactly
                    // the legacy connected copy). rx-bits accumulates
                    // the same constant once per set bit — the identical
                    // sequence of additions the per-client loop
                    // performed.
                    for ((d, &cw), &mw) in deliver
                        .iter_mut()
                        .zip(self.clients.connected_words())
                        .zip(self.clients.cell_words(cell as u32))
                    {
                        *d = cw & mw;
                    }
                    for &w in &deliver {
                        for _ in 0..w.count_ones() {
                            self.rx_bits += delivered.bits;
                        }
                    }
                } else {
                    let df = self.eff_downlink;
                    let p_exit = df.p_exit_burst();
                    for i in 0..self.clients.len() {
                        if self.clients.cell_of(i) != cell as u32 {
                            // Another cell's broadcast: this client's
                            // radio path is not involved at all. Its
                            // chain evolves once per tick on its OWN
                            // cell's broadcast, so the per-client draw
                            // schedule stays aligned with that cell's
                            // broadcast clock (and is untouched at one
                            // cell, where this arm never fires).
                            continue;
                        }
                        // The Gilbert–Elliott chain evolves for every
                        // member of the cell, listening or not —
                        // burstiness is a property of the radio path,
                        // and a draw schedule independent of
                        // connectivity keeps each client's stream
                        // aligned with the broadcast clock.
                        let bad = if self.ge_bad[i] {
                            !self.rng_faults[i].coin(p_exit)
                        } else {
                            df.p_enter_burst > 0.0 && self.rng_faults[i].coin(df.p_enter_burst)
                        };
                        self.ge_bad[i] = bad;
                        if !self.clients.is_connected(i) {
                            continue; // dozing clients miss the broadcast
                        }
                        let p = if bad { df.p_loss_bad } else { df.p_loss_good };
                        if p > 0.0 && self.rng_faults[i].coin(p) {
                            self.reports_lost += 1;
                            if bad {
                                self.faults.downlink_losses_burst += 1;
                            } else {
                                self.faults.downlink_losses_good += 1;
                            }
                            if self.clients.has_pending_query(i) {
                                // The query must now wait at least one
                                // more interval for a report.
                                self.faults.queries_stretched += 1;
                            }
                            self.emit(
                                now,
                                ProbeEvent::ReportLost {
                                    client: ClientId(i as u32),
                                    in_burst: bad,
                                },
                            );
                            continue;
                        }
                        self.rx_bits += delivered.bits;
                        deliver[i / 64] |= 1u64 << (i % 64);
                    }
                }
                self.fanout_words_skipped += deliver.iter().filter(|&&w| w == 0).count() as u64;
                // Decode this tick's invalidation plan once (serial),
                // keyed by the dominant Tlb bucket: every client that
                // heard the previous report holds exactly its broadcast
                // time. Shards then read the plan lock-free.
                let mut plan = std::mem::take(&mut self.plans[cell]);
                plan.decode_for_tick(&report, self.prev_report_at[cell], self.cfg.db_size);
                // Phase 1 (parallel): each shard applies the report to
                // its contiguous client range, touching only its own
                // clients and scratch.
                let probing = self.opts.probe.is_some();
                let mut shards = std::mem::take(&mut self.shards);
                for sh in &mut shards {
                    sh.actions.clear();
                    sh.outcomes.clear();
                    sh.plan = PlanStats::default();
                }
                let pop = self.clients.as_ptr();
                {
                    let plan_ref = &plan;
                    let deliver_ref = &deliver;
                    fan_out_shards(
                        &self.pool,
                        self.cfg.pool_min_shard_clients as usize,
                        self.clients.len(),
                        &mut shards,
                        |start, end, sh| {
                            run_report_shard(
                                now,
                                pop,
                                start,
                                end,
                                deliver_ref,
                                &prepared,
                                Some(plan_ref),
                                probing,
                                sh,
                            );
                        },
                    );
                }
                self.plans[cell] = plan;
                self.prev_report_at[cell] = report.broadcast_at();
                // Phase 2 (serial merge, client-index order): replay
                // each client's actions and observations exactly as the
                // serial loop interleaved them — the scheduler, the
                // channels, the stats and the per-client RNG streams
                // are only touched here.
                for shard in &mut shards {
                    self.plan_hits += shard.plan.hits;
                    self.plan_misses += shard.plan.misses;
                    let ShardScratch {
                        actions, outcomes, ..
                    } = shard;
                    let mut acts = actions.drain(..);
                    for o in outcomes.drain(..) {
                        let c = ClientId(o.client as u32);
                        for _ in 0..o.actions {
                            let action = acts.next().expect("shard recorded action count");
                            self.apply_action(now, c, action);
                        }
                        self.post_observe(now, c, o.before);
                    }
                }
                self.shards = shards;
                // Oracle pass after the merge (actions never touch a
                // cache, so checking here sees exactly the state the
                // per-client serial check saw), sharded over the pool.
                self.check_consistency_sharded(&deliver);
                self.deliver_words = deliver;
            }
            DownPayload::Data { item, dest } => {
                // The response left the downlink: a later re-request for
                // this item is a fresh request, not a duplicate.
                self.inflight_data.remove(&(dest, item));
                // Delivered copies reflect the version current at delivery
                // (see DESIGN.md §3: this removes the report/fetch race a
                // bit-level model would have to resolve with torn reads).
                // The serving cell is the channel's cell; under zero
                // cross-cell skew every server holds the same version.
                let version = self.servers[self.cell_of_downlink(idx)].version(item);
                self.rx_bits += delivered.bits;
                let before = self.pre_observe(dest.index());
                let mut actions = std::mem::take(&mut self.action_scratch);
                self.clients.client_mut(dest.index()).on_data_into(
                    now,
                    item,
                    version,
                    &mut actions,
                );
                self.process_actions(now, dest, &mut actions);
                self.action_scratch = actions;
                self.post_observe(now, dest, before);
                self.check_consistency(dest.index());
                // Snooping extension: the downlink is a broadcast medium,
                // so every other connected client overhears the item.
                // Same three-phase split as the report fan-out, minus
                // the merge: snooped items produce no actions.
                if self.cfg.snoop_broadcasts {
                    // Connected members of the serving cell minus the
                    // addressed client (a downlink only covers its own
                    // cell); the rx-bits additions are the same sequence
                    // the per-client loop performed (one constant per
                    // set bit, ascending index).
                    let cell = self.cell_of_downlink(idx);
                    let mut deliver = std::mem::take(&mut self.deliver_words);
                    deliver.clear();
                    deliver.extend_from_slice(self.clients.connected_words());
                    for (d, &mw) in deliver.iter_mut().zip(self.clients.cell_words(cell as u32)) {
                        *d &= mw;
                    }
                    let d = dest.index();
                    deliver[d / 64] &= !(1u64 << (d % 64));
                    for &w in &deliver {
                        for _ in 0..w.count_ones() {
                            self.rx_bits += delivered.bits;
                        }
                    }
                    self.fanout_words_skipped += deliver.iter().filter(|&&w| w == 0).count() as u64;
                    let mut shards = std::mem::take(&mut self.shards);
                    let pop = self.clients.as_ptr();
                    let deliver_ref = &deliver;
                    fan_out_shards(
                        &self.pool,
                        self.cfg.pool_min_shard_clients as usize,
                        self.clients.len(),
                        &mut shards,
                        |start, end, _| {
                            run_snoop_shard(now, pop, start, end, deliver_ref, item, version);
                        },
                    );
                    self.shards = shards;
                    self.check_consistency_sharded(&deliver);
                    self.deliver_words = deliver;
                }
            }
            DownPayload::Validity { dest, asof, valid } => {
                if !self.clients.is_connected(dest.index()) {
                    return; // verdict lost; the client will re-check
                }
                self.rx_bits += delivered.bits;
                let before = self.pre_observe(dest.index());
                let mut actions = std::mem::take(&mut self.action_scratch);
                self.clients.client_mut(dest.index()).on_validity_into(
                    now,
                    asof,
                    &valid,
                    &mut actions,
                );
                self.process_actions(now, dest, &mut actions);
                self.action_scratch = actions;
                self.post_observe(now, dest, before);
                self.check_consistency(dest.index());
            }
            DownPayload::GroupVerdict {
                dest,
                asof,
                covered,
                stale,
            } => {
                if !self.clients.is_connected(dest.index()) {
                    return; // verdict lost; the client will re-check
                }
                self.rx_bits += delivered.bits;
                let before = self.pre_observe(dest.index());
                let mut actions = std::mem::take(&mut self.action_scratch);
                self.clients
                    .client_mut(dest.index())
                    .on_group_validity_into(now, asof, covered, &stale, &mut actions);
                self.process_actions(now, dest, &mut actions);
                self.action_scratch = actions;
                self.post_observe(now, dest, before);
                self.check_consistency(dest.index());
            }
        }
    }

    fn on_uplink_done(&mut self, now: SimTime, token: u64) {
        let Some(delivered) = self.uplink.complete(now, token) else {
            return;
        };
        if let Some(c) = delivered.next {
            self.sched.schedule(c.at, Ev::UplinkDone(c.token));
        }
        let UpMsg { from, kind, lost } = delivered.msg;
        if lost {
            return; // the fault coin fell at send time; tallied there
        }
        if self.down_depth > 0 {
            // The request reaches a crashed server: dead air. The
            // client's retry machinery (or graceful degradation) takes
            // it from here.
            self.faults.crash_dropped_uplinks += 1;
            return;
        }
        // Uplink traffic is routed at delivery to the sender's CURRENT
        // cell: that server answers, on that cell's downlink group. (A
        // client with in-flight traffic defers its handoff, so the cell
        // cannot change between send and delivery.)
        let cell = self.cell_of(from);
        match kind {
            UplinkKind::QueryRequest { item } => {
                // Retry-armed clients cannot distinguish a lost request
                // from downlink queueing delay, so duplicates of a
                // request whose answer is already queued are expected;
                // answering each would flood the saturated downlink
                // with repeated full items. The set stays empty (and
                // this path untouched) while no fault is active.
                if self.cfg.faults.is_active() && !self.inflight_data.insert((from, item)) {
                    self.faults.duplicate_requests_ignored += 1;
                    return;
                }
                let dk = DownlinkKind::DataItem { item };
                let bits = dk.size_bits(&self.sp);
                self.send_downlink(
                    now,
                    bits,
                    dk.class(),
                    cell,
                    DownPayload::Data { item, dest: from },
                );
            }
            UplinkKind::TlbReport { tlb_secs } => {
                self.servers[cell].receive_tlb(SimTime::from_secs(tlb_secs));
            }
            UplinkKind::CheckRequest { entries } => {
                let typed: Vec<(ItemId, SimTime)> = entries
                    .iter()
                    .map(|&(item, secs)| (item, SimTime::from_secs(secs)))
                    .collect();
                let verdict = self.servers[cell].process_check(now, &typed);
                let dk = DownlinkKind::ValidityReport {
                    checked: verdict.checked,
                    valid: verdict.valid.clone(),
                    asof_secs: verdict.asof.as_secs(),
                };
                let bits = dk.size_bits(&self.sp);
                self.send_downlink(
                    now,
                    bits,
                    dk.class(),
                    cell,
                    DownPayload::Validity {
                        dest: from,
                        asof: verdict.asof,
                        valid: verdict.valid,
                    },
                );
            }
            UplinkKind::GroupCheckRequest { groups } => {
                let typed: Vec<(u32, SimTime)> = groups
                    .iter()
                    .map(|&(g, secs)| (g, SimTime::from_secs(secs)))
                    .collect();
                let verdict = self.servers[cell].process_group_check(now, &typed);
                let dk = DownlinkKind::GroupValidity {
                    stale: verdict.stale.clone(),
                    covered: verdict.covered,
                    asof_secs: verdict.asof.as_secs(),
                };
                let bits = dk.size_bits(&self.sp);
                self.send_downlink(
                    now,
                    bits,
                    dk.class(),
                    cell,
                    DownPayload::GroupVerdict {
                        dest: from,
                        asof: verdict.asof,
                        covered: verdict.covered,
                        stale: verdict.stale,
                    },
                );
            }
        }
    }

    /// Applies (and drains) a client's pending actions; `actions` is
    /// always left empty, ready for the next delivery.
    fn process_actions(&mut self, now: SimTime, c: ClientId, actions: &mut Vec<ClientAction>) {
        for action in actions.drain(..) {
            self.apply_action(now, c, action);
        }
    }

    /// Applies one client action to the shared simulation state. Every
    /// scheduler, channel, stats and RNG touch a client triggers funnels
    /// through here, in client-index order — the serial half of the
    /// sharded fan-out's determinism argument.
    fn apply_action(&mut self, now: SimTime, c: ClientId, action: ClientAction) {
        match action {
            ClientAction::Uplink(kind) => {
                let bits = kind.size_bits(&self.sp);
                let class = kind.class();
                self.tx_bits += bits;
                // Uplink-fault coin, drawn from the sender's dedicated
                // stream — `apply_action` only ever runs in the serial
                // phases, so the schedule is thread-invariant. A lost
                // message still charges the radio and the channel.
                let p = self.cfg.faults.p_uplink_loss;
                let lost = p > 0.0 && self.rng_faults[c.index()].coin(p);
                if lost {
                    self.faults.uplink_losses += 1;
                    self.emit(now, ProbeEvent::UplinkLost { client: c });
                }
                let completion = self.uplink.send(
                    now,
                    bits,
                    class,
                    UpMsg {
                        from: c,
                        kind,
                        lost,
                    },
                );
                if let Some(comp) = completion {
                    self.sched.schedule(comp.at, Ev::UplinkDone(comp.token));
                }
            }
            ClientAction::QueryDone(outcome) => {
                let latency = outcome.completed_at - outcome.issued_at;
                self.latency.record(latency);
                self.latency_hist.record(latency);
                self.emit(
                    now,
                    ProbeEvent::QueryResolved {
                        client: c,
                        latency_secs: latency,
                        hits: outcome.hits,
                        misses: outcome.misses,
                    },
                );
                // §4: the gap after a completion is a think period or,
                // with probability p, a disconnection.
                let gap = self.gap_proc.sample(&mut self.rng_clients[c.index()]);
                match gap.kind {
                    GapKind::Think => {
                        self.sched
                            .schedule_in(gap.duration_secs, Ev::QueryArrival(c));
                    }
                    GapKind::Disconnect => {
                        self.disconnections += 1;
                        self.clients.disconnect(c.index(), now);
                        self.emit(
                            now,
                            ProbeEvent::Disconnect {
                                client: c,
                                for_secs: gap.duration_secs,
                            },
                        );
                        // Reconnect is scheduled before the query at
                        // the same instant; FIFO tie-breaking delivers
                        // it first.
                        self.sched.schedule_in(gap.duration_secs, Ev::Reconnect(c));
                        self.sched
                            .schedule_in(gap.duration_secs, Ev::QueryArrival(c));
                    }
                }
            }
        }
    }

    /// Counter state captured before a client processes a message, so
    /// limbo salvage and cache-population changes surface as probe
    /// events without threading observers through the client crate.
    /// `None` (no probe attached) makes the pre/post pair free.
    fn pre_observe(&self, idx: usize) -> Option<(ClientCounters, u64)> {
        self.opts.probe.as_ref()?;
        Some((
            self.clients.counters(idx),
            self.clients.cache(idx).evictions(),
        ))
    }

    /// Emits events for whatever the paired [`Simulation::pre_observe`]
    /// saw change.
    fn post_observe(&mut self, now: SimTime, c: ClientId, before: Option<(ClientCounters, u64)>) {
        let Some((before, ev_before)) = before else {
            return;
        };
        let after = self.clients.counters(c.index());
        let ev_after = self.clients.cache(c.index()).evictions();
        let salvaged = after.salvaged - before.salvaged;
        let dropped = after.limbo_dropped - before.limbo_dropped;
        if salvaged + dropped > 0 {
            self.emit(
                now,
                ProbeEvent::LimboSalvage {
                    client: c,
                    salvaged,
                    dropped,
                },
            );
        }
        if after.full_drops > before.full_drops {
            self.emit(
                now,
                ProbeEvent::CacheEvent {
                    client: c,
                    kind: CacheEventKind::FullDrop,
                },
            );
        }
        if ev_after > ev_before {
            self.emit(
                now,
                ProbeEvent::CacheEvent {
                    client: c,
                    kind: CacheEventKind::Evictions {
                        count: ev_after - ev_before,
                    },
                },
            );
        }
    }

    fn check_consistency(&mut self, idx: usize) {
        if let Some(oracle) = &mut self.oracle {
            oracle.assert_cache_consistent(ClientId(idx as u32), self.clients.cache(idx));
        }
    }

    /// Oracle pass over every client marked in `deliver` — the
    /// read-only full-cache scans of a broadcast tick, sharded over the
    /// pool. Violations come back in client-index order (whatever the
    /// shard geometry), so the first one re-raised here is the same
    /// panic, with the same message, the per-client serial check
    /// produced.
    fn check_consistency_sharded(&mut self, deliver_words: &[u64]) {
        if self.oracle.is_none() {
            return;
        }
        // Expand the word mask into the oracle's bool view (the scan
        // itself branches per client anyway — a full cache walk apiece —
        // so the expansion is noise there).
        let mut mask = std::mem::take(&mut self.deliver_scratch);
        mask.clear();
        mask.resize(self.clients.len(), false);
        for (i, b) in mask.iter_mut().enumerate() {
            *b = deliver_words[i / 64] & (1u64 << (i % 64)) != 0;
        }
        self.check_consistency_masked(&mask);
        self.deliver_scratch = mask;
    }

    /// The bool-mask core of the sharded oracle pass.
    fn check_consistency_masked(&mut self, deliver: &[bool]) {
        let Some(oracle) = self.oracle.as_ref() else {
            return;
        };
        // Columnar scan: no per-call `(ClientId, &cache)` list — the
        // oracle walks the cache column directly, masked by `deliver`.
        let (checks, violations) = oracle.scan_cols(
            self.clients.caches_col(),
            deliver,
            &self.pool,
            self.shards.len(),
            self.cfg.pool_min_shard_clients as usize,
        );
        self.oracle
            .as_mut()
            .expect("checked above")
            .note_checks(checks);
        if let Some(v) = violations.first() {
            panic!("{v}");
        }
    }

    fn finish(mut self) -> RunResult {
        // Close the last (possibly partial) interval so snapshot deltas
        // telescope exactly to the final metrics.
        let wants_snapshots = self
            .opts
            .probe
            .as_ref()
            .and_then(|p| p.snapshot_every())
            .is_some();
        if wants_snapshots {
            self.take_snapshot(self.horizon.as_secs());
        }
        let horizon = self.horizon;
        let up = self.uplink.stats(horizon);
        let mut clients = ClientStats::default();
        let mut issued = 0u64;
        let mut answered = 0u64;
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut evictions = 0u64;
        let mut faults = self.faults;
        for (c, cache) in self
            .clients
            .counters_col()
            .iter()
            .zip(self.clients.caches_col())
        {
            clients.absorb(c);
            issued += c.queries_issued;
            answered += c.queries_answered;
            hits += c.item_hits;
            misses += c.item_misses;
            evictions += cache.evictions();
            faults.retries_sent += c.retries_sent;
            faults.backoff_exhaustions += c.backoff_exhaustions;
        }
        if self.cfg.faults.is_active() {
            // Duplicate Tlbs also occur naturally (two clients sharing a
            // last-report time reconnect in one interval); they only
            // belong in the *fault* report when a fault plan could have
            // caused them — and recording them unconditionally would
            // surface a `faults` field in fault-free legacy renderings.
            faults.duplicate_tlbs_ignored = self.server_counters().duplicate_tlbs;
        }
        faults.mean_recovery_latency_secs = if faults.recoveries == 0 {
            0.0
        } else {
            self.recovery_latency_sum / faults.recoveries as f64
        };
        // Aggregate downlink accounting across channels; utilization is
        // bandwidth-weighted so a Shared run and a Dedicated run report
        // comparable figures.
        let mut down_bits = [0.0f64; 3];
        let mut down_util_weighted = 0.0;
        let mut total_bw = 0.0;
        let mut preemptions = 0u64;
        for ch in &self.downlinks {
            let s = ch.stats(horizon);
            for (acc, bits) in down_bits.iter_mut().zip(s.bits_by_class) {
                *acc += bits;
            }
            down_util_weighted += s.utilization * ch.rate_bps();
            total_bw += ch.rate_bps();
            preemptions += s.preemptions;
        }
        let validity_bits = up.bits_by_class[CLASS_CHECK];
        let energy_total =
            self.tx_bits * self.cfg.energy_tx_per_bit + self.rx_bits * self.cfg.energy_rx_per_bit;
        let metrics = Metrics {
            queries_answered: answered,
            uplink_validity_bits_per_query: if answered == 0 {
                0.0
            } else {
                validity_bits / answered as f64
            },
            queries_issued: issued,
            item_hits: hits,
            item_misses: misses,
            hit_ratio: if hits + misses == 0 {
                0.0
            } else {
                hits as f64 / (hits + misses) as f64
            },
            mean_query_latency_secs: self.latency.mean(),
            p95_query_latency_secs: self.latency_hist.quantile(0.95),
            uplink_validity_bits: validity_bits,
            uplink_total_bits: up.bits_by_class.iter().sum(),
            downlink_report_bits: down_bits[0],
            downlink_validity_bits: down_bits[1],
            downlink_data_bits: down_bits[2],
            downlink_utilization: down_util_weighted / total_bw,
            uplink_utilization: up.utilization,
            downlink_preemptions: preemptions,
            client_tx_bits: self.tx_bits,
            client_rx_bits: self.rx_bits,
            energy_total,
            energy_per_query: if answered == 0 {
                0.0
            } else {
                energy_total / answered as f64
            },
            reports_lost: self.reports_lost,
            server: self.server_counters().into(),
            clients,
            cache_evictions: evictions,
            disconnections: self.disconnections,
            events_processed: self.sched.events_delivered(),
            sim_time_secs: self.cfg.sim_time_secs,
            faults,
            mobility: self.mobility,
        };
        RunResult {
            config: self.cfg,
            metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobicache_model::{Scheme, Workload};

    fn short_cfg(scheme: Scheme) -> SimConfig {
        let mut cfg = SimConfig::paper_default().with_scheme(scheme);
        cfg.sim_time_secs = 4_000.0;
        cfg.db_size = 1_000;
        cfg.num_clients = 20;
        cfg
    }

    #[test]
    fn every_scheme_runs_and_answers_queries() {
        for scheme in Scheme::ALL {
            let cfg = short_cfg(scheme);
            let result = run(&cfg, RunOptions::new().check_consistency(true))
                .unwrap_or_else(|e| panic!("{scheme:?}: {e}"));
            let m = &result.metrics;
            assert!(m.queries_answered > 0, "{scheme:?} answered none");
            assert!(
                m.queries_answered <= m.queries_issued,
                "{scheme:?} answered more than issued"
            );
            assert!(m.item_hits + m.item_misses > 0, "{scheme:?}");
            assert!(m.downlink_report_bits > 0.0, "{scheme:?} sent no reports");
        }
    }

    #[test]
    fn sharded_fanout_is_bit_identical_for_every_scheme() {
        // The tentpole contract: threads only trade wall time. The full
        // Debug rendering of the metrics (every counter and every float)
        // must match the serial run exactly.
        for scheme in Scheme::ALL {
            let cfg = short_cfg(scheme);
            let serial = run(&cfg, RunOptions::default()).unwrap();
            for threads in [2, 4, 0] {
                let sharded =
                    run(&cfg.clone().with_threads(threads), RunOptions::default()).unwrap();
                assert_eq!(
                    format!("{:?}", serial.metrics),
                    format!("{:?}", sharded.metrics),
                    "{scheme:?} diverged at threads={threads}"
                );
            }
        }
    }

    #[test]
    fn sharding_is_bit_identical_under_loss_and_snooping() {
        // Report loss draws serial coins; snooping parallelises a second
        // phase; the oracle checks every delivery. All three must
        // survive sharding unchanged.
        let mut cfg = short_cfg(Scheme::Aaw);
        cfg.p_report_loss = 0.2;
        cfg.snoop_broadcasts = true;
        let serial = run(&cfg, RunOptions::new().check_consistency(true)).unwrap();
        let sharded = run(
            &cfg.clone().with_threads(4),
            RunOptions::new().check_consistency(true),
        )
        .unwrap();
        assert!(serial.metrics.reports_lost > 0);
        assert_eq!(
            format!("{:?}", serial.metrics),
            format!("{:?}", sharded.metrics)
        );
    }

    #[test]
    fn more_threads_than_clients_is_fine() {
        let mut cfg = short_cfg(Scheme::Bs);
        cfg.num_clients = 3;
        let serial = run(&cfg, RunOptions::default()).unwrap();
        let sharded = run(&cfg.clone().with_threads(64), RunOptions::default()).unwrap();
        assert_eq!(
            format!("{:?}", serial.metrics),
            format!("{:?}", sharded.metrics)
        );
    }

    #[test]
    fn same_seed_same_metrics() {
        let cfg = short_cfg(Scheme::Aaw).with_workload(Workload::hotcold());
        let a = run(&cfg, RunOptions::default()).unwrap();
        let b = run(&cfg, RunOptions::default()).unwrap();
        assert_eq!(a.metrics.queries_answered, b.metrics.queries_answered);
        assert_eq!(a.metrics.item_hits, b.metrics.item_hits);
        assert_eq!(
            a.metrics.uplink_validity_bits,
            b.metrics.uplink_validity_bits
        );
        assert_eq!(a.metrics.events_processed, b.metrics.events_processed);
    }

    #[test]
    fn different_seed_different_trace() {
        let cfg = short_cfg(Scheme::Bs);
        let a = run(&cfg, RunOptions::default()).unwrap();
        let b = run(&cfg.clone().with_seed(999), RunOptions::default()).unwrap();
        assert_ne!(a.metrics.events_processed, b.metrics.events_processed);
    }

    #[test]
    fn bs_scheme_has_zero_validity_uplink() {
        let result = run(&short_cfg(Scheme::Bs), RunOptions::default()).unwrap();
        assert_eq!(result.metrics.uplink_validity_bits, 0.0);
        assert_eq!(result.metrics.clients.tlbs_sent, 0);
        assert_eq!(result.metrics.clients.checks_sent, 0);
    }

    #[test]
    fn adaptive_scheme_uses_tlbs_not_checks() {
        let result = run(&short_cfg(Scheme::Afw), RunOptions::default()).unwrap();
        assert!(
            result.metrics.clients.tlbs_sent > 0,
            "long disconnects must trigger Tlbs"
        );
        assert_eq!(result.metrics.clients.checks_sent, 0);
        assert!(
            result.metrics.server.bs_reports > 0,
            "Tlbs must trigger BS broadcasts"
        );
        assert!(result.metrics.server.window_reports > 0, "but not always");
    }

    #[test]
    fn checking_scheme_uses_checks_not_tlbs() {
        let result = run(&short_cfg(Scheme::SimpleChecking), RunOptions::default()).unwrap();
        assert!(result.metrics.clients.checks_sent > 0);
        assert_eq!(result.metrics.clients.tlbs_sent, 0);
        assert!(result.metrics.server.checks_processed > 0);
        assert_eq!(result.metrics.server.bs_reports, 0);
    }

    #[test]
    fn gcore_scheme_sends_group_checks() {
        let result = run(
            &short_cfg(Scheme::Gcore),
            RunOptions::new().check_consistency(true),
        )
        .unwrap();
        assert!(result.metrics.clients.checks_sent > 0);
        assert!(result.metrics.server.checks_processed > 0);
        assert_eq!(result.metrics.clients.tlbs_sent, 0);
        assert!(result.metrics.uplink_validity_bits > 0.0);
    }

    #[test]
    fn gcore_uplinks_less_than_full_cache_checking() {
        let mut base = short_cfg(Scheme::Gcore).with_workload(Workload::hotcold());
        base.sim_time_secs = 8_000.0;
        base.p_disconnect = 0.3;
        let gcore = run(&base, RunOptions::default()).unwrap();
        let sc = run(
            &base.clone().with_scheme(Scheme::SimpleChecking),
            RunOptions::default(),
        )
        .unwrap();
        assert!(
            gcore.metrics.uplink_validity_bits < sc.metrics.uplink_validity_bits,
            "grouping must reduce checking uplink: {} vs {}",
            gcore.metrics.uplink_validity_bits,
            sc.metrics.uplink_validity_bits
        );
    }

    #[test]
    fn hotcold_hits_more_than_uniform() {
        let mut uni = short_cfg(Scheme::SimpleChecking);
        uni.sim_time_secs = 8_000.0;
        let mut hot = uni.clone().with_workload(Workload::hotcold());
        hot.db_size = 1_000; // cache 2 % = 20 items << 100 hot items, still far better locality
        let u = run(&uni, RunOptions::default()).unwrap();
        let h = run(&hot, RunOptions::default()).unwrap();
        assert!(
            h.metrics.hit_ratio > u.metrics.hit_ratio + 0.05,
            "hotcold {} vs uniform {}",
            h.metrics.hit_ratio,
            u.metrics.hit_ratio
        );
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = short_cfg(Scheme::Bs);
        cfg.downlink_bps = 0.0;
        assert!(run(&cfg, RunOptions::default()).is_err());
    }

    #[test]
    fn report_overhead_shows_up_for_bs() {
        // BS reports are ~2N bits every period; TS windows are tiny.
        let bs = run(&short_cfg(Scheme::Bs), RunOptions::default()).unwrap();
        let sc = run(&short_cfg(Scheme::SimpleChecking), RunOptions::default()).unwrap();
        assert!(
            bs.metrics.downlink_report_bits > 3.0 * sc.metrics.downlink_report_bits,
            "bs {} vs sc {}",
            bs.metrics.downlink_report_bits,
            sc.metrics.downlink_report_bits
        );
    }

    #[test]
    fn dedicated_broadcast_channel_runs_consistently() {
        for scheme in [Scheme::Bs, Scheme::Aaw, Scheme::SimpleChecking] {
            let mut cfg = short_cfg(scheme);
            cfg.downlink_topology = DownlinkTopology::Dedicated {
                broadcast_share: 0.3,
            };
            let result = run(&cfg, RunOptions::new().check_consistency(true))
                .unwrap_or_else(|e| panic!("{scheme:?}: {e}"));
            assert!(result.metrics.queries_answered > 0, "{scheme:?}");
            // Reports never preempt data on a dedicated channel.
            assert_eq!(result.metrics.downlink_preemptions, 0, "{scheme:?}");
        }
    }

    #[test]
    fn dedicated_channel_rescues_bs_at_scale() {
        // Figure 5 showed BS collapsing because its 2N-bit report starves
        // the shared downlink. §6's future work — a dedicated broadcast
        // channel — removes exactly that contention.
        let mut shared = short_cfg(Scheme::Bs);
        shared.db_size = 20_000;
        shared.sim_time_secs = 8_000.0;
        shared.num_clients = 100; // saturate the downlink so topology matters
        let mut dedicated = shared.clone();
        dedicated.downlink_topology = DownlinkTopology::Dedicated {
            broadcast_share: 0.25,
        };
        // Give both the same point-to-point bandwidth for a fair fight:
        // the dedicated variant gets extra broadcast bandwidth on top.
        dedicated.downlink_bps = shared.downlink_bps / 0.75;
        let s = run(&shared, RunOptions::default()).unwrap();
        let d = run(&dedicated, RunOptions::default()).unwrap();
        assert!(
            d.metrics.queries_answered as f64 > 1.1 * s.metrics.queries_answered as f64,
            "dedicated {} vs shared {}",
            d.metrics.queries_answered,
            s.metrics.queries_answered
        );
    }

    #[test]
    fn report_loss_is_survivable_and_counted() {
        for scheme in [
            Scheme::Bs,
            Scheme::Aaw,
            Scheme::SimpleChecking,
            Scheme::TsNoCheck,
        ] {
            let mut cfg = short_cfg(scheme);
            cfg.p_report_loss = 0.2;
            let result = run(&cfg, RunOptions::new().check_consistency(true))
                .unwrap_or_else(|e| panic!("{scheme:?}: {e}"));
            assert!(result.metrics.reports_lost > 0, "{scheme:?}");
            assert!(result.metrics.queries_answered > 0, "{scheme:?}");
            // The legacy knob rides the fault layer as a degenerate
            // (burst-free) chain: every loss is a good-state loss.
            let f = result.metrics.faults;
            assert_eq!(f.downlink_losses_good, result.metrics.reports_lost);
            assert_eq!(f.downlink_losses_burst, 0, "{scheme:?}");
            // No fault *plan*: the legacy knob must not arm retries.
            assert_eq!(f.retries_sent, 0, "{scheme:?}");
        }
    }

    #[test]
    fn zero_loss_keeps_baseline_metrics() {
        // Enabling the loss machinery with p = 0 must not perturb runs.
        let cfg = short_cfg(Scheme::Aaw);
        let a = run(&cfg, RunOptions::default()).unwrap();
        assert_eq!(a.metrics.reports_lost, 0);
    }

    #[test]
    fn fault_free_runs_report_no_fault_metrics() {
        // The guard behind the golden digests: without faults no fault
        // stream is touched, every tally is zero, and the Debug
        // rendering (the digest input) does not mention faults at all.
        let result = run(&short_cfg(Scheme::Aaw), RunOptions::default()).unwrap();
        assert_eq!(
            result.metrics.faults,
            crate::metrics::FaultMetrics::default()
        );
        assert!(!format!("{:?}", result.metrics).contains("faults"));
    }

    fn faulty_cfg(scheme: Scheme) -> SimConfig {
        use mobicache_model::FaultPlan;
        let mut cfg = short_cfg(scheme);
        cfg.faults = FaultPlan {
            downlink: ChannelFaults {
                p_enter_burst: 0.1,
                mean_burst_intervals: 4.0,
                p_loss_good: 0.02,
                p_loss_bad: 0.9,
            },
            p_uplink_loss: 0.2,
            crashes: vec![1_000.0, 2_500.0],
            recovery_secs: 60.0,
            ..FaultPlan::none()
        };
        cfg
    }

    #[test]
    fn bursty_loss_uplink_loss_and_crashes_are_survivable() {
        for scheme in [Scheme::Aaw, Scheme::Afw, Scheme::SimpleChecking, Scheme::Bs] {
            let result = run(
                &faulty_cfg(scheme),
                RunOptions::new().check_consistency(true),
            )
            .unwrap_or_else(|e| panic!("{scheme:?}: {e}"));
            let m = &result.metrics;
            let f = m.faults;
            assert!(m.queries_answered > 0, "{scheme:?} starved under faults");
            assert!(
                f.downlink_losses_burst > 0,
                "{scheme:?} never lost in a burst"
            );
            assert!(f.downlink_losses_good > 0, "{scheme:?}");
            assert_eq!(
                f.downlink_losses_good + f.downlink_losses_burst,
                m.reports_lost,
                "{scheme:?}: loss classification must cover every loss"
            );
            assert!(f.uplink_losses > 0, "{scheme:?}");
            assert_eq!(f.server_crashes, 2, "{scheme:?}");
            assert_eq!(f.recoveries, 2, "{scheme:?}");
            // Clients measure recovery to the first post-recovery
            // broadcast, so it can never undercut the outage itself.
            assert!(
                f.mean_recovery_latency_secs >= 60.0,
                "{scheme:?}: {}",
                f.mean_recovery_latency_secs
            );
            assert!(f.queries_stretched > 0, "{scheme:?}");
        }
    }

    #[test]
    fn uplink_loss_arms_the_retry_machinery() {
        let mut cfg = faulty_cfg(Scheme::Afw);
        cfg.p_disconnect = 0.3; // plenty of gaps → plenty of Tlb uplinks
        let result = run(&cfg, RunOptions::new().check_consistency(true)).unwrap();
        let f = result.metrics.faults;
        assert!(f.retries_sent > 0, "lost uplinks must trigger re-sends");
        assert!(
            result.metrics.clients.tlbs_sent > 0,
            "adaptive clients still report Tlbs under faults"
        );
    }

    #[test]
    fn duplicate_requests_are_deduped_not_reanswered() {
        // The downlink is saturated by design, so data responses take
        // longer than any aggressive retry timeout: the retries must be
        // absorbed by the in-flight dedup instead of re-sending full
        // items (which collapses goodput — this pins the fix).
        use mobicache_model::RetryPolicy;
        let mut cfg = faulty_cfg(Scheme::Aaw);
        cfg.faults.retry = RetryPolicy {
            timeout_intervals: 1,
            max_retries: 2,
            backoff_cap_intervals: 1,
        };
        let result = run(&cfg, RunOptions::new().check_consistency(true)).unwrap();
        let f = result.metrics.faults;
        assert!(f.retries_sent > 0);
        assert!(
            f.duplicate_requests_ignored > 0,
            "1-interval retries against a saturated downlink must hit the dedup"
        );
        // Goodput survives the retry storm: most issued queries answer.
        let m = &result.metrics;
        assert!(
            m.queries_answered * 2 > m.queries_issued,
            "answered {} of {} issued",
            m.queries_answered,
            m.queries_issued
        );
    }

    #[test]
    fn fault_injection_is_bit_identical_across_thread_counts() {
        for scheme in [Scheme::Aaw, Scheme::Afw, Scheme::SimpleChecking, Scheme::Bs] {
            let mut cfg = faulty_cfg(scheme);
            cfg.p_disconnect = 0.3;
            let serial = run(&cfg, RunOptions::default()).unwrap();
            for threads in [2, 4, 0] {
                let sharded =
                    run(&cfg.clone().with_threads(threads), RunOptions::default()).unwrap();
                assert_eq!(
                    format!("{:?}", serial.metrics),
                    format!("{:?}", sharded.metrics),
                    "{scheme:?} fault coins diverged at threads={threads}"
                );
            }
        }
    }

    #[test]
    fn crash_during_recovery_window_nests() {
        // Overlapping crash windows: the second crash lands while the
        // first is still recovering; the server must stay down until the
        // *last* recovery completes and the run must stay consistent.
        let mut cfg = short_cfg(Scheme::Aaw);
        cfg.faults.crashes = vec![1_000.0, 1_050.0];
        cfg.faults.recovery_secs = 200.0;
        let result = run(&cfg, RunOptions::new().check_consistency(true)).unwrap();
        let f = result.metrics.faults;
        assert_eq!(f.server_crashes, 2);
        // One outage from the clients' point of view.
        assert_eq!(f.recoveries, 1);
        assert!(f.mean_recovery_latency_secs >= 250.0, "{f:?}");
        assert!(result.metrics.queries_answered > 0);
    }

    #[test]
    fn snooping_raises_hotcold_hit_ratio_and_stays_consistent() {
        let mut base = short_cfg(Scheme::Aaw).with_workload(Workload::hotcold());
        base.sim_time_secs = 8_000.0;
        base.db_size = 5_000; // cache (2 %) exactly fits the 100-item hot set
        let plain = run(&base, RunOptions::new().check_consistency(true)).unwrap();
        let mut snoop_cfg = base.clone();
        snoop_cfg.snoop_broadcasts = true;
        let snoop = run(&snoop_cfg, RunOptions::new().check_consistency(true)).unwrap();
        assert!(
            snoop.metrics.hit_ratio > plain.metrics.hit_ratio + 0.05,
            "snooping should share the hot set: {} vs {}",
            snoop.metrics.hit_ratio,
            plain.metrics.hit_ratio
        );
        assert!(snoop.metrics.queries_answered >= plain.metrics.queries_answered);
    }

    #[test]
    fn energy_accounting_favors_adaptive_over_checking_tx() {
        let mut base = short_cfg(Scheme::Aaw);
        base.p_disconnect = 0.4;
        base.sim_time_secs = 8_000.0;
        let aaw = run(&base, RunOptions::default()).unwrap();
        let sc = run(
            &base.clone().with_scheme(Scheme::SimpleChecking),
            RunOptions::default(),
        )
        .unwrap();
        assert!(aaw.metrics.energy_per_query > 0.0);
        // Checking pays for its big uplink checks at 100x the rx rate.
        assert!(
            sc.metrics.client_tx_bits > aaw.metrics.client_tx_bits,
            "sc tx {} vs aaw tx {}",
            sc.metrics.client_tx_bits,
            aaw.metrics.client_tx_bits
        );
    }

    #[test]
    fn bs_pays_energy_in_rx_not_tx() {
        let base = short_cfg(Scheme::Bs);
        let bs = run(&base, RunOptions::default()).unwrap();
        let sc = run(
            &base.clone().with_scheme(Scheme::SimpleChecking),
            RunOptions::default(),
        )
        .unwrap();
        assert!(
            bs.metrics.client_rx_bits > sc.metrics.client_rx_bits,
            "bs rx {} vs sc rx {}",
            bs.metrics.client_rx_bits,
            sc.metrics.client_rx_bits
        );
    }
}
