//! # mobicache — adaptive cache invalidation in mobile environments
//!
//! A full reproduction of *Qinglong Hu and Dik Lun Lee, "Adaptive Cache
//! Invalidation Methods in Mobile Environments", HPDC 1997*: a
//! discrete-event simulation of mobile clients caching data items from a
//! stateless broadcast server, under seven invalidation schemes —
//! broadcasting timestamps (`TS`), amnesic terminals (`AT`), signatures
//! (`SIG`), `TS` with validity checking ("simple checking"),
//! bit-sequences (`BS`), and the paper's two adaptive contributions
//! **AFW** (adaptive with fixed window) and **AAW** (adaptive with
//! adjusting window).
//!
//! ## Quickstart
//!
//! ```
//! use mobicache::{run, RunOptions};
//! use mobicache_model::{Scheme, SimConfig, Workload};
//!
//! let cfg = SimConfig::paper_default()
//!     .with_scheme(Scheme::Aaw)
//!     .with_workload(Workload::hotcold())
//!     .with_sim_time(5_000.0); // short demo horizon
//! let result = run(&cfg, RunOptions::default()).expect("valid config");
//! println!(
//!     "answered {} queries, {:.1} validity bits/query",
//!     result.metrics.queries_answered,
//!     result.metrics.uplink_validity_bits_per_query
//! );
//! ```
//!
//! The crate graph mirrors the system inventory in `DESIGN.md`: the
//! simulation kernel lives in `mobicache-sim`, the report algorithms in
//! `mobicache-reports`, the channel model in `mobicache-net`, server and
//! client state machines in their own crates, and this crate wires them
//! into a runnable [`Simulation`] with [`Metrics`] collection and an
//! optional ground-truth consistency [`oracle`](RunOptions::check_consistency).

mod engine;
mod metrics;
pub mod oracle;
pub mod probe;

pub use engine::{run, RunOptions, RunResult, Simulation};
pub use metrics::{FaultMetrics, Metrics, MobilityMetrics};
pub use probe::{
    CacheEventKind, IntervalSampler, IntervalSnapshot, NullProbe, Probe, ProbeEvent, ReportKind,
    RunTotals,
};

// The struct-of-arrays client population and its accessor views are the
// public way to inspect per-client state (e.g. from probes). The former
// `Vec<Client>` snapshot accessors are gone — migrate via
// `ClientPop`/`ClientRef`: where code held a `&Client`, take a
// `ClientRef` from `pop.client(i)`; columnar aggregates read the dense
// columns (`counters_col`, `caches_col`) instead of cloning per-client
// vectors.
pub use mobicache_client::{ClientMut, ClientPop, ClientRef};
// Re-export the configuration vocabulary so downstream users need only
// this crate plus `mobicache-model`.
pub use mobicache_model::{
    CellTopology, ChannelFaults, CheckingMode, ConfigError, DownlinkTopology, FaultPlan, Pattern,
    RetryPolicy, Scheme, SimConfig, Workload,
};
// Adaptive decisions surface in probe events; re-export so observers
// can match on them without depending on `mobicache-server`.
pub use mobicache_server::AdaptiveDecision;
// Probe callbacks are timestamped in simulated time; re-export so
// implementors need not depend on `mobicache-sim`.
pub use mobicache_sim::{SimTime, WorkerPool};
