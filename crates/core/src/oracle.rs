//! Ground-truth consistency oracle.
//!
//! When enabled ([`RunOptions::check_consistency`](crate::RunOptions)),
//! the oracle records the full update history and, after every message a
//! client processes, asserts the cache-consistency invariant that every
//! invalidation scheme must uphold:
//!
//! > for every **valid** cached entry `(item, version, validated_at)`
//! > there is no server update `u` with `version < u ≤ validated_at`.
//!
//! In words: if the scheme vouched for an entry at `validated_at`, the
//! cached copy really was current at that moment. A violation means a
//! stale read is possible — the one bug class an invalidation protocol
//! exists to prevent. (Entries in limbo are exempt: they are barred from
//! answering queries precisely because nothing has vouched for them.)

use mobicache_cache::{EntryState, LruCache};
use mobicache_model::{ClientId, ItemId};
use mobicache_sim::SimTime;
use std::collections::HashMap;

/// Full update history for ground-truth checks.
#[derive(Default)]
pub struct Oracle {
    /// Per-item update timestamps, in order.
    history: HashMap<ItemId, Vec<SimTime>>,
    checks: u64,
}

impl Oracle {
    /// An empty oracle.
    pub fn new() -> Self {
        Oracle::default()
    }

    /// Records an update.
    pub fn record_update(&mut self, now: SimTime, item: ItemId) {
        let h = self.history.entry(item).or_default();
        debug_assert!(h.last().is_none_or(|&last| last <= now));
        h.push(now);
    }

    /// The item's version as of `asof`: its last update at or before that
    /// time (zero if none).
    pub fn version_asof(&self, item: ItemId, asof: SimTime) -> SimTime {
        match self.history.get(&item) {
            None => SimTime::ZERO,
            Some(h) => {
                let idx = h.partition_point(|&ts| ts <= asof);
                if idx == 0 {
                    SimTime::ZERO
                } else {
                    h[idx - 1]
                }
            }
        }
    }

    /// Number of invariant evaluations performed.
    pub fn checks_performed(&self) -> u64 {
        self.checks
    }

    /// Asserts the consistency invariant over one client's cache.
    ///
    /// # Panics
    /// Panics with a diagnostic if a valid entry misses an update it
    /// should have seen.
    pub fn assert_cache_consistent(&mut self, client: ClientId, cache: &LruCache) {
        for (item, entry) in cache.entries_iter() {
            if entry.state != EntryState::Valid {
                continue;
            }
            self.checks += 1;
            let truth = self.version_asof(item, entry.validated_at);
            assert!(
                truth <= entry.version,
                "consistency violation at {client:?}: {item:?} cached version {} but an update \
                 at {} predates its validation time {}",
                entry.version.as_secs(),
                truth.as_secs(),
                entry.validated_at.as_secs(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn version_asof_tracks_history() {
        let mut o = Oracle::new();
        o.record_update(t(10.0), ItemId(1));
        o.record_update(t(20.0), ItemId(1));
        assert_eq!(o.version_asof(ItemId(1), t(5.0)), SimTime::ZERO);
        assert_eq!(o.version_asof(ItemId(1), t(10.0)), t(10.0));
        assert_eq!(o.version_asof(ItemId(1), t(15.0)), t(10.0));
        assert_eq!(o.version_asof(ItemId(1), t(99.0)), t(20.0));
        assert_eq!(o.version_asof(ItemId(2), t(99.0)), SimTime::ZERO);
    }

    #[test]
    fn consistent_cache_passes() {
        let mut o = Oracle::new();
        o.record_update(t(10.0), ItemId(1));
        let mut cache = LruCache::new(4);
        cache.insert(ItemId(1), t(10.0), t(12.0)); // fresh copy
        o.assert_cache_consistent(ClientId(0), &cache);
        assert_eq!(o.checks_performed(), 1);
    }

    #[test]
    #[should_panic(expected = "consistency violation")]
    fn stale_valid_entry_is_caught() {
        let mut o = Oracle::new();
        o.record_update(t(10.0), ItemId(1));
        let mut cache = LruCache::new(4);
        // Claims validity at t=12 with a pre-update version.
        cache.insert(ItemId(1), SimTime::ZERO, t(12.0));
        o.assert_cache_consistent(ClientId(0), &cache);
    }

    #[test]
    fn limbo_entries_are_exempt() {
        let mut o = Oracle::new();
        o.record_update(t(10.0), ItemId(1));
        let mut cache = LruCache::new(4);
        cache.insert(ItemId(1), SimTime::ZERO, t(12.0));
        cache.mark_all_limbo();
        o.assert_cache_consistent(ClientId(0), &cache);
        assert_eq!(o.checks_performed(), 0);
    }
}
