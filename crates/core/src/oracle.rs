//! Ground-truth consistency oracle.
//!
//! When enabled ([`RunOptions::check_consistency`](crate::RunOptions)),
//! the oracle records the full update history and, after every message a
//! client processes, asserts the cache-consistency invariant that every
//! invalidation scheme must uphold:
//!
//! > for every **valid** cached entry `(item, version, validated_at)`
//! > there is no server update `u` with `version < u ≤ validated_at`.
//!
//! In words: if the scheme vouched for an entry at `validated_at`, the
//! cached copy really was current at that moment. A violation means a
//! stale read is possible — the one bug class an invalidation protocol
//! exists to prevent. (Entries in limbo are exempt: they are barred from
//! answering queries precisely because nothing has vouched for them.)

use mobicache_cache::{EntryState, LruCache};
use mobicache_model::{ClientId, ItemId};
use mobicache_sim::pool::{shard_count, SendPtr, WorkerPool};
use mobicache_sim::SimTime;
use std::collections::HashMap;
use std::fmt;

/// One breach of the consistency invariant: a valid cached entry whose
/// version misses an update that happened at or before its validation
/// time. `Display` renders the exact diagnostic the engine panics with.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    pub client: ClientId,
    pub item: ItemId,
    /// The version the cache holds.
    pub version: SimTime,
    /// The true version as of `validated_at` (a later update than
    /// `version`, or the invariant would hold).
    pub truth: SimTime,
    /// When the scheme last vouched for the entry.
    pub validated_at: SimTime,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "consistency violation at {:?}: {:?} cached version {} but an update at {} predates \
             its validation time {}",
            self.client,
            self.item,
            self.version.as_secs(),
            self.truth.as_secs(),
            self.validated_at.as_secs(),
        )
    }
}

/// Full update history for ground-truth checks.
#[derive(Default)]
pub struct Oracle {
    /// Per-item update timestamps, in order.
    history: HashMap<ItemId, Vec<SimTime>>,
    checks: u64,
}

impl Oracle {
    /// An empty oracle.
    pub fn new() -> Self {
        Oracle::default()
    }

    /// Records an update.
    pub fn record_update(&mut self, now: SimTime, item: ItemId) {
        let h = self.history.entry(item).or_default();
        debug_assert!(h.last().is_none_or(|&last| last <= now));
        h.push(now);
    }

    /// The item's version as of `asof`: its last update at or before that
    /// time (zero if none).
    pub fn version_asof(&self, item: ItemId, asof: SimTime) -> SimTime {
        match self.history.get(&item) {
            None => SimTime::ZERO,
            Some(h) => {
                let idx = h.partition_point(|&ts| ts <= asof);
                if idx == 0 {
                    SimTime::ZERO
                } else {
                    h[idx - 1]
                }
            }
        }
    }

    /// Number of invariant evaluations performed.
    pub fn checks_performed(&self) -> u64 {
        self.checks
    }

    /// Read-only invariant scan over one client's cache: violations are
    /// appended to `out` in cache-entry order, and the number of
    /// invariant evaluations is returned (fold it back in with
    /// [`Oracle::note_checks`]). Taking `&self` is what lets the tick
    /// scan shard across the worker pool.
    pub fn collect_violations(
        &self,
        client: ClientId,
        cache: &LruCache,
        out: &mut Vec<Violation>,
    ) -> u64 {
        let mut checks = 0;
        for (item, entry) in cache.entries_iter() {
            if entry.state != EntryState::Valid {
                continue;
            }
            checks += 1;
            let truth = self.version_asof(item, entry.validated_at);
            if truth > entry.version {
                out.push(Violation {
                    client,
                    item,
                    version: entry.version,
                    truth,
                    validated_at: entry.validated_at,
                });
            }
        }
        checks
    }

    /// Folds externally collected invariant evaluations into
    /// [`Oracle::checks_performed`].
    pub fn note_checks(&mut self, n: u64) {
        self.checks += n;
    }

    /// Scans many caches, sharded over `pool` in contiguous chunks of
    /// `caches`. Returns the total evaluation count and every violation
    /// in `caches`-index (then cache-entry) order — byte-identical to a
    /// serial pass, whatever the shard geometry: each chunk appends to
    /// its own slot, and slots are concatenated in chunk order.
    pub fn scan(
        &self,
        caches: &[(ClientId, &LruCache)],
        pool: &WorkerPool,
        max_shards: usize,
        min_per_shard: usize,
    ) -> (u64, Vec<Violation>) {
        let n = caches.len();
        if n == 0 {
            return (0, Vec::new());
        }
        let t = shard_count(max_shards, n, min_per_shard);
        if t <= 1 {
            let mut out = Vec::new();
            let mut checks = 0;
            for &(client, cache) in caches {
                checks += self.collect_violations(client, cache, &mut out);
            }
            return (checks, out);
        }
        let chunk = n.div_ceil(t);
        let mut parts: Vec<(u64, Vec<Violation>)> = (0..t).map(|_| (0, Vec::new())).collect();
        let parts_ptr = SendPtr(parts.as_mut_ptr());
        pool.run(t, &|i| {
            let start = i * chunk;
            if start >= n {
                return;
            }
            let end = (start + chunk).min(n);
            // SAFETY: chunk `i` writes only to slot `i`.
            let slot = unsafe { &mut *parts_ptr.get().add(i) };
            for &(client, cache) in &caches[start..end] {
                slot.0 += self.collect_violations(client, cache, &mut slot.1);
            }
        });
        let mut checks = 0;
        let mut out = Vec::new();
        for (c, mut v) in parts {
            checks += c;
            out.append(&mut v);
        }
        (checks, out)
    }

    /// Scans a whole cache column masked by `deliver`, sharded over
    /// `pool` in contiguous index chunks. The column index *is* the
    /// client id, so no `(ClientId, &cache)` pair list is ever built —
    /// the struct-of-arrays engine calls this straight on its cache
    /// column every broadcast tick. Returns the total evaluation count
    /// and every violation in column-index (then cache-entry) order,
    /// byte-identical to a serial pass whatever the shard geometry.
    pub fn scan_cols(
        &self,
        caches: &[LruCache],
        deliver: &[bool],
        pool: &WorkerPool,
        max_shards: usize,
        min_per_shard: usize,
    ) -> (u64, Vec<Violation>) {
        debug_assert_eq!(caches.len(), deliver.len());
        let n = caches.len();
        if n == 0 {
            return (0, Vec::new());
        }
        let t = shard_count(max_shards, n, min_per_shard);
        if t <= 1 {
            let mut out = Vec::new();
            let mut checks = 0;
            for (i, cache) in caches.iter().enumerate() {
                if deliver[i] {
                    checks += self.collect_violations(ClientId(i as u32), cache, &mut out);
                }
            }
            return (checks, out);
        }
        let chunk = n.div_ceil(t);
        let mut parts: Vec<(u64, Vec<Violation>)> = (0..t).map(|_| (0, Vec::new())).collect();
        let parts_ptr = SendPtr(parts.as_mut_ptr());
        pool.run(t, &|i| {
            let start = i * chunk;
            if start >= n {
                return;
            }
            let end = (start + chunk).min(n);
            // SAFETY: chunk `i` writes only to slot `i`.
            let slot = unsafe { &mut *parts_ptr.get().add(i) };
            for (j, cache) in caches[start..end].iter().enumerate() {
                if deliver[start + j] {
                    slot.0 +=
                        self.collect_violations(ClientId((start + j) as u32), cache, &mut slot.1);
                }
            }
        });
        let mut checks = 0;
        let mut out = Vec::new();
        for (c, mut v) in parts {
            checks += c;
            out.append(&mut v);
        }
        (checks, out)
    }

    /// Asserts the consistency invariant over one client's cache.
    ///
    /// # Panics
    /// Panics with a diagnostic if a valid entry misses an update it
    /// should have seen.
    pub fn assert_cache_consistent(&mut self, client: ClientId, cache: &LruCache) {
        let mut out = Vec::new();
        self.checks += self.collect_violations(client, cache, &mut out);
        if let Some(v) = out.first() {
            panic!("{v}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn version_asof_tracks_history() {
        let mut o = Oracle::new();
        o.record_update(t(10.0), ItemId(1));
        o.record_update(t(20.0), ItemId(1));
        assert_eq!(o.version_asof(ItemId(1), t(5.0)), SimTime::ZERO);
        assert_eq!(o.version_asof(ItemId(1), t(10.0)), t(10.0));
        assert_eq!(o.version_asof(ItemId(1), t(15.0)), t(10.0));
        assert_eq!(o.version_asof(ItemId(1), t(99.0)), t(20.0));
        assert_eq!(o.version_asof(ItemId(2), t(99.0)), SimTime::ZERO);
    }

    #[test]
    fn consistent_cache_passes() {
        let mut o = Oracle::new();
        o.record_update(t(10.0), ItemId(1));
        let mut cache = LruCache::new(4);
        cache.insert(ItemId(1), t(10.0), t(12.0)); // fresh copy
        o.assert_cache_consistent(ClientId(0), &cache);
        assert_eq!(o.checks_performed(), 1);
    }

    #[test]
    #[should_panic(expected = "consistency violation")]
    fn stale_valid_entry_is_caught() {
        let mut o = Oracle::new();
        o.record_update(t(10.0), ItemId(1));
        let mut cache = LruCache::new(4);
        // Claims validity at t=12 with a pre-update version.
        cache.insert(ItemId(1), SimTime::ZERO, t(12.0));
        o.assert_cache_consistent(ClientId(0), &cache);
    }

    #[test]
    fn sharded_scan_matches_serial_order_and_count() {
        let mut o = Oracle::new();
        for k in 0..8u32 {
            o.record_update(t(10.0 + k as f64), ItemId(k));
        }
        // Build 7 caches (non-dividing under 2/3 shards); odd clients
        // hold a stale-valid entry for their own item index.
        let caches: Vec<LruCache> = (0..7u32)
            .map(|c| {
                let mut cache = LruCache::new(4);
                let version = if c % 2 == 1 { SimTime::ZERO } else { t(50.0) };
                cache.insert(ItemId(c), version, t(40.0));
                cache
            })
            .collect();
        let refs: Vec<(ClientId, &LruCache)> = caches
            .iter()
            .enumerate()
            .map(|(i, cache)| (ClientId(i as u32), cache))
            .collect();
        let pool = WorkerPool::new(3);
        let serial = o.scan(&refs, &pool, 1, 1);
        assert_eq!(serial.0, 7);
        assert_eq!(
            serial.1.iter().map(|v| v.client).collect::<Vec<_>>(),
            vec![ClientId(1), ClientId(3), ClientId(5)]
        );
        for shards in [2usize, 3, 5, 7, 16] {
            assert_eq!(o.scan(&refs, &pool, shards, 1), serial, "shards={shards}");
        }
        // The work threshold only changes who scans, never the result.
        assert_eq!(o.scan(&refs, &pool, 4, 4), serial);
        // The columnar mask scan agrees with the pair-list scan at every
        // geometry, including a partial mask.
        let all = vec![true; caches.len()];
        for shards in [1usize, 2, 3, 5, 16] {
            assert_eq!(o.scan_cols(&caches, &all, &pool, shards, 1), serial);
        }
        let mut mask = all.clone();
        mask[1] = false; // hide one violating client
        let masked = o.scan_cols(&caches, &mask, &pool, 3, 1);
        assert_eq!(masked.0, 6);
        assert_eq!(
            masked.1.iter().map(|v| v.client).collect::<Vec<_>>(),
            vec![ClientId(3), ClientId(5)]
        );
    }

    #[test]
    fn note_checks_folds_into_counter() {
        let mut o = Oracle::new();
        o.note_checks(5);
        o.note_checks(2);
        assert_eq!(o.checks_performed(), 7);
    }

    #[test]
    fn limbo_entries_are_exempt() {
        let mut o = Oracle::new();
        o.record_update(t(10.0), ItemId(1));
        let mut cache = LruCache::new(4);
        cache.insert(ItemId(1), SimTime::ZERO, t(12.0));
        cache.mark_all_limbo();
        o.assert_cache_consistent(ClientId(0), &cache);
        assert_eq!(o.checks_performed(), 0);
    }
}
