//! Property tests for the sharded tick phases: whatever the randomized
//! state and shard geometry, the pool-sharded implementations must
//! report exactly what their serial counterparts report, in the same
//! order.
//!
//! Two phases carry real reduction logic and get pinned here:
//!
//! * the consistency oracle's full-cache scan ([`Oracle::scan`]) —
//!   violations concatenated in client-index order across chunks;
//! * the bit-sequences index build ([`BsIndex::build_sharded`]) —
//!   per-chunk sorts reduced by a k-way merge that must equal the
//!   serial full sort.
//!
//! The report fan-out itself is pinned end-to-end by the golden-digest
//! thread matrix in `tests/determinism.rs`.

use mobicache::oracle::Oracle;
use mobicache::WorkerPool;
use mobicache_cache::LruCache;
use mobicache_model::{ClientId, ItemId};
use mobicache_reports::{BitSequences, BsIndex};
use mobicache_sim::SimTime;
use proptest::prelude::*;

fn t(s: f64) -> SimTime {
    SimTime::from_secs(s)
}

/// A randomized cache population: per client, a list of
/// `(item, version_secs, validated_secs)` entries plus a limbo flag.
/// Violations arise naturally whenever the update history contains an
/// update in `(version, validated]` for a valid entry.
type CacheSpec = Vec<(Vec<(u32, u16, u16)>, bool)>;

fn build_caches(specs: &CacheSpec) -> Vec<LruCache> {
    specs
        .iter()
        .map(|(entries, limbo)| {
            let mut cache = LruCache::new(entries.len().max(1));
            for &(item, version, validated) in entries {
                cache.insert(ItemId(item), t(version as f64), t(validated as f64));
            }
            if *limbo {
                cache.mark_all_limbo();
            }
            cache
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sharded oracle scan ≡ serial scan: same evaluation count, same
    /// violations, same order — over random update histories, random
    /// cache contents (including limbo-exempt clients) and every shard
    /// geometry from serial to more shards than clients.
    #[test]
    fn sharded_oracle_scan_matches_serial(
        updates in prop::collection::vec((0u32..48, 0u16..500), 1..120),
        specs in prop::collection::vec(
            (prop::collection::vec((0u32..48, 0u16..500, 0u16..500), 0..16), any::<bool>()),
            1..24,
        ),
        max_shards in 1usize..9,
        min_per_shard in 1usize..6,
    ) {
        let mut oracle = Oracle::new();
        let mut history = updates.clone();
        history.sort_by_key(|&(_, ts)| ts);
        for &(item, ts) in &history {
            oracle.record_update(t(ts as f64), ItemId(item));
        }
        let caches = build_caches(&specs);
        let refs: Vec<(ClientId, &LruCache)> = caches
            .iter()
            .enumerate()
            .map(|(i, cache)| (ClientId(i as u32), cache))
            .collect();
        let pool = WorkerPool::new(3);
        let serial = oracle.scan(&refs, &pool, 1, 1);
        let sharded = oracle.scan(&refs, &pool, max_shards, min_per_shard);
        prop_assert_eq!(&serial.0, &sharded.0, "check counts diverged");
        prop_assert_eq!(&serial.1, &sharded.1, "violation lists diverged");
        // The columnar mask scan (the struct-of-arrays engine's path)
        // must agree with the pair-list scan: all-true mask equals the
        // unmasked scan, and a partial mask equals the masked serial
        // reference, at every geometry.
        let all = vec![true; caches.len()];
        let cols = oracle.scan_cols(&caches, &all, &pool, max_shards, min_per_shard);
        prop_assert_eq!(&serial, &cols, "columnar all-true scan diverged");
        let mask: Vec<bool> = (0..caches.len()).map(|i| i % 2 == 0).collect();
        let mut masked_out = Vec::new();
        let mut masked_checks = 0;
        for (i, cache) in caches.iter().enumerate() {
            if mask[i] {
                masked_checks += oracle.collect_violations(ClientId(i as u32), cache, &mut masked_out);
            }
        }
        let masked = oracle.scan_cols(&caches, &mask, &pool, max_shards, min_per_shard);
        prop_assert_eq!((masked_checks, masked_out), masked, "masked columnar scan diverged");
        // And the serial scan must agree with the panicking per-client
        // API about whether the state is consistent at all.
        let clean = serial.1.is_empty();
        let per_client = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for &(client, cache) in &refs {
                oracle.assert_cache_consistent(client, cache);
            }
        }));
        prop_assert_eq!(clean, per_client.is_ok());
    }

    /// Sharded BS index build ≡ serial build, entry for entry, over
    /// random recency lists (unique items, descending timestamps — the
    /// server's invariant) and every shard geometry.
    #[test]
    fn sharded_bs_index_build_matches_serial(
        items in prop::collection::hash_set(0u32..2_000, 0..200),
        db_size in 16u32..4_096,
        max_shards in 1usize..9,
        min_per_shard in 1usize..40,
    ) {
        // Unique ids with strictly descending synthetic timestamps.
        let recency: Vec<(ItemId, SimTime)> = items
            .iter()
            .enumerate()
            .map(|(k, &id)| (ItemId(id), t(1_000_000.0 - k as f64)))
            .collect();
        let bs = BitSequences::from_recency(t(1_000_001.0), db_size, recency);
        let pool = WorkerPool::new(3);
        let serial = BsIndex::build(&bs);
        let sharded = BsIndex::build_sharded(&bs, &pool, max_shards, min_per_shard);
        prop_assert_eq!(serial.entries(), sharded.entries());
    }
}
