//! Typed channel over the preemptive-priority facility.

use mobicache_model::msg::{DownlinkKind, UplinkKind, NUM_CLASSES};
use mobicache_model::units::Bits;
use mobicache_model::ClientId;
use mobicache_sim::{Completion, Facility, FacilityConfig, Job, SimTime};
use std::collections::HashMap;

/// Addressing of a downlink message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dest {
    /// Received by every connected client (invalidation reports).
    Broadcast,
    /// Addressed to one client (data items, validity reports).
    Unicast(ClientId),
}

/// A downlink transmission: what is sent, and to whom.
#[derive(Clone, Debug, PartialEq)]
pub struct DownlinkMsg {
    /// Message content.
    pub kind: DownlinkKind,
    /// Delivery target.
    pub dest: Dest,
}

/// An uplink transmission: what is sent, and by which client.
#[derive(Clone, Debug, PartialEq)]
pub struct UplinkMsg {
    /// Message content.
    pub kind: UplinkKind,
    /// Originating client.
    pub from: ClientId,
}

/// A completed transmission handed back to the driver.
#[derive(Clone, Debug, PartialEq)]
pub struct Delivered<M> {
    /// The transported message.
    pub msg: M,
    /// Its size in bits (as charged to the channel).
    pub bits: Bits,
    /// Completion of the next transmission the channel started, if any.
    pub next: Option<Completion>,
}

/// Channel traffic counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ChannelStats {
    /// Bits fully transmitted per priority class.
    pub bits_by_class: [f64; NUM_CLASSES],
    /// Messages fully transmitted per priority class.
    pub msgs_by_class: [u64; NUM_CLASSES],
    /// Number of preemptions (reports interrupting data).
    pub preemptions: u64,
    /// Server busy fraction at the time of sampling.
    pub utilization: f64,
}

/// One simplex wireless channel carrying typed messages.
pub struct Channel<M> {
    facility: Facility,
    payloads: HashMap<u64, M>,
    next_tag: u64,
}

impl<M> Channel<M> {
    /// A channel of `rate_bps` with the paper's three priority classes,
    /// class 0 (reports) preemptive.
    pub fn new(rate_bps: f64) -> Self {
        Channel {
            facility: Facility::new(FacilityConfig {
                rate_bps,
                classes: NUM_CLASSES,
                preemptive_classes: 1,
            }),
            payloads: HashMap::new(),
            next_tag: 0,
        }
    }

    /// Channel bandwidth in bits per second.
    pub fn rate_bps(&self) -> f64 {
        self.facility.rate_bps()
    }

    /// Submits `msg` of `bits` bits in priority class `class`.
    ///
    /// Returns a [`Completion`] when the channel (re)started service; the
    /// caller must schedule a completion event for it (and must also do so
    /// for completions embedded in [`Delivered::next`]).
    pub fn send(&mut self, now: SimTime, bits: Bits, class: usize, msg: M) -> Option<Completion> {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.payloads.insert(tag, msg);
        self.facility.submit(now, Job { bits, class, tag })
    }

    /// Handles a completion event. Returns `None` for stale tokens
    /// (preempted service — drop the event), otherwise the delivered
    /// message and, if the channel moved on to another queued message,
    /// the completion to schedule for it.
    pub fn complete(&mut self, now: SimTime, token: u64) -> Option<Delivered<M>> {
        let (job, next) = self.facility.on_complete(now, token)?;
        let msg = self
            .payloads
            .remove(&job.tag)
            .expect("completed job without payload");
        Some(Delivered {
            msg,
            bits: job.bits,
            next,
        })
    }

    /// Number of messages waiting (not in service).
    pub fn backlog(&self) -> usize {
        self.facility.backlog()
    }

    /// `true` while a transmission is in progress.
    pub fn is_busy(&self) -> bool {
        self.facility.is_busy()
    }

    /// Snapshot of traffic counters at `now`.
    pub fn stats(&self, now: SimTime) -> ChannelStats {
        let mut s = ChannelStats {
            preemptions: self.facility.preemptions(),
            utilization: self.facility.utilization(now),
            ..ChannelStats::default()
        };
        for class in 0..NUM_CLASSES {
            s.bits_by_class[class] = self.facility.bits_served(class);
            s.msgs_by_class[class] = self.facility.jobs_served(class);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobicache_model::msg::{CLASS_CHECK, CLASS_DATA, CLASS_REPORT};
    use mobicache_model::ItemId;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn send_and_deliver_roundtrip() {
        let mut ch: Channel<&str> = Channel::new(1000.0);
        let c = ch
            .send(t(0.0), 500.0, CLASS_DATA, "hello")
            .expect("idle start");
        let d = ch.complete(c.at, c.token).expect("valid completion");
        assert_eq!(d.msg, "hello");
        assert_eq!(d.bits, 500.0);
        assert!(d.next.is_none());
        assert!(!ch.is_busy());
    }

    #[test]
    fn report_preempts_data_item() {
        let mut ch: Channel<DownlinkMsg> = Channel::new(10_000.0);
        let data = DownlinkMsg {
            kind: DownlinkKind::DataItem { item: ItemId(1) },
            dest: Dest::Unicast(ClientId(3)),
        };
        let c_data = ch.send(t(0.0), 65_536.0, CLASS_DATA, data).unwrap();
        let ir = DownlinkMsg {
            kind: DownlinkKind::InvalidationReport {
                content_bits: 1000.0,
            },
            dest: Dest::Broadcast,
        };
        // Broadcast tick at t=2 preempts the 6.55 s data transmission.
        let c_ir = ch.send(t(2.0), 1000.0, CLASS_REPORT, ir).unwrap();
        assert!((c_ir.at.as_secs() - 2.1).abs() < 1e-9);
        // Stale data completion is dropped.
        assert!(ch.complete(c_data.at, c_data.token).is_none());
        let d = ch.complete(c_ir.at, c_ir.token).unwrap();
        assert_eq!(d.msg.dest, Dest::Broadcast);
        // Data resumes and finishes 65536/10000 s of total service time.
        let resumed = d.next.expect("data resumes");
        assert!((resumed.at.as_secs() - (2.1 + 4.5536)).abs() < 1e-6);
        let d2 = ch.complete(resumed.at, resumed.token).unwrap();
        assert_eq!(d2.msg.dest, Dest::Unicast(ClientId(3)));
        assert_eq!(ch.stats(resumed.at).preemptions, 1);
    }

    #[test]
    fn stats_track_classes_separately() {
        let mut ch: Channel<u32> = Channel::new(1000.0);
        let c1 = ch.send(t(0.0), 100.0, CLASS_CHECK, 1).unwrap();
        let d1 = ch.complete(c1.at, c1.token).unwrap();
        assert!(d1.next.is_none());
        let c2 = ch.send(t(1.0), 300.0, CLASS_DATA, 2).unwrap();
        ch.complete(c2.at, c2.token).unwrap();
        let s = ch.stats(t(10.0));
        assert_eq!(s.bits_by_class[CLASS_CHECK], 100.0);
        assert_eq!(s.bits_by_class[CLASS_DATA], 300.0);
        assert_eq!(s.msgs_by_class[CLASS_CHECK], 1);
        assert_eq!(s.msgs_by_class[CLASS_DATA], 1);
        assert!((s.utilization - 0.04).abs() < 1e-9);
    }

    #[test]
    fn lost_broadcast_still_charges_the_channel() {
        // Fault injection drops reports in the *receivers*, never in the
        // ether: a broadcast nobody hears still occupies the channel for
        // its full service time and is charged like any other message.
        let mut ch: Channel<(&str, bool)> = Channel::new(1000.0);
        let c = ch
            .send(t(0.0), 400.0, CLASS_REPORT, ("report", true))
            .expect("idle start");
        let d = ch.complete(c.at, c.token).expect("valid completion");
        assert!(d.msg.1, "loss rides the payload; the channel cannot tell");
        assert!((c.at.as_secs() - 0.4).abs() < 1e-9);
        let s = ch.stats(t(10.0));
        assert_eq!(s.bits_by_class[CLASS_REPORT], 400.0);
        assert_eq!(s.msgs_by_class[CLASS_REPORT], 1);
        assert!((s.utilization - 0.04).abs() < 1e-9);
    }

    #[test]
    fn lost_report_still_preempts_and_is_fully_charged() {
        // Preemption and loss interplay: a report destined to be dropped
        // by every receiver still preempts in-flight data and shows up in
        // every counter at full price.
        let mut ch: Channel<(u32, bool)> = Channel::new(10_000.0);
        let c_data = ch.send(t(0.0), 65_536.0, CLASS_DATA, (1, false)).unwrap();
        let c_ir = ch.send(t(2.0), 1_000.0, CLASS_REPORT, (2, true)).unwrap();
        assert!((c_ir.at.as_secs() - 2.1).abs() < 1e-9);
        assert!(ch.complete(c_data.at, c_data.token).is_none());
        let d = ch.complete(c_ir.at, c_ir.token).unwrap();
        assert!(d.msg.1, "the dropped report was still transmitted");
        let resumed = d.next.expect("preempted data resumes");
        assert!((resumed.at.as_secs() - 6.6536).abs() < 1e-6);
        ch.complete(resumed.at, resumed.token).unwrap();
        let s = ch.stats(t(10.0));
        assert_eq!(s.bits_by_class[CLASS_REPORT], 1_000.0);
        assert_eq!(s.bits_by_class[CLASS_DATA], 65_536.0);
        assert_eq!(s.msgs_by_class[CLASS_REPORT], 1);
        assert_eq!(s.msgs_by_class[CLASS_DATA], 1);
        assert_eq!(s.preemptions, 1);
        // 0.1 s of report plus 6.5536 s of data over 10 s of wall clock.
        assert!((s.utilization - 0.66536).abs() < 1e-9);
    }

    #[test]
    fn backlog_counts_waiting_messages() {
        let mut ch: Channel<u32> = Channel::new(1000.0);
        ch.send(t(0.0), 1000.0, CLASS_DATA, 1).unwrap();
        assert!(ch.send(t(0.1), 100.0, CLASS_DATA, 2).is_none());
        assert!(ch.send(t(0.2), 100.0, CLASS_DATA, 3).is_none());
        assert_eq!(ch.backlog(), 2);
        assert!(ch.is_busy());
    }
}
