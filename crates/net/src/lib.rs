//! # mobicache-net — the wireless channel model
//!
//! One asymmetric pair of channels (§1: *"the uplink capacity from clients
//! back to servers is much smaller than the downlink capacity from servers
//! to clients"*):
//!
//! * the **downlink** (server → clients) carries invalidation reports
//!   (broadcast, highest priority, preemptive so they start exactly on the
//!   broadcast period), validity reports, and data items;
//! * the **uplink** (clients → server) carries query requests, `Tlb`
//!   reports and checking requests.
//!
//! A [`Channel`] pairs the generic preemptive-priority
//! [`Facility`](mobicache_sim::Facility) with payload storage: callers
//! submit a typed message with its bit size and priority class, receive a
//! `(time, token)` completion to schedule, and collect the payload back on
//! completion. Stale completions (preempted service) return `None` and
//! must be dropped, mirroring the facility protocol.

mod channel;

pub use channel::{Channel, ChannelStats, Delivered, Dest, DownlinkMsg, UplinkMsg};
