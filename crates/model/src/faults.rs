//! Fault-injection plan: bursty downlink loss, uplink loss, client
//! retry/backoff policy, and scheduled server crashes.
//!
//! The paper's premise is that mobile clients operate under failure —
//! dozing, power-off, missed invalidation reports — and that every
//! scheme must recover from *any* missed state. [`FaultPlan`] makes that
//! claim testable: it describes, declaratively and deterministically,
//! which faults a run injects.
//!
//! ## The Gilbert–Elliott downlink channel
//!
//! Downlink broadcast loss is modelled per client as a two-state
//! Gilbert–Elliott chain. Each broadcast interval the client's channel is
//! either **good** or **bad** (in a loss burst):
//!
//! ```text
//!            p_enter_burst
//!      good ───────────────▶ bad
//!       ▲                     │
//!       └─────────────────────┘
//!          1 / mean_burst_intervals
//! ```
//!
//! In the good state a broadcast is lost with [`p_loss_good`]
//! (independent, usually small); in a burst it is lost with
//! [`p_loss_bad`] (usually near 1). `p_loss_good > 0` with
//! `p_enter_burst = 0` degenerates to the legacy i.i.d.
//! `p_report_loss` model, which is exactly how the back-compat shim maps
//! the old knob onto this one.
//!
//! ## Determinism contract
//!
//! Every fault coin is drawn from a **dedicated per-client RNG stream**
//! (`SimRng::stream(seed, 0xFA17… + client)`) in the engine's *serial*
//! phases — the phase-0 delivery pass for downlink coins, the serial
//! merge for uplink coins. Sharded tick phases never touch fault state,
//! so golden digests are bit-identical at every worker-thread count, with
//! faults on or off. When the plan is inactive no fault stream is ever
//! advanced, so `faults = off` reproduces historical digests bit-for-bit.
//!
//! [`p_loss_good`]: ChannelFaults::p_loss_good
//! [`p_loss_bad`]: ChannelFaults::p_loss_bad

use crate::error::ConfigError;

/// Per-client Gilbert–Elliott burst-loss process for downlink broadcasts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChannelFaults {
    /// Probability, per broadcast interval, of a good channel entering a
    /// loss burst.
    pub p_enter_burst: f64,
    /// Mean burst length in broadcast intervals (the chain leaves the
    /// bad state with probability `1 / mean_burst_intervals`). Must be
    /// at least 1: a "burst" shorter than one interval is not a burst.
    pub mean_burst_intervals: f64,
    /// Per-broadcast loss probability while the channel is good.
    pub p_loss_good: f64,
    /// Per-broadcast loss probability while the channel is in a burst.
    pub p_loss_bad: f64,
}

impl ChannelFaults {
    /// A fault-free downlink: never enters a burst, never loses.
    pub fn none() -> Self {
        ChannelFaults {
            p_enter_burst: 0.0,
            mean_burst_intervals: 1.0,
            p_loss_good: 0.0,
            p_loss_bad: 0.0,
        }
    }

    /// Probability of leaving the bad state each interval.
    pub fn p_exit_burst(&self) -> f64 {
        1.0 / self.mean_burst_intervals
    }

    /// Folds an independent per-broadcast loss source (the legacy
    /// `p_report_loss` knob) into both chain states:
    /// `p_eff = 1 − (1 − p_state)(1 − p_extra)`. With an inactive chain
    /// this degenerates to the old i.i.d. loss model exactly.
    #[must_use]
    pub fn with_independent_loss(mut self, p_extra: f64) -> Self {
        if p_extra > 0.0 {
            self.p_loss_good = 1.0 - (1.0 - self.p_loss_good) * (1.0 - p_extra);
            self.p_loss_bad = 1.0 - (1.0 - self.p_loss_bad) * (1.0 - p_extra);
        }
        self
    }

    /// `true` if this process can ever lose a broadcast.
    pub fn is_active(&self) -> bool {
        self.p_loss_good > 0.0 || (self.p_enter_burst > 0.0 && self.p_loss_bad > 0.0)
    }
}

impl Default for ChannelFaults {
    fn default() -> Self {
        ChannelFaults::none()
    }
}

/// Client retry schedule for lost uplinks (`Tlb`, validity checks, data
/// requests).
///
/// A client that uplinked a request and saw no qualifying report within
/// `timeout_intervals` broadcast intervals re-uplinks; each retry doubles
/// the timeout (capped at `backoff_cap_intervals`). After `max_retries`
/// re-sends the client falls back to the paper-faithful graceful
/// degradation: drop the whole cache and start cold.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Broadcast intervals to wait before the first retry. Must be ≥ 1.
    pub timeout_intervals: u32,
    /// Re-sends before giving up and dropping the cache.
    pub max_retries: u32,
    /// Ceiling, in broadcast intervals, on the doubled timeout. Must be
    /// ≥ 1.
    pub backoff_cap_intervals: u32,
}

impl Default for RetryPolicy {
    /// First retry after 2 intervals (the legacy grace window), then 4,
    /// then 8, capped there; give up after 4 re-sends.
    fn default() -> Self {
        RetryPolicy {
            timeout_intervals: 2,
            max_retries: 4,
            backoff_cap_intervals: 8,
        }
    }
}

impl RetryPolicy {
    /// Timeout, in broadcast intervals, for attempt number `retries`
    /// (0 = the original send): `timeout · 2^retries`, capped.
    pub fn timeout_intervals_for(&self, retries: u32) -> u32 {
        let doubled = self
            .timeout_intervals
            .saturating_mul(1u32.checked_shl(retries).unwrap_or(u32::MAX));
        doubled.min(self.backoff_cap_intervals).max(1)
    }
}

/// Declarative fault schedule for one run.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct FaultPlan {
    /// Downlink burst-loss process (per client).
    pub downlink: ChannelFaults,
    /// Independent per-message uplink loss probability.
    pub p_uplink_loss: f64,
    /// Client retry/timeout/backoff policy, armed whenever the plan is
    /// active.
    pub retry: RetryPolicy,
    /// Server crash times, in seconds. Each crash wipes the server's
    /// volatile state; the server is down until `recovery_secs` later.
    pub crashes: Vec<f64>,
    /// How long a crashed server stays down before rebuilding from the
    /// durable update log.
    pub recovery_secs: f64,
}

impl FaultPlan {
    /// The empty plan: no losses, no crashes. Runs with this plan are
    /// bit-identical to runs before the fault layer existed.
    pub fn none() -> Self {
        FaultPlan {
            downlink: ChannelFaults::none(),
            p_uplink_loss: 0.0,
            retry: RetryPolicy::default(),
            crashes: Vec::new(),
            recovery_secs: 0.0,
        }
    }

    /// `true` if this plan can inject any fault at all. Inactive plans
    /// draw zero fault coins and leave client retry logic disarmed.
    pub fn is_active(&self) -> bool {
        self.downlink.is_active() || self.p_uplink_loss > 0.0 || !self.crashes.is_empty()
    }

    /// Validates every fault parameter; called from
    /// [`SimConfig::validate`](crate::SimConfig::validate).
    pub fn validate(&self) -> Result<(), ConfigError> {
        prob("faults.downlink.p_enter_burst", self.downlink.p_enter_burst)?;
        prob("faults.downlink.p_loss_good", self.downlink.p_loss_good)?;
        prob("faults.downlink.p_loss_bad", self.downlink.p_loss_bad)?;
        prob("faults.p_uplink_loss", self.p_uplink_loss)?;
        if !(self.downlink.mean_burst_intervals.is_finite()
            && self.downlink.mean_burst_intervals >= 1.0)
        {
            return Err(ConfigError::OutOfRange {
                field: "faults.downlink.mean_burst_intervals",
                value: self.downlink.mean_burst_intervals,
                bounds: "[1, inf)",
            });
        }
        if self.retry.timeout_intervals == 0 {
            return Err(ConfigError::ZeroCount {
                field: "faults.retry.timeout_intervals",
            });
        }
        if self.retry.backoff_cap_intervals == 0 {
            return Err(ConfigError::ZeroCount {
                field: "faults.retry.backoff_cap_intervals",
            });
        }
        if !(self.recovery_secs.is_finite() && self.recovery_secs >= 0.0) {
            return Err(ConfigError::Negative {
                field: "faults.recovery_secs",
                value: self.recovery_secs,
            });
        }
        for &t in &self.crashes {
            if !(t.is_finite() && t >= 0.0) {
                return Err(ConfigError::Negative {
                    field: "faults.crashes[..]",
                    value: t,
                });
            }
        }
        Ok(())
    }
}

fn prob(field: &'static str, value: f64) -> Result<(), ConfigError> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(ConfigError::OutOfRange {
            field,
            value,
            bounds: "[0, 1]",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inactive_and_valid() {
        let p = FaultPlan::none();
        assert!(!p.is_active());
        assert_eq!(p, FaultPlan::default());
        p.validate().unwrap();
    }

    #[test]
    fn activity_requires_a_reachable_loss() {
        let mut p = FaultPlan::none();
        // A bad-state loss probability with no way to enter the bad
        // state can never lose anything.
        p.downlink.p_loss_bad = 0.9;
        assert!(!p.is_active());
        p.downlink.p_enter_burst = 0.1;
        assert!(p.is_active());

        assert!(FaultPlan {
            p_uplink_loss: 0.01,
            ..FaultPlan::none()
        }
        .is_active());
        assert!(FaultPlan {
            crashes: vec![100.0],
            ..FaultPlan::none()
        }
        .is_active());
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let bad_prob = FaultPlan {
            p_uplink_loss: 1.5,
            ..FaultPlan::none()
        };
        assert_eq!(
            bad_prob.validate(),
            Err(ConfigError::OutOfRange {
                field: "faults.p_uplink_loss",
                value: 1.5,
                bounds: "[0, 1]",
            })
        );

        let mut zero_burst = FaultPlan::none();
        zero_burst.downlink.mean_burst_intervals = 0.0;
        assert_eq!(
            zero_burst.validate(),
            Err(ConfigError::OutOfRange {
                field: "faults.downlink.mean_burst_intervals",
                value: 0.0,
                bounds: "[1, inf)",
            })
        );

        let neg_recovery = FaultPlan {
            recovery_secs: -1.0,
            ..FaultPlan::none()
        };
        assert_eq!(
            neg_recovery.validate(),
            Err(ConfigError::Negative {
                field: "faults.recovery_secs",
                value: -1.0,
            })
        );

        let neg_crash = FaultPlan {
            crashes: vec![50.0, -2.0],
            ..FaultPlan::none()
        };
        assert_eq!(
            neg_crash.validate(),
            Err(ConfigError::Negative {
                field: "faults.crashes[..]",
                value: -2.0,
            })
        );

        let mut zero_timeout = FaultPlan::none();
        zero_timeout.retry.timeout_intervals = 0;
        assert_eq!(
            zero_timeout.validate(),
            Err(ConfigError::ZeroCount {
                field: "faults.retry.timeout_intervals",
            })
        );
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let r = RetryPolicy {
            timeout_intervals: 2,
            max_retries: 5,
            backoff_cap_intervals: 8,
        };
        assert_eq!(r.timeout_intervals_for(0), 2);
        assert_eq!(r.timeout_intervals_for(1), 4);
        assert_eq!(r.timeout_intervals_for(2), 8);
        assert_eq!(r.timeout_intervals_for(3), 8); // capped
        assert_eq!(r.timeout_intervals_for(40), 8); // shift overflow capped
    }

    #[test]
    fn exit_probability_is_reciprocal_burst_length() {
        let mut c = ChannelFaults::none();
        c.mean_burst_intervals = 4.0;
        assert!((c.p_exit_burst() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn independent_loss_folds_into_both_states() {
        let c = ChannelFaults {
            p_enter_burst: 0.1,
            mean_burst_intervals: 4.0,
            p_loss_good: 0.2,
            p_loss_bad: 0.5,
        }
        .with_independent_loss(0.5);
        assert!((c.p_loss_good - 0.6).abs() < 1e-12);
        assert!((c.p_loss_bad - 0.75).abs() < 1e-12);
        // The degenerate case reproduces the legacy i.i.d. model.
        let legacy = ChannelFaults::none().with_independent_loss(0.15);
        assert!((legacy.p_loss_good - 0.15).abs() < 1e-12);
        assert!((legacy.p_loss_bad - 0.15).abs() < 1e-12);
        assert_eq!(legacy.p_enter_burst, 0.0);
        // Folding zero is the identity.
        assert_eq!(
            ChannelFaults::none().with_independent_loss(0.0),
            ChannelFaults::none()
        );
    }
}
